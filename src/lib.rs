//! Umbrella crate for the btpub workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the actual library
//! surface lives in the `btpub` crate and its substrates.

pub use btpub as core;
