//! Snapshot export: JSON for machines, a text table for humans.

use serde_json::{Map, Value};

use crate::registry::Registry;

impl Registry {
    /// Renders every metric as a JSON tree:
    ///
    /// ```json
    /// {
    ///   "counters":   { "crawler.rss.torrents": 3072, ... },
    ///   "gauges":     { "monitor.store.items": 512, ... },
    ///   "histograms": { "span.tracker.announce.ns":
    ///       { "count": 9, "sum": 1290, "max": 410, "mean": 143.3,
    ///         "p50": 101.0, "p90": 380.5, "p99": 407.1 }, ... }
    /// }
    /// ```
    pub fn snapshot(&self) -> Value {
        let mut counters = Map::new();
        for (name, v) in self.counters() {
            counters.insert(name, Value::from(v));
        }
        let mut gauges = Map::new();
        for (name, v) in self.gauges() {
            gauges.insert(name, Value::from(v));
        }
        let mut histograms = Map::new();
        for (name, h) in self.histograms() {
            let mut m = Map::new();
            m.insert("count", Value::from(h.count()));
            m.insert("sum", Value::from(h.sum()));
            m.insert("max", Value::from(h.max()));
            m.insert("mean", Value::from(h.mean()));
            m.insert("p50", Value::from(h.quantile(0.50)));
            m.insert("p90", Value::from(h.quantile(0.90)));
            m.insert("p99", Value::from(h.quantile(0.99)));
            histograms.insert(name, Value::Object(m));
        }
        let mut root = Map::new();
        root.insert("counters", Value::Object(counters));
        root.insert("gauges", Value::Object(gauges));
        root.insert("histograms", Value::Object(histograms));
        Value::Object(root)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Renders a human-readable report of `registry`.
///
/// Span histograms (named `span.*.ns`) come first, sorted by **total
/// recorded time, descending** — the top line is where the run's wall
/// clock went. Other histograms, then counters and gauges, follow in
/// name order.
pub fn text_report(registry: &Registry) -> String {
    let mut out = String::new();
    let histograms = registry.histograms();

    let mut spans: Vec<_> = histograms
        .iter()
        .filter(|(n, _)| n.starts_with("span.") && n.ends_with(".ns"))
        .collect();
    // Descending by total time, ties broken by name: equal totals
    // (e.g. zero-count spans) must not fall back to map order, or the
    // report stops being byte-deterministic.
    spans.sort_by(|(an, ah), (bn, bh)| bh.sum().cmp(&ah.sum()).then_with(|| an.cmp(bn)));
    if !spans.is_empty() {
        out.push_str("spans (by total time):\n");
        out.push_str(&format!(
            "  {:<40} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "span", "count", "total", "self", "mean", "p90", "max"
        ));
        for (name, h) in &spans {
            let short = name
                .strip_prefix("span.")
                .and_then(|n| n.strip_suffix(".ns"))
                .unwrap_or(name);
            let self_ns = registry.counter(&format!("span.{short}.self_ns")).value();
            out.push_str(&format!(
                "  {:<40} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                short,
                h.count(),
                fmt_ns(h.sum() as f64),
                fmt_ns(self_ns as f64),
                fmt_ns(h.mean()),
                fmt_ns(h.quantile(0.9)),
                fmt_ns(h.max() as f64),
            ));
        }
    }

    let others: Vec<_> = histograms
        .iter()
        .filter(|(n, _)| !(n.starts_with("span.") && n.ends_with(".ns")))
        .collect();
    if !others.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in others {
            out.push_str(&format!(
                "  {:<40} count={} mean={:.1} p50={:.1} p90={:.1} max={}\n",
                name,
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.max(),
            ));
        }
    }

    let counters = registry.counters();
    // Span self-time counters are already folded into the span table.
    let counters: Vec<_> = counters
        .into_iter()
        .filter(|(n, _)| !(n.starts_with("span.") && n.ends_with(".self_ns")))
        .collect();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in counters {
            out.push_str(&format!("  {name:<40} {v}\n"));
        }
    }

    let gauges = registry.gauges();
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in gauges {
            out.push_str(&format!("  {name:<40} {v}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_has_expected_shape() {
        let r = Registry::new();
        r.counter("c.events").add(5);
        r.gauge("g.level").set(-3);
        let h = r.histogram("h.sizes");
        for v in [1u64, 2, 4, 8, 100] {
            h.record(v);
        }
        let snap = r.snapshot();
        assert_eq!(snap["counters"]["c.events"].as_u64(), Some(5));
        assert_eq!(snap["gauges"]["g.level"].as_i64(), Some(-3));
        let hs = &snap["histograms"]["h.sizes"];
        assert_eq!(hs["count"].as_u64(), Some(5));
        assert_eq!(hs["sum"].as_u64(), Some(115));
        assert_eq!(hs["max"].as_u64(), Some(100));
        assert!(hs["p50"].as_f64().unwrap() > 0.0);
        assert!(hs["p99"].as_f64().unwrap() <= 101.0);
        // Round-trips through the JSON writer.
        let text = serde_json::to_string_pretty(&snap).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["counters"]["c.events"].as_u64(), Some(5));
    }

    #[test]
    fn text_report_sorts_spans_by_total_time() {
        let r = Registry::new();
        r.histogram("span.fast.ns").record(10);
        r.histogram("span.slow.ns").record(5_000_000_000);
        r.counter("span.slow.self_ns").add(5_000_000_000);
        r.counter("span.fast.self_ns").add(10);
        r.counter("crawler.polls").add(7);
        r.gauge("store.items").set(12);
        let report = text_report(&r);
        let slow_at = report.find("slow").expect("slow span listed");
        let fast_at = report.find("fast").expect("fast span listed");
        assert!(slow_at < fast_at, "slowest span first:\n{report}");
        assert!(report.contains("5.00s"));
        assert!(report.contains("crawler.polls"));
        assert!(report.contains("store.items"));
    }

    #[test]
    fn span_ties_break_by_name_and_snapshot_keys_are_deterministic() {
        // Two registries populated in opposite insertion orders must
        // render identical bytes: JSON keys sorted (BTreeMap-backed
        // registry), span table ties broken by name.
        let build = |reversed: bool| {
            let r = Registry::new();
            let names = ["span.bb.ns", "span.aa.ns", "span.cc.ns"];
            let iter: Vec<&str> = if reversed {
                names.iter().rev().copied().collect()
            } else {
                names.to_vec()
            };
            for n in iter {
                r.histogram(n).record(100); // equal totals: a three-way tie
                let short = n.strip_prefix("span.").unwrap().strip_suffix(".ns").unwrap();
                r.counter(&format!("span.{short}.self_ns")).add(100);
            }
            r.counter("zz.total").add(1);
            r.counter("aa.total").add(1);
            r
        };
        let (a, b) = (build(false), build(true));
        assert_eq!(text_report(&a), text_report(&b));
        assert_eq!(
            serde_json::to_string(&a.snapshot()).unwrap(),
            serde_json::to_string(&b.snapshot()).unwrap(),
            "snapshot JSON key order must not depend on insertion order"
        );
        // Tie order is name order.
        let report = text_report(&a);
        let (aa, bb, cc) = (
            report.find("  aa ").unwrap(),
            report.find("  bb ").unwrap(),
            report.find("  cc ").unwrap(),
        );
        assert!(aa < bb && bb < cc, "tied spans sorted by name:\n{report}");
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(12_500.0), "12.50us");
        assert_eq!(fmt_ns(12_500_000.0), "12.50ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50s");
    }
}
