//! Observability layer for the btpub measurement pipeline.
//!
//! Three tightly-coupled facilities, all built on `std` only (the build
//! environment is offline, so no tracing/metrics/prometheus stacks):
//!
//! * **Metrics** — a process-global [`Registry`] of named [`Counter`]s
//!   (sharded atomics, safe to hammer from many threads), [`Gauge`]s and
//!   log2-bucketed [`Histogram`]s with quantile estimation.
//! * **Span timing** — RAII [`span!`] guards that record elapsed wall
//!   time into histograms, with a thread-local span stack so nested
//!   spans attribute *self time* (time not spent in child spans)
//!   correctly.
//! * **Structured logging** — leveled [`error!`] / [`warn!`] / [`info!`]
//!   / [`debug!`] / [`trace!`] macros with `key=value` fields, filtered
//!   at runtime by the `BTPUB_LOG` environment variable (default `warn`).
//! * **Flight recorder** — always-compiled, runtime-gated event tracing
//!   ([`trace`]): per-thread bounded ring buffers of compact events,
//!   drained into Chrome trace event JSON for Perfetto. Off-cost is one
//!   relaxed atomic load per event site; on, it never touches a report
//!   byte (see the module docs for both contracts).
//! * **Run manifests** — [`manifest`] pins a run's parameters next to a
//!   digest + snapshot of its deterministic metrics; the `obs_diff` bin
//!   compares two manifests and flags regressions.
//!
//! Everything funnels into one snapshot: [`Registry::snapshot`] renders
//! the world as a `serde_json::Value`, and [`text_report`] renders a
//! human table sorted by where the time went.
//!
//! ```
//! let _guard = btpub_obs::span!("demo.outer");
//! btpub_obs::counter("demo.widgets").add(3);
//! btpub_obs::gauge("demo.backlog").set(7);
//! btpub_obs::info!("demo step finished"; widgets = 3);
//! ```

pub mod log;
pub mod manifest;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

pub use log::{set_level, Level};
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{global, Registry};
pub use report::text_report;
pub use span::SpanGuard;

/// Re-exported so downstream crates can build [`manifest`] metadata
/// (`serde_json::Value`) without taking their own dependency.
pub use serde_json;

use std::sync::Arc;

/// Fetches (creating on first use) the global counter `name`.
///
/// The returned handle is cheap to clone and lock-free to update; hot
/// loops should look it up once and keep the `Arc`.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Fetches (creating on first use) the global gauge `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Fetches (creating on first use) the global histogram `name`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Seconds elapsed since the process-wide observability clock started
/// (first use of anything in this crate). Used by the log line prefix.
pub fn uptime_secs() -> f64 {
    registry::start_instant().elapsed().as_secs_f64()
}

/// `counter("name")` with the registry lookup done once per call site —
/// use in hot loops. Expands to `&'static Arc<Counter>`.
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// `gauge("name")` with the registry lookup done once per call site.
#[macro_export]
macro_rules! static_gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// `histogram("name")` with the registry lookup done once per call site.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::histogram($name))
    }};
}
