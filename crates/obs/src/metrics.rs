//! Metric primitives: sharded counters, gauges and log2 histograms.
//!
//! All three are updated with relaxed atomics — metrics are advisory and
//! never synchronize program logic — and read with a best-effort sum,
//! which is exact once writers are quiescent (e.g. at snapshot time).

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of independent cells a [`Counter`] is striped over. A power of
/// two so the shard pick is a mask, sized to cover typical core counts.
const SHARDS: usize = 16;

/// Pads an atomic out to a cache line so neighbouring shards don't
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

thread_local! {
    /// This thread's shard index, assigned round-robin at first use.
    static SHARD: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1)
    };
}

/// A monotonically increasing event count.
///
/// Increments go to a per-thread shard, so concurrent writers on
/// different cores do not contend on one cache line; [`Counter::value`]
/// sums the shards. Single-threaded increment throughput is north of
/// 100 M/s in release builds (see the `counter_throughput` test).
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        SHARD.with(|&s| self.shards[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// A point-in-time signed level (queue depth, store size, population).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)`. u64 needs 64 value buckets + zero.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds or
/// item counts).
///
/// Records are lock-free; quantiles are estimated by walking the bucket
/// cumulative counts and interpolating linearly inside the target
/// bucket, which bounds the relative error by the bucket width (a factor
/// of two, i.e. ±50 % worst case, far tighter in practice because the
/// interpolation assumes a uniform in-bucket distribution).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Lower/upper (inclusive/exclusive) value bounds of bucket `i`.
    fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1 << (i - 1), if i >= 64 { u64::MAX } else { 1 << i })
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by in-bucket linear
    /// interpolation. Returns 0.0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        // Rank of the sample we are after, 1-based, clamped into range.
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            let in_bucket = self.buckets[i].load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if (seen + in_bucket) as f64 >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                // The true maximum caps the top bucket's upper edge.
                let hi = (hi as f64).min(self.max() as f64 + 1.0).max(lo as f64 + 1.0);
                let into = (rank - seen as f64) / in_bucket as f64;
                return lo as f64 + (hi - lo as f64) * into;
            }
            seen += in_bucket;
        }
        self.max() as f64
    }

    /// Raw bucket counts (index = log2 bucket), for export.
    pub fn bucket_counts(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| (Self::bucket_bounds(i).0, c))
            })
            .collect()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Bounds are half-open and contiguous.
        for i in 1..64 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_of(lo), i);
            assert_eq!(Histogram::bucket_of(hi - 1), i);
            assert_eq!(Histogram::bucket_bounds(i + 1).0, hi);
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        // 1000 samples uniform over [0, 1000): true p50 ≈ 500, p90 ≈ 900.
        for v in 0..1000 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        // Log2 buckets bound the error by the bucket width.
        assert!((380.0..=640.0).contains(&p50), "p50 {p50}");
        assert!((700.0..=1000.0).contains(&p90), "p90 {p90}");
        assert!(p99 >= p90 && p99 <= 1000.0, "p99 {p99}");
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 999);
        assert!((h.mean() - 499.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_on_single_valued_histogram_stays_in_bucket() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(700);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((512.0..=701.0).contains(&v), "q{q} -> {v}");
        }
    }

    #[test]
    fn exact_powers_of_two_open_their_own_bucket() {
        // 2^k is the *inclusive lower* bound of bucket k+1, so an exact
        // power must not land with the values just below it.
        for k in 0..63u32 {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_of(v), k as usize + 1, "2^{k}");
            if v > 1 {
                assert_eq!(Histogram::bucket_of(v - 1), k as usize, "2^{k}-1");
            }
        }
        let h = Histogram::new();
        h.record(1024);
        assert_eq!(h.bucket_counts(), vec![(1024, 1)]);
        // A bucket holding one exact power: quantiles stay within
        // [value, value+1] thanks to the max-capped upper edge.
        for q in [0.0, 0.5, 1.0] {
            let est = h.quantile(q);
            assert!((1024.0..=1025.0).contains(&est), "q{q} -> {est}");
        }
    }

    #[test]
    fn value_zero_has_a_dedicated_bucket() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.bucket_counts(), vec![(0, 10)]);
        // All samples are 0; the interpolated estimate must stay inside
        // bucket 0's [0, 1) range for every quantile.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!((0.0..=1.0).contains(&est), "q{q} -> {est}");
        }
    }

    #[test]
    fn u64_max_lands_in_the_top_bucket_without_overflow() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.count(), 1);
        // bucket_bounds(64) must not shift by 64; its lower edge is 2^63.
        assert_eq!(Histogram::bucket_bounds(64).0, 1u64 << 63);
        let est = h.quantile(1.0);
        assert!(
            est >= (1u64 << 63) as f64 && est.is_finite(),
            "p100 {est}"
        );
    }

    #[test]
    fn quantile_interpolation_is_monotone_within_a_single_bucket() {
        // 512 samples uniform over bucket 10's range [512, 1024): the
        // in-bucket linear interpolation should be monotone in q and
        // roughly track the true quantiles.
        let h = Histogram::new();
        for v in 512..1024 {
            h.record(v);
        }
        let mut prev = f64::MIN;
        for i in 0..=10 {
            let q = f64::from(i) / 10.0;
            let est = h.quantile(q);
            assert!(est >= prev, "quantile not monotone at q={q}: {est} < {prev}");
            assert!((512.0..=1024.0).contains(&est), "q{q} -> {est}");
            prev = est;
        }
        let p50 = h.quantile(0.5);
        assert!((700.0..=830.0).contains(&p50), "p50 of [512,1024) was {p50}");
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.bucket_counts().is_empty());
    }

    #[test]
    fn sharded_counter_is_exact_under_concurrency() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 800_000);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
    }

    /// Documents the counter's single-threaded throughput claim
    /// (ISSUE acceptance: >= 10 M increments/sec). Run explicitly with
    /// `cargo test -p btpub-obs --release -- --ignored counter_throughput`;
    /// ignored by default because debug builds are ~20x slower.
    #[test]
    #[ignore]
    fn counter_throughput() {
        let c = Counter::new();
        let n = 100_000_000u64;
        let start = std::time::Instant::now();
        for _ in 0..n {
            c.inc();
        }
        let secs = start.elapsed().as_secs_f64();
        let rate = n as f64 / secs;
        eprintln!("counter: {rate:.0} increments/sec ({secs:.3}s for {n})");
        assert_eq!(c.value(), n);
        assert!(rate >= 10_000_000.0, "counter too slow: {rate:.0}/s");
    }
}
