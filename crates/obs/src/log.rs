//! Leveled structured logging with runtime filtering.
//!
//! Log lines go to stderr (stdout stays free for each binary's actual
//! output) in the form:
//!
//! ```text
//! [   12.042s WARN  btpub_crawler::crawler] identify failed torrent=91 reason=NoSeeder
//! ```
//!
//! The threshold comes from the `BTPUB_LOG` environment variable
//! (`error` / `warn` / `info` / `debug` / `trace`, default `warn`) read
//! once at first use, or from [`set_level`] at any time — no recompile
//! needed to change verbosity. Each emitted line also bumps the counter
//! `log.<level>`, so snapshots show how chatty a run was.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-corrupting conditions.
    Error = 0,
    /// Suspicious conditions the run survives.
    Warn = 1,
    /// High-level progress of the pipeline.
    Info = 2,
    /// Per-item detail useful when debugging.
    Debug = 3,
    /// Firehose.
    Trace = 4,
}

impl Level {
    /// Fixed-width display label.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Metric suffix for the `log.<level>` counter.
    fn metric(self) -> &'static str {
        match self {
            Level::Error => "log.error",
            Level::Warn => "log.warn",
            Level::Info => "log.info",
            Level::Debug => "log.debug",
            Level::Trace => "log.trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }

    /// Parses a `BTPUB_LOG` value; unknown strings mean the default
    /// (use [`Level::parse_known`] to distinguish them).
    pub fn parse(s: &str) -> Option<Level> {
        Level::parse_known(s).unwrap_or(Some(DEFAULT_LEVEL))
    }

    /// Strict parse: `Some(Some(level))` for a level, `Some(None)` for
    /// `off`/`none`, `None` for an unrecognized value.
    pub fn parse_known(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "e" => Some(Some(Level::Error)),
            "warn" | "warning" | "w" => Some(Some(Level::Warn)),
            "info" | "i" => Some(Some(Level::Info)),
            "debug" | "d" => Some(Some(Level::Debug)),
            "trace" | "t" => Some(Some(Level::Trace)),
            "off" | "none" => Some(None),
            _ => None,
        }
    }
}

const DEFAULT_LEVEL: Level = Level::Warn;
/// Sentinel meaning "suppress everything" (BTPUB_LOG=off).
const OFF: u8 = u8::MAX;

/// Current threshold, encoded as the `Level` repr or [`OFF`].
static THRESHOLD: AtomicU8 = AtomicU8::new(0);
static INIT: OnceLock<()> = OnceLock::new();

fn threshold() -> u8 {
    INIT.get_or_init(|| {
        let level = match std::env::var("BTPUB_LOG") {
            Ok(v) => match Level::parse_known(&v) {
                Some(parsed) => parsed.map_or(OFF, |l| l as u8),
                None => {
                    // One-time by construction: this branch lives inside
                    // the OnceLock initializer.
                    eprintln!(
                        "btpub-obs: unrecognized BTPUB_LOG value {v:?} (accepted: \
                         error|warn|info|debug|trace|off); using default \"warn\""
                    );
                    DEFAULT_LEVEL as u8
                }
            },
            Err(_) => DEFAULT_LEVEL as u8,
        };
        THRESHOLD.store(level, Ordering::Relaxed);
    });
    THRESHOLD.load(Ordering::Relaxed)
}

/// Overrides the threshold at runtime; `None` silences logging.
pub fn set_level(level: Option<Level>) {
    INIT.get_or_init(|| ());
    THRESHOLD.store(level.map_or(OFF, |l| l as u8), Ordering::Relaxed);
}

/// Current threshold, if logging is enabled at all.
pub fn current_level() -> Option<Level> {
    let t = threshold();
    (t != OFF).then(|| Level::from_u8(t))
}

/// Whether a record at `level` would be emitted. The macros check this
/// before formatting anything, so disabled levels cost one atomic load.
#[inline]
pub fn enabled(level: Level) -> bool {
    let t = threshold();
    t != OFF && (level as u8) <= t
}

/// Formats and writes one record; called by the macros after
/// [`enabled`] passed. `fields` are pre-rendered `key=value` pairs.
pub fn emit(level: Level, target: &str, message: &std::fmt::Arguments<'_>, fields: &[(&str, String)]) {
    crate::global().counter(level.metric()).inc();
    // Warn+ records also land in the flight recorder, so a trace shows
    // *when* the run complained relative to everything else.
    if level <= Level::Warn {
        crate::trace::record_named(level.metric(), crate::trace::EventKind::Instant, 0);
    }
    let mut line = format!(
        "[{:>9.3}s {} {}] {}",
        crate::uptime_secs(),
        level.label(),
        target,
        message
    );
    for (k, v) in fields {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(v);
    }
    eprintln!("{line}");
}

/// Core logging macro; prefer the leveled wrappers.
///
/// `btpub_obs::log!(Level::Info, "message {}", 1; key = value, k2 = v2)`
/// — fields after `;` are rendered with `Debug`.
#[macro_export]
macro_rules! log {
    ($level:expr, $($fmt:expr),+ $(; $($key:ident = $val:expr),* $(,)?)?) => {
        if $crate::log::enabled($level) {
            $crate::log::emit(
                $level,
                module_path!(),
                &format_args!($($fmt),+),
                &[$($((stringify!($key), format!("{:?}", $val))),*)?],
            );
        }
    };
}

/// Logs at [`Level::Error`] with optional `; key = value` fields.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Error, $($arg)*) };
}

/// Logs at [`Level::Warn`] with optional `; key = value` fields.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Warn, $($arg)*) };
}

/// Logs at [`Level::Info`] with optional `; key = value` fields.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Info, $($arg)*) };
}

/// Logs at [`Level::Debug`] with optional `; key = value` fields.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Debug, $($arg)*) };
}

/// Logs at [`Level::Trace`] with optional `; key = value` fields.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Trace, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases_and_off() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        // Lenient parse falls back; the strict form reports the miss
        // (which is what earns the one-time stderr warning at init).
        assert_eq!(Level::parse("garbage"), Some(DEFAULT_LEVEL));
        assert_eq!(Level::parse_known("garbage"), None);
        assert_eq!(Level::parse_known("off"), Some(None));
        assert_eq!(Level::parse_known("e"), Some(Some(Level::Error)));
    }

    #[test]
    fn set_level_filters_at_runtime() {
        set_level(Some(Level::Info));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));

        set_level(Some(Level::Trace));
        assert!(enabled(Level::Trace));

        set_level(None);
        assert!(!enabled(Level::Error));

        // Emitted lines bump the per-level counter; suppressed ones don't.
        set_level(Some(Level::Warn));
        let before = crate::global().counter("log.warn").value();
        crate::warn!("test warn {}", 1; torrent = 9);
        crate::debug!("suppressed");
        assert_eq!(crate::global().counter("log.warn").value(), before + 1);

        set_level(Some(DEFAULT_LEVEL));
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }
}
