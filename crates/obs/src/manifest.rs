//! Run manifests and snapshot diffing.
//!
//! A manifest pins *what a run was* — scale, seeds, fault profile,
//! jobs — next to a digest and full snapshot of its metrics, so two
//! runs can be compared mechanically (the `obs_diff` bin, wired into
//! `scripts/check.sh` as a regression gate).
//!
//! ## What is compared
//!
//! Only the **deterministic** metric set: counters and gauges, minus
//! the timing- and scheduling-dependent ones (`span.*` self-time
//! counters, `par.*.steals` steal counts, `par.*.queue_depth`, and
//! the `serve.*` live-socket tallies, which retransmits inflate).
//! Histograms are excluded wholesale — every histogram in this
//! workspace measures wall-clock latency, which legitimately varies
//! between byte-identical runs. The digest is an FNV-1a 64 over the
//! canonical (name-sorted, compact) JSON of that set, so two runs of
//! the same build on the same inputs produce the same digest even
//! though their wall clocks differ.

use std::path::Path;

use serde_json::{Map, Value};

use crate::registry::Registry;

/// FNV-1a 64-bit over `bytes` (stable, dependency-free — this is a
/// change detector, not a cryptographic commitment).
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Whether a counter participates in digests and diffs.
fn deterministic_counter(name: &str) -> bool {
    // span.*.self_ns is accumulated wall time; par.*.steals depends on
    // scheduling luck; trace.* is flight-recorder drop/trip accounting
    // that only exists when (and how hard) the recorder is armed — a
    // traced run must digest identically to its traceless twin.
    // serve.* counters tally live socket traffic: retransmits and
    // reconnects legitimately inflate them between byte-identical swarm
    // snapshots, so the serve plane proves itself via snapshot parity,
    // not digests.
    // retry.breaker.serve.* is the serve plane's garble breaker: it
    // opens on wall-clock bursts, unlike the sim-time breakers, so it
    // shares the serve.* exemption.
    !name.starts_with("span.")
        && !name.starts_with("trace.")
        && !name.starts_with("serve.")
        && !name.starts_with("retry.breaker.serve.")
        && !name.ends_with(".steals")
}

/// Whether a gauge participates in digests and diffs.
fn deterministic_gauge(name: &str) -> bool {
    !name.ends_with(".queue_depth")
}

/// Extracts the canonical (deterministic) counter+gauge subset from a
/// full snapshot (either a bare [`Registry::snapshot`] value or a
/// manifest wrapping one under `"snapshot"`).
fn canonical_metrics(snapshot: &Value) -> Value {
    let root = snapshot.get("snapshot").unwrap_or(snapshot);
    let mut counters = Map::new();
    if let Some(m) = root.get("counters").and_then(Value::as_object) {
        for (k, v) in m.iter() {
            if deterministic_counter(k) {
                counters.insert(k.clone(), v.clone());
            }
        }
    }
    let mut gauges = Map::new();
    if let Some(m) = root.get("gauges").and_then(Value::as_object) {
        for (k, v) in m.iter() {
            if deterministic_gauge(k) {
                gauges.insert(k.clone(), v.clone());
            }
        }
    }
    let mut out = Map::new();
    out.insert("counters", Value::Object(counters));
    out.insert("gauges", Value::Object(gauges));
    Value::Object(out)
}

/// Hex digest of a snapshot's canonical metric set.
pub fn snapshot_digest(snapshot: &Value) -> String {
    let canon = serde_json::to_string(&canonical_metrics(snapshot)).unwrap_or_default();
    format!("{:016x}", digest64(canon.as_bytes()))
}

/// Builds a run manifest: the caller's metadata fields (scale, seeds,
/// fault profile, jobs, …) in the given order, then the canonical
/// metric digest, then the full metric snapshot.
pub fn build(registry: &Registry, meta: &[(&str, Value)]) -> Value {
    let snapshot = registry.snapshot();
    let mut root = Map::new();
    for (k, v) in meta {
        root.insert(*k, v.clone());
    }
    root.insert("metrics_digest", Value::from(snapshot_digest(&snapshot)));
    root.insert("snapshot", snapshot);
    Value::Object(root)
}

/// Writes `manifest` to `path` as pretty JSON with a trailing newline.
///
/// The write is atomic (temp file + rename in the target directory):
/// periodic emission from a running daemon must never let a concurrent
/// `obs_diff --watch` read a half-written manifest.
pub fn write(path: &Path, manifest: &Value) -> std::io::Result<()> {
    let mut text = serde_json::to_string_pretty(manifest)
        .map_err(|e| std::io::Error::other(format!("manifest serialization failed: {e}")))?;
    text.push('\n');
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Meta keys that define a run's configuration: two manifests that
/// disagree on any of these measure *different runs*, and diffing
/// their metrics would report configuration skew as a bogus
/// regression.
const CONFIG_META_KEYS: &[&str] = &["bin", "scale", "scenarios", "fault_profile", "jobs_effective"];

/// Configuration mismatches between two manifests — one line per meta
/// key present in both but different. Empty means the manifests are
/// comparable; callers (`obs_diff`) should refuse to diff otherwise.
/// Keys missing from either side are skipped, so older manifests
/// without the full meta block stay comparable.
pub fn incompatible(old: &Value, new: &Value) -> Vec<String> {
    let mut out = Vec::new();
    for key in CONFIG_META_KEYS {
        if let (Some(a), Some(b)) = (old.get(key), new.get(key)) {
            if !a.is_null() && !b.is_null() && a != b {
                out.push(format!("meta {key}: {a} vs {b}"));
            }
        }
    }
    out
}

fn number_map<'v>(root: &'v Value, section: &str) -> Vec<(&'v String, f64)> {
    let root = root.get("snapshot").unwrap_or(root);
    root.get(section)
        .and_then(Value::as_object)
        .map(|m| {
            m.iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k, n)))
                .collect()
        })
        .unwrap_or_default()
}

fn diff_section(
    old: &Value,
    new: &Value,
    section: &str,
    keep: fn(&str) -> bool,
    tolerance_pct: f64,
    out: &mut Vec<String>,
) {
    let old_m = number_map(old, section);
    let new_m = number_map(new, section);
    let label = section.trim_end_matches('s'); // "counters" -> "counter"
    for (name, old_v) in &old_m {
        if !keep(name) {
            continue;
        }
        match new_m.iter().find(|(k, _)| k == name) {
            None => out.push(format!("{label} {name}: missing from new snapshot (was {old_v})")),
            Some((_, new_v)) => {
                let allowed = old_v.abs() * tolerance_pct / 100.0;
                if (new_v - old_v).abs() > allowed {
                    let pct = if *old_v != 0.0 {
                        format!(" ({:+.1}%)", (new_v - old_v) / old_v * 100.0)
                    } else {
                        String::new()
                    };
                    out.push(format!("{label} {name}: {old_v} -> {new_v}{pct}"));
                }
            }
        }
    }
    for (name, new_v) in &new_m {
        if keep(name) && !old_m.iter().any(|(k, _)| k == name) {
            out.push(format!("{label} {name}: new in new snapshot ({new_v})"));
        }
    }
}

/// Compares the deterministic metric sets of two manifests (or bare
/// snapshots). Returns one human-readable line per difference beyond
/// `tolerance_pct` — empty means the runs agree. Missing, added, and
/// out-of-tolerance counters and gauges are all differences: for a
/// deterministic pipeline any unexplained metric drift is a
/// regression signal.
pub fn diff(old: &Value, new: &Value, tolerance_pct: f64) -> Vec<String> {
    let mut out = Vec::new();
    diff_section(old, new, "counters", deterministic_counter, tolerance_pct, &mut out);
    diff_section(old, new, "gauges", deterministic_gauge, tolerance_pct, &mut out);
    out
}

/// Where a live (possibly still-running) snapshot stands relative to a
/// finished baseline — the `obs_diff --watch --expect-partial` verdict.
#[derive(Debug)]
pub struct WatchVerdict {
    /// Baseline metrics the live snapshot already matches.
    pub matched: usize,
    /// Baseline metrics in the deterministic set.
    pub total: usize,
    /// Baseline metrics still below baseline or not yet present —
    /// expected mid-run, a regression only if it never converges.
    pub behind: usize,
    /// Hard failures: metrics *above* baseline beyond tolerance, or
    /// metrics the baseline never recorded. A mid-run snapshot of a
    /// deterministic pipeline can lag its baseline but never overshoot
    /// it.
    pub overshoots: Vec<String>,
}

fn verdict_section(
    old: &Value,
    new: &Value,
    section: &str,
    keep: fn(&str) -> bool,
    tolerance_pct: f64,
    v: &mut WatchVerdict,
) {
    let old_m = number_map(old, section);
    let new_m = number_map(new, section);
    let label = section.trim_end_matches('s');
    for (name, old_v) in &old_m {
        if !keep(name) {
            continue;
        }
        v.total += 1;
        let allowed = old_v.abs() * tolerance_pct / 100.0;
        match new_m.iter().find(|(k, _)| k == name) {
            None => v.behind += 1,
            Some((_, new_v)) if (new_v - old_v).abs() <= allowed => v.matched += 1,
            Some((_, new_v)) if *new_v < *old_v => v.behind += 1,
            Some((_, new_v)) => v.overshoots.push(format!(
                "{label} {name}: {old_v} -> {new_v} (above baseline)"
            )),
        }
    }
    for (name, new_v) in &new_m {
        if keep(name) && !old_m.iter().any(|(k, _)| k == name) {
            v.overshoots
                .push(format!("{label} {name}: not in baseline ({new_v})"));
        }
    }
}

/// Compares a live snapshot against a finished baseline with mid-run
/// semantics: being behind is progress-in-flight, being *ahead* (or
/// growing metrics the baseline never had) is a regression. Used by
/// `obs_diff --watch --expect-partial` to health-check a running
/// daemon against a known-good run.
pub fn watch_verdict(old: &Value, new: &Value, tolerance_pct: f64) -> WatchVerdict {
    let mut v = WatchVerdict {
        matched: 0,
        total: 0,
        behind: 0,
        overshoots: Vec::new(),
    };
    verdict_section(old, new, "counters", deterministic_counter, tolerance_pct, &mut v);
    verdict_section(old, new, "gauges", deterministic_gauge, tolerance_pct, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(counters: &[(&str, u64)], gauges: &[(&str, i64)]) -> Registry {
        let r = Registry::new();
        for (n, v) in counters {
            r.counter(n).add(*v);
        }
        for (n, v) in gauges {
            r.gauge(n).set(*v);
        }
        r
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = build(
            &registry_with(&[("crawler.polls", 7)], &[("store.items", 3)]),
            &[],
        );
        let b = build(
            &registry_with(&[("crawler.polls", 7)], &[("store.items", 3)]),
            &[],
        );
        let c = build(
            &registry_with(&[("crawler.polls", 8)], &[("store.items", 3)]),
            &[],
        );
        assert_eq!(a["metrics_digest"], b["metrics_digest"]);
        assert_ne!(a["metrics_digest"], c["metrics_digest"]);
    }

    #[test]
    fn timing_and_scheduling_metrics_do_not_perturb_digest_or_diff() {
        let quiet = registry_with(&[("crawler.polls", 7)], &[]);
        let noisy = registry_with(
            &[
                ("crawler.polls", 7),
                ("span.sim.tick.self_ns", 123_456_789),
                ("par.sim.swarms.steals", 42),
                ("serve.announce.total", 10_128),
                ("serve.announce.duplicate", 128),
            ],
            &[("par.sim.swarms.queue_depth", 3)],
        );
        // The noisy registry records wall time, scheduling luck, and
        // live-socket traffic (retransmit-inflated); the histogram
        // section is excluded wholesale.
        noisy.histogram("span.sim.tick.ns").record(999);
        let a = build(&quiet, &[]);
        let b = build(&noisy, &[]);
        assert_eq!(a["metrics_digest"], b["metrics_digest"]);
        assert!(diff(&a, &b, 0.0).is_empty(), "{:?}", diff(&a, &b, 0.0));
    }

    #[test]
    fn diff_flags_changed_missing_and_added_metrics() {
        let old = build(
            &registry_with(&[("a.total", 100), ("b.gone", 5)], &[("g.level", 2)]),
            &[],
        );
        let new = build(
            &registry_with(&[("a.total", 90), ("c.new", 1)], &[("g.level", 2)]),
            &[],
        );
        let lines = diff(&old, &new, 0.0);
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("a.total") && l.contains("-10.0%")));
        assert!(lines.iter().any(|l| l.contains("b.gone") && l.contains("missing")));
        assert!(lines.iter().any(|l| l.contains("c.new") && l.contains("new in")));
    }

    #[test]
    fn tolerance_swallows_small_drift() {
        let old = build(&registry_with(&[("a.total", 1000)], &[]), &[]);
        let new = build(&registry_with(&[("a.total", 1005)], &[]), &[]);
        assert!(!diff(&old, &new, 0.0).is_empty());
        assert!(diff(&old, &new, 1.0).is_empty());
    }

    #[test]
    fn meta_fields_lead_the_manifest() {
        let m = build(
            &Registry::new(),
            &[("bin", Value::from("repro")), ("jobs", Value::from(4u64))],
        );
        let keys: Vec<&String> = m.as_object().unwrap().keys().collect();
        assert_eq!(
            keys,
            ["bin", "jobs", "metrics_digest", "snapshot"],
            "meta first, then digest, then snapshot"
        );
        assert_eq!(m["bin"].as_str(), Some("repro"));
    }

    #[test]
    fn trace_accounting_does_not_perturb_digest_or_diff() {
        let plain = registry_with(&[("crawler.polls", 7)], &[]);
        let traced = registry_with(
            &[
                ("crawler.polls", 7),
                ("trace.dropped.main", 512),
                ("trace.capped.main", 64),
                ("trace.blackbox.trips", 2),
            ],
            &[],
        );
        let a = build(&plain, &[]);
        let b = build(&traced, &[]);
        assert_eq!(a["metrics_digest"], b["metrics_digest"]);
        assert!(diff(&a, &b, 0.0).is_empty(), "{:?}", diff(&a, &b, 0.0));
    }

    #[test]
    fn incompatible_meta_blocks_cross_config_comparison() {
        let r = registry_with(&[("x", 1)], &[]);
        let a = build(
            &r,
            &[
                ("bin", Value::from("repro")),
                ("fault_profile", Value::from("clean")),
                ("jobs_effective", Value::from(1u64)),
            ],
        );
        let b = build(
            &r,
            &[
                ("bin", Value::from("repro")),
                ("fault_profile", Value::from("hostile")),
                ("jobs_effective", Value::from(4u64)),
            ],
        );
        let lines = incompatible(&a, &b);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("fault_profile")));
        assert!(lines.iter().any(|l| l.contains("jobs_effective")));
        assert!(incompatible(&a, &a).is_empty());
        // A manifest missing the key entirely (older format) stays
        // comparable.
        let legacy = build(&r, &[("bin", Value::from("repro"))]);
        assert!(incompatible(&a, &legacy).is_empty());
    }

    #[test]
    fn watch_verdict_tells_behind_from_overshoot() {
        let baseline = build(
            &registry_with(&[("a.total", 100), ("b.total", 50)], &[("g", 5)]),
            &[],
        );
        // Mid-run: a.total still climbing, b.total done, gauge matches.
        let midrun = build(
            &registry_with(&[("a.total", 40), ("b.total", 50)], &[("g", 5)]),
            &[],
        );
        let v = watch_verdict(&baseline, &midrun, 0.0);
        assert_eq!((v.matched, v.total, v.behind), (2, 3, 1));
        assert!(v.overshoots.is_empty(), "{:?}", v.overshoots);
        // Overshoot: a.total beyond baseline plus a metric the baseline
        // never recorded — both hard failures.
        let hot = build(
            &registry_with(&[("a.total", 130), ("b.total", 50), ("c.extra", 1)], &[("g", 5)]),
            &[],
        );
        let v = watch_verdict(&baseline, &hot, 0.0);
        assert_eq!(v.overshoots.len(), 2, "{:?}", v.overshoots);
    }

    #[test]
    fn bare_snapshots_diff_like_manifests() {
        let r1 = registry_with(&[("x", 1)], &[]);
        let r2 = registry_with(&[("x", 2)], &[]);
        let lines = diff(&r1.snapshot(), &r2.snapshot(), 0.0);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("counter x: 1 -> 2"));
    }
}
