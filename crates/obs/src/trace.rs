//! A low-overhead flight recorder: per-thread bounded ring buffers of
//! compact events, drained at run end into Chrome trace event format
//! JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! ## The two contracts
//!
//! * **Off = one relaxed atomic load per event site.** The recorder is
//!   always compiled in but runtime-gated by [`enabled`], which in the
//!   steady state is a single `Relaxed` load of an `AtomicU8` plus a
//!   compare. No timestamp is taken, no lock touched, no allocation
//!   made unless the recorder is on. `bench_hotpath` measures this as
//!   `trace_overhead_pct`.
//! * **On must not move a single report byte.** Events go *only* into
//!   the per-thread rings here; the recorder never creates or bumps a
//!   [`crate::Registry`] metric, and the drained output goes to a trace
//!   file (`--trace out.json`) or stderr, never stdout. Golden-report
//!   fixtures enforce trace-on ≡ trace-off byte-for-byte.
//!
//! ## Event model
//!
//! An [`Event`] is 24 bytes: an interned [`Sym`] name, a nanosecond
//! timestamp relative to the process observability epoch, a `u64`
//! payload, and a kind. Span timings are recorded as *complete* events
//! at span drop (Chrome `"X"`, start + duration in one record) rather
//! than begin/end pairs, so a ring that wraps can never hold an
//! unbalanced pair. Each thread that records registers itself (with its
//! thread name — `btpub-par` workers are named `btpub-par/<pool>/<w>`,
//! which is what gives the trace its worker lanes) and owns a bounded
//! ring: when full, new events overwrite the oldest and a drop counter
//! accounts for them — exactly the flight-recorder trade-off.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde_json::{Map, Value};

/// Per-thread ring capacity in events (~384 KiB of events per thread at
/// the 24-byte event size, and only for threads that actually record).
pub const RING_CAPACITY: usize = 16 * 1024;

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);
static ENV_INIT: OnceLock<()> = OnceLock::new();
static ENV_PATH: Mutex<Option<String>> = Mutex::new(None);

/// Whether the recorder is on. In the steady state this is one relaxed
/// atomic load plus a compare — the entire cost of a disabled event
/// site. The first call consults `BTPUB_TRACE` (see [`init_from_env`]).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

/// Turns the recorder on or off explicitly (the `--trace` flag, tests).
/// Takes precedence over `BTPUB_TRACE` from then on.
pub fn set_enabled(on: bool) {
    // Mark env as consulted so a later enabled() cannot flip the state
    // back from the environment.
    ENV_INIT.get_or_init(|| ());
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// The output path carried by `BTPUB_TRACE` when it was set to a path
/// (rather than a plain on/off token), e.g. `BTPUB_TRACE=out.json`.
pub fn env_path() -> Option<String> {
    enabled(); // ensure the env has been parsed
    ENV_PATH.lock().expect("trace path lock").clone()
}

/// Cold path of [`enabled`]: parses `BTPUB_TRACE` exactly once.
///
/// Accepted values: `1`/`on`/`true`/`yes` (on), `0`/`off`/`false`/`no`
/// or unset (off), or an output path — anything containing `/` or
/// ending in `.json` — which turns the recorder on and is retrievable
/// via [`env_path`]. Anything else earns a one-time stderr warning
/// naming the bad value and the accepted set, and leaves the recorder
/// off (mirroring the `BTPUB_LOG` treatment).
#[cold]
fn init_from_env() -> bool {
    ENV_INIT.get_or_init(|| {
        let on = match std::env::var("BTPUB_TRACE") {
            Err(_) => false,
            Ok(raw) => {
                let v = raw.trim().to_ascii_lowercase();
                match v.as_str() {
                    "" | "0" | "off" | "false" | "no" => false,
                    "1" | "on" | "true" | "yes" => true,
                    _ if raw.contains('/') || v.ends_with(".json") => {
                        *ENV_PATH.lock().expect("trace path lock") = Some(raw.trim().to_string());
                        true
                    }
                    _ => {
                        eprintln!(
                            "btpub-obs: unrecognized BTPUB_TRACE value {raw:?} \
                             (accepted: 1|on|true, 0|off|false, or an output path \
                             like out.json); tracing stays off"
                        );
                        false
                    }
                }
            }
        };
        STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    });
    STATE.load(Ordering::Relaxed) == ON
}

/// Nanoseconds since the process observability epoch (the same clock
/// the log-line prefix uses).
#[inline]
pub fn now_ns() -> u64 {
    crate::registry::start_instant().elapsed().as_nanos() as u64
}

/// An interned event name: 4 bytes in the event, resolved back to the
/// string at drain time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

#[derive(Default)]
struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

static INTERNER: Mutex<Option<Interner>> = Mutex::new(None);

/// Interns `name`, returning its [`Sym`]. One hash lookup under a
/// mutex — hot sites cache the result per call site (see
/// [`trace_instant!`](crate::trace_instant)).
pub fn sym(name: &str) -> Sym {
    let mut guard = INTERNER.lock().expect("trace interner lock");
    let interner = guard.get_or_insert_with(Interner::default);
    if let Some(&id) = interner.index.get(name) {
        return Sym(id);
    }
    let id = u32::try_from(interner.names.len()).expect("trace symbol space exhausted");
    interner.names.push(name.to_string());
    interner.index.insert(name.to_string(), id);
    Sym(id)
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span: `t_ns` is the start, `payload` the duration in ns
    /// (Chrome `"X"`).
    Complete,
    /// A point event — fault injection, breaker transition, blacklist
    /// strike, torrent birth/identify/lose, warn+ log (Chrome `"i"`).
    Instant,
    /// A counter-track sample: `payload` is the value (Chrome `"C"`).
    Counter,
}

/// One compact flight-recorder event (24 bytes).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Nanoseconds since the observability epoch (span start for
    /// [`EventKind::Complete`]).
    pub t_ns: u64,
    /// Duration (`Complete`), argument (`Instant`) or value (`Counter`).
    pub payload: u64,
    /// Interned name.
    pub sym: Sym,
    /// Event kind.
    pub kind: EventKind,
}

/// A bounded event ring: grows lazily up to its capacity, then wraps,
/// overwriting the oldest event and counting the overwrite.
#[derive(Debug)]
pub struct RingBuf {
    buf: Vec<Event>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl RingBuf {
    /// An empty ring that will hold at most `capacity` events. No
    /// memory is allocated until the first push.
    pub fn with_capacity(capacity: usize) -> Self {
        RingBuf {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest (and counting the drop)
    /// once the ring is full.
    pub fn push(&mut self, e: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns all held events, oldest first, resetting the
    /// drop count.
    pub fn drain_ordered(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf = Vec::new();
        self.head = 0;
        self.dropped = 0;
        out
    }
}

struct ThreadBuf {
    tid: u32,
    name: String,
    ring: Mutex<RingBuf>,
}

static THREADS: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

fn register_current_thread() -> Arc<ThreadBuf> {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let buf = Arc::new(ThreadBuf {
        tid,
        name,
        ring: Mutex::new(RingBuf::with_capacity(RING_CAPACITY)),
    });
    THREADS
        .lock()
        .expect("trace threads lock")
        .push(Arc::clone(&buf));
    buf
}

fn push_event(e: Event) {
    // try_with: a span dropping during thread teardown must lose its
    // event, not panic.
    let _ = LOCAL.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(register_current_thread);
        buf.ring.lock().expect("trace ring lock").push(e);
    });
}

/// Records an event timestamped now. No-op (one relaxed load) when the
/// recorder is off.
#[inline]
pub fn record(sym: Sym, kind: EventKind, payload: u64) {
    if !enabled() {
        return;
    }
    push_event(Event {
        t_ns: now_ns(),
        payload,
        sym,
        kind,
    });
}

/// [`record`] with the name interned on the spot. For sites where a
/// per-call-site cached [`Sym`] is wrong (generic functions share one
/// `static` across monomorphizations) or not worth it (rare events).
pub fn record_named(name: &str, kind: EventKind, payload: u64) {
    if !enabled() {
        return;
    }
    record(sym(name), kind, payload);
}

/// Records a complete span event: `start_ns` relative to the epoch plus
/// its duration. No-op (one relaxed load) when off.
#[inline]
pub fn record_complete(sym: Sym, start_ns: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    push_event(Event {
        t_ns: start_ns,
        payload: dur_ns,
        sym,
        kind: EventKind::Complete,
    });
}

/// One thread's drained trace.
#[derive(Debug)]
pub struct ThreadTrace {
    /// Recorder-assigned lane id (registration order).
    pub tid: u32,
    /// OS thread name at registration (`btpub-par/<pool>/<w>` for pool
    /// workers — the Perfetto lane label).
    pub name: String,
    /// Events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring wrap-around on this thread.
    pub dropped: u64,
}

/// Everything the recorder held, drained: per-thread event lists (rings
/// emptied, sorted by lane id) plus the symbol table resolving
/// [`Sym`]s.
#[derive(Debug)]
pub struct TraceSnapshot {
    /// Per-thread traces, sorted by `tid`.
    pub threads: Vec<ThreadTrace>,
    /// `symbols[sym.0]` is the event name.
    pub symbols: Vec<String>,
}

impl TraceSnapshot {
    /// Resolves a [`Sym`] against this snapshot's symbol table.
    pub fn name(&self, s: Sym) -> &str {
        self.symbols
            .get(s.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Total events across all threads.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }
}

/// Drains every thread's ring into a [`TraceSnapshot`]. Threads stay
/// registered (they keep recording into now-empty rings if the recorder
/// is still on).
pub fn drain() -> TraceSnapshot {
    let threads = THREADS.lock().expect("trace threads lock");
    let mut out = Vec::new();
    for t in threads.iter() {
        let mut ring = t.ring.lock().expect("trace ring lock");
        let dropped = ring.dropped();
        let events = ring.drain_ordered();
        if events.is_empty() && dropped == 0 {
            continue;
        }
        out.push(ThreadTrace {
            tid: t.tid,
            name: t.name.clone(),
            events,
            dropped,
        });
    }
    drop(threads);
    out.sort_by_key(|t| t.tid);
    let symbols = INTERNER
        .lock()
        .expect("trace interner lock")
        .as_ref()
        .map(|i| i.names.clone())
        .unwrap_or_default();
    TraceSnapshot {
        threads: out,
        symbols,
    }
}

fn obj(pairs: &[(&str, Value)]) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(*k, v.clone());
    }
    Value::Object(m)
}

fn micros(ns: u64) -> Value {
    Value::from(ns as f64 / 1000.0)
}

/// Renders a snapshot as Chrome trace event format JSON
/// (`{"traceEvents": [...]}`): an `"M"` thread-name metadata record per
/// lane, `"X"` complete events for spans, `"i"` instants (thread scope)
/// for point events, and `"C"` counter samples. Timestamps are
/// microseconds since the observability epoch.
pub fn chrome_trace(snap: &TraceSnapshot) -> Value {
    let mut events = Vec::new();
    for t in &snap.threads {
        let tid = Value::from(t.tid);
        events.push(obj(&[
            ("ph", Value::from("M")),
            ("name", Value::from("thread_name")),
            ("pid", Value::from(1u64)),
            ("tid", tid.clone()),
            ("args", obj(&[("name", Value::from(t.name.as_str()))])),
        ]));
        for e in &t.events {
            let name = Value::from(snap.name(e.sym));
            events.push(match e.kind {
                EventKind::Complete => obj(&[
                    ("ph", Value::from("X")),
                    ("name", name),
                    ("cat", Value::from("span")),
                    ("pid", Value::from(1u64)),
                    ("tid", tid.clone()),
                    ("ts", micros(e.t_ns)),
                    ("dur", micros(e.payload)),
                ]),
                EventKind::Instant => obj(&[
                    ("ph", Value::from("i")),
                    ("name", name),
                    ("cat", Value::from("event")),
                    ("pid", Value::from(1u64)),
                    ("tid", tid.clone()),
                    ("ts", micros(e.t_ns)),
                    ("s", Value::from("t")),
                    ("args", obj(&[("v", Value::from(e.payload))])),
                ]),
                EventKind::Counter => obj(&[
                    ("ph", Value::from("C")),
                    ("name", name),
                    ("pid", Value::from(1u64)),
                    ("tid", tid.clone()),
                    ("ts", micros(e.t_ns)),
                    ("args", obj(&[("value", Value::from(e.payload))])),
                ]),
            });
        }
        if t.dropped > 0 {
            let last_ts = t.events.last().map(|e| e.t_ns).unwrap_or(0);
            events.push(obj(&[
                ("ph", Value::from("i")),
                ("name", Value::from("trace.dropped")),
                ("cat", Value::from("trace")),
                ("pid", Value::from(1u64)),
                ("tid", tid.clone()),
                ("ts", micros(last_ts)),
                ("s", Value::from("t")),
                ("args", obj(&[("count", Value::from(t.dropped))])),
            ]));
        }
    }
    obj(&[
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::from("ms")),
    ])
}

/// Drains the recorder and writes Chrome trace JSON to `path`,
/// returning the number of non-metadata events written.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<usize> {
    let snap = drain();
    let count = snap.event_count();
    let json = serde_json::to_string(&chrome_trace(&snap))
        .map_err(|e| std::io::Error::other(format!("trace serialization failed: {e}")))?;
    std::fs::write(path, json)?;
    Ok(count)
}

/// Records an instant event when the recorder is on; exactly one
/// relaxed atomic load when it is off. The name is interned once per
/// call site — do **not** use inside generic functions (the cached
/// `static` would be shared across monomorphizations; use
/// [`trace::record_named`](crate::trace::record_named) there). The
/// payload expression is only evaluated when the recorder is on and
/// must be `u64`.
#[macro_export]
macro_rules! trace_instant {
    ($name:expr, $payload:expr) => {
        if $crate::trace::enabled() {
            static SYM: ::std::sync::OnceLock<$crate::trace::Sym> = ::std::sync::OnceLock::new();
            $crate::trace::record(
                *SYM.get_or_init(|| $crate::trace::sym($name)),
                $crate::trace::EventKind::Instant,
                $payload,
            );
        }
    };
    ($name:expr) => {
        $crate::trace_instant!($name, 0u64)
    };
}

/// Records a counter-track sample (Chrome `"C"` event) when the
/// recorder is on; one relaxed atomic load when off. Same caveats as
/// [`trace_instant!`](crate::trace_instant).
#[macro_export]
macro_rules! trace_count {
    ($name:expr, $value:expr) => {
        if $crate::trace::enabled() {
            static SYM: ::std::sync::OnceLock<$crate::trace::Sym> = ::std::sync::OnceLock::new();
            $crate::trace::record(
                *SYM.get_or_init(|| $crate::trace::sym($name)),
                $crate::trace::EventKind::Counter,
                $value,
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(sym: Sym, payload: u64) -> Event {
        Event {
            t_ns: payload,
            payload,
            sym,
            kind: EventKind::Instant,
        }
    }

    #[test]
    fn ring_is_lazy_and_bounded() {
        let ring = RingBuf::with_capacity(1024);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_wraps_overwriting_oldest_with_drop_accounting() {
        let s = sym("test.ring.wrap");
        let mut ring = RingBuf::with_capacity(4);
        for i in 0..10u64 {
            ring.push(ev(s, i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let drained: Vec<u64> = ring.drain_ordered().iter().map(|e| e.payload).collect();
        assert_eq!(drained, vec![6, 7, 8, 9], "oldest events were overwritten");
        assert_eq!(ring.dropped(), 0, "drain resets drop accounting");
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_under_capacity_keeps_everything_in_order() {
        let s = sym("test.ring.order");
        let mut ring = RingBuf::with_capacity(8);
        for i in 0..5u64 {
            ring.push(ev(s, i));
        }
        let drained: Vec<u64> = ring.drain_ordered().iter().map(|e| e.payload).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn interner_returns_stable_symbols() {
        let a = sym("test.intern.a");
        let b = sym("test.intern.b");
        assert_ne!(a, b);
        assert_eq!(a, sym("test.intern.a"));
    }

    // One test function on purpose: the enable gate, the thread
    // registry and the interner are process-global, so the end-to-end
    // assertions must not race concurrently-scheduled #[test]s toggling
    // the same state.
    #[test]
    fn global_recorder_end_to_end() {
        // Off: event sites are inert.
        set_enabled(false);
        record_named("test.global.off", EventKind::Instant, 1);
        let snap = drain();
        assert!(
            !snap.symbols.iter().any(|s| s == "test.global.off"),
            "a disabled recorder must not intern or store events"
        );

        // On: events from several threads land in per-thread lanes,
        // chronologically ordered within each lane.
        set_enabled(true);
        trace_instant!("test.global.main", 7u64);
        trace_count!("test.global.gauge", 42u64);
        record_complete(sym("test.global.span"), 10, 25);
        let handles: Vec<_> = (0..2)
            .map(|w| {
                std::thread::Builder::new()
                    .name(format!("test-lane/{w}"))
                    .spawn(move || {
                        for i in 0..3u64 {
                            record_named("test.global.worker", EventKind::Instant, i);
                        }
                    })
                    .expect("spawn")
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }
        set_enabled(false);

        let snap = drain();
        let lanes: Vec<&ThreadTrace> = snap
            .threads
            .iter()
            .filter(|t| t.name.starts_with("test-lane/"))
            .collect();
        assert_eq!(lanes.len(), 2, "each recording thread gets its own lane");
        for lane in &lanes {
            let ours: Vec<&Event> = lane
                .events
                .iter()
                .filter(|e| snap.name(e.sym) == "test.global.worker")
                .collect();
            assert_eq!(ours.len(), 3);
            assert!(
                ours.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
                "per-thread drain order is chronological"
            );
            assert_eq!(
                ours.iter().map(|e| e.payload).collect::<Vec<_>>(),
                vec![0, 1, 2]
            );
        }
        let main_lane = snap
            .threads
            .iter()
            .find(|t| {
                t.events
                    .iter()
                    .any(|e| snap.name(e.sym) == "test.global.main")
            })
            .expect("main thread recorded");
        assert!(main_lane
            .events
            .iter()
            .any(|e| e.kind == EventKind::Counter && e.payload == 42));
        assert!(main_lane
            .events
            .iter()
            .any(|e| e.kind == EventKind::Complete && e.t_ns == 10 && e.payload == 25));

        // Chrome export: metadata per lane, X/i/C events present.
        let json = chrome_trace(&snap);
        let events = json["traceEvents"].as_array().expect("traceEvents array");
        let phases: Vec<&str> = events.iter().filter_map(|e| e["ph"].as_str()).collect();
        for ph in ["M", "X", "i", "C"] {
            assert!(phases.contains(&ph), "missing phase {ph:?} in chrome trace");
        }
        let lane_names: Vec<&str> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("M"))
            .filter_map(|e| e["args"]["name"].as_str())
            .collect();
        assert!(lane_names.iter().any(|n| n.starts_with("test-lane/")));

        // Drained means drained.
        assert_eq!(drain().event_count(), 0);
    }
}
