//! A production-cheap flight recorder: per-thread bounded ring buffers
//! of compact events, drained at run end (or on demand) into Chrome
//! trace event format JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! ## The two contracts
//!
//! * **Off = one relaxed atomic load per event site.** The recorder is
//!   always compiled in but runtime-gated by [`enabled`], which in the
//!   steady state is a single `Relaxed` load of an `AtomicU8` plus a
//!   compare. No timestamp is taken, no lock touched, no allocation
//!   made unless the recorder is on. `bench_hotpath` measures this as
//!   `trace_overhead_pct`.
//! * **On must not move a single report byte.** Events go *only* into
//!   the per-thread rings here; while recording, the recorder never
//!   creates or bumps a [`crate::Registry`] metric, and the drained
//!   output goes to a trace file (`--trace out.json`) or stderr, never
//!   stdout. (Drop accounting *is* surfaced as `trace.*` counters — but
//!   only at [`drain`] time, after the run's report is rendered, and
//!   the manifest digest excludes the `trace.` prefix.) Golden-report
//!   fixtures enforce trace-on ≡ trace-off byte-for-byte, sampled or
//!   not.
//!
//! ## Why armed is cheap
//!
//! The armed hot path used to cost a `clock_gettime` plus a mutex
//! round-trip per event (~32% on the announce lap). Three changes take
//! it to low single digits:
//!
//! * **Staged, batched writes.** Each thread stages events into a plain
//!   `Vec` it alone touches (an `UnsafeCell` owned by the registering
//!   thread) and flushes to its shared ring every [`STAGE_FLUSH`]
//!   events, so the ring mutex is paid once per batch, not per event.
//!   A thread-local destructor flushes the tail at thread exit.
//! * **Coarse batched clock.** Instants reuse a cached timestamp that
//!   is re-read from the monotonic clock only every [`CLOCK_REFRESH`]
//!   events (and at the start of each batch); span/complete events
//!   carry timestamps the caller already paid for (`Instant` arithmetic
//!   via [`instant_ns`]) and advance the cached clock for free.
//! * **Packed 16-byte ring slots.** Rings store events as a `u32`
//!   microsecond delta against a per-ring epoch (rebased if a ring ever
//!   spans more than ~71 minutes), a packed `sym`+kind word and the
//!   `u64` payload — 16 bytes instead of 24, decoded only at drain.
//!
//! ## Sampling and throttling
//!
//! `BTPUB_TRACE_SAMPLE` (or [`set_sample_spec`]) installs per-site
//! 1-in-N sampling and a per-thread events/sec cap. Draws are *pure
//! functions* of `(seed, site, per-site index)` via the same
//! [`mix`] construction the fault planner uses — no RNG state, so a
//! fixed `(seed, spec)` keeps the same global event set at any job
//! count, and sampling can never perturb the simulation it observes.
//!
//! ## The black box
//!
//! [`trip`] dumps the last [`BLACKBOX_EVENTS`] events per lane to a
//! side file when something goes wrong (a fault fires, a breaker
//! opens — wired from `btpub-faults`), bounded per process and
//! deduplicated per reason. [`install_panic_hook`] flushes the full
//! rings to the `--trace` path on panic so a crashing armed run still
//! yields a loadable trace.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use serde_json::{Map, Value};

/// Per-thread ring capacity in events (~256 KiB per thread at the
/// packed 16-byte slot size, and only for threads that actually
/// record).
pub const RING_CAPACITY: usize = 16 * 1024;

/// Staged events per thread before a batched flush into the shared
/// ring: the ring mutex is paid once per this many events. 4 KiB of
/// packed slots — L1-resident, and the most a drain can miss from
/// another thread's unflushed stage.
const STAGE_FLUSH: usize = 256;

/// Instant-path events between forced reads of the monotonic clock.
/// Complete events advance the cached clock for free, so spans keep it
/// honest even between refreshes.
const CLOCK_REFRESH: u32 = 32;

/// Widest timestamp range one ring epoch can represent
/// (`u32::MAX` microseconds ≈ 71.6 minutes); crossing it rebases the
/// ring, dropping events older than the window.
const RING_WINDOW_NS: u64 = (u32::MAX as u64) * 1000;

/// Events per lane included in a black-box [`trip`] dump.
const BLACKBOX_EVENTS: usize = 2048;

/// Black-box dumps per process — a fault storm must not turn the trip
/// path into an I/O storm.
const BLACKBOX_MAX: u32 = 16;

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);
static ENV_INIT: OnceLock<()> = OnceLock::new();
static ENV_PATH: Mutex<Option<String>> = Mutex::new(None);

/// Recorder on — events are admitted.
const HOT_ON: u32 = 1;
/// A sampling table is installed — the hot path must consult [`keep`].
const HOT_SAMPLED: u32 = 2;
/// A `cap:` throttle is set — the hot path must consult [`cap_admits`].
const HOT_CAPPED: u32 = 4;
/// `BTPUB_TRACE` has been consulted (distinguishes "off" from "not
/// yet initialised", so the off path never re-checks the environment).
const HOT_INIT: u32 = 8;

/// The fused hot-path gate: one relaxed load tells a record site
/// everything it needs — off, plain-armed (the common production
/// state: no per-event sampling or throttle work at all), or armed
/// with sampling/cap features to consult. Derived state, recomputed by
/// [`recompute_hot`] whenever [`STATE`], [`SAMPLE_TABLE`] or
/// [`RATE_CAP`] change; a record racing a reconfiguration may use the
/// old gate for a few events, which is fine — specs change a handful
/// of times per process, never mid-measurement.
static HOT: AtomicU32 = AtomicU32::new(0);

fn recompute_hot() {
    let hot = match STATE.load(Ordering::Relaxed) {
        ON => {
            let mut h = HOT_INIT | HOT_ON;
            // While any circuit breaker is open (see push_full_rate),
            // the sampling and throttle bits stay out of the gate: the
            // spec remains installed but record sites skip it entirely,
            // so an incident is traced at full rate and closing the
            // last breaker restores the configured spec atomically.
            if FULL_RATE_DEPTH.load(Ordering::Relaxed) == 0 {
                if !SAMPLE_TABLE.load(Ordering::Acquire).is_null() {
                    h |= HOT_SAMPLED;
                }
                if RATE_CAP.load(Ordering::Relaxed) != 0 {
                    h |= HOT_CAPPED;
                }
            }
            h
        }
        OFF => HOT_INIT,
        _ => 0,
    };
    HOT.store(hot, Ordering::Release);
}

/// Whether the recorder is on. In the steady state this is one relaxed
/// atomic load plus a compare — the entire cost of a disabled event
/// site. The first call consults `BTPUB_TRACE` (see [`init_from_env`]).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

/// Turns the recorder on or off explicitly (the `--trace` flag, tests).
/// Takes precedence over `BTPUB_TRACE` from then on. Also consults the
/// sampling/snapshot env knobs so a `--trace` run picks up
/// `BTPUB_TRACE_SAMPLE` / `BTPUB_TRACE_SNAPSHOT` without having to set
/// `BTPUB_TRACE` itself.
pub fn set_enabled(on: bool) {
    // Mark env as consulted so a later enabled() cannot flip the state
    // back from the environment.
    ENV_INIT.get_or_init(|| ());
    ensure_sample_env();
    ensure_snapshot_env();
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    recompute_hot();
}

/// The output path carried by `BTPUB_TRACE` when it was set to a path
/// (rather than a plain on/off token), e.g. `BTPUB_TRACE=out.json`.
pub fn env_path() -> Option<String> {
    enabled(); // ensure the env has been parsed
    ENV_PATH.lock().expect("trace path lock").clone()
}

/// Cold path of [`enabled`]: parses `BTPUB_TRACE` exactly once.
///
/// Accepted values: `1`/`on`/`true`/`yes` (on), `0`/`off`/`false`/`no`
/// or unset (off), or an output path — anything containing `/` or
/// ending in `.json` — which turns the recorder on and is retrievable
/// via [`env_path`]. Anything else earns a one-time stderr warning
/// naming the bad value and the accepted set, and leaves the recorder
/// off (mirroring the `BTPUB_LOG` treatment).
#[cold]
fn init_from_env() -> bool {
    ENV_INIT.get_or_init(|| {
        let on = match std::env::var("BTPUB_TRACE") {
            Err(_) => false,
            Ok(raw) => {
                let v = raw.trim().to_ascii_lowercase();
                match v.as_str() {
                    "" | "0" | "off" | "false" | "no" => false,
                    "1" | "on" | "true" | "yes" => true,
                    _ if raw.contains('/') || v.ends_with(".json") => {
                        *ENV_PATH.lock().expect("trace path lock") = Some(raw.trim().to_string());
                        true
                    }
                    _ => {
                        eprintln!(
                            "btpub-obs: unrecognized BTPUB_TRACE value {raw:?} \
                             (accepted: 1|on|true, 0|off|false, or an output path \
                             like out.json); tracing stays off"
                        );
                        false
                    }
                }
            }
        };
        if on {
            ensure_sample_env();
            ensure_snapshot_env();
        }
        STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
        recompute_hot();
    });
    STATE.load(Ordering::Relaxed) == ON
}

/// Nanoseconds since the process observability epoch (the same clock
/// the log-line prefix uses).
#[inline]
pub fn now_ns() -> u64 {
    dur_ns(crate::registry::start_instant().elapsed())
}

/// `Duration` → u64 nanoseconds without the u128 round-trip of
/// `as_nanos` — this runs inside every armed event site.
#[inline]
fn dur_ns(d: std::time::Duration) -> u64 {
    d.as_secs()
        .wrapping_mul(1_000_000_000)
        .wrapping_add(u64::from(d.subsec_nanos()))
}

/// Nanoseconds from the observability epoch to `at`, for hot sites
/// that already hold an `Instant` and must not pay a second clock
/// read: pure `Instant` arithmetic, no syscall.
#[inline]
pub fn instant_ns(at: std::time::Instant) -> u64 {
    at.checked_duration_since(crate::registry::start_instant())
        .map_or(0, dur_ns)
}

/// An interned event name: 4 bytes in the event, resolved back to the
/// string at drain time. Ids stay below 2^30 so a packed ring slot can
/// carry the kind in the top bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

#[derive(Default)]
struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

static INTERNER: Mutex<Option<Interner>> = Mutex::new(None);

/// Interns `name`, returning its [`Sym`]. One hash lookup under a
/// mutex — hot sites cache the result per call site (see
/// [`trace_instant!`](crate::trace_instant)).
pub fn sym(name: &str) -> Sym {
    let mut guard = INTERNER.lock().expect("trace interner lock");
    let interner = guard.get_or_insert_with(Interner::default);
    if let Some(&id) = interner.index.get(name) {
        return Sym(id);
    }
    let id = u32::try_from(interner.names.len()).expect("trace symbol space exhausted");
    assert!(id < SYM_LIMIT, "trace symbol space exhausted");
    interner.names.push(name.to_string());
    interner.index.insert(name.to_string(), id);
    Sym(id)
}

fn current_symbols() -> Vec<String> {
    INTERNER
        .lock()
        .expect("trace interner lock")
        .as_ref()
        .map(|i| i.names.clone())
        .unwrap_or_default()
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span: `t_ns` is the start, `payload` the duration in ns
    /// (Chrome `"X"`).
    Complete,
    /// A point event — fault injection, breaker transition, blacklist
    /// strike, torrent birth/identify/lose, warn+ log (Chrome `"i"`).
    Instant,
    /// A counter-track sample: `payload` is the value (Chrome `"C"`).
    Counter,
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Nanoseconds since the observability epoch (span start for
    /// [`EventKind::Complete`]). Ring storage quantizes this to whole
    /// microseconds — Chrome trace resolution anyway.
    pub t_ns: u64,
    /// Duration (`Complete`), argument (`Instant`) or value (`Counter`).
    pub payload: u64,
    /// Interned name.
    pub sym: Sym,
    /// Event kind.
    pub kind: EventKind,
}

const SYM_LIMIT: u32 = 1 << 30;

/// The 16-byte stored form: a µs delta against the ring's epoch, the
/// symbol with the kind packed into the top two bits, and the payload.
#[derive(Debug, Clone, Copy)]
struct Packed {
    dt_us: u32,
    sym_kind: u32,
    payload: u64,
}

fn pack_sym_kind(sym: Sym, kind: EventKind) -> u32 {
    debug_assert!(sym.0 < SYM_LIMIT);
    sym.0
        | match kind {
            EventKind::Complete => 0,
            EventKind::Instant => 1 << 30,
            EventKind::Counter => 2 << 30,
        }
}

fn unpack_kind(sym_kind: u32) -> EventKind {
    match sym_kind >> 30 {
        0 => EventKind::Complete,
        1 => EventKind::Instant,
        _ => EventKind::Counter,
    }
}

/// A bounded event ring: grows lazily up to its capacity, then wraps,
/// overwriting the oldest event and counting the overwrite. Events are
/// stored packed (16 bytes) against a per-ring epoch and decoded on
/// the way out.
#[derive(Debug)]
pub struct RingBuf {
    buf: Vec<Packed>,
    capacity: usize,
    head: usize,
    dropped: u64,
    capped: u64,
    base_ns: u64,
    has_base: bool,
}

impl RingBuf {
    /// An empty ring that will hold at most `capacity` events. No
    /// memory is allocated until the first push.
    pub fn with_capacity(capacity: usize) -> Self {
        RingBuf {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
            capped: 0,
            base_ns: 0,
            has_base: false,
        }
    }

    /// Appends an event, overwriting the oldest (and counting the drop)
    /// once the ring is full. The timestamp is stored as a µs delta
    /// against the ring epoch; an event more than ~71 minutes past the
    /// epoch rebases the ring (dropping anything older than the new
    /// window).
    pub fn push(&mut self, e: Event) {
        if !self.has_base {
            self.base_ns = e.t_ns;
            self.has_base = true;
        }
        let mut dt_us = e.t_ns.saturating_sub(self.base_ns) / 1000;
        if dt_us > u64::from(u32::MAX) {
            self.rebase(e.t_ns);
            dt_us = e.t_ns.saturating_sub(self.base_ns) / 1000;
        }
        self.push_packed(Packed {
            dt_us: dt_us as u32,
            sym_kind: pack_sym_kind(e.sym, e.kind),
            payload: e.payload,
        });
    }

    #[inline]
    fn push_packed(&mut self, p: Packed) {
        if self.buf.len() < self.capacity {
            self.buf.push(p);
        } else {
            self.buf[self.head] = p;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Bulk intake of a staged batch already packed against
    /// `batch_base_ns` (its first event's timestamp): per event this is
    /// one shift-add plus a store, where [`push`] would re-derive the
    /// delta from nanoseconds. A batch epoch behind the ring's clamps
    /// to it (sub-microsecond reordering noise between complete-event
    /// starts); an event past the u32-µs window rebases the ring, as
    /// in [`push`].
    fn absorb(&mut self, batch_base_ns: u64, events: &[Packed]) {
        if events.is_empty() {
            return;
        }
        if !self.has_base {
            self.base_ns = batch_base_ns;
            self.has_base = true;
        }
        let mut shift_us = batch_base_ns.saturating_sub(self.base_ns) / 1000;
        for p in events {
            let mut dt = shift_us + u64::from(p.dt_us);
            if dt > u64::from(u32::MAX) {
                self.rebase(batch_base_ns + u64::from(p.dt_us) * 1000);
                shift_us = batch_base_ns.saturating_sub(self.base_ns) / 1000;
                dt = (shift_us + u64::from(p.dt_us)).min(u64::from(u32::MAX));
            }
            self.push_packed(Packed {
                dt_us: dt as u32,
                sym_kind: p.sym_kind,
                payload: p.payload,
            });
        }
    }

    /// Moves the epoch forward so `t_ns` fits in the u32-µs window,
    /// dropping (and counting) events that fall out of it.
    fn rebase(&mut self, t_ns: u64) {
        let events = self.decode_ordered();
        let min_keep = t_ns.saturating_sub(RING_WINDOW_NS);
        self.base_ns = min_keep;
        self.buf.clear();
        self.head = 0;
        let mut kept = 0usize;
        for e in &events {
            if e.t_ns < min_keep {
                continue;
            }
            self.buf.push(Packed {
                dt_us: ((e.t_ns - min_keep) / 1000) as u32,
                sym_kind: pack_sym_kind(e.sym, e.kind),
                payload: e.payload,
            });
            kept += 1;
        }
        self.dropped += (events.len() - kept) as u64;
    }

    fn unpack(&self, p: Packed) -> Event {
        Event {
            t_ns: self.base_ns + u64::from(p.dt_us) * 1000,
            payload: p.payload,
            sym: Sym(p.sym_kind & (SYM_LIMIT - 1)),
            kind: unpack_kind(p.sym_kind),
        }
    }

    fn decode_ordered(&self) -> Vec<Event> {
        let split = self.head.min(self.buf.len());
        let (newer, older) = self.buf.split_at(split);
        older
            .iter()
            .chain(newer.iter())
            .map(|&p| self.unpack(p))
            .collect()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events rejected by the `cap:` rate throttle on this ring's
    /// thread.
    pub fn capped(&self) -> u64 {
        self.capped
    }

    /// The newest `n` events, oldest first, without draining.
    pub fn last(&self, n: usize) -> Vec<Event> {
        let mut events = self.decode_ordered();
        if events.len() > n {
            events.drain(..events.len() - n);
        }
        events
    }

    /// Removes and returns all held events, oldest first, resetting the
    /// epoch and the drop/cap accounting.
    pub fn drain_ordered(&mut self) -> Vec<Event> {
        let out = self.decode_ordered();
        self.buf = Vec::new();
        self.head = 0;
        self.dropped = 0;
        self.capped = 0;
        self.has_base = false;
        out
    }
}

/// The owner-thread staging area in front of a ring: a plain `Vec` of
/// already-packed events (against `base_ns`, the batch's first
/// timestamp) plus the coarse clock and rate-cap state. Only ever
/// touched by the thread that registered it. Packing at record time
/// makes the flush a bulk [`RingBuf::absorb`] — one rebase check per
/// event instead of a nanosecond round-trip — and halves the staged
/// write traffic.
struct Stage {
    buf: Vec<Packed>,
    base_ns: u64,
    coarse_ns: u64,
    refresh_left: u32,
    cap_sec: u64,
    cap_count: u32,
    capped: u64,
}

struct ThreadBuf {
    tid: u32,
    name: String,
    ring: Mutex<RingBuf>,
    stage: UnsafeCell<Stage>,
}

// SAFETY: `stage` is only ever accessed from the thread that registered
// this ThreadBuf (via the thread-local FAST pointer on the hot path and
// the thread-local FLUSH_ON_EXIT destructor at teardown); every
// cross-thread access goes through the `ring` mutex.
unsafe impl Sync for ThreadBuf {}

// ThreadBufs are Box::leak'ed: a thread can record right up to its last
// TLS destructor and drains can happen at any time, so lanes must be
// 'static. The cost is one small struct per recording thread for the
// process lifetime (ring Vecs are freed at drain; the stage Vec is at
// most STAGE_FLUSH events).
static THREADS: Mutex<Vec<&'static ThreadBuf>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    // Hot-path handle: a bare pointer in a Cell with no Drop glue, so
    // the per-event cost is one TLS load and a null check.
    static FAST: Cell<*const ThreadBuf> = const { Cell::new(std::ptr::null()) };
    // Cold registration slot whose destructor flushes staged events at
    // thread exit, so short-lived pool workers never strand a partial
    // batch.
    static FLUSH_ON_EXIT: RefCell<Option<LocalFlush>> = const { RefCell::new(None) };
}

struct LocalFlush(&'static ThreadBuf);

impl Drop for LocalFlush {
    fn drop(&mut self) {
        // SAFETY: destructor runs on the owning thread; see ThreadBuf.
        let stage = unsafe { &mut *self.0.stage.get() };
        flush_stage(self.0, stage);
    }
}

#[cold]
fn register_current_thread() -> *const ThreadBuf {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let buf: &'static ThreadBuf = Box::leak(Box::new(ThreadBuf {
        tid,
        name,
        ring: Mutex::new(RingBuf::with_capacity(RING_CAPACITY)),
        stage: UnsafeCell::new(Stage {
            buf: Vec::with_capacity(STAGE_FLUSH),
            base_ns: 0,
            coarse_ns: 0,
            refresh_left: 0,
            cap_sec: 0,
            cap_count: 0,
            capped: 0,
        }),
    }));
    THREADS.lock().expect("trace threads lock").push(buf);
    // If TLS is already tearing down the destructor slot is gone; the
    // thread still records, it just flushes only on explicit drains.
    let _ = FLUSH_ON_EXIT.try_with(|slot| *slot.borrow_mut() = Some(LocalFlush(buf)));
    buf as *const ThreadBuf
}

/// Runs `f` with this thread's buffer and staging area, registering
/// the thread on first use. Loses the event (rather than panicking)
/// during TLS teardown.
#[inline]
fn with_stage(f: impl FnOnce(&'static ThreadBuf, &mut Stage)) {
    let _ = FAST.try_with(|cell| {
        let mut p = cell.get();
        if p.is_null() {
            p = register_current_thread();
            cell.set(p);
        }
        // SAFETY: p points at a leaked 'static ThreadBuf whose stage
        // only this thread touches (see ThreadBuf).
        let tb = unsafe { &*p };
        let stage = unsafe { &mut *tb.stage.get() };
        f(tb, stage);
    });
}

fn flush_stage(tb: &ThreadBuf, stage: &mut Stage) {
    if stage.buf.is_empty() && stage.capped == 0 {
        return;
    }
    let mut ring = tb.ring.lock().expect("trace ring lock");
    ring.absorb(stage.base_ns, &stage.buf);
    stage.buf.clear();
    ring.capped += std::mem::take(&mut stage.capped);
}

/// Stages one packed event, starting a new batch epoch when the stage
/// is empty and flushing when it fills. The degenerate case of a batch
/// spanning more than the u32-µs window (71 minutes between flushes on
/// one thread) flushes early so the delta always fits.
#[inline]
fn stage_push(tb: &ThreadBuf, stage: &mut Stage, t_ns: u64, sym_kind: u32, payload: u64) {
    if stage.buf.is_empty() {
        stage.base_ns = t_ns;
    }
    let dt_us = t_ns.saturating_sub(stage.base_ns) / 1000;
    if dt_us > u64::from(u32::MAX) {
        flush_stage(tb, stage);
        stage.base_ns = t_ns;
        stage.buf.push(Packed {
            dt_us: 0,
            sym_kind,
            payload,
        });
        return;
    }
    stage.buf.push(Packed {
        dt_us: dt_us as u32,
        sym_kind,
        payload,
    });
    if stage.buf.len() >= STAGE_FLUSH {
        flush_stage(tb, stage);
    }
}

fn flush_current_thread() {
    with_stage(flush_stage);
}

/// The coarse timestamp for instant-path events: re-reads the real
/// clock only at batch starts and every [`CLOCK_REFRESH`] events.
#[inline]
fn stage_now(stage: &mut Stage) -> u64 {
    if stage.refresh_left == 0 || stage.buf.is_empty() {
        stage.coarse_ns = stage.coarse_ns.max(now_ns());
        stage.refresh_left = CLOCK_REFRESH;
    }
    stage.refresh_left -= 1;
    stage.coarse_ns
}

/// Applies the `cap:` per-thread events/sec throttle; a rejected event
/// is counted, not silently lost.
#[inline]
fn cap_admits(stage: &mut Stage, t_ns: u64) -> bool {
    let cap = RATE_CAP.load(Ordering::Relaxed);
    if cap == 0 {
        return true;
    }
    let sec = t_ns / 1_000_000_000;
    if sec != stage.cap_sec {
        stage.cap_sec = sec;
        stage.cap_count = 0;
    }
    if stage.cap_count >= cap {
        stage.capped += 1;
        return false;
    }
    stage.cap_count += 1;
    true
}

/// Records an event timestamped with the coarse batched clock. No-op
/// (one relaxed load) when the recorder is off.
#[inline]
pub fn record(sym: Sym, kind: EventKind, payload: u64) {
    let mut hot = HOT.load(Ordering::Relaxed);
    if hot & HOT_ON == 0 {
        if hot & HOT_INIT != 0 || !enabled() {
            return;
        }
        hot = HOT.load(Ordering::Relaxed);
    }
    if hot & HOT_SAMPLED != 0 && !keep(sym) {
        return;
    }
    with_stage(|tb, stage| {
        let t_ns = stage_now(stage);
        if hot & HOT_CAPPED != 0 && !cap_admits(stage, t_ns) {
            return;
        }
        stage_push(tb, stage, t_ns, pack_sym_kind(sym, kind), payload);
    });
}

/// [`record`] with the name interned on the spot. For sites where a
/// per-call-site cached [`Sym`] is wrong (generic functions share one
/// `static` across monomorphizations) or not worth it (rare events).
pub fn record_named(name: &str, kind: EventKind, payload: u64) {
    if !enabled() {
        return;
    }
    record(sym(name), kind, payload);
}

/// Records a complete span event: `start_ns` relative to the epoch
/// plus its duration — timestamps the caller derived from an `Instant`
/// it already held, so this path never reads the clock. The event's
/// end advances the thread's coarse clock for free. No-op (one relaxed
/// load) when off.
#[inline]
pub fn record_complete(sym: Sym, start_ns: u64, dur_ns: u64) {
    let mut hot = HOT.load(Ordering::Relaxed);
    if hot & HOT_ON == 0 {
        if hot & HOT_INIT != 0 || !enabled() {
            return;
        }
        hot = HOT.load(Ordering::Relaxed);
    }
    if hot & HOT_SAMPLED != 0 && !keep(sym) {
        return;
    }
    with_stage(|tb, stage| {
        let end_ns = start_ns.saturating_add(dur_ns);
        if end_ns > stage.coarse_ns {
            stage.coarse_ns = end_ns;
        }
        if hot & HOT_CAPPED != 0 && !cap_admits(stage, end_ns) {
            return;
        }
        stage_push(tb, stage, start_ns, pack_sym_kind(sym, EventKind::Complete), dur_ns);
    });
}

/// [`record_complete`] for sites that hold the span's start `Instant`:
/// the epoch conversion runs *after* the one-load gate, so a disarmed
/// site pays exactly one relaxed load and an armed site skips the
/// separate `enabled()` check it would otherwise need to make the
/// conversion conditional.
#[inline]
pub fn record_complete_at(sym: Sym, start: std::time::Instant, dur_ns: u64) {
    let mut hot = HOT.load(Ordering::Relaxed);
    if hot & HOT_ON == 0 {
        if hot & HOT_INIT != 0 || !enabled() {
            return;
        }
        hot = HOT.load(Ordering::Relaxed);
    }
    if hot & HOT_SAMPLED != 0 && !keep(sym) {
        return;
    }
    let start_ns = instant_ns(start);
    with_stage(|tb, stage| {
        let end_ns = start_ns.saturating_add(dur_ns);
        if end_ns > stage.coarse_ns {
            stage.coarse_ns = end_ns;
        }
        if hot & HOT_CAPPED != 0 && !cap_admits(stage, end_ns) {
            return;
        }
        stage_push(tb, stage, start_ns, pack_sym_kind(sym, EventKind::Complete), dur_ns);
    });
}

// ---------------------------------------------------------------------
// Deterministic sampling and throttling
// ---------------------------------------------------------------------

struct SampleSite {
    sym: Sym,
    stream_hash: u64,
    every: u32,
    counter: AtomicU64,
}

struct SampleTable {
    seed: u64,
    sites: Vec<SampleSite>,
    global: Option<SampleSite>,
}

static SAMPLE_TABLE: AtomicPtr<SampleTable> = AtomicPtr::new(std::ptr::null_mut());
static RATE_CAP: AtomicU32 = AtomicU32::new(0);
static SAMPLE_ENV: OnceLock<()> = OnceLock::new();

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn mix_hashed(seed: u64, stream_hash: u64, index: u64) -> u64 {
    let mut z = seed ^ stream_hash ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes `(seed, stream, index)` into a uniform `u64` — byte-for-byte
/// the same construction as `btpub_faults::mix` (FNV-1a over the
/// stream label, SplitMix64 finalisation mixing in the index), kept
/// local because `obs` sits *below* `faults` in the dependency graph.
/// Public so tests can predict exactly which draws a sampling spec
/// keeps.
pub fn mix(seed: u64, stream: &str, index: u64) -> u64 {
    mix_hashed(seed, fnv1a(stream.as_bytes()), index)
}

/// Whether the sampling table admits the next event for `sym`. With no
/// table installed (the default) this is one relaxed-acquire pointer
/// load.
#[inline]
fn keep(sym: Sym) -> bool {
    let p = SAMPLE_TABLE.load(Ordering::Acquire);
    if p.is_null() {
        return true;
    }
    // SAFETY: tables are leaked on swap (see apply_spec), so a loaded
    // pointer stays valid for the process lifetime.
    keep_sampled(unsafe { &*p }, sym)
}

fn keep_sampled(table: &SampleTable, sym: Sym) -> bool {
    for site in &table.sites {
        if site.sym == sym {
            return site_admits(table.seed, site);
        }
    }
    match &table.global {
        Some(g) => site_admits(table.seed, g),
        None => true,
    }
}

fn site_admits(seed: u64, site: &SampleSite) -> bool {
    if site.every <= 1 {
        return true;
    }
    // The i-th draw for a site is kept iff mix(seed, site, i) lands on
    // the residue — the kept *index set* is a pure function of
    // (seed, site, N), so the number of kept events is identical no
    // matter how threads interleave their fetch_adds.
    let index = site.counter.fetch_add(1, Ordering::Relaxed);
    mix_hashed(seed, site.stream_hash, index) % u64::from(site.every) == 0
}

struct ParsedSpec {
    table: Option<SampleTable>,
    cap: u32,
}

fn parse_every(token: &str, value: &str) -> Result<u32, String> {
    let n: u32 = value
        .parse()
        .map_err(|_| format!("sample rate in {token:?} is not a u32"))?;
    if n == 0 {
        return Err(format!("sample rate in {token:?} must be >= 1"));
    }
    Ok(n)
}

fn parse_sample_spec(spec: &str) -> Result<ParsedSpec, String> {
    let mut seed = 0u64;
    let mut cap = 0u32;
    let mut sites: Vec<(String, u32)> = Vec::new();
    let mut global: Option<u32> = None;
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let (name, value) = token.rsplit_once(':').ok_or_else(|| {
            format!("token {token:?} is not <site>:<1-in-N> (or seed:<u64>, cap:<per-sec>, *:<N>)")
        })?;
        let (name, value) = (name.trim(), value.trim());
        match name {
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| format!("seed {value:?} is not a u64"))?;
            }
            "cap" => {
                let n: u32 = value
                    .parse()
                    .map_err(|_| format!("cap {value:?} is not a u32"))?;
                if n == 0 {
                    return Err("cap must be >= 1 event/sec (omit it for uncapped)".to_string());
                }
                cap = n;
            }
            "*" => global = Some(parse_every(token, value)?),
            "" => return Err(format!("token {token:?} has an empty site name")),
            _ => sites.push((name.to_string(), parse_every(token, value)?)),
        }
    }
    let table = if sites.is_empty() && global.is_none() {
        None
    } else {
        Some(SampleTable {
            seed,
            sites: sites
                .into_iter()
                .map(|(name, every)| SampleSite {
                    sym: sym(&name),
                    stream_hash: fnv1a(name.as_bytes()),
                    every,
                    counter: AtomicU64::new(0),
                })
                .collect(),
            global: global.map(|every| SampleSite {
                // Never compared against a real Sym (those stay below
                // SYM_LIMIT); the global site matches by fallthrough.
                sym: Sym(u32::MAX),
                stream_hash: fnv1a(b"*"),
                every,
                counter: AtomicU64::new(0),
            }),
        })
    };
    Ok(ParsedSpec { table, cap })
}

fn apply_spec(spec: &str) -> Result<(), String> {
    let parsed = parse_sample_spec(spec)?;
    RATE_CAP.store(parsed.cap, Ordering::Relaxed);
    let ptr = parsed
        .table
        .map_or(std::ptr::null_mut(), |t| Box::into_raw(Box::new(t)));
    // The previous table is leaked on purpose: another thread may still
    // be mid-draw against it, and specs change a handful of times per
    // process at most.
    let _old = SAMPLE_TABLE.swap(ptr, Ordering::AcqRel);
    recompute_hot();
    Ok(())
}

/// Installs a sampling/throttle spec, replacing any previous one (the
/// programmatic twin of `BTPUB_TRACE_SAMPLE`; an explicit call wins
/// over the env).
///
/// Grammar, comma-separated: `<site>:<1-in-N>` samples a named site,
/// `*:<1-in-N>` samples every site without its own rule, `seed:<u64>`
/// seeds the draws, `cap:<N>` caps each thread at N events/sec
/// (rejections are counted as `capped`). The empty string clears
/// sampling and the cap. Per-site draw counters restart at zero, so a
/// fixed `(seed, spec)` pair keeps exactly the same event set on every
/// run.
pub fn set_sample_spec(spec: &str) -> Result<(), String> {
    SAMPLE_ENV.get_or_init(|| ());
    apply_spec(spec)
}

fn ensure_sample_env() {
    SAMPLE_ENV.get_or_init(|| {
        if let Ok(raw) = std::env::var("BTPUB_TRACE_SAMPLE") {
            if let Err(e) = apply_spec(&raw) {
                eprintln!(
                    "btpub-obs: ignoring BTPUB_TRACE_SAMPLE {raw:?}: {e} \
                     (grammar: <site>:<1-in-N>[,*:<N>][,seed:<u64>][,cap:<per-sec>])"
                );
            }
        }
    });
}

// ---------------------------------------------------------------------
// Breaker-driven adaptive sampling
// ---------------------------------------------------------------------

/// How many failure domains (circuit breakers) are currently open.
/// While non-zero, [`recompute_hot`] leaves `HOT_SAMPLED` and
/// `HOT_CAPPED` out of the fused gate, so armed record sites skip the
/// sampling and throttle checks entirely — full-rate tracing exactly
/// while the system is unhealthy. The installed spec ([`SAMPLE_TABLE`]
/// / [`RATE_CAP`]) is untouched, so the swap back is one gate store.
static FULL_RATE_DEPTH: AtomicU32 = AtomicU32::new(0);

/// Enters a full-rate tracing window: a circuit breaker opened, and
/// until every open breaker closes again ([`pop_full_rate`]) the armed
/// recorder bypasses any installed sampling spec and rate cap — the
/// events leading *out of* an incident are the ones worth keeping
/// whole. Deterministic by construction: callers key this off breaker
/// state transitions, which are pure functions of the input sequence,
/// never off wall clock — and the recorder still writes only to its own
/// rings, so an adaptive armed run cannot move a report byte.
///
/// `reason` labels the window (the breaker name) in the
/// digest-excluded `trace.adaptive.*` counters and, when armed, as a
/// trace instant.
pub fn push_full_rate(reason: &str) {
    let prev = FULL_RATE_DEPTH.fetch_add(1, Ordering::Relaxed);
    recompute_hot();
    crate::counter("trace.adaptive.windows").inc();
    crate::counter(&format!("trace.adaptive.windows.{reason}")).inc();
    if prev == 0 && enabled() {
        record_named("trace.adaptive.full_rate.enter", EventKind::Instant, 1);
    }
}

/// Leaves a full-rate tracing window (the breaker that pushed it
/// closed). The configured sampling spec and cap come back into force
/// once the last open window pops. Unbalanced pops (a cloned breaker,
/// say) are ignored rather than underflowed.
pub fn pop_full_rate(reason: &str) {
    let mut cur = FULL_RATE_DEPTH.load(Ordering::Relaxed);
    loop {
        if cur == 0 {
            return;
        }
        match FULL_RATE_DEPTH.compare_exchange_weak(
            cur,
            cur - 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(prev) => {
                cur = prev;
                break;
            }
            Err(v) => cur = v,
        }
    }
    recompute_hot();
    crate::counter(&format!("trace.adaptive.closed.{reason}")).inc();
    if cur == 1 && enabled() {
        record_named("trace.adaptive.full_rate.exit", EventKind::Instant, 0);
    }
}

/// Whether at least one full-rate window is open (some breaker is
/// tripped and the sampling spec is bypassed).
pub fn full_rate_active() -> bool {
    FULL_RATE_DEPTH.load(Ordering::Relaxed) > 0
}

// ---------------------------------------------------------------------
// Snapshots, draining, export
// ---------------------------------------------------------------------

/// One thread's drained trace.
#[derive(Debug)]
pub struct ThreadTrace {
    /// Recorder-assigned lane id (registration order).
    pub tid: u32,
    /// OS thread name at registration (`btpub-par/<pool>/<w>` for pool
    /// workers — the Perfetto lane label).
    pub name: String,
    /// Events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring wrap-around on this thread.
    pub dropped: u64,
    /// Events rejected by the `cap:` rate throttle on this thread.
    pub capped: u64,
}

/// Everything the recorder held, drained: per-thread event lists (rings
/// emptied, sorted by lane id) plus the symbol table resolving
/// [`Sym`]s.
#[derive(Debug)]
pub struct TraceSnapshot {
    /// Per-thread traces, sorted by `tid`.
    pub threads: Vec<ThreadTrace>,
    /// `symbols[sym.0]` is the event name.
    pub symbols: Vec<String>,
}

impl TraceSnapshot {
    /// Resolves a [`Sym`] against this snapshot's symbol table.
    pub fn name(&self, s: Sym) -> &str {
        self.symbols
            .get(s.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Total events across all threads.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }
}

/// Drains every thread's ring into a [`TraceSnapshot`]. Threads stay
/// registered (they keep recording into now-empty rings if the recorder
/// is still on). Ring-drop and rate-cap accounting is recorded into the
/// global registry as `trace.dropped.<thread>` / `trace.capped.<thread>`
/// counters here — *after* the run, excluded from manifest digests —
/// so silent event loss shows up in `--metrics` output and the text
/// report, not only in the trace file.
pub fn drain() -> TraceSnapshot {
    flush_current_thread();
    let threads = THREADS.lock().expect("trace threads lock");
    let mut out = Vec::new();
    for t in threads.iter() {
        let mut ring = t.ring.lock().expect("trace ring lock");
        let dropped = ring.dropped();
        let capped = ring.capped();
        let events = ring.drain_ordered();
        if events.is_empty() && dropped == 0 && capped == 0 {
            continue;
        }
        out.push(ThreadTrace {
            tid: t.tid,
            name: t.name.clone(),
            events,
            dropped,
            capped,
        });
    }
    drop(threads);
    out.sort_by_key(|t| t.tid);
    for t in &out {
        if t.dropped > 0 {
            crate::counter(&format!("trace.dropped.{}", t.name)).add(t.dropped);
        }
        if t.capped > 0 {
            crate::counter(&format!("trace.capped.{}", t.name)).add(t.capped);
        }
    }
    TraceSnapshot {
        threads: out,
        symbols: current_symbols(),
    }
}

/// A bounded copy of the newest `per_thread` events per lane *without*
/// draining: rings keep their contents and accounting. This is the
/// black-box read path — cheap enough to run while the system limps
/// on. (Other threads' sub-batch staged tails, at most [`STAGE_FLUSH`]
/// events each, are not visible here; only the calling thread's stage
/// is flushed.)
pub fn snapshot_last(per_thread: usize) -> TraceSnapshot {
    flush_current_thread();
    let threads = THREADS.lock().expect("trace threads lock");
    let mut out = Vec::new();
    for t in threads.iter() {
        let ring = t.ring.lock().expect("trace ring lock");
        let events = ring.last(per_thread);
        let dropped = ring.dropped();
        let capped = ring.capped();
        if events.is_empty() && dropped == 0 && capped == 0 {
            continue;
        }
        out.push(ThreadTrace {
            tid: t.tid,
            name: t.name.clone(),
            events,
            dropped,
            capped,
        });
    }
    drop(threads);
    out.sort_by_key(|t| t.tid);
    TraceSnapshot {
        threads: out,
        symbols: current_symbols(),
    }
}

fn obj(pairs: &[(&str, Value)]) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(*k, v.clone());
    }
    Value::Object(m)
}

fn micros(ns: u64) -> Value {
    Value::from(ns as f64 / 1000.0)
}

/// Renders a snapshot as Chrome trace event format JSON
/// (`{"traceEvents": [...]}`): an `"M"` thread-name metadata record per
/// lane, `"X"` complete events for spans, `"i"` instants (thread scope)
/// for point events, and `"C"` counter samples. Timestamps are
/// microseconds since the observability epoch.
pub fn chrome_trace(snap: &TraceSnapshot) -> Value {
    chrome_trace_with(snap, Vec::new())
}

/// [`chrome_trace`] with caller-supplied extra events appended (the
/// black-box trip marker).
fn chrome_trace_with(snap: &TraceSnapshot, extra: Vec<Value>) -> Value {
    let mut events = Vec::new();
    for t in &snap.threads {
        let tid = Value::from(t.tid);
        events.push(obj(&[
            ("ph", Value::from("M")),
            ("name", Value::from("thread_name")),
            ("pid", Value::from(1u64)),
            ("tid", tid.clone()),
            ("args", obj(&[("name", Value::from(t.name.as_str()))])),
        ]));
        for e in &t.events {
            let name = Value::from(snap.name(e.sym));
            events.push(match e.kind {
                EventKind::Complete => obj(&[
                    ("ph", Value::from("X")),
                    ("name", name),
                    ("cat", Value::from("span")),
                    ("pid", Value::from(1u64)),
                    ("tid", tid.clone()),
                    ("ts", micros(e.t_ns)),
                    ("dur", micros(e.payload)),
                ]),
                EventKind::Instant => obj(&[
                    ("ph", Value::from("i")),
                    ("name", name),
                    ("cat", Value::from("event")),
                    ("pid", Value::from(1u64)),
                    ("tid", tid.clone()),
                    ("ts", micros(e.t_ns)),
                    ("s", Value::from("t")),
                    ("args", obj(&[("v", Value::from(e.payload))])),
                ]),
                EventKind::Counter => obj(&[
                    ("ph", Value::from("C")),
                    ("name", name),
                    ("pid", Value::from(1u64)),
                    ("tid", tid.clone()),
                    ("ts", micros(e.t_ns)),
                    ("args", obj(&[("value", Value::from(e.payload))])),
                ]),
            });
        }
        if t.dropped > 0 || t.capped > 0 {
            let last_ts = t.events.last().map(|e| e.t_ns).unwrap_or(0);
            events.push(obj(&[
                ("ph", Value::from("i")),
                ("name", Value::from("trace.dropped")),
                ("cat", Value::from("trace")),
                ("pid", Value::from(1u64)),
                ("tid", tid.clone()),
                ("ts", micros(last_ts)),
                ("s", Value::from("t")),
                (
                    "args",
                    obj(&[
                        ("count", Value::from(t.dropped)),
                        ("capped", Value::from(t.capped)),
                    ]),
                ),
            ]));
        }
    }
    events.extend(extra);
    obj(&[
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::from("ms")),
    ])
}

/// Drains the recorder and writes Chrome trace JSON to `path`,
/// returning the number of non-metadata events written.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<usize> {
    let snap = drain();
    let count = snap.event_count();
    let json = serde_json::to_string(&chrome_trace(&snap))
        .map_err(|e| std::io::Error::other(format!("trace serialization failed: {e}")))?;
    std::fs::write(path, json)?;
    Ok(count)
}

// ---------------------------------------------------------------------
// The black box: snapshot-on-trip and the panic hook
// ---------------------------------------------------------------------

struct Blackbox {
    prefix: Option<String>,
    seen: Vec<String>,
    written: u32,
}

static BLACKBOX: Mutex<Blackbox> = Mutex::new(Blackbox {
    prefix: None,
    seen: Vec::new(),
    written: 0,
});
static SNAPSHOT_ENV: OnceLock<()> = OnceLock::new();

/// Sets (or clears) the black-box dump path prefix — the programmatic
/// twin of `BTPUB_TRACE_SNAPSHOT`. Dumps land at
/// `<prefix>-<seq>-<reason>.json`.
pub fn set_snapshot_prefix(prefix: Option<String>) {
    SNAPSHOT_ENV.get_or_init(|| ());
    BLACKBOX.lock().expect("trace blackbox lock").prefix = prefix;
}

fn ensure_snapshot_env() {
    SNAPSHOT_ENV.get_or_init(|| {
        if let Ok(raw) = std::env::var("BTPUB_TRACE_SNAPSHOT") {
            let p = raw.trim().to_string();
            if !p.is_empty() {
                BLACKBOX.lock().expect("trace blackbox lock").prefix = Some(p);
            }
        }
    });
}

fn slug(reason: &str) -> String {
    let mut s: String = reason
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    s.truncate(48);
    if s.is_empty() {
        s.push('x');
    }
    s
}

/// The black-box dump: writes the newest [`BLACKBOX_EVENTS`] events
/// per lane (plus a `blackbox.trip` marker carrying `reason`) as a
/// loadable Chrome trace to `<prefix>-<seq>-<reason>.json`, without
/// draining the rings.
///
/// Wired from the `btpub-faults` trip points (first fault per stream,
/// breaker opening). A no-op returning `None` unless the recorder is
/// armed *and* a prefix is set ([`set_snapshot_prefix`] or
/// `BTPUB_TRACE_SNAPSHOT`); each distinct reason dumps at most once
/// and at most [`BLACKBOX_MAX`] dumps are written per process, so a
/// fault storm cannot become an I/O storm.
pub fn trip(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    ensure_snapshot_env();
    let path = {
        let mut bb = BLACKBOX.lock().expect("trace blackbox lock");
        let prefix = bb.prefix.clone()?;
        if bb.written >= BLACKBOX_MAX || bb.seen.iter().any(|r| r == reason) {
            return None;
        }
        bb.seen.push(reason.to_string());
        bb.written += 1;
        PathBuf::from(format!("{prefix}-{:03}-{}.json", bb.written, slug(reason)))
    };
    let snap = snapshot_last(BLACKBOX_EVENTS);
    let marker = obj(&[
        ("ph", Value::from("i")),
        ("name", Value::from("blackbox.trip")),
        ("cat", Value::from("trace")),
        ("pid", Value::from(1u64)),
        ("tid", Value::from(0u64)),
        ("ts", micros(now_ns())),
        ("s", Value::from("g")),
        ("args", obj(&[("reason", Value::from(reason))])),
    ]);
    let doc = chrome_trace_with(&snap, vec![marker]);
    let json = serde_json::to_string(&doc).ok()?;
    if let Err(e) = std::fs::write(&path, json) {
        // An unwritable prefix would otherwise fail (and warn) on every
        // distinct trip reason for the rest of the run. Warn once and
        // disable instead, mirroring the spill-dir and checkpoint-dir
        // fallbacks: clearing the prefix makes every later trip a
        // cheap no-op.
        let mut bb = BLACKBOX.lock().expect("trace blackbox lock");
        if let Some(prefix) = bb.prefix.take() {
            eprintln!(
                "btpub-obs: black-box dump to {} failed: {e}; snapshot prefix \
                 {prefix:?} is unwritable, falling back to no black-box dumps \
                 for the rest of the run",
                path.display()
            );
        }
        return None;
    }
    crate::counter("trace.blackbox.trips").inc();
    Some(path)
}

/// Resets the process-global black-box state (prefix, per-reason dedup
/// list, per-process dump count). The dedup list and cap are
/// deliberately never reset in production — this exists so tests of the
/// trip path can run from a known state.
#[doc(hidden)]
pub fn reset_blackbox_for_tests() {
    let mut bb = BLACKBOX.lock().expect("trace blackbox lock");
    bb.prefix = None;
    bb.seen.clear();
    bb.written = 0;
}

static PANIC_HOOK: OnceLock<PathBuf> = OnceLock::new();

/// Installs (once per process) a panic hook that, after the default
/// hook reports the panic, drains the rings and writes the Chrome
/// trace to `path` — a crashing armed run yields a loadable trace
/// instead of nothing. Later calls keep the first path. Does nothing
/// at panic time if the recorder is off.
pub fn install_panic_hook(path: impl Into<PathBuf>) {
    let path = path.into();
    let mut first = false;
    PANIC_HOOK.get_or_init(|| {
        first = true;
        path
    });
    if !first {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        prev(info);
        if !enabled() {
            return;
        }
        let target = PANIC_HOOK.get().expect("panic hook path").clone();
        // catch_unwind: a second panic inside the hook would abort the
        // process before the default hook's message is useful.
        let wrote = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            write_chrome_trace(&target)
        }));
        match wrote {
            Ok(Ok(n)) => eprintln!(
                "btpub-obs: flight recorder flushed {n} events to {} after panic",
                target.display()
            ),
            _ => eprintln!(
                "btpub-obs: failed to flush flight recorder to {} after panic",
                target.display()
            ),
        }
    }));
}

/// Records an instant event when the recorder is on; exactly one
/// relaxed atomic load when it is off. The name is interned once per
/// call site — do **not** use inside generic functions (the cached
/// `static` would be shared across monomorphizations; use
/// [`trace::record_named`](crate::trace::record_named) there). The
/// payload expression is only evaluated when the recorder is on and
/// must be `u64`.
#[macro_export]
macro_rules! trace_instant {
    ($name:expr, $payload:expr) => {
        if $crate::trace::enabled() {
            static SYM: ::std::sync::OnceLock<$crate::trace::Sym> = ::std::sync::OnceLock::new();
            $crate::trace::record(
                *SYM.get_or_init(|| $crate::trace::sym($name)),
                $crate::trace::EventKind::Instant,
                $payload,
            );
        }
    };
    ($name:expr) => {
        $crate::trace_instant!($name, 0u64)
    };
}

/// Records a counter-track sample (Chrome `"C"` event) when the
/// recorder is on; one relaxed atomic load when off. Same caveats as
/// [`trace_instant!`](crate::trace_instant).
#[macro_export]
macro_rules! trace_count {
    ($name:expr, $value:expr) => {
        if $crate::trace::enabled() {
            static SYM: ::std::sync::OnceLock<$crate::trace::Sym> = ::std::sync::OnceLock::new();
            $crate::trace::record(
                *SYM.get_or_init(|| $crate::trace::sym($name)),
                $crate::trace::EventKind::Counter,
                $value,
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(sym: Sym, payload: u64) -> Event {
        Event {
            // Whole-µs timestamps: the packed ring stores µs deltas, so
            // sub-µs inputs would be quantized away (tested separately).
            t_ns: payload * 1000,
            payload,
            sym,
            kind: EventKind::Instant,
        }
    }

    #[test]
    fn ring_is_lazy_and_bounded() {
        let ring = RingBuf::with_capacity(1024);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.capped(), 0);
    }

    #[test]
    fn ring_wraps_overwriting_oldest_with_drop_accounting() {
        let s = sym("test.ring.wrap");
        let mut ring = RingBuf::with_capacity(4);
        for i in 0..10u64 {
            ring.push(ev(s, i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let drained: Vec<u64> = ring.drain_ordered().iter().map(|e| e.payload).collect();
        assert_eq!(drained, vec![6, 7, 8, 9], "oldest events were overwritten");
        assert_eq!(ring.dropped(), 0, "drain resets drop accounting");
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_under_capacity_keeps_everything_in_order() {
        let s = sym("test.ring.order");
        let mut ring = RingBuf::with_capacity(8);
        for i in 0..5u64 {
            ring.push(ev(s, i));
        }
        let drained: Vec<u64> = ring.drain_ordered().iter().map(|e| e.payload).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_packs_timestamps_as_micros_against_first_event() {
        let s = sym("test.ring.pack");
        let mut ring = RingBuf::with_capacity(8);
        // First event pins the epoch exactly; later ones quantize to µs.
        ring.push(Event {
            t_ns: 1_234_567,
            payload: 0,
            sym: s,
            kind: EventKind::Complete,
        });
        ring.push(Event {
            t_ns: 1_237_100,
            payload: 9,
            sym: s,
            kind: EventKind::Counter,
        });
        let drained = ring.drain_ordered();
        assert_eq!(drained[0].t_ns, 1_234_567);
        assert_eq!(drained[0].kind, EventKind::Complete);
        assert_eq!(drained[1].t_ns, 1_236_567, "2533ns delta quantized to 2µs");
        assert_eq!(drained[1].kind, EventKind::Counter);
        assert_eq!(drained[1].payload, 9);
    }

    #[test]
    fn ring_rebases_epoch_past_the_u32_micro_window() {
        let s = sym("test.ring.rebase");
        let mut ring = RingBuf::with_capacity(8);
        ring.push(ev(s, 1)); // t = 1µs
        let far = RING_WINDOW_NS + 5_000_000;
        ring.push(Event {
            t_ns: far,
            payload: 2,
            sym: s,
            kind: EventKind::Instant,
        });
        assert_eq!(ring.dropped(), 1, "event outside the new window is dropped");
        let drained = ring.drain_ordered();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].t_ns, far, "survivor decodes to its true time");
        assert_eq!(drained[0].payload, 2);
    }

    #[test]
    fn ring_last_returns_newest_without_draining() {
        let s = sym("test.ring.last");
        let mut ring = RingBuf::with_capacity(8);
        for i in 0..5u64 {
            ring.push(ev(s, i));
        }
        let last: Vec<u64> = ring.last(2).iter().map(|e| e.payload).collect();
        assert_eq!(last, vec![3, 4]);
        assert_eq!(ring.len(), 5, "last() must not drain");
    }

    #[test]
    fn interner_returns_stable_symbols() {
        let a = sym("test.intern.a");
        let b = sym("test.intern.b");
        assert_ne!(a, b);
        assert_eq!(a, sym("test.intern.a"));
    }

    #[test]
    fn sample_spec_parses_and_rejects() {
        let ok = parse_sample_spec("tracker.announce:16, *:4, seed:42, cap:1000").unwrap();
        let table = ok.table.expect("table");
        assert_eq!(ok.cap, 1000);
        assert_eq!(table.seed, 42);
        assert_eq!(table.sites.len(), 1);
        assert_eq!(table.sites[0].every, 16);
        assert_eq!(table.global.as_ref().map(|g| g.every), Some(4));

        let empty = parse_sample_spec("").unwrap();
        assert!(empty.table.is_none());
        assert_eq!(empty.cap, 0);

        // seed/cap alone install no table (nothing to sample).
        assert!(parse_sample_spec("seed:7").unwrap().table.is_none());

        for bad in ["nonsense", "site:0", "site:-3", "cap:0", "seed:x", ":5"] {
            assert!(parse_sample_spec(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn mix_matches_the_fault_planner_construction() {
        // Pinned values: if this moves, obs::mix and btpub_faults::mix
        // have diverged and deterministic sampling is no longer
        // predictable from the planner's machinery.
        assert_eq!(mix(1, "a", 2), mix(1, "a", 2));
        assert_ne!(mix(1, "a", 2), mix(1, "a", 3));
        assert_ne!(mix(1, "a", 2), mix(1, "b", 2));
        let hits = (0..10_000)
            .filter(|&i| mix(42, "uniformity", i) % 16 == 0)
            .count();
        let expect = 10_000 / 16;
        assert!(
            (expect * 7 / 10..=expect * 13 / 10).contains(&hits),
            "1-in-16 residue should keep ~{expect}, kept {hits}"
        );
    }

    // One test function on purpose: the enable gate, the thread
    // registry, the sampling table and the interner are process-global,
    // so the end-to-end assertions must not race concurrently-scheduled
    // #[test]s toggling the same state.
    #[test]
    fn global_recorder_end_to_end() {
        // Off: event sites are inert.
        set_enabled(false);
        record_named("test.global.off", EventKind::Instant, 1);
        let snap = drain();
        assert!(
            !snap.symbols.iter().any(|s| s == "test.global.off"),
            "a disabled recorder must not intern or store events"
        );

        // On: events from several threads land in per-thread lanes,
        // chronologically ordered within each lane.
        set_enabled(true);
        trace_instant!("test.global.main", 7u64);
        trace_count!("test.global.gauge", 42u64);
        record_complete(sym("test.global.span"), 10_000, 25_000);
        let handles: Vec<_> = (0..2)
            .map(|w| {
                std::thread::Builder::new()
                    .name(format!("test-lane/{w}"))
                    .spawn(move || {
                        for i in 0..3u64 {
                            record_named("test.global.worker", EventKind::Instant, i);
                        }
                        // Thread exit must flush the staged tail (3 <
                        // STAGE_FLUSH) via the TLS destructor.
                    })
                    .expect("spawn")
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }
        set_enabled(false);

        let snap = drain();
        let lanes: Vec<&ThreadTrace> = snap
            .threads
            .iter()
            .filter(|t| t.name.starts_with("test-lane/"))
            .collect();
        assert_eq!(lanes.len(), 2, "each recording thread gets its own lane");
        for lane in &lanes {
            let ours: Vec<&Event> = lane
                .events
                .iter()
                .filter(|e| snap.name(e.sym) == "test.global.worker")
                .collect();
            assert_eq!(ours.len(), 3, "staged events were flushed at thread exit");
            assert!(
                ours.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
                "per-thread drain order is chronological"
            );
            assert_eq!(
                ours.iter().map(|e| e.payload).collect::<Vec<_>>(),
                vec![0, 1, 2]
            );
        }
        let main_lane = snap
            .threads
            .iter()
            .find(|t| {
                t.events
                    .iter()
                    .any(|e| snap.name(e.sym) == "test.global.main")
            })
            .expect("main thread recorded");
        assert!(main_lane
            .events
            .iter()
            .any(|e| e.kind == EventKind::Counter && e.payload == 42));
        assert!(main_lane
            .events
            .iter()
            .any(|e| e.kind == EventKind::Complete && e.payload == 25_000));

        // Chrome export: metadata per lane, X/i/C events present.
        let json = chrome_trace(&snap);
        let events = json["traceEvents"].as_array().expect("traceEvents array");
        let phases: Vec<&str> = events.iter().filter_map(|e| e["ph"].as_str()).collect();
        for ph in ["M", "X", "i", "C"] {
            assert!(phases.contains(&ph), "missing phase {ph:?} in chrome trace");
        }
        let lane_names: Vec<&str> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("M"))
            .filter_map(|e| e["args"]["name"].as_str())
            .collect();
        assert!(lane_names.iter().any(|n| n.starts_with("test-lane/")));

        // Drained means drained.
        assert_eq!(drain().event_count(), 0);

        // Breaker-driven adaptive override: with a near-everything
        // sampling spec installed, a full-rate window keeps every
        // event; popping it restores the spec.
        set_enabled(true);
        set_sample_spec("test.adaptive.site:1000000,seed:9").expect("spec");
        let site = sym("test.adaptive.site");
        for _ in 0..64 {
            record(site, EventKind::Instant, 1);
        }
        push_full_rate("unit");
        assert!(full_rate_active());
        for _ in 0..64 {
            record(site, EventKind::Instant, 2);
        }
        pop_full_rate("unit");
        assert!(!full_rate_active());
        pop_full_rate("unit"); // unbalanced pop must not underflow
        assert!(!full_rate_active());
        for _ in 0..64 {
            record(site, EventKind::Instant, 3);
        }
        set_enabled(false);
        set_sample_spec("").expect("clear spec");
        let snap = drain();
        let payloads: Vec<u64> = snap
            .threads
            .iter()
            .flat_map(|t| t.events.iter())
            .filter(|e| snap.name(e.sym) == "test.adaptive.site")
            .map(|e| e.payload)
            .collect();
        assert_eq!(
            payloads.iter().filter(|&&p| p == 2).count(),
            64,
            "a full-rate window bypasses the sampling spec entirely"
        );
        assert!(
            payloads.iter().filter(|&&p| p != 2).count() < 8,
            "outside the window 1-in-1000000 sampling keeps almost nothing: {payloads:?}"
        );
        assert!(
            snap.symbols.iter().any(|s| s == "trace.adaptive.full_rate.enter"),
            "the window boundary is marked in the trace"
        );

        // The black box: per-reason dedup, the per-process cap under
        // concurrent trips, and the unwritable-prefix fallback.
        set_enabled(true);
        reset_blackbox_for_tests();
        let dir = std::env::temp_dir().join(format!("btpub-trace-bb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        set_snapshot_prefix(Some(dir.join("bb").to_string_lossy().into_owned()));
        record_named("test.blackbox.event", EventKind::Instant, 1);
        let first = trip("unit.reason.alpha").expect("first trip dumps");
        assert!(first.exists());
        assert!(
            trip("unit.reason.alpha").is_none(),
            "the same reason twice yields exactly one dump"
        );
        let second = trip("unit.reason.beta").expect("a distinct reason dumps");
        assert_ne!(first, second, "distinct reasons yield distinct dumps");
        // 32 distinct reasons racing from 8 threads: exactly
        // BLACKBOX_MAX - 2 more dumps (2 already written above), never
        // one over.
        let wrote: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|w| {
                    scope.spawn(move || {
                        (0..4)
                            .filter(|i| trip(&format!("unit.cap.{w}.{i}")).is_some())
                            .count()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("join"))
                .sum()
        });
        assert_eq!(
            wrote,
            BLACKBOX_MAX as usize - 2,
            "the per-process cap holds under concurrent trips"
        );
        assert!(
            trip("unit.cap.overflow").is_none(),
            "trips past the cap are refused"
        );
        // An unwritable prefix warns once and disables dumps instead of
        // retrying (and failing) on every later trip reason.
        reset_blackbox_for_tests();
        set_snapshot_prefix(Some(
            dir.join("no-such-subdir")
                .join("bb")
                .to_string_lossy()
                .into_owned(),
        ));
        assert!(trip("unit.unwritable.a").is_none());
        assert!(
            BLACKBOX.lock().expect("trace blackbox lock").prefix.is_none(),
            "a failed dump clears the prefix so later trips are no-ops"
        );
        reset_blackbox_for_tests();
        set_enabled(false);
        drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
