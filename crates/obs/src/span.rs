//! RAII span timers with nested self-time attribution.
//!
//! A span records its **total** elapsed time into the histogram
//! `span.<name>.ns` and its **self** time — total minus time spent in
//! child spans opened on the same thread — into the counter
//! `span.<name>.self_ns`. The thread-local span stack is what lets a
//! parent subtract its children, so a report sorted by self time points
//! at the code that actually burned the cycles rather than at every
//! ancestor of it.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::global;

thread_local! {
    /// Stack of open spans on this thread: accumulated child time (ns)
    /// for each frame, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Live timer returned by [`crate::span!`]; records on drop.
///
/// Spans must be dropped in LIFO order on the thread that created them —
/// guaranteed when they are held in locals, which is the only way the
/// macro hands them out.
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span; prefer the [`crate::span!`] macro.
    pub fn enter(name: &'static str) -> SpanGuard {
        STACK.with_borrow_mut(|s| s.push(0));
        SpanGuard {
            name,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let total_ns = self.start.elapsed().as_nanos() as u64;
        let child_ns = STACK.with_borrow_mut(|s| s.pop()).unwrap_or(0);
        // Credit this span's total to the parent frame, if any.
        STACK.with_borrow_mut(|s| {
            if let Some(parent) = s.last_mut() {
                *parent += total_ns;
            }
        });
        let reg = global();
        reg.histogram(&format!("span.{}.ns", self.name)).record(total_ns);
        reg.counter(&format!("span.{}.self_ns", self.name))
            .add(total_ns.saturating_sub(child_ns));
    }
}

/// Opens an RAII span timer: `let _g = btpub_obs::span!("tracker.announce");`.
///
/// Elapsed time lands in the histogram `span.<name>.ns`; self time (see
/// module docs) in the counter `span.<name>.self_ns`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let end = Instant::now() + d;
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_spans_attribute_self_time_to_the_inner_frame() {
        {
            let _outer = crate::span!("test.outer");
            spin(Duration::from_millis(5));
            {
                let _inner = crate::span!("test.inner");
                spin(Duration::from_millis(20));
            }
        }
        let reg = global();
        let outer_total = reg.histogram("span.test.outer.ns").sum();
        let inner_total = reg.histogram("span.test.inner.ns").sum();
        let outer_self = reg.counter("span.test.outer.self_ns").value();
        let inner_self = reg.counter("span.test.inner.self_ns").value();
        // The outer span contains the inner one...
        assert!(outer_total >= inner_total);
        // ...but its *self* time excludes it: roughly the 5 ms spin, and
        // strictly less than the inner span's 20 ms.
        assert!(outer_self >= 4_000_000, "outer self {outer_self}ns");
        assert!(outer_self < inner_total, "outer self {outer_self}ns");
        // A leaf span's self time is its total time.
        assert_eq!(inner_self, inner_total);
        assert_eq!(reg.histogram("span.test.outer.ns").count(), 1);
    }

    #[test]
    fn sequential_spans_do_not_leak_between_frames() {
        {
            let _a = crate::span!("test.seq_a");
            spin(Duration::from_millis(2));
        }
        {
            let _b = crate::span!("test.seq_b");
            spin(Duration::from_millis(2));
        }
        let reg = global();
        // b had no children, so b's self time equals its total even though
        // a closed right before it on the same thread.
        assert_eq!(
            reg.counter("span.test.seq_b.self_ns").value(),
            reg.histogram("span.test.seq_b.ns").sum()
        );
    }
}
