//! RAII span timers with nested self-time attribution.
//!
//! A span records its **total** elapsed time into the histogram
//! `span.<name>.ns` and its **self** time — total minus time spent in
//! child spans opened on the same thread — into the counter
//! `span.<name>.self_ns`. The thread-local span stack is what lets a
//! parent subtract its children, so a report sorted by self time points
//! at the code that actually burned the cycles rather than at every
//! ancestor of it.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::{Counter, Histogram};
use crate::registry::global;

thread_local! {
    /// Stack of open spans on this thread: accumulated child time (ns)
    /// for each frame, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The pair of metrics a span records into, resolved once per call site
/// by the [`crate::span!`] macro. Name resolution (`format!` + registry
/// lock) happens on the first hit only; every subsequent enter/drop on
/// that call site touches nothing but atomics — spans sit inside loops
/// that run millions of times per study.
pub struct SpanTarget {
    total: Arc<Histogram>,
    self_ns: Arc<Counter>,
    sym: crate::trace::Sym,
}

impl SpanTarget {
    /// Resolves the `span.<name>.ns` histogram and `span.<name>.self_ns`
    /// counter from the global registry, plus the flight-recorder
    /// symbol for the span's trace lane.
    pub fn lookup(name: &str) -> SpanTarget {
        let reg = global();
        SpanTarget {
            total: reg.histogram(&format!("span.{name}.ns")),
            self_ns: reg.counter(&format!("span.{name}.self_ns")),
            sym: crate::trace::sym(name),
        }
    }
}

/// Live timer returned by [`crate::span!`]; records on drop.
///
/// Spans must be dropped in LIFO order on the thread that created them —
/// guaranteed when they are held in locals, which is the only way the
/// macro hands them out.
pub struct SpanGuard {
    target: &'static SpanTarget,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span against pre-resolved metric handles; prefer the
    /// [`crate::span!`] macro, which caches the lookup per call site.
    pub fn enter(target: &'static SpanTarget) -> SpanGuard {
        STACK.with_borrow_mut(|s| s.push(0));
        SpanGuard {
            target,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let total_ns = self.start.elapsed().as_nanos() as u64;
        // Pop this frame's accumulated child time and credit this span's
        // total to the parent frame, if any, in one stack access.
        let child_ns = STACK.with_borrow_mut(|s| {
            let child = s.pop().unwrap_or(0);
            if let Some(parent) = s.last_mut() {
                *parent += total_ns;
            }
            child
        });
        self.target.total.record(total_ns);
        self.target
            .self_ns
            .add(total_ns.saturating_sub(child_ns));
        // Flight recorder: a complete ("X") event carrying start +
        // duration, emitted at drop so a wrapped ring can never hold an
        // unbalanced begin/end pair. One relaxed load when tracing is
        // off (the check inside record_complete).
        if crate::trace::enabled() {
            // instant_ns: pure arithmetic against the epoch — the span
            // already paid its two clock reads (enter + drop).
            let start_ns = crate::trace::instant_ns(self.start);
            crate::trace::record_complete(self.target.sym, start_ns, total_ns);
        }
    }
}

/// Opens an RAII span timer: `let _g = btpub_obs::span!("tracker.announce");`.
///
/// Elapsed time lands in the histogram `span.<name>.ns`; self time (see
/// module docs) in the counter `span.<name>.self_ns`. The registry
/// lookup runs once per call site; re-entering is allocation-free.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static TARGET: ::std::sync::OnceLock<$crate::span::SpanTarget> =
            ::std::sync::OnceLock::new();
        $crate::SpanGuard::enter(TARGET.get_or_init(|| $crate::span::SpanTarget::lookup($name)))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let end = Instant::now() + d;
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_spans_attribute_self_time_to_the_inner_frame() {
        {
            let _outer = crate::span!("test.outer");
            spin(Duration::from_millis(5));
            {
                let _inner = crate::span!("test.inner");
                spin(Duration::from_millis(20));
            }
        }
        let reg = global();
        let outer_total = reg.histogram("span.test.outer.ns").sum();
        let inner_total = reg.histogram("span.test.inner.ns").sum();
        let outer_self = reg.counter("span.test.outer.self_ns").value();
        let inner_self = reg.counter("span.test.inner.self_ns").value();
        // The outer span contains the inner one...
        assert!(outer_total >= inner_total);
        // ...but its *self* time excludes it: roughly the 5 ms spin, and
        // strictly less than the inner span's 20 ms.
        assert!(outer_self >= 4_000_000, "outer self {outer_self}ns");
        assert!(outer_self < inner_total, "outer self {outer_self}ns");
        // A leaf span's self time is its total time.
        assert_eq!(inner_self, inner_total);
        assert_eq!(reg.histogram("span.test.outer.ns").count(), 1);
    }

    #[test]
    fn sequential_spans_do_not_leak_between_frames() {
        {
            let _a = crate::span!("test.seq_a");
            spin(Duration::from_millis(2));
        }
        {
            let _b = crate::span!("test.seq_b");
            spin(Duration::from_millis(2));
        }
        let reg = global();
        // b had no children, so b's self time equals its total even though
        // a closed right before it on the same thread.
        assert_eq!(
            reg.counter("span.test.seq_b.self_ns").value(),
            reg.histogram("span.test.seq_b.ns").sum()
        );
    }
}
