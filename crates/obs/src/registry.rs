//! The process-global metric registry.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use crate::metrics::{Counter, Gauge, Histogram};

/// A named collection of counters, gauges and histograms.
///
/// Lookup takes a read lock on a `BTreeMap` (names stay sorted for
/// reports); updates through the returned `Arc` handles are lock-free.
/// Hot paths should look a handle up once and keep it.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().expect("registry lock").get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().expect("registry lock");
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl Registry {
    /// Creates an empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Fetches (creating on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Fetches (creating on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Visits every counter as `(name, value)`, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect()
    }

    /// Visits every gauge as `(name, value)`, sorted by name.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        self.gauges
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect()
    }

    /// Visits every histogram as `(name, handle)`, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Total number of distinct metrics registered.
    pub fn len(&self) -> usize {
        self.counters.read().expect("registry lock").len()
            + self.gauges.read().expect("registry lock").len()
            + self.histograms.read().expect("registry lock").len()
    }

    /// True when nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-global registry every `btpub_obs::counter(..)` call and
/// span guard records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// Process-wide monotonic epoch for log timestamps.
pub(crate) fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").value(), 5);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn listing_is_name_sorted() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        r.gauge("mid").set(1);
        let names: Vec<_> = r.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }
}
