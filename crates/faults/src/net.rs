//! Shared network timeouts for the live-network clients.
//!
//! Before this crate, `tracker::client`, the UDP client and the peer-wire
//! code each hardcoded their own 5-second socket timeouts; tuning the
//! crawler for a slow tracker meant editing three files. `NetConfig` is
//! the single knob, and it also carries the BEP 15 retransmit parameters
//! the UDP client's backoff ladder uses.

use std::time::Duration;

/// Socket timeouts plus UDP retransmit parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (per read, and the UDP base when
    /// `udp_base_timeout` mirrors it).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// UDP retransmits after the first send (BEP 15 allows up to 8).
    pub udp_retransmits: u32,
    /// First UDP receive timeout; retransmit `n` waits
    /// `udp_base_timeout · 2^n` (BEP 15 prescribes 15 s).
    pub udp_base_timeout: Duration,
}

impl NetConfig {
    /// The receive timeout for retransmit `n` (0 = first send):
    /// `base · 2^n`, saturating.
    pub fn udp_timeout(&self, n: u32) -> Duration {
        self.udp_base_timeout
            .saturating_mul(1u32.checked_shl(n.min(31)).unwrap_or(u32::MAX))
    }

    /// A configuration for loopback tests: tight timeouts, two fast
    /// retransmits.
    pub fn loopback_test() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            udp_retransmits: 2,
            udp_base_timeout: Duration::from_millis(40),
        }
    }
}

impl Default for NetConfig {
    /// The previous hardcoded behaviour: 5 s everywhere, and the BEP 15
    /// ladder (15 s base, up to 3 retransmits — enough for a 2-minute
    /// worst case, well short of the 8 the BEP tolerates).
    fn default() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            udp_retransmits: 3,
            udp_base_timeout: Duration::from_secs(15),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_previous_hardcoded_timeouts() {
        let n = NetConfig::default();
        assert_eq!(n.connect_timeout, Duration::from_secs(5));
        assert_eq!(n.read_timeout, Duration::from_secs(5));
        assert_eq!(n.write_timeout, Duration::from_secs(5));
        assert_eq!(n.udp_base_timeout, Duration::from_secs(15));
    }

    #[test]
    fn udp_ladder_is_bep15() {
        let n = NetConfig::default();
        assert_eq!(n.udp_timeout(0), Duration::from_secs(15));
        assert_eq!(n.udp_timeout(1), Duration::from_secs(30));
        assert_eq!(n.udp_timeout(2), Duration::from_secs(60));
        assert_eq!(n.udp_timeout(3), Duration::from_secs(120));
        assert_eq!(n.udp_timeout(8), Duration::from_secs(15 * 256));
    }

    #[test]
    fn huge_retransmit_counts_saturate_instead_of_overflowing() {
        let n = NetConfig::default();
        assert!(n.udp_timeout(40) >= n.udp_timeout(31));
    }
}
