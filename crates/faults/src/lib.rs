//! # btpub-faults
//!
//! Deterministic fault injection and resilience for the measurement
//! pipeline. The paper's crawler ran for months against a hostile real
//! network — tracker outages, rate limiting, truncated and garbled
//! replies, unreachable NATed peers — while the reproduction's simulated
//! ecosystem is, by default, perfectly clean. This crate closes that gap
//! in two halves:
//!
//! * **Injection** — a [`FaultProfile`] names per-edge fault rates
//!   (`clean`, `flaky`, `hostile`, or custom), and a seeded [`FaultPlan`]
//!   turns them into concrete decisions. Every decision is a pure
//!   function of `(seed, stream, index)` — no hidden RNG state — so the
//!   same seed and profile produce the same faults whether the pipeline
//!   runs serially or under `btpub-par` at any job count, and adding a
//!   fault draw at one I/O edge never perturbs another. Injection points
//!   are described by the [`FaultPoint`] trait; the tracker simulation,
//!   the portal RSS feed and the live-network clients each implement the
//!   check at their own edge.
//! * **Resilience** — a generic [`RetryPolicy`] (exponential backoff with
//!   deterministic jitter and a per-operation deadline budget, including
//!   the BEP 15 `15·2^n` UDP retransmit schedule), a [`CircuitBreaker`]
//!   that stops hammering a failing tracker well before its blacklist
//!   threshold trips, and a shared [`NetConfig`] replacing the hardcoded
//!   socket timeouts that were previously scattered over the live
//!   clients.
//!
//! Everything is `std`-only and emits `faults.*` / `retry.*` metrics
//! through `btpub-obs`.

pub mod breaker;
pub mod crash;
pub mod net;
pub mod plan;
pub mod profile;
pub mod retry;

pub use breaker::{BreakerState, CircuitBreaker};
pub use crash::{crash_point, hit_for};
pub use net::NetConfig;
pub use plan::{points, Fault, FaultPlan, FaultPoint};
pub use profile::FaultProfile;
pub use retry::RetryPolicy;

/// Mixes `(seed, stream, index)` into a uniform `u64`.
///
/// FNV-1a over the stream label, then SplitMix64 finalisation mixing in
/// the index — the same discipline `btpub_sim::rngs::derive` uses, kept
/// local so this crate stays dependency-free below `btpub-obs`. Stateless
/// by construction: the value depends only on the three inputs, never on
/// call order, which is what makes serial and parallel runs agree.
pub fn mix(seed: u64, stream: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in stream.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut z = seed ^ h ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds several ids into one draw index (e.g. `(client, torrent, t)`).
pub fn key(parts: &[u64]) -> u64 {
    let mut z: u64 = 0x9e37_79b9_7f4a_7c15;
    for &p in parts {
        z ^= p.wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(z << 6)
            .wrapping_add(z >> 2);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    }
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_separated() {
        assert_eq!(mix(1, "a", 2), mix(1, "a", 2));
        assert_ne!(mix(1, "a", 2), mix(1, "a", 3));
        assert_ne!(mix(1, "a", 2), mix(1, "b", 2));
        assert_ne!(mix(1, "a", 2), mix(2, "a", 2));
    }

    #[test]
    fn mix_is_roughly_uniform() {
        let n = 10_000;
        let hits = (0..n)
            .filter(|&i| mix(42, "uniformity", i) % 1_000_000 < 100_000)
            .count();
        // 10 % rate ± generous slack.
        assert!((800..1200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn key_depends_on_every_part_and_order() {
        assert_eq!(key(&[1, 2, 3]), key(&[1, 2, 3]));
        assert_ne!(key(&[1, 2, 3]), key(&[1, 2, 4]));
        assert_ne!(key(&[1, 2, 3]), key(&[3, 2, 1]));
        assert_ne!(key(&[0, 0]), key(&[0]));
    }
}
