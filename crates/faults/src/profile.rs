//! Named fault profiles: how broken the world is.
//!
//! Rates are stored in **parts per million** (`u32`), not `f64`: the
//! profile participates in `Eq`/hash-based config comparison and every
//! draw reduces to an integer comparison (`mix(..) % 1_000_000 < ppm`),
//! so no float rounding can make two runs disagree.

/// Per-edge fault rates, in parts per million.
///
/// The built-in profiles mirror the operational conditions the paper's
/// crawler reported: OpenBitTorrent outages of tens of minutes to hours
/// (`tracker_downtime_ppm` shapes deterministic downtime *windows*, not
/// per-query coin flips), sporadic announce loss and reply corruption on
/// a loaded tracker, portal feed hiccups, and peers that accept then
/// drop a probe connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultProfile {
    /// Profile name, surfaced in report headers (`clean` / `flaky` /
    /// `hostile` / anything for custom profiles).
    pub name: String,
    /// Long-run fraction of time the tracker is inside a downtime window.
    pub tracker_downtime_ppm: u32,
    /// Probability an announce is lost before reaching the tracker
    /// (client times out, tracker state untouched).
    pub announce_drop_ppm: u32,
    /// Probability a tracker reply comes back truncated.
    pub truncated_reply_ppm: u32,
    /// Probability a tracker reply comes back as garbled bencode.
    pub malformed_reply_ppm: u32,
    /// Probability one RSS poll finds the feed endpoint down.
    pub rss_outage_ppm: u32,
    /// Probability a peer-wire probe connection fails spuriously.
    pub probe_fail_ppm: u32,
}

impl FaultProfile {
    /// No faults at all — the pre-fault-injection pipeline, byte for byte.
    pub fn clean() -> FaultProfile {
        FaultProfile {
            name: "clean".into(),
            tracker_downtime_ppm: 0,
            announce_drop_ppm: 0,
            truncated_reply_ppm: 0,
            malformed_reply_ppm: 0,
            rss_outage_ppm: 0,
            probe_fail_ppm: 0,
        }
    }

    /// Ordinary month on a busy public tracker: ~2 % downtime in
    /// half-hour windows, a few percent announce loss, sub-percent reply
    /// corruption.
    pub fn flaky() -> FaultProfile {
        FaultProfile {
            name: "flaky".into(),
            tracker_downtime_ppm: 20_000,
            announce_drop_ppm: 20_000,
            truncated_reply_ppm: 5_000,
            malformed_reply_ppm: 5_000,
            rss_outage_ppm: 20_000,
            probe_fail_ppm: 20_000,
        }
    }

    /// A bad month: ~10 % downtime in multi-hour windows, 10 % announce
    /// loss, several percent corruption — the regime where an un-hardened
    /// crawler dies or silently under-counts.
    pub fn hostile() -> FaultProfile {
        FaultProfile {
            name: "hostile".into(),
            tracker_downtime_ppm: 100_000,
            announce_drop_ppm: 100_000,
            truncated_reply_ppm: 30_000,
            malformed_reply_ppm: 30_000,
            rss_outage_ppm: 100_000,
            probe_fail_ppm: 100_000,
        }
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<FaultProfile> {
        match name {
            "clean" => Some(FaultProfile::clean()),
            "flaky" => Some(FaultProfile::flaky()),
            "hostile" => Some(FaultProfile::hostile()),
            _ => None,
        }
    }

    /// The profile named by the `BTPUB_FAULTS` environment variable, if
    /// set to a known name. Unknown names are reported and ignored
    /// rather than silently treated as clean.
    pub fn from_env() -> Option<FaultProfile> {
        let name = std::env::var("BTPUB_FAULTS").ok()?;
        let found = FaultProfile::by_name(name.trim());
        if found.is_none() && !name.trim().is_empty() {
            btpub_obs::warn!("unknown BTPUB_FAULTS profile, ignoring"; name = name.as_str());
        }
        found
    }

    /// Whether every rate is zero (fault machinery can be skipped).
    pub fn is_clean(&self) -> bool {
        self.tracker_downtime_ppm == 0
            && self.announce_drop_ppm == 0
            && self.truncated_reply_ppm == 0
            && self.malformed_reply_ppm == 0
            && self.rss_outage_ppm == 0
            && self.probe_fail_ppm == 0
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::clean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_resolve() {
        assert!(FaultProfile::by_name("clean").unwrap().is_clean());
        assert!(!FaultProfile::by_name("flaky").unwrap().is_clean());
        assert!(!FaultProfile::by_name("hostile").unwrap().is_clean());
        assert!(FaultProfile::by_name("nope").is_none());
    }

    #[test]
    fn hostile_is_strictly_worse_than_flaky() {
        let f = FaultProfile::flaky();
        let h = FaultProfile::hostile();
        assert!(h.tracker_downtime_ppm > f.tracker_downtime_ppm);
        assert!(h.announce_drop_ppm > f.announce_drop_ppm);
        assert!(h.truncated_reply_ppm > f.truncated_reply_ppm);
        assert!(h.malformed_reply_ppm > f.malformed_reply_ppm);
        assert!(h.rss_outage_ppm > f.rss_outage_ppm);
        assert!(h.probe_fail_ppm > f.probe_fail_ppm);
    }

    #[test]
    fn default_is_clean() {
        assert_eq!(FaultProfile::default(), FaultProfile::clean());
        assert_eq!(FaultProfile::default().name, "clean");
    }
}
