//! Retry with exponential backoff, deterministic jitter, and a deadline
//! budget.
//!
//! The same policy type drives two clocks:
//!
//! * **sim time** — the crawler computes `delay_secs(attempt, jitter)`
//!   and schedules its retry event that many simulated seconds later;
//! * **wall time** — the live-network clients call [`RetryPolicy::run`],
//!   which sleeps between attempts and enforces the deadline for real.
//!
//! Jitter is *deterministic*: callers pass a draw (usually
//! [`crate::FaultPlan::jitter`]) derived from `(seed, stream, index)`, so
//! retried schedules are as reproducible as everything else.

use std::time::{Duration, Instant};

/// An exponential-backoff retry policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed (first try included). Always ≥ 1.
    pub max_attempts: u32,
    /// Delay before the second attempt.
    pub base: Duration,
    /// Per-attempt delay ceiling.
    pub cap: Duration,
    /// Fraction of each delay subject to jitter, in parts per million
    /// (`0` = fixed schedule, `1_000_000` = full jitter).
    pub jitter_ppm: u32,
    /// Total time budget across all attempts and sleeps; `None` = only
    /// `max_attempts` bounds the operation.
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// A sane default for simulated announce retries: six attempts,
    /// 15 s base doubling to a 15-minute cap, 25 % jitter.
    pub fn announce() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_secs(15),
            cap: Duration::from_secs(900),
            jitter_ppm: 250_000,
            deadline: None,
        }
    }

    /// The BEP 15 UDP retransmit schedule: timeout `15·2^n` seconds,
    /// `n = 0..=8`. No jitter — the BEP prescribes the fixed ladder.
    pub fn bep15() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 9,
            base: Duration::from_secs(15),
            cap: Duration::from_secs(15 * (1 << 8)),
            jitter_ppm: 0,
            deadline: None,
        }
    }

    /// Raw exponential delay before attempt `attempt` (1-based; attempt 1
    /// has no delay), capped.
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let exp = (attempt - 2).min(62);
        let factor = 1u64.checked_shl(exp).unwrap_or(u64::MAX);
        self.base.saturating_mul(factor.min(u64::from(u32::MAX)) as u32).min(self.cap)
    }

    /// Delay in whole seconds with a deterministic jitter draw folded in
    /// — the sim-time entry point. `jitter_draw` is any uniform `u64`
    /// (e.g. [`crate::FaultPlan::jitter`] output or a raw
    /// [`crate::mix`]); only `jitter_ppm` of the delay is modulated.
    pub fn delay_secs(&self, attempt: u32, jitter_draw: u64) -> u64 {
        let base = self.delay(attempt).as_secs();
        if base == 0 || self.jitter_ppm == 0 {
            return base;
        }
        let window = base * u64::from(self.jitter_ppm) / 1_000_000;
        if window == 0 {
            return base;
        }
        // Centre the jitter: [base - window/2, base + window/2].
        base - window / 2 + jitter_draw % (window + 1)
    }

    /// Runs `op` under this policy on the wall clock, sleeping between
    /// attempts. `op` receives the 1-based attempt number. Gives up after
    /// `max_attempts`, or earlier when the next sleep would cross the
    /// deadline; the last error is returned. Metrics: `retry.<name>.attempts`,
    /// `retry.<name>.success`, `retry.<name>.gaveup`.
    pub fn run<T, E>(
        &self,
        name: &str,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let started = Instant::now();
        let mut attempt = 1;
        loop {
            btpub_obs::counter(&format!("retry.{name}.attempts")).inc();
            match op(attempt) {
                Ok(v) => {
                    btpub_obs::counter(&format!("retry.{name}.success")).inc();
                    return Ok(v);
                }
                Err(e) => {
                    let next_delay = self.delay(attempt + 1);
                    let out_of_budget = self
                        .deadline
                        .is_some_and(|d| started.elapsed() + next_delay >= d);
                    if attempt >= self.max_attempts || out_of_budget {
                        btpub_obs::counter(&format!("retry.{name}.gaveup")).inc();
                        return Err(e);
                    }
                    // Deterministic jitter keyed on the attempt alone: the
                    // wall-clock path has no plan seed, and reproducibility
                    // here only needs a fixed ladder. Sub-second ladders
                    // (tests, probes) skip jitter — `delay_secs` works in
                    // whole seconds.
                    let sleep = if next_delay >= Duration::from_secs(1) {
                        let jitter = crate::mix(0, name, u64::from(attempt));
                        Duration::from_secs(self.delay_secs(attempt + 1, jitter))
                    } else {
                        next_delay
                    };
                    std::thread::sleep(sleep);
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_ladder_doubles_and_caps() {
        let p = RetryPolicy::announce();
        assert_eq!(p.delay(1), Duration::ZERO);
        assert_eq!(p.delay(2), Duration::from_secs(15));
        assert_eq!(p.delay(3), Duration::from_secs(30));
        assert_eq!(p.delay(4), Duration::from_secs(60));
        assert_eq!(p.delay(20), Duration::from_secs(900), "capped");
    }

    #[test]
    fn bep15_ladder_is_15_times_2_to_the_n() {
        let p = RetryPolicy::bep15();
        // Attempt k+2 follows timeout n=k: 15·2^k seconds.
        for n in 0..=8u32 {
            assert_eq!(
                p.delay(n + 2),
                Duration::from_secs(15 * (1 << n)),
                "n={n}"
            );
        }
        assert_eq!(p.max_attempts, 9);
    }

    #[test]
    fn jittered_delay_stays_in_band_and_is_deterministic() {
        let p = RetryPolicy::announce();
        for draw in [0u64, 1, 17, u64::MAX, 0xDEAD_BEEF] {
            let d = p.delay_secs(3, draw);
            // base 30, 25 % jitter → [27, 34].
            assert!((27..=34).contains(&d), "delay {d}");
            assert_eq!(d, p.delay_secs(3, draw));
        }
        // Zero jitter reproduces the raw ladder.
        let fixed = RetryPolicy { jitter_ppm: 0, ..RetryPolicy::announce() };
        assert_eq!(fixed.delay_secs(3, 12345), 30);
    }

    #[test]
    fn run_retries_until_success() {
        let p = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            jitter_ppm: 0,
            deadline: None,
        };
        let mut calls = 0;
        let out: Result<u32, &str> = p.run("test.ok", |attempt| {
            calls += 1;
            if attempt < 3 {
                Err("flaky")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(3));
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_gives_up_after_max_attempts() {
        let p = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
            jitter_ppm: 0,
            deadline: None,
        };
        let mut calls = 0;
        let out: Result<(), u32> = p.run("test.fail", |a| {
            calls += 1;
            Err(a)
        });
        assert_eq!(out, Err(3), "last error surfaces");
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_respects_deadline_budget() {
        let p = RetryPolicy {
            max_attempts: 100,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(20),
            jitter_ppm: 0,
            deadline: Some(Duration::from_millis(30)),
        };
        let started = Instant::now();
        let mut calls = 0;
        let out: Result<(), &str> = p.run("test.deadline", |_| {
            calls += 1;
            Err("down")
        });
        assert!(out.is_err());
        assert!(calls < 5, "deadline must cut attempts, got {calls}");
        assert!(started.elapsed() < Duration::from_secs(2));
    }
}
