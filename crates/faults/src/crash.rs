//! Deterministic crash injection: seeded process-abort points.
//!
//! A crash point is a named site in the pipeline (`"checkpoint.pre_rename"`,
//! `"spill.flush.frame"`, …) that counts how many times it is reached. When
//! the process is *armed* — the `BTPUB_CRASH` environment variable holds
//! `"<site>:<hit>"` — reaching the named site for the `hit`-th time aborts
//! the process with SIGABRT, exactly as an OOM-kill or power cut would from
//! the filesystem's point of view: no destructors, no flushes, no atexit.
//!
//! Unarmed, a crash point is a single relaxed atomic increment on a
//! process-wide "disarmed" fast path — cheap enough to leave in production
//! code, in the same spirit as the armed-tracing plane.
//!
//! Which hit to crash on is itself a seeded draw: [`hit_for`] maps
//! `(seed, site)` through the same [`crate::mix`] family as every other
//! fault decision, so the crash-resume test sweep is reproducible from the
//! campaign seed alone and never depends on wall-clock or scheduling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

struct CrashPlan {
    site: String,
    hit: u64,
    count: AtomicU64,
}

fn plan() -> &'static Option<CrashPlan> {
    static PLAN: OnceLock<Option<CrashPlan>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let spec = std::env::var("BTPUB_CRASH").ok()?;
        let (site, hit) = spec.rsplit_once(':')?;
        let hit: u64 = hit.parse().ok()?;
        if site.is_empty() || hit == 0 {
            return None;
        }
        Some(CrashPlan {
            site: site.to_string(),
            hit,
            count: AtomicU64::new(0),
        })
    })
}

/// Marks a crash site. No-op unless the process is armed for exactly
/// this site via `BTPUB_CRASH="<site>:<hit>"`, in which case the
/// `hit`-th arrival aborts the process (after printing a marker to
/// stderr so supervisors can tell an injected crash from a genuine one).
pub fn crash_point(site: &str) {
    let Some(p) = plan() else { return };
    if p.site != site {
        return;
    }
    let n = p.count.fetch_add(1, Ordering::Relaxed) + 1;
    if n == p.hit {
        eprintln!("btpub-crash: injected abort at {site}:{n}");
        std::process::abort();
    }
}

/// Seeded choice of which arrival at `site` to crash on, in `1..=window`.
///
/// Pure in `(seed, site)` via [`crate::mix`], so a crash-sweep over sites
/// is reproducible from the seed alone.
pub fn hit_for(seed: u64, site: &str, window: u64) -> u64 {
    1 + crate::mix(seed, site, 0) % window.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_crash_point_is_a_no_op() {
        // The test harness never sets BTPUB_CRASH; reaching a site many
        // times must be inert.
        for _ in 0..1000 {
            crash_point("test.site");
        }
    }

    #[test]
    fn hit_for_is_deterministic_and_in_window() {
        for site in ["a", "b", "stream.fold"] {
            for window in [1u64, 2, 7, 1000] {
                let h = hit_for(42, site, window);
                assert_eq!(h, hit_for(42, site, window));
                assert!((1..=window).contains(&h), "{site} {window} -> {h}");
            }
        }
        assert_ne!(hit_for(42, "a", 1000), hit_for(43, "a", 1000));
    }

    #[test]
    fn hit_for_handles_zero_window() {
        assert_eq!(hit_for(1, "x", 0), 1);
    }
}
