//! The seeded fault plan: profile rates → concrete, reproducible faults.

use crate::profile::FaultProfile;
use crate::mix;

/// A concrete fault injected at one I/O edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The tracker is inside a downtime window ending at `until_secs`.
    TrackerDown {
        /// First second at which the tracker answers again.
        until_secs: u64,
    },
    /// The announce datagram/connection was lost; the client times out
    /// and the tracker never saw the request.
    AnnounceDropped,
    /// The reply arrived truncated mid-bencode.
    TruncatedReply,
    /// The reply arrived as garbled bencode.
    MalformedReply,
    /// The portal RSS endpoint returned an error page for this poll.
    FeedOutage,
    /// A peer-wire probe connection failed spuriously.
    ProbeConnFailed,
}

/// One injectable I/O edge. Implementors name a stable stream label (the
/// salt for every draw at this edge), pick which profile rate governs
/// them, and say what fault fires when the draw trips.
pub trait FaultPoint {
    /// Stable stream label, e.g. `"announce.drop"`. Part of the seed —
    /// renaming it reshuffles this edge's faults and no other's.
    const STREAM: &'static str;

    /// The governing rate, in parts per million.
    fn rate_ppm(profile: &FaultProfile) -> u32;

    /// The fault injected when the draw trips.
    fn fault() -> Fault;
}

/// The built-in injection points, one per I/O edge of the pipeline.
pub mod points {
    use super::{Fault, FaultPoint};
    use crate::profile::FaultProfile;

    /// Announce lost before the tracker saw it.
    pub struct AnnounceDrop;
    impl FaultPoint for AnnounceDrop {
        const STREAM: &'static str = "announce.drop";
        fn rate_ppm(p: &FaultProfile) -> u32 {
            p.announce_drop_ppm
        }
        fn fault() -> Fault {
            Fault::AnnounceDropped
        }
    }

    /// Reply truncated mid-bencode.
    pub struct TruncatedReply;
    impl FaultPoint for TruncatedReply {
        const STREAM: &'static str = "reply.truncated";
        fn rate_ppm(p: &FaultProfile) -> u32 {
            p.truncated_reply_ppm
        }
        fn fault() -> Fault {
            Fault::TruncatedReply
        }
    }

    /// Reply garbled into invalid bencode.
    pub struct MalformedReply;
    impl FaultPoint for MalformedReply {
        const STREAM: &'static str = "reply.malformed";
        fn rate_ppm(p: &FaultProfile) -> u32 {
            p.malformed_reply_ppm
        }
        fn fault() -> Fault {
            Fault::MalformedReply
        }
    }

    /// RSS poll against a down feed endpoint.
    pub struct RssPoll;
    impl FaultPoint for RssPoll {
        const STREAM: &'static str = "rss.outage";
        fn rate_ppm(p: &FaultProfile) -> u32 {
            p.rss_outage_ppm
        }
        fn fault() -> Fault {
            Fault::FeedOutage
        }
    }

    /// Peer-wire probe connection that fails spuriously.
    pub struct PeerProbe;
    impl FaultPoint for PeerProbe {
        const STREAM: &'static str = "probe.conn";
        fn rate_ppm(p: &FaultProfile) -> u32 {
            p.probe_fail_ppm
        }
        fn fault() -> Fault {
            Fault::ProbeConnFailed
        }
    }
}

/// Tracker downtime windows are drawn per block of this many seconds
/// (6 hours), matching the paper's reports of outages lasting tens of
/// minutes to a few hours rather than sub-second blips.
pub const DOWNTIME_BLOCK_SECS: u64 = 6 * 3600;

/// Fraction of blocks that contain an outage, in ppm (25 %). Within an
/// outage block the window length is scaled so the *long-run* downtime
/// fraction equals the profile rate.
const OUTAGE_BLOCK_PPM: u64 = 250_000;

/// A seeded fault plan: the profile plus the master seed, with every
/// decision derived statelessly from `(seed, stream, index)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
}

impl FaultPlan {
    /// Builds the plan for an ecosystem seed and a profile.
    pub fn new(seed: u64, profile: FaultProfile) -> FaultPlan {
        FaultPlan { seed, profile }
    }

    /// The profile this plan realises.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// The master seed (the ecosystem's).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Checks injection point `P` at draw index `index`; `Some(fault)`
    /// when the edge fails this time. Injected faults are counted under
    /// `faults.injected.<stream>`.
    pub fn check<P: FaultPoint>(&self, index: u64) -> Option<Fault> {
        let ppm = P::rate_ppm(&self.profile);
        if ppm == 0 {
            return None;
        }
        if mix(self.seed, P::STREAM, index) % 1_000_000 < u64::from(ppm) {
            btpub_obs::counter(&format!("faults.injected.{}", P::STREAM)).inc();
            // Flight recorder: an instant event per injected fault, so a
            // trace shows *when* the chaos hit. record_named rather than
            // the cached trace_instant! macro — a `static` here would be
            // shared across every `P` monomorphization.
            if btpub_obs::trace::enabled() {
                btpub_obs::trace::record_named(
                    &format!("fault.{}", P::STREAM),
                    btpub_obs::trace::EventKind::Instant,
                    index,
                );
                // Black box: dump the rings the first time each stream
                // fires (trip dedupes per reason and is bounded per
                // process, so a hostile profile cannot I/O-storm this).
                btpub_obs::trace::trip(&format!("fault.{}", P::STREAM));
            }
            Some(P::fault())
        } else {
            None
        }
    }

    /// Whether the tracker is inside a downtime window at `t_secs`;
    /// returns the first second it is reachable again.
    ///
    /// Windows are derived per [`DOWNTIME_BLOCK_SECS`] block: a quarter
    /// of blocks carry one outage whose length is four times the
    /// profile's long-run downtime fraction (so the expectation matches),
    /// positioned by a second independent draw. Pure in `(seed, block)`.
    pub fn tracker_down(&self, t_secs: u64) -> Option<u64> {
        let rate = u64::from(self.profile.tracker_downtime_ppm);
        if rate == 0 {
            return None;
        }
        let block = t_secs / DOWNTIME_BLOCK_SECS;
        if mix(self.seed, "downtime.occur", block) % 1_000_000 >= OUTAGE_BLOCK_PPM {
            return None;
        }
        let len = (DOWNTIME_BLOCK_SECS * (rate * 4).min(1_000_000) / 1_000_000).max(60);
        let slack = DOWNTIME_BLOCK_SECS - len.min(DOWNTIME_BLOCK_SECS);
        let start_off = if slack == 0 {
            0
        } else {
            mix(self.seed, "downtime.start", block) % (slack + 1)
        };
        let start = block * DOWNTIME_BLOCK_SECS + start_off;
        let end = start + len;
        if (start..end).contains(&t_secs) {
            Some(end)
        } else {
            None
        }
    }

    /// Deterministic jitter in `[0, max]` for `(stream, index)` — the
    /// randomness source for retry backoff, with the same stateless
    /// guarantee as every other draw.
    pub fn jitter(&self, stream: &str, index: u64, max: u64) -> u64 {
        if max == 0 {
            return 0;
        }
        mix(self.seed, stream, index) % (max + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(profile: FaultProfile) -> FaultPlan {
        FaultPlan::new(0xBEEF, profile)
    }

    #[test]
    fn clean_plan_never_faults() {
        let p = plan(FaultProfile::clean());
        for i in 0..10_000 {
            assert!(p.check::<points::AnnounceDrop>(i).is_none());
            assert!(p.check::<points::RssPoll>(i).is_none());
            assert!(p.tracker_down(i * 60).is_none());
        }
    }

    #[test]
    fn fault_rate_tracks_profile() {
        let p = plan(FaultProfile::hostile());
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|&i| p.check::<points::AnnounceDrop>(i).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn draws_are_stateless_and_stream_separated() {
        let p = plan(FaultProfile::hostile());
        // Same index, same answer, regardless of call order.
        let first: Vec<bool> = (0..100)
            .map(|i| p.check::<points::AnnounceDrop>(i).is_some())
            .collect();
        let again: Vec<bool> = (0..100)
            .rev()
            .map(|i| p.check::<points::AnnounceDrop>(i).is_some())
            .collect();
        assert_eq!(first, again.into_iter().rev().collect::<Vec<_>>());
        // Streams are independent: identical indices, different pattern.
        let other: Vec<bool> = (0..100)
            .map(|i| p.check::<points::PeerProbe>(i).is_some())
            .collect();
        assert_ne!(first, other);
    }

    #[test]
    fn downtime_fraction_matches_rate() {
        let p = plan(FaultProfile::hostile());
        let month = 30 * 86_400u64;
        let step = 120u64;
        let down = (0..month / step)
            .filter(|i| p.tracker_down(i * step).is_some())
            .count();
        let frac = down as f64 / (month / step) as f64;
        assert!((0.05..0.17).contains(&frac), "downtime fraction {frac}");
    }

    #[test]
    fn downtime_windows_are_contiguous_and_end_when_promised() {
        let p = plan(FaultProfile::hostile());
        let mut t = 0u64;
        let horizon = 10 * 86_400;
        let mut windows = 0;
        while t < horizon {
            match p.tracker_down(t) {
                Some(until) => {
                    assert!(until > t);
                    // Down for every second of the window; at `until` the
                    // window is over (a new one may begin immediately, in
                    // which case it must end strictly later).
                    assert!(p.tracker_down(until.saturating_sub(1)).is_some());
                    assert!(p.tracker_down(until).is_none_or(|u2| u2 > until));
                    windows += 1;
                    t = until;
                }
                None => t += 600,
            }
        }
        assert!(windows > 0, "hostile profile must produce outages");
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a = FaultPlan::new(1, FaultProfile::hostile());
        let b = FaultPlan::new(2, FaultProfile::hostile());
        let va: Vec<bool> = (0..200)
            .map(|i| a.check::<points::AnnounceDrop>(i).is_some())
            .collect();
        let vb: Vec<bool> = (0..200)
            .map(|i| b.check::<points::AnnounceDrop>(i).is_some())
            .collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = plan(FaultProfile::flaky());
        for i in 0..500 {
            let j = p.jitter("retry.test", i, 30);
            assert!(j <= 30);
            assert_eq!(j, p.jitter("retry.test", i, 30));
        }
        assert_eq!(p.jitter("retry.test", 7, 0), 0);
    }
}
