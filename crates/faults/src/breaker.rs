//! A per-tracker circuit breaker.
//!
//! The paper's tracker blacklists clients that keep hammering it (the
//! simulation's `TrackerSim` tolerates 20 strikes). A crawler that
//! retries a failing tracker in a tight loop converts a transient outage
//! into a permanent blacklisting — the one failure mode a measurement
//! campaign cannot recover from. The breaker opens long before that
//! threshold: after a handful of consecutive failures it refuses further
//! traffic until a cooldown has elapsed, then lets one half-open trial
//! through and only fully closes again on success.
//!
//! The clock is caller-supplied (`u64` seconds), so the same type serves
//! simulated and wall time.

/// Breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy; traffic flows.
    Closed,
    /// Tripped; traffic refused until the cooldown elapses.
    Open,
    /// Cooldown elapsed; one trial request allowed.
    HalfOpen,
}

/// A consecutive-failure circuit breaker over a caller-supplied clock.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    name: &'static str,
    /// Consecutive failures that trip the breaker.
    threshold: u32,
    /// Seconds the breaker stays open after tripping.
    cooldown_secs: u64,
    consecutive: u32,
    /// Set while open/half-open: when the cooldown ends.
    open_until: Option<u64>,
    /// Whether this breaker currently holds a full-rate tracing window
    /// open (`btpub_obs::trace::push_full_rate`). Tracked per instance
    /// so half-open re-trips cannot double-push and so the matching pop
    /// fires exactly once, on the close transition.
    full_rate: bool,
}

impl CircuitBreaker {
    /// A breaker tripping after `threshold` consecutive failures and
    /// backing off for `cooldown_secs`. `name` labels the metrics
    /// (`retry.breaker.<name>.*`).
    pub fn new(name: &'static str, threshold: u32, cooldown_secs: u64) -> CircuitBreaker {
        CircuitBreaker {
            name,
            threshold: threshold.max(1),
            cooldown_secs,
            consecutive: 0,
            open_until: None,
            full_rate: false,
        }
    }

    /// The breaker guarding the crawler's tracker connection: trips after
    /// 5 consecutive failures — a quarter of `TrackerSim`'s 20-strike
    /// blacklist budget — and backs off for 15 minutes (one full
    /// announce interval).
    pub fn tracker() -> CircuitBreaker {
        CircuitBreaker::new("tracker", 5, 900)
    }

    /// Current state at `now`.
    pub fn state(&self, now: u64) -> BreakerState {
        match self.open_until {
            None => BreakerState::Closed,
            Some(until) if now < until => BreakerState::Open,
            Some(_) => BreakerState::HalfOpen,
        }
    }

    /// Whether a request may be sent at `now`.
    pub fn allow(&self, now: u64) -> bool {
        self.state(now) != BreakerState::Open
    }

    /// When an open breaker next allows a (half-open) trial; `None` when
    /// traffic is already allowed.
    pub fn retry_at(&self, now: u64) -> Option<u64> {
        match self.open_until {
            Some(until) if now < until => Some(until),
            _ => None,
        }
    }

    /// Records a successful operation: the breaker closes fully.
    pub fn on_success(&mut self) {
        if self.open_until.is_some() && btpub_obs::trace::enabled() {
            // A real open/half-open → closed transition, worth a lane
            // marker in the flight recorder (routine successes are not).
            btpub_obs::trace::record_named(
                &format!("breaker.{}.closed", self.name),
                btpub_obs::trace::EventKind::Instant,
                0,
            );
        }
        if self.full_rate {
            // Close transition ends the full-rate tracing window this
            // breaker opened. Keyed off breaker state, not off the
            // recorder gate, so push/pop depth stays balanced even if
            // tracing is armed or disarmed mid-incident.
            self.full_rate = false;
            btpub_obs::trace::pop_full_rate(self.name);
        }
        self.consecutive = 0;
        self.open_until = None;
    }

    /// Records a failed operation at `now`; trips (or re-trips, from
    /// half-open) once the consecutive run reaches the threshold.
    pub fn on_failure(&mut self, now: u64) {
        self.consecutive = self.consecutive.saturating_add(1);
        if self.consecutive >= self.threshold {
            if self.open_until.is_none_or(|until| now >= until) {
                btpub_obs::counter(&format!("retry.breaker.{}.opened", self.name)).inc();
                if !self.full_rate {
                    // First open of this incident: trace at full rate
                    // until the close transition pops the window. A
                    // half-open re-trip keeps the existing window.
                    self.full_rate = true;
                    btpub_obs::trace::push_full_rate(self.name);
                }
                if btpub_obs::trace::enabled() {
                    btpub_obs::trace::record_named(
                        &format!("breaker.{}.opened", self.name),
                        btpub_obs::trace::EventKind::Instant,
                        now,
                    );
                    // Black box: a breaker opening is exactly the "what
                    // led up to this" moment; dump the recent rings
                    // (bounded + deduped per reason inside trip).
                    btpub_obs::trace::trip(&format!("breaker.{}.opened", self.name));
                }
            }
            self.open_until = Some(now + self.cooldown_secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Tests that trip a breaker touch the process-global full-rate
    /// tracing depth; serialize them so assertions about it are not
    /// racing a concurrently-scheduled #[test].
    fn serialize_full_rate() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn trips_after_threshold_and_cools_down() {
        let _g = serialize_full_rate();
        let mut b = CircuitBreaker::new("test.trip", 3, 100);
        assert!(b.allow(0));
        b.on_failure(10);
        b.on_failure(11);
        assert!(b.allow(11), "below threshold stays closed");
        b.on_failure(12);
        assert_eq!(b.state(12), BreakerState::Open);
        assert!(!b.allow(50));
        assert_eq!(b.retry_at(50), Some(112));
        // Cooldown elapsed → half-open trial allowed.
        assert_eq!(b.state(112), BreakerState::HalfOpen);
        assert!(b.allow(112));
        assert_eq!(b.retry_at(112), None);
        // Close the breaker so its full-rate tracing window pops.
        b.on_success();
    }

    #[test]
    fn half_open_failure_reopens_success_closes() {
        let _g = serialize_full_rate();
        let mut b = CircuitBreaker::new("test.halfopen", 2, 100);
        b.on_failure(0);
        b.on_failure(1);
        assert_eq!(b.state(101), BreakerState::HalfOpen);
        // Trial fails → straight back to open for another cooldown.
        b.on_failure(101);
        assert_eq!(b.state(150), BreakerState::Open);
        assert_eq!(b.retry_at(150), Some(201));
        // Trial succeeds → fully closed, counter reset.
        b.on_success();
        assert_eq!(b.state(202), BreakerState::Closed);
        b.on_failure(300);
        assert_eq!(b.state(300), BreakerState::Closed, "one failure after reset");
    }

    #[test]
    fn open_close_transitions_drive_full_rate_tracing() {
        let _g = serialize_full_rate();
        assert!(
            !btpub_obs::trace::full_rate_active(),
            "serialized tripping tests leave the depth balanced"
        );
        let mut b = CircuitBreaker::new("test.adaptive", 2, 100);
        b.on_failure(0);
        assert!(!btpub_obs::trace::full_rate_active(), "below threshold");
        b.on_failure(1);
        assert!(
            btpub_obs::trace::full_rate_active(),
            "opening pushes a full-rate tracing window"
        );
        // A failed half-open trial re-trips; the existing window must
        // be kept, not double-pushed (or one pop would not restore).
        b.on_failure(101);
        assert!(btpub_obs::trace::full_rate_active());
        b.on_success();
        assert!(
            !btpub_obs::trace::full_rate_active(),
            "the close transition pops exactly the one window"
        );
        // Routine successes on a closed breaker pop nothing.
        b.on_success();
        assert!(!btpub_obs::trace::full_rate_active());
    }

    #[test]
    fn success_resets_consecutive_count() {
        let mut b = CircuitBreaker::new("test.reset", 3, 10);
        for t in 0..10 {
            b.on_failure(t);
            b.on_failure(t);
            b.on_success();
        }
        assert_eq!(b.state(20), BreakerState::Closed, "never trips with resets");
    }

    #[test]
    fn tracker_breaker_trips_well_before_blacklist() {
        let b = CircuitBreaker::tracker();
        // TrackerSim blacklists after 20 strikes; the breaker must open
        // far earlier to protect the campaign.
        assert!(b.threshold <= 10);
        assert!(b.cooldown_secs >= 600, "cooldown at least one announce interval");
    }
}
