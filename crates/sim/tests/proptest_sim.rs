//! Property tests for the simulator's core data structures.

use btpub_sim::intervals::IntervalSet;
use btpub_sim::publisher::PublisherId;
use btpub_sim::swarm::{PeerRecord, SwarmTrace};
use btpub_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_peer() -> impl Strategy<Value = PeerRecord> {
    (
        any::<u32>(),
        0u64..500_000,
        1u64..100_000,
        0u64..100_000,
        any::<bool>(),
        proptest::option::of(Just(())),
    )
        .prop_map(|(ip, arrival, dl, linger, natted, completes)| {
            let arrival = SimTime(arrival);
            match completes {
                Some(()) => {
                    let completed = arrival + SimDuration(dl);
                    PeerRecord {
                        ip,
                        arrival,
                        completed: Some(completed),
                        departure: completed + SimDuration(linger),
                        natted,
                        abort_progress: 1.0,
                    }
                }
                None => PeerRecord {
                    ip,
                    arrival,
                    completed: None,
                    departure: arrival + SimDuration(dl),
                    natted,
                    abort_progress: 0.3,
                },
            }
        })
}

proptest! {
    /// The O(log n) indexed counts must agree with a brute-force scan at
    /// arbitrary probe times, for arbitrary peer traces.
    #[test]
    fn counts_match_bruteforce(
        peers in proptest::collection::vec(arb_peer(), 0..120),
        probes in proptest::collection::vec(0u64..700_000, 20),
    ) {
        let trace = SwarmTrace::new(
            PublisherId(0),
            0,
            SimTime(0),
            SimTime(0),
            IntervalSet::new(),
            None,
            peers.clone(),
        );
        for probe in probes {
            let t = SimTime(probe);
            let active = peers.iter().filter(|p| p.active(t)).count();
            let seeding = peers.iter().filter(|p| p.seeding(t)).count();
            prop_assert_eq!(trace.active_count(t), active);
            prop_assert_eq!(trace.seeder_count(t), seeding);
            prop_assert_eq!(trace.leecher_count(t), active - seeding);
        }
    }

    /// Samples are always active, distinct, and at most `want`.
    #[test]
    fn samples_are_valid(
        peers in proptest::collection::vec(arb_peer(), 1..150),
        probe in 0u64..700_000,
        want in 1usize..64,
        seed in any::<u64>(),
    ) {
        let trace = SwarmTrace::new(
            PublisherId(0), 0, SimTime(0), SimTime(0), IntervalSet::new(), None, peers,
        );
        let t = SimTime(probe);
        let mut rng = btpub_sim::rngs::derive(seed, "prop", 0);
        let sample = trace.sample_active(t, want, &mut rng);
        prop_assert!(sample.len() <= want);
        prop_assert!(sample.len() <= trace.active_count(t));
        prop_assert!(sample.iter().all(|p| p.active(t)));
        // Distinct records (by pointer identity via arrival+ip pair).
        let mut keys: Vec<(u64, u32)> = sample.iter().map(|p| (p.arrival.0, p.ip)).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        // Duplicate (arrival, ip) pairs can exist in the input; the sample
        // may legitimately contain two identical-looking records, so only
        // check when all inputs are unique.
        if before == trace.peers().iter().map(|p| (p.arrival.0, p.ip)).collect::<std::collections::HashSet<_>>().len() {
            prop_assert_eq!(keys.len(), before);
        }
    }

    /// Peer completion is monotone in time and bounded.
    #[test]
    fn completion_monotone(peer in arb_peer(), a in 0u64..700_000, b in 0u64..700_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let c_lo = peer.completion(SimTime(lo));
        let c_hi = peer.completion(SimTime(hi));
        prop_assert!((0.0..=1.0).contains(&c_lo));
        prop_assert!((0.0..=1.0).contains(&c_hi));
        prop_assert!(c_hi >= c_lo - 1e-12);
    }
}
