//! Publisher behavioural profiles.
//!
//! The paper's central finding is that the publisher population decomposes
//! into a handful of behavioural classes with sharply different signatures
//! (§4). Each profile here carries the parameters that generate that
//! signature: content popularity, seeding discipline, address structure and
//! consumption. Defaults are calibrated so the analysis pipeline recovers
//! the paper's Figures 3–4 shapes; every knob is public so experiments can
//! ablate them.

use serde::{Deserialize, Serialize};

use crate::content::{
    CategoryMix, MIX_ALL, MIX_ALTRUISTIC, MIX_FAKE, MIX_OTHER_WEB, MIX_TOP_CI, MIX_TOP_HP,
};

/// The five behavioural profiles of the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Profile {
    /// Antipiracy agencies and malware spreaders publishing fake content
    /// from a few hosting providers under many throwaway usernames.
    Fake,
    /// Top publisher renting servers at a hosting provider.
    TopHosting,
    /// Top publisher operating from a residential/commercial ISP.
    TopCommercial,
    /// Average user who occasionally publishes (the long tail).
    Regular,
}

impl Profile {
    /// Whether this profile is part of the paper's "Top" group.
    pub fn is_top(self) -> bool {
        matches!(self, Profile::TopHosting | Profile::TopCommercial)
    }
}

/// What kind of organisation runs a fake publisher (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FakeKind {
    /// Publishes decoys named after copyrighted content it protects.
    Antipiracy,
    /// Publishes catchy titles that lead to malware.
    Malware,
}

/// Business classification of a top publisher (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusinessClass {
    /// Owns a (often private-tracker) BitTorrent portal: 26 % of top,
    /// 18 % of content, 29 % of downloads.
    BtPortal,
    /// Owns an image-hosting / forum / other site: 24 % of top, mostly porn.
    OtherWeb,
    /// No promoting URL found: 52 % of top.
    Altruistic,
}

impl BusinessClass {
    /// Whether the class promotes a URL for profit.
    pub fn is_profit_driven(self) -> bool {
        !matches!(self, BusinessClass::Altruistic)
    }

    /// Display label as used in Tables 4–5.
    pub fn label(self) -> &'static str {
        match self {
            BusinessClass::BtPortal => "BT Portals",
            BusinessClass::OtherWeb => "Other Web sites",
            BusinessClass::Altruistic => "Altruistic Publishers",
        }
    }
}

/// Behavioural parameters for one profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileParams {
    /// Log-normal `mu` of per-torrent downloader count (before the
    /// scenario-wide `downloads_scale` factor).
    pub popularity_mu: f64,
    /// Log-normal `sigma` of per-torrent downloader count.
    pub popularity_sigma: f64,
    /// Log-normal `mu` of per-torrent publisher seeding time, in hours.
    pub seed_hours_mu: f64,
    /// Log-normal `sigma` of per-torrent seeding time.
    pub seed_hours_sigma: f64,
    /// Whether the publisher's sessions follow a diurnal on/off pattern
    /// (residential users) rather than continuous server uptime.
    pub diurnal: bool,
    /// Probability the publisher is behind a NAT (hosting: 0).
    pub nat_prob: f64,
    /// Contents the publisher *downloads* per day (top-HP ≈ 0: the paper
    /// found 40 % of top IPs download nothing).
    pub consumption_per_day: f64,
    /// Popularity decay constant of published swarms, in days.
    pub popularity_tau_days: f64,
}

impl ProfileParams {
    /// Calibrated defaults per profile (see module docs).
    pub fn default_for(profile: Profile) -> ProfileParams {
        match profile {
            // Fake swarms draw a burst of victims while listed, then die
            // when the portal moderators remove them; the entity seeds for
            // days regardless because nobody else ever seeds a fake file.
            // Low median popularity (moderators kill the listings and
            // users warn each other) but a heavy tail (catchy blockbuster
            // names fool crowds before takedown), so fake publishers hold
            // ~25 % of downloads while their per-torrent median is the
            // lowest of all groups (Figure 3 vs §3.3).
            Profile::Fake => ProfileParams {
                popularity_mu: 4.2,
                popularity_sigma: 2.0,
                seed_hours_mu: 80.0f64.ln(),
                seed_hours_sigma: 0.5,
                diurnal: false,
                nat_prob: 0.0,
                consumption_per_day: 0.0,
                popularity_tau_days: 2.0,
            },
            Profile::TopHosting => ProfileParams {
                popularity_mu: 6.15,
                popularity_sigma: 0.85,
                seed_hours_mu: 14.0f64.ln(),
                seed_hours_sigma: 0.6,
                diurnal: false,
                nat_prob: 0.0,
                consumption_per_day: 0.02,
                popularity_tau_days: 5.0,
            },
            Profile::TopCommercial => ProfileParams {
                popularity_mu: 5.75,
                popularity_sigma: 0.85,
                seed_hours_mu: 8.0f64.ln(),
                seed_hours_sigma: 0.6,
                diurnal: true,
                nat_prob: 0.45,
                consumption_per_day: 0.2,
                popularity_tau_days: 5.0,
            },
            Profile::Regular => ProfileParams {
                popularity_mu: 4.2,
                popularity_sigma: 1.4,
                seed_hours_mu: 5.0f64.ln(),
                seed_hours_sigma: 0.8,
                diurnal: true,
                nat_prob: 0.6,
                consumption_per_day: 1.2,
                popularity_tau_days: 4.0,
            },
        }
    }

    /// Category mix for a publisher with this profile and business class.
    pub fn category_mix(
        profile: Profile,
        business: Option<BusinessClass>,
        fake: Option<FakeKind>,
    ) -> CategoryMix {
        match (profile, business, fake) {
            (Profile::Fake, _, _) => MIX_FAKE,
            (_, Some(BusinessClass::OtherWeb), _) => MIX_OTHER_WEB,
            (_, Some(BusinessClass::Altruistic), _) => MIX_ALTRUISTIC,
            (Profile::TopHosting, _, _) => MIX_TOP_HP,
            (Profile::TopCommercial, _, _) => MIX_TOP_CI,
            (Profile::Regular, _, _) => MIX_ALL,
        }
    }
}

/// The full parameter set, one entry per profile, carried by the scenario
/// config so experiments can override any of them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileParamsSet {
    /// Parameters for [`Profile::Fake`].
    pub fake: ProfileParams,
    /// Parameters for [`Profile::TopHosting`].
    pub top_hosting: ProfileParams,
    /// Parameters for [`Profile::TopCommercial`].
    pub top_commercial: ProfileParams,
    /// Parameters for [`Profile::Regular`].
    pub regular: ProfileParams,
}

impl Default for ProfileParamsSet {
    fn default() -> Self {
        ProfileParamsSet {
            fake: ProfileParams::default_for(Profile::Fake),
            top_hosting: ProfileParams::default_for(Profile::TopHosting),
            top_commercial: ProfileParams::default_for(Profile::TopCommercial),
            regular: ProfileParams::default_for(Profile::Regular),
        }
    }
}

impl ProfileParamsSet {
    /// Parameters for a profile.
    pub fn get(&self, profile: Profile) -> &ProfileParams {
        match profile {
            Profile::Fake => &self.fake,
            Profile::TopHosting => &self.top_hosting,
            Profile::TopCommercial => &self.top_commercial,
            Profile::Regular => &self.regular,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_encode_paper_orderings() {
        let set = ProfileParamsSet::default();
        // Figure 4a: fake seeding time ≫ top-HP > top-CI > regular.
        assert!(set.fake.seed_hours_mu > set.top_hosting.seed_hours_mu);
        assert!(set.top_hosting.seed_hours_mu > set.top_commercial.seed_hours_mu);
        assert!(set.top_commercial.seed_hours_mu > set.regular.seed_hours_mu);
        // Figure 3: top-HP median popularity > top-CI > regular.
        assert!(set.top_hosting.popularity_mu > set.top_commercial.popularity_mu);
        assert!(set.top_commercial.popularity_mu > set.regular.popularity_mu);
        // §3.1: hosting publishers consume (almost) nothing.
        assert!(set.top_hosting.consumption_per_day < 0.1);
        assert!(set.regular.consumption_per_day > 1.0);
        // Hosting servers are never NATted.
        assert_eq!(set.fake.nat_prob, 0.0);
        assert_eq!(set.top_hosting.nat_prob, 0.0);
    }

    #[test]
    fn top_group_membership() {
        assert!(Profile::TopHosting.is_top());
        assert!(Profile::TopCommercial.is_top());
        assert!(!Profile::Fake.is_top());
        assert!(!Profile::Regular.is_top());
    }

    #[test]
    fn business_class_labels_and_profit() {
        assert!(BusinessClass::BtPortal.is_profit_driven());
        assert!(BusinessClass::OtherWeb.is_profit_driven());
        assert!(!BusinessClass::Altruistic.is_profit_driven());
        assert_eq!(BusinessClass::BtPortal.label(), "BT Portals");
    }

    #[test]
    fn category_mix_dispatch() {
        use crate::content::MIX_OTHER_WEB;
        let m = ProfileParams::category_mix(
            Profile::TopHosting,
            Some(BusinessClass::OtherWeb),
            None,
        );
        assert_eq!(m, MIX_OTHER_WEB);
        let f = ProfileParams::category_mix(Profile::Fake, None, Some(FakeKind::Malware));
        assert_eq!(f, crate::content::MIX_FAKE);
    }

    #[test]
    fn params_set_get_matches_fields() {
        let set = ProfileParamsSet::default();
        assert_eq!(set.get(Profile::Fake), &set.fake);
        assert_eq!(set.get(Profile::Regular), &set.regular);
    }
}
