//! Simulated time.
//!
//! The simulation counts whole seconds from a scenario-defined epoch
//! (the start of the measurement campaign). Seconds are plenty: the finest
//! real-world cadence in the system is the tracker's 10–15 minute
//! re-announce interval.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// One minute, in simulation seconds.
pub const MINUTE: SimDuration = SimDuration(60);
/// One hour, in simulation seconds.
pub const HOUR: SimDuration = SimDuration(3600);
/// One day, in simulation seconds.
pub const DAY: SimDuration = SimDuration(86_400);

/// An instant: seconds since the scenario epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The scenario epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant `d` days after the epoch.
    pub fn from_days(d: f64) -> SimTime {
        SimTime((d * DAY.0 as f64).round() as u64)
    }

    /// Builds an instant `h` hours after the epoch.
    pub fn from_hours(h: f64) -> SimTime {
        SimTime((h * HOUR.0 as f64).round() as u64)
    }

    /// Seconds since epoch.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Whole days since epoch (fractional).
    pub fn as_days(self) -> f64 {
        self.0 as f64 / DAY.0 as f64
    }

    /// Hours since epoch (fractional).
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / HOUR.0 as f64
    }

    /// Saturating difference: `self - earlier`, zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Second-of-day, used for diurnal session patterns.
    pub fn second_of_day(self) -> u64 {
        self.0 % DAY.0
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span of `h` hours.
    pub fn from_hours(h: f64) -> SimDuration {
        SimDuration((h * HOUR.0 as f64).round() as u64)
    }

    /// Builds a span of `d` days.
    pub fn from_days(d: f64) -> SimDuration {
        SimDuration((d * DAY.0 as f64).round() as u64)
    }

    /// Builds a span of `m` minutes.
    pub fn from_mins(m: f64) -> SimDuration {
        SimDuration((m * MINUTE.0 as f64).round() as u64)
    }

    /// Length in seconds.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Length in fractional hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / HOUR.0 as f64
    }

    /// Length in fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / DAY.0 as f64
    }

    /// Scales the span by a non-negative factor.
    pub fn scale(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "negative scale");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

fn fmt_day_hms(s: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let (d, rem) = (s / DAY.0, s % DAY.0);
    write!(
        f,
        "{}d+{:02}:{:02}:{:02}",
        d,
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_day_hms(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_day_hms(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_days(1.0).secs(), 86_400);
        assert_eq!(SimTime::from_hours(2.5).secs(), 9000);
        assert_eq!(SimDuration::from_mins(15.0).secs(), 900);
        assert!((SimTime(86_400 * 3 / 2).as_days() - 1.5).abs() < 1e-12);
        assert!((SimDuration(5400).as_hours() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimDuration(200), SimTime(0), "saturates at epoch");
        assert_eq!(SimTime(300).since(SimTime(100)), SimDuration(200));
        assert_eq!(SimTime(100).since(SimTime(300)), SimDuration::ZERO);
        assert_eq!(
            SimDuration(10) + SimDuration(5) - SimDuration(3),
            SimDuration(12)
        );
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(SimDuration(100).scale(0.5), SimDuration(50));
        assert_eq!(SimDuration(3).scale(0.5), SimDuration(2)); // 1.5 rounds to 2
        assert_eq!(SimDuration(0).scale(9.0), SimDuration::ZERO);
    }

    #[test]
    fn second_of_day_wraps() {
        assert_eq!(SimTime(86_400 + 7).second_of_day(), 7);
        assert_eq!(SimTime(7).second_of_day(), 7);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime(90_061).to_string(), "1d+01:01:01");
        assert_eq!(SimDuration(59).to_string(), "0d+00:00:59");
    }

    #[test]
    #[should_panic(expected = "negative scale")]
    fn negative_scale_panics() {
        let _ = SimDuration(1).scale(-1.0);
    }
}
