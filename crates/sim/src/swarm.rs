//! Per-torrent swarm traces.
//!
//! Rather than simulating every peer as an event-driven actor (which at
//! pb10 scale would mean tens of millions of events), each swarm is a
//! *trace*: the full arrival/completion/departure schedule of its peers,
//! generated once at publication time and queried analytically afterwards.
//! The tracker samples it, the crawler's bitfield probes interpolate
//! download progress from it, and the analysis validates against it as
//! ground truth. DESIGN.md §5 benches this choice against the event-driven
//! alternative.

use btpub_fxhash::FxHashSet;
use rand::rngs::StdRng;
use rand::Rng;

use crate::intervals::IntervalSet;
use crate::publisher::PublisherId;
use crate::rngs;
use crate::time::{SimDuration, SimTime};

/// One downloader in a swarm trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerRecord {
    /// IPv4 address as a `u32`.
    pub ip: u32,
    /// When the peer joined the swarm.
    pub arrival: SimTime,
    /// When the peer finished downloading (became a seeder); `None` for
    /// peers that abort — every downloader of fake content aborts.
    pub completed: Option<SimTime>,
    /// When the peer left the swarm.
    pub departure: SimTime,
    /// Whether the peer is behind a NAT (unreachable for bitfield probes).
    pub natted: bool,
    /// Download progress reached at departure for aborting peers.
    pub abort_progress: f32,
}

impl PeerRecord {
    /// Whether the peer is in the swarm at `t`.
    pub fn active(&self, t: SimTime) -> bool {
        self.arrival <= t && t < self.departure
    }

    /// Whether the peer is a seeder at `t`.
    pub fn seeding(&self, t: SimTime) -> bool {
        self.active(t) && self.completed.is_some_and(|c| c <= t)
    }

    /// Download completion in [0, 1] at time `t` (linear interpolation).
    pub fn completion(&self, t: SimTime) -> f64 {
        if t < self.arrival {
            return 0.0;
        }
        match self.completed {
            Some(c) => {
                if t >= c {
                    1.0
                } else {
                    let total = c.since(self.arrival).secs().max(1);
                    t.since(self.arrival).secs() as f64 / total as f64
                }
            }
            None => {
                let total = self.departure.since(self.arrival).secs().max(1);
                let frac = (t.since(self.arrival).secs() as f64 / total as f64).min(1.0);
                f64::from(self.abort_progress) * frac
            }
        }
    }
}

/// Reusable buffers for [`SwarmTrace::sample_active_into`]. One per
/// announce loop (the tracker owns one); `clear()` is implicit.
#[derive(Debug, Default)]
pub struct SampleScratch {
    /// Window-relative indices picked by the sampling core.
    idxs: Vec<usize>,
    /// Dedup set for the rejection-sampling branch. Hash order is never
    /// observed — the set only answers "seen this index?" — so the
    /// deterministic-but-unordered FxHashSet is safe here.
    picked: FxHashSet<usize>,
}

/// The complete trace of one swarm.
#[derive(Debug, Clone)]
pub struct SwarmTrace {
    /// The publishing entity.
    pub publisher: PublisherId,
    /// Index of this torrent within the publisher's output (selects the
    /// server in a multi-server address plan).
    pub pub_seq: u32,
    /// When the torrent appeared on the portal (RSS announcement).
    pub announce_at: SimTime,
    /// When the swarm actually started. Earlier than `announce_at` for
    /// torrents cross-posted on other portals first — the paper's
    /// "already published in other portals" case where IP identification
    /// fails.
    pub birth: SimTime,
    /// The publisher's seeding sessions (ground truth for Figure 4).
    pub sessions: IntervalSet,
    /// When the portal removed the content (fake torrents only).
    pub removal_at: Option<SimTime>,
    /// Peers sorted by arrival time.
    peers: Vec<PeerRecord>,
    /// All departures, sorted (for O(log n) active counts).
    departures: Vec<u64>,
    /// All completion times, sorted.
    completions: Vec<u64>,
    /// Departures of completing peers only, sorted.
    completer_departures: Vec<u64>,
    /// Longest peer residency, bounding the arrival window scan.
    max_residency: u64,
    /// How many of the publishing entity's servers seed this torrent in
    /// parallel (1 for normal publishers; fake entities often use several,
    /// which defeats the crawler's single-seeder identification — the
    /// reason most fake content has no identified IP in the datasets).
    publisher_seed_count: u8,
}

impl SwarmTrace {
    /// Builds a trace from raw peers (any order).
    pub fn new(
        publisher: PublisherId,
        pub_seq: u32,
        announce_at: SimTime,
        birth: SimTime,
        sessions: IntervalSet,
        removal_at: Option<SimTime>,
        mut peers: Vec<PeerRecord>,
    ) -> Self {
        assert!(birth <= announce_at, "birth after announcement");
        peers.sort_by_key(|p| p.arrival);
        // One counting scan buys exact capacities, then a single pass
        // fills all three schedules and the residency bound together.
        let completers = peers.iter().filter(|p| p.completed.is_some()).count();
        let mut departures: Vec<u64> = Vec::with_capacity(peers.len());
        let mut completions: Vec<u64> = Vec::with_capacity(completers);
        let mut completer_departures: Vec<u64> = Vec::with_capacity(completers);
        let mut max_residency = 0u64;
        for p in &peers {
            departures.push(p.departure.0);
            if let Some(c) = p.completed {
                completions.push(c.0);
                completer_departures.push(p.departure.0);
            }
            max_residency = max_residency.max(p.departure.since(p.arrival).secs());
        }
        departures.sort_unstable();
        completions.sort_unstable();
        completer_departures.sort_unstable();
        SwarmTrace {
            publisher,
            pub_seq,
            announce_at,
            birth,
            sessions,
            removal_at,
            peers,
            departures,
            completions,
            completer_departures,
            max_residency,
            publisher_seed_count: 1,
        }
    }

    /// Sets how many entity servers seed this torrent in parallel.
    pub fn set_publisher_seed_count(&mut self, n: u8) {
        assert!(n >= 1, "at least one seeding server");
        self.publisher_seed_count = n;
    }

    /// Number of entity servers seeding this torrent while the publisher
    /// session is active.
    pub fn publisher_seed_count(&self) -> u8 {
        self.publisher_seed_count
    }

    /// Total downloaders over the swarm's life ("popularity" in the paper:
    /// downloaders regardless of progress).
    pub fn downloads(&self) -> usize {
        self.peers.len()
    }

    /// All peers, sorted by arrival.
    pub fn peers(&self) -> &[PeerRecord] {
        &self.peers
    }

    /// Whether the publisher is seeding at `t`.
    pub fn publisher_seeding(&self, t: SimTime) -> bool {
        self.sessions.contains(t)
    }

    /// Number of non-publisher peers in the swarm at `t` — O(log n).
    pub fn active_count(&self, t: SimTime) -> usize {
        let arrived = self.peers.partition_point(|p| p.arrival <= t);
        let departed = self.departures.partition_point(|&d| d <= t.0);
        arrived - departed
    }

    /// Number of non-publisher seeders at `t` — O(log n).
    pub fn seeder_count(&self, t: SimTime) -> usize {
        let completed = self.completions.partition_point(|&c| c <= t.0);
        let gone = self.completer_departures.partition_point(|&d| d <= t.0);
        completed - gone
    }

    /// Leechers (active non-seeders) at `t`.
    pub fn leecher_count(&self, t: SimTime) -> usize {
        self.active_count(t) - self.seeder_count(t)
    }

    /// Instant after which nothing ever happens again in this swarm.
    pub fn end_of_activity(&self) -> SimTime {
        let last_peer = self.departures.last().copied().unwrap_or(0);
        let last_session = self.sessions.end().map_or(0, |t| t.0);
        SimTime(last_peer.max(last_session))
    }

    /// Samples up to `want` distinct active peers at `t`, uniformly.
    ///
    /// Mirrors a tracker's random peer-list selection. The publisher is
    /// *not* included — the tracker layer adds it, because only the
    /// tracker knows the publisher's current address.
    ///
    /// Allocates per call; the announce fast path uses
    /// [`sample_active_into`](Self::sample_active_into) with a reusable
    /// [`SampleScratch`] instead. Both run the same core, so they draw
    /// the same RNG sequence and pick the same peers.
    pub fn sample_active(&self, t: SimTime, want: usize, rng: &mut StdRng) -> Vec<&PeerRecord> {
        let mut scratch = SampleScratch::default();
        let window = self.sample_core(t, want, rng, &mut scratch);
        scratch.idxs.iter().map(|&i| &window[i]).collect()
    }

    /// Allocation-free sampling: picked peers are appended (copied) to
    /// `out`, reusing `scratch` across calls. Steady-state announces
    /// perform no heap allocation once the buffers have warmed up.
    pub fn sample_active_into(
        &self,
        t: SimTime,
        want: usize,
        rng: &mut StdRng,
        scratch: &mut SampleScratch,
        out: &mut Vec<PeerRecord>,
    ) {
        let window = self.sample_core(t, want, rng, scratch);
        out.extend(scratch.idxs.iter().map(|&i| window[i]));
    }

    /// Shared selection core: fills `scratch.idxs` with the picked
    /// window-relative indices and returns the arrival window.
    fn sample_core(
        &self,
        t: SimTime,
        want: usize,
        rng: &mut StdRng,
        scratch: &mut SampleScratch,
    ) -> &[PeerRecord] {
        scratch.idxs.clear();
        let active = self.active_count(t);
        if active == 0 || want == 0 {
            return &[];
        }
        // All active peers arrived within the residency window.
        let window_start = t - SimDuration(self.max_residency);
        let lo = self.peers.partition_point(|p| p.arrival < window_start);
        let hi = self.peers.partition_point(|p| p.arrival <= t);
        let window = &self.peers[lo..hi];
        if active <= want || window.len() <= want * 4 {
            // Small case: collect all active, then subsample if needed.
            scratch
                .idxs
                .extend(window.iter().enumerate().filter(|(_, p)| p.active(t)).map(|(i, _)| i));
            if scratch.idxs.len() > want {
                // Partial Fisher-Yates for a uniform subset.
                for i in 0..want {
                    let j = rng.gen_range(i..scratch.idxs.len());
                    scratch.idxs.swap(i, j);
                }
                scratch.idxs.truncate(want);
            }
            return window;
        }
        // Large case: rejection-sample indices in the window.
        scratch.picked.clear();
        let mut attempts = 0usize;
        let max_attempts = want * 40;
        while scratch.idxs.len() < want && attempts < max_attempts {
            attempts += 1;
            let idx = rng.gen_range(0..window.len());
            if window[idx].active(t) && scratch.picked.insert(idx) {
                scratch.idxs.push(idx);
            }
        }
        window
    }

    /// Finds an active peer with address `ip` at `t` (bitfield probing).
    pub fn peer_by_ip(&self, ip: u32, t: SimTime) -> Option<&PeerRecord> {
        let window_start = t - SimDuration(self.max_residency);
        let lo = self.peers.partition_point(|p| p.arrival < window_start);
        let hi = self.peers.partition_point(|p| p.arrival <= t);
        self.peers[lo..hi]
            .iter()
            .find(|p| p.ip == ip && p.active(t))
    }
}

/// Parameters for generating a swarm's downloader trace.
#[derive(Debug, Clone, Copy)]
pub struct PeerGenParams {
    /// Target number of downloader arrivals (before removal truncation).
    pub target_downloads: usize,
    /// Swarm birth (arrivals begin here).
    pub birth: SimTime,
    /// Hard horizon: no arrivals at or after this instant.
    pub horizon: SimTime,
    /// Arrivals stop when the portal removes the listing.
    pub removal_at: Option<SimTime>,
    /// Popularity decay constant, days.
    pub tau_days: f64,
    /// Whether the content is fake (downloaders abort, never complete).
    pub fake: bool,
    /// Payload size in bytes (drives download duration).
    pub size_bytes: u64,
    /// Probability a downloader is NATted.
    pub nat_prob: f64,
}

/// Generates downloader arrivals with an exponentially decaying rate and
/// per-peer download/seeding lifetimes.
///
/// `draw_ip(rng, t)` supplies the downloader's address (and NAT override,
/// if `Some`) — the ecosystem uses it to mix in consuming publishers.
pub fn generate_peers<F>(params: &PeerGenParams, rng: &mut StdRng, mut draw_ip: F) -> Vec<PeerRecord>
where
    F: FnMut(&mut StdRng, SimTime) -> (u32, Option<bool>),
{
    let mut peers = Vec::with_capacity(params.target_downloads);
    let tau = params.tau_days * 86_400.0;
    let window = params.horizon.since(params.birth).secs() as f64;
    if window <= 0.0 {
        return peers;
    }
    // Truncated-exponential arrival offsets over [0, window).
    let trunc_mass = 1.0 - (-window / tau).exp();
    for _ in 0..params.target_downloads {
        let u: f64 = rng.gen_range(0.0..1.0);
        let offset = -tau * (1.0 - u * trunc_mass).ln();
        let arrival = params.birth + SimDuration(offset as u64);
        if let Some(removal) = params.removal_at {
            if arrival >= removal {
                continue; // the listing is gone; nobody finds the torrent
            }
        }
        if arrival >= params.horizon {
            continue;
        }
        let (ip, nat_override) = draw_ip(rng, arrival);
        let natted = nat_override.unwrap_or_else(|| rng.gen_bool(params.nat_prob));
        // Download duration: size / speed, speed log-normal with median
        // 250 KB/s, clamped to [10 min, 5 days].
        let speed = rngs::lognormal(rng, (250.0f64 * 1024.0).ln(), 0.9);
        let dl_secs = (params.size_bytes as f64 / speed).clamp(600.0, 5.0 * 86_400.0);
        let peer = if params.fake {
            // Victims notice the content is fake part-way and abort.
            let progress = rng.gen_range(0.05..0.6);
            let abort_after = SimDuration((dl_secs * progress) as u64);
            PeerRecord {
                ip,
                arrival,
                completed: None,
                departure: arrival + abort_after + SimDuration(60),
                natted,
                abort_progress: progress as f32,
            }
        } else {
            let completed = arrival + SimDuration(dl_secs as u64);
            // Seeding linger after completion: mostly short, heavy tail.
            let linger_h = match rng.gen_range(0u8..20) {
                0..=15 => rngs::lognormal(rng, 0.5f64.ln(), 0.8),
                16..=18 => rngs::lognormal(rng, 3.0f64.ln(), 0.6),
                _ => rngs::lognormal(rng, 20.0f64.ln(), 0.5),
            };
            let linger = SimDuration::from_hours(linger_h.min(36.0 * 24.0));
            PeerRecord {
                ip,
                arrival,
                completed: Some(completed),
                departure: completed + linger,
                natted,
                abort_progress: 1.0,
            }
        };
        peers.push(peer);
    }
    peers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::derive;
    use crate::time::{DAY, HOUR};

    fn mk_peer(ip: u32, arrive: u64, complete: Option<u64>, depart: u64) -> PeerRecord {
        PeerRecord {
            ip,
            arrival: SimTime(arrive),
            completed: complete.map(SimTime),
            departure: SimTime(depart),
            natted: false,
            abort_progress: if complete.is_some() { 1.0 } else { 0.3 },
        }
    }

    fn trace(peers: Vec<PeerRecord>) -> SwarmTrace {
        SwarmTrace::new(
            PublisherId(0),
            0,
            SimTime(0),
            SimTime(0),
            IntervalSet::from_raw([(SimTime(0), SimTime(1000))]),
            None,
            peers,
        )
    }

    #[test]
    fn counts_match_brute_force() {
        let peers = vec![
            mk_peer(1, 0, Some(50), 100),
            mk_peer(2, 10, Some(80), 90),
            mk_peer(3, 20, None, 60),
            mk_peer(4, 200, Some(300), 400),
        ];
        let tr = trace(peers.clone());
        for t in [0u64, 5, 15, 49, 55, 85, 95, 150, 250, 350, 450] {
            let t = SimTime(t);
            let active = peers.iter().filter(|p| p.active(t)).count();
            let seeding = peers.iter().filter(|p| p.seeding(t)).count();
            assert_eq!(tr.active_count(t), active, "active at {t:?}");
            assert_eq!(tr.seeder_count(t), seeding, "seeders at {t:?}");
            assert_eq!(tr.leecher_count(t), active - seeding, "leechers at {t:?}");
        }
    }

    #[test]
    fn completion_interpolates() {
        let p = mk_peer(1, 100, Some(200), 300);
        assert_eq!(p.completion(SimTime(50)), 0.0);
        assert!((p.completion(SimTime(150)) - 0.5).abs() < 1e-9);
        assert_eq!(p.completion(SimTime(200)), 1.0);
        assert_eq!(p.completion(SimTime(9999)), 1.0);
        let aborter = mk_peer(2, 100, None, 200);
        let c = aborter.completion(SimTime(150));
        assert!((c - 0.15).abs() < 1e-6, "half of 0.3 cap, got {c}");
        assert!(aborter.completion(SimTime(500)) <= 0.3 + 1e-6);
    }

    #[test]
    fn sampling_returns_only_active_unique_peers() {
        let peers: Vec<PeerRecord> = (0..500)
            .map(|i| mk_peer(i, u64::from(i), Some(u64::from(i) + 50), u64::from(i) + 100))
            .collect();
        let tr = trace(peers);
        let mut rng = derive(1, "sample", 0);
        let t = SimTime(250);
        let sample = tr.sample_active(t, 50, &mut rng);
        assert_eq!(sample.len(), 50);
        let mut ips: Vec<u32> = sample.iter().map(|p| p.ip).collect();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), 50, "no duplicates");
        assert!(sample.iter().all(|p| p.active(t)));
    }

    #[test]
    fn sampling_small_swarm_returns_everyone() {
        let tr = trace(vec![mk_peer(1, 0, Some(50), 100), mk_peer(2, 0, Some(60), 120)]);
        let mut rng = derive(2, "sample", 0);
        assert_eq!(tr.sample_active(SimTime(10), 200, &mut rng).len(), 2);
        assert!(tr.sample_active(SimTime(500), 200, &mut rng).is_empty());
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // 1000 peers active; sample 100 many times; each peer's hit rate
        // should be near 10%.
        let peers: Vec<PeerRecord> = (0..1000).map(|i| mk_peer(i, 0, Some(10), 10_000)).collect();
        let tr = trace(peers);
        let mut rng = derive(3, "sample", 0);
        let mut hits = vec![0u32; 1000];
        for _ in 0..200 {
            for p in tr.sample_active(SimTime(100), 100, &mut rng) {
                hits[p.ip as usize] += 1;
            }
        }
        let mean = hits.iter().sum::<u32>() as f64 / 1000.0;
        assert!((mean - 20.0).abs() < 2.0, "mean hits {mean}");
        let min = *hits.iter().min().unwrap();
        let max = *hits.iter().max().unwrap();
        assert!(min > 0, "some peer never sampled");
        assert!(max < 60, "some peer oversampled: {max}");
    }

    #[test]
    fn sample_into_matches_allocating_version() {
        // The scratch-buffer sampler must draw the same RNG sequence and
        // pick the same peers as the allocating one — exercise both the
        // small (Fisher-Yates) and large (rejection) branches.
        let peers: Vec<PeerRecord> = (0..4000)
            .map(|i| mk_peer(i, u64::from(i % 337), Some(u64::from(i) + 5_000), u64::from(i) + 20_000))
            .collect();
        let tr = trace(peers);
        let mut scratch = SampleScratch::default();
        let mut out = Vec::new();
        for (t, want) in [(100u64, 3000usize), (400, 25), (300, 0), (90_000, 10)] {
            let t = SimTime(t);
            let mut rng_a = derive(11, "eq", t.0);
            let mut rng_b = derive(11, "eq", t.0);
            let alloc: Vec<PeerRecord> =
                tr.sample_active(t, want, &mut rng_a).into_iter().copied().collect();
            out.clear();
            tr.sample_active_into(t, want, &mut rng_b, &mut scratch, &mut out);
            assert_eq!(alloc, out, "t={t:?} want={want}");
            // Both RNGs must be in the same state afterwards.
            assert_eq!(rng_a.gen_range(0..u64::MAX), rng_b.gen_range(0..u64::MAX));
        }
    }

    #[test]
    fn peer_by_ip_respects_activity() {
        let tr = trace(vec![mk_peer(77, 100, Some(200), 300)]);
        assert!(tr.peer_by_ip(77, SimTime(150)).is_some());
        assert!(tr.peer_by_ip(77, SimTime(50)).is_none());
        assert!(tr.peer_by_ip(77, SimTime(300)).is_none());
        assert!(tr.peer_by_ip(78, SimTime(150)).is_none());
    }

    #[test]
    fn end_of_activity_covers_sessions_and_peers() {
        let tr = SwarmTrace::new(
            PublisherId(0),
            0,
            SimTime(0),
            SimTime(0),
            IntervalSet::from_raw([(SimTime(0), SimTime(5000))]),
            None,
            vec![mk_peer(1, 0, Some(50), 100)],
        );
        assert_eq!(tr.end_of_activity(), SimTime(5000));
    }

    #[test]
    fn generate_peers_respects_removal_and_horizon() {
        let mut rng = derive(4, "gen", 0);
        let params = PeerGenParams {
            target_downloads: 2000,
            birth: SimTime(0),
            horizon: SimTime(30 * DAY.0),
            removal_at: Some(SimTime(DAY.0)), // removed after 1 day
            tau_days: 2.0,
            fake: true,
            size_bytes: 700 << 20,
            nat_prob: 0.5,
        };
        let peers = generate_peers(&params, &mut rng, |_, _| (1234, None));
        assert!(!peers.is_empty());
        assert!(peers.len() < 2000, "removal truncates arrivals");
        assert!(peers.iter().all(|p| p.arrival < SimTime(DAY.0)));
        assert!(peers.iter().all(|p| p.completed.is_none()), "fake: none complete");
        assert!(peers.iter().all(|p| p.abort_progress < 0.6001));
    }

    #[test]
    fn generate_peers_decays_over_time() {
        let mut rng = derive(5, "gen", 0);
        let params = PeerGenParams {
            target_downloads: 5000,
            birth: SimTime(0),
            horizon: SimTime(20 * DAY.0),
            removal_at: None,
            tau_days: 3.0,
            fake: false,
            size_bytes: 300 << 20,
            nat_prob: 0.6,
        };
        let peers = generate_peers(&params, &mut rng, |_, _| (1, None));
        let first_3d = peers.iter().filter(|p| p.arrival < SimTime(3 * DAY.0)).count();
        let last_10d = peers
            .iter()
            .filter(|p| p.arrival >= SimTime(10 * DAY.0))
            .count();
        assert!(
            first_3d > last_10d * 5,
            "front-loaded arrivals: {first_3d} vs {last_10d}"
        );
        // Non-fake peers complete and then depart.
        assert!(peers.iter().all(|p| p.completed.is_some()));
        assert!(peers.iter().all(|p| p.departure > p.completed.unwrap()));
        // NAT share near the configured probability.
        let nat_share =
            peers.iter().filter(|p| p.natted).count() as f64 / peers.len() as f64;
        assert!((nat_share - 0.6).abs() < 0.05, "nat share {nat_share}");
    }

    #[test]
    fn generate_peers_nat_override_wins() {
        let mut rng = derive(6, "gen", 0);
        let params = PeerGenParams {
            target_downloads: 100,
            birth: SimTime(0),
            horizon: SimTime(5 * DAY.0),
            removal_at: None,
            tau_days: 2.0,
            fake: false,
            size_bytes: 1 << 20,
            nat_prob: 1.0,
        };
        let peers = generate_peers(&params, &mut rng, |_, _| (9, Some(false)));
        assert!(peers.iter().all(|p| !p.natted));
    }

    #[test]
    fn download_durations_scale_with_size() {
        let mut rng = derive(7, "gen", 0);
        let small = PeerGenParams {
            target_downloads: 300,
            birth: SimTime(0),
            horizon: SimTime(5 * DAY.0),
            removal_at: None,
            tau_days: 2.0,
            fake: false,
            size_bytes: 5 << 20, // 5 MB
            nat_prob: 0.0,
        };
        let big = PeerGenParams {
            size_bytes: 4 << 30, // 4 GB
            ..small
        };
        let avg = |peers: &[PeerRecord]| {
            peers
                .iter()
                .map(|p| p.completed.unwrap().since(p.arrival).secs())
                .sum::<u64>() as f64
                / peers.len() as f64
        };
        let small_peers = generate_peers(&small, &mut rng, |_, _| (1, None));
        let big_peers = generate_peers(&big, &mut rng, |_, _| (1, None));
        assert!(avg(&big_peers) > avg(&small_peers) * 5.0);
        // clamp floor: nothing under 10 minutes
        assert!(small_peers
            .iter()
            .all(|p| p.completed.unwrap().since(p.arrival) >= SimDuration(600)));
        let _ = HOUR;
    }

    #[test]
    #[should_panic(expected = "birth after announcement")]
    fn birth_after_announce_panics() {
        SwarmTrace::new(
            PublisherId(0),
            0,
            SimTime(0),
            SimTime(10),
            IntervalSet::new(),
            None,
            vec![],
        );
    }
}
