//! Publisher entities: identities, address plans, websites.
//!
//! A *publisher* here is the real-world entity (person, company, agency),
//! not a username: the paper's key methodological step (§3.3) is that the
//! username↔IP mapping is many-to-many — fake entities burn through
//! hundreds of throwaway usernames, while one username may appear from
//! many addresses (multiple rented servers, DHCP churn, home+work).

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use btpub_geodb::IspId;

use crate::content::{Language, PromoTechnique};
use crate::profile::{BusinessClass, FakeKind, Profile};
use crate::time::SimTime;

/// Index of a publisher in the ecosystem.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct PublisherId(pub u32);

/// How a publisher's IP address(es) are determined.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressPlan {
    /// Rented dedicated servers; torrent `n` is seeded from server
    /// `n mod k` (paper case i: ~5.7 hosting IPs per multi-IP username).
    Servers(Vec<u32>),
    /// One commercial ISP whose DHCP re-assigns the address over time
    /// (paper case ii: ~13.8 IPs within a single ISP). Entries are
    /// `(from_time, address)`, sorted by time.
    Dhcp(Vec<(SimTime, u32)>),
    /// Two DHCP schedules at different ISPs — home and work (paper case
    /// iii). Torrent parity picks the venue.
    DualDhcp {
        /// Home schedule.
        home: Vec<(SimTime, u32)>,
        /// Work schedule.
        work: Vec<(SimTime, u32)>,
    },
}

impl AddressPlan {
    /// The address this publisher would use for its `seq`-th torrent at
    /// time `t`.
    pub fn ip_for(&self, seq: u32, t: SimTime) -> Ipv4Addr {
        match self {
            AddressPlan::Servers(servers) => {
                Ipv4Addr::from(servers[(seq as usize) % servers.len()])
            }
            AddressPlan::Dhcp(schedule) => Ipv4Addr::from(lookup_schedule(schedule, t)),
            AddressPlan::DualDhcp { home, work } => {
                let schedule = if seq.is_multiple_of(2) { home } else { work };
                Ipv4Addr::from(lookup_schedule(schedule, t))
            }
        }
    }

    /// Every address the plan can ever produce (for ground-truth checks).
    pub fn all_ips(&self) -> Vec<Ipv4Addr> {
        let raw: Vec<u32> = match self {
            AddressPlan::Servers(s) => s.clone(),
            AddressPlan::Dhcp(sched) => sched.iter().map(|&(_, ip)| ip).collect(),
            AddressPlan::DualDhcp { home, work } => home
                .iter()
                .chain(work.iter())
                .map(|&(_, ip)| ip)
                .collect(),
        };
        let mut ips: Vec<Ipv4Addr> = raw.into_iter().map(Ipv4Addr::from).collect();
        ips.sort();
        ips.dedup();
        ips
    }

    /// Number of distinct addresses.
    pub fn distinct_ip_count(&self) -> usize {
        self.all_ips().len()
    }
}

fn lookup_schedule(schedule: &[(SimTime, u32)], t: SimTime) -> u32 {
    debug_assert!(!schedule.is_empty(), "empty DHCP schedule");
    let idx = schedule.partition_point(|&(from, _)| from <= t);
    // Before the first entry, use the first address.
    schedule[idx.saturating_sub(1)].1
}

/// A promoting web site owned by a profit-driven publisher (§5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Website {
    /// The promoted URL.
    pub url: String,
    /// Fraction of this publisher's downloaders who end up visiting the
    /// site per download (drives the §5.3 economics).
    pub conversion: f64,
    /// Revenue per thousand visits, in dollars (ads, donations, VIP fees).
    pub rpm_dollars: f64,
}

/// One publisher entity.
///
/// (`Serialize`-only: the `language` field borrows `'static` strings, so
/// deserialisation is intentionally unsupported — ecosystems are
/// regenerated from `(config, seed)`, never loaded from disk.)
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Publisher {
    /// Stable id.
    pub id: PublisherId,
    /// Behavioural profile.
    pub profile: Profile,
    /// Set for fake publishers.
    pub fake_kind: Option<FakeKind>,
    /// Business classification; only top publishers carry one.
    pub business: Option<BusinessClass>,
    /// Portal usernames the entity publishes under. One for normal
    /// publishers; a large pool for fake entities.
    pub usernames: Vec<String>,
    /// Primary ISP.
    pub isp: IspId,
    /// Secondary ISP for the home+work case.
    pub second_isp: Option<IspId>,
    /// Address plan.
    pub addresses: AddressPlan,
    /// Whether the publisher is behind a NAT (blocks bitfield probes).
    pub natted: bool,
    /// Promoting web site, if profit-driven.
    pub website: Option<Website>,
    /// Promotion technique(s) used.
    pub promo: Vec<PromoTechnique>,
    /// If the publisher is dedicated to a single language (40 % of the
    /// portal class; 66 % of those Spanish).
    pub language: Option<Language>,
    /// Days the account existed *before* the measurement window started
    /// (drives Table 4's longitudinal lifetime).
    pub history_days_before_window: f64,
    /// Lifetime publishing rate in contents/day, over the whole account
    /// history (Table 4).
    pub historical_rate_per_day: f64,
}

impl Publisher {
    /// The primary username (entities always have at least one).
    pub fn primary_username(&self) -> &str {
        &self.usernames[0]
    }

    /// Whether the entity belongs to the paper's profit-driven set.
    pub fn is_profit_driven(&self) -> bool {
        self.business.is_some_and(BusinessClass::is_profit_driven)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from(Ipv4Addr::new(a, b, c, d))
    }

    #[test]
    fn servers_round_robin() {
        let plan = AddressPlan::Servers(vec![ip(1, 0, 0, 1), ip(1, 0, 0, 2)]);
        assert_eq!(plan.ip_for(0, SimTime(0)), Ipv4Addr::new(1, 0, 0, 1));
        assert_eq!(plan.ip_for(1, SimTime(0)), Ipv4Addr::new(1, 0, 0, 2));
        assert_eq!(plan.ip_for(2, SimTime(999)), Ipv4Addr::new(1, 0, 0, 1));
        assert_eq!(plan.distinct_ip_count(), 2);
    }

    #[test]
    fn dhcp_schedule_lookup() {
        let plan = AddressPlan::Dhcp(vec![
            (SimTime(0), ip(2, 0, 0, 1)),
            (SimTime(100), ip(2, 0, 0, 2)),
            (SimTime(200), ip(2, 0, 0, 3)),
        ]);
        assert_eq!(plan.ip_for(0, SimTime(0)), Ipv4Addr::new(2, 0, 0, 1));
        assert_eq!(plan.ip_for(0, SimTime(99)), Ipv4Addr::new(2, 0, 0, 1));
        assert_eq!(plan.ip_for(0, SimTime(100)), Ipv4Addr::new(2, 0, 0, 2));
        assert_eq!(plan.ip_for(5, SimTime(250)), Ipv4Addr::new(2, 0, 0, 3));
    }

    #[test]
    fn dual_dhcp_picks_by_parity() {
        let plan = AddressPlan::DualDhcp {
            home: vec![(SimTime(0), ip(3, 0, 0, 1))],
            work: vec![(SimTime(0), ip(4, 0, 0, 1))],
        };
        assert_eq!(plan.ip_for(0, SimTime(0)), Ipv4Addr::new(3, 0, 0, 1));
        assert_eq!(plan.ip_for(1, SimTime(0)), Ipv4Addr::new(4, 0, 0, 1));
        assert_eq!(plan.distinct_ip_count(), 2);
    }

    #[test]
    fn all_ips_dedups() {
        let plan = AddressPlan::Dhcp(vec![
            (SimTime(0), ip(2, 0, 0, 1)),
            (SimTime(100), ip(2, 0, 0, 2)),
            (SimTime(200), ip(2, 0, 0, 1)), // address returns to the pool
        ]);
        assert_eq!(plan.distinct_ip_count(), 2);
    }
}
