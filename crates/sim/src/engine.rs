//! A small generic discrete-event engine.
//!
//! The ecosystem traces are precomputed (see [`crate::swarm`]), so the
//! event queue's customers are the *measurement* components: the crawler's
//! RSS polls and per-swarm tracker queries, and the §7 monitor daemon.
//! Events with equal timestamps pop in insertion order, which keeps runs
//! deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered event queue over an arbitrary payload type.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at the epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — that is always a logic
    /// error in the caller, and silently reordering would corrupt runs.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Runs the queue to completion (or until `horizon`), calling
    /// `handler(now, event, queue)` for each event. The handler may
    /// schedule further events.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F)
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
    {
        while let Some(at) = self.peek_time() {
            if at > horizon {
                break;
            }
            let (now, event) = self.pop().expect("peeked event exists");
            let _tick = btpub_obs::span!("sim.engine.tick");
            // The handler gets a scratch queue view via re-borrow: events it
            // schedules land in `self` after the swap dance below.
            let mut scratch = EventQueue::new();
            scratch.now = now;
            handler(now, event, &mut scratch);
            for Reverse(e) in scratch.heap.drain() {
                self.schedule(e.at, e.event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.now(), t(20));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn run_until_respects_horizon_and_reentrancy() {
        let mut q = EventQueue::new();
        q.schedule(t(0), 0u64);
        let mut seen = Vec::new();
        q.run_until(t(50), |now, ev, q2| {
            seen.push((now, ev));
            if ev < 100 {
                q2.schedule(now + crate::time::SimDuration(10), ev + 1);
            }
        });
        // Events at 0,10,20,30,40,50 fire; the one scheduled for 60 stays.
        assert_eq!(seen.len(), 6);
        assert_eq!(seen.last(), Some(&(t(50), 5)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(60)));
    }

    #[test]
    fn same_time_rescheduling_runs_this_pass() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 0);
        let mut count = 0;
        q.run_until(t(5), |now, ev, q2| {
            count += 1;
            if ev == 0 {
                q2.schedule(now, 1); // same instant
            }
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(t(1), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
