//! # btpub-sim
//!
//! A deterministic discrete-event simulation of the BitTorrent content
//! publishing ecosystem circa 2008–2010, built as the measurement substrate
//! for reproducing *"Is Content Publishing in BitTorrent Altruistic or
//! Profit-Driven?"* (CoNEXT 2010).
//!
//! The live ecosystem the paper measured no longer exists, so this crate
//! generates one whose *generating process* is parameterised from the
//! paper's own ground truth:
//!
//! * a **publisher population** with five behavioural profiles — fake
//!   publishers (antipiracy agencies and malware spreaders), top publishers
//!   on hosting providers, top publishers on commercial ISPs, altruistic
//!   top publishers, and the long tail of regular users ([`profile`],
//!   [`publisher`], [`population`]);
//! * per-torrent **swarm traces**: downloader arrival processes with
//!   exponentially decaying popularity, download/seeding lifetimes, NAT
//!   flags, and the publisher's own seeding sessions ([`swarm`]);
//! * **content**: category mixes per profile, catchy titles, promoting-URL
//!   embedding techniques ([`content`]);
//! * the plumbing: simulated clock ([`time`]), a generic event queue
//!   ([`engine`]), seed-derived RNG streams ([`rngs`]), and interval-set
//!   arithmetic for session accounting ([`intervals`]).
//!
//! Everything is deterministic: the same [`population::EcosystemConfig`]
//! and seed produce a byte-identical ecosystem, which the tests rely on.
//!
//! The crate deliberately knows nothing about portals, trackers or
//! crawlers; those live in `btpub-portal`, `btpub-tracker` and
//! `btpub-crawler` and consume the [`ecosystem::Ecosystem`] built here.

pub mod content;
pub mod ecosystem;
pub mod engine;
pub mod intervals;
pub mod population;
pub mod profile;
pub mod publisher;
pub mod rngs;
pub mod swarm;
pub mod time;

pub use ecosystem::{Ecosystem, Publication, TorrentId};
pub use population::EcosystemConfig;
pub use profile::{BusinessClass, FakeKind, Profile};
pub use publisher::{Publisher, PublisherId};
pub use swarm::{PeerRecord, SampleScratch, SwarmTrace};
pub use time::{SimDuration, SimTime, DAY, HOUR, MINUTE};
