//! Content: categories, titles, sizes, languages and promotion embedding.
//!
//! The Pirate Bay's category taxonomy (Video/Audio/Applications/Games/…)
//! is the one the paper's Figure 2 plots over, so we model it directly.
//! Title generation matters more than it may appear: fake publishers pick
//! *catchy* titles (recent blockbusters) to attract victims, profit-driven
//! publishers append their promoting URL to filenames, and the crawler only
//! sees these strings.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Top-level content category, following The Pirate Bay's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Feature films.
    Movies,
    /// TV show episodes.
    TvShows,
    /// Adult video.
    Porn,
    /// Music albums and singles.
    Audio,
    /// Applications / software.
    Software,
    /// PC and console games.
    Games,
    /// E-books and comics.
    Books,
    /// Everything else.
    Other,
}

impl Category {
    /// All categories, in the order used by reports and figures.
    pub const ALL: [Category; 8] = [
        Category::Movies,
        Category::TvShows,
        Category::Porn,
        Category::Audio,
        Category::Software,
        Category::Games,
        Category::Books,
        Category::Other,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Movies => "Movies",
            Category::TvShows => "TV Shows",
            Category::Porn => "Porn",
            Category::Audio => "Audio",
            Category::Software => "Software",
            Category::Games => "Games",
            Category::Books => "Books",
            Category::Other => "Other",
        }
    }

    /// Whether the paper's Figure 2 would count this as "Video".
    pub fn is_video(self) -> bool {
        matches!(self, Category::Movies | Category::TvShows | Category::Porn)
    }

    /// Typical payload size in bytes: log-normal around a per-category
    /// median (movies ≈ 700 MB DVDRips, songs ≈ 60 MB albums, books small).
    pub fn sample_size<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        let (median_mb, sigma): (f64, f64) = match self {
            Category::Movies => (700.0, 0.6),
            Category::TvShows => (350.0, 0.5),
            Category::Porn => (500.0, 0.7),
            Category::Audio => (80.0, 0.8),
            Category::Software => (150.0, 1.1),
            Category::Games => (2000.0, 0.9),
            Category::Books => (8.0, 1.0),
            Category::Other => (100.0, 1.2),
        };
        let mb = crate::rngs::lognormal(rng, median_mb.ln(), sigma);
        (mb * 1024.0 * 1024.0).max(64.0 * 1024.0) as u64
    }
}

/// A per-profile categorical mix over [`Category::ALL`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryMix(pub [f64; 8]);

impl CategoryMix {
    /// Samples a category according to the mix.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Category {
        Category::ALL[crate::rngs::weighted_index(rng, &self.0)]
    }

    /// Probability mass on video categories.
    pub fn video_share(&self) -> f64 {
        let total: f64 = self.0.iter().sum();
        (self.0[0] + self.0[1] + self.0[2]) / total
    }
}

/// The mix of the general publisher population (paper: video 37–51 %
/// across "All").
pub const MIX_ALL: CategoryMix = CategoryMix([0.22, 0.13, 0.08, 0.17, 0.11, 0.08, 0.06, 0.15]);
/// Fake publishers: recent movies/shows plus malware-laced software.
pub const MIX_FAKE: CategoryMix = CategoryMix([0.38, 0.17, 0.05, 0.04, 0.25, 0.05, 0.01, 0.05]);
/// Top publishers on hosting providers: video-heavy (Figure 2, pb10).
pub const MIX_TOP_HP: CategoryMix = CategoryMix([0.34, 0.20, 0.12, 0.10, 0.07, 0.07, 0.03, 0.07]);
/// Top publishers on commercial ISPs.
pub const MIX_TOP_CI: CategoryMix = CategoryMix([0.26, 0.16, 0.08, 0.16, 0.09, 0.08, 0.06, 0.11]);
/// "Other web sites" class: 70 % porn (image-hosting portals).
pub const MIX_OTHER_WEB: CategoryMix = CategoryMix([0.06, 0.04, 0.70, 0.05, 0.04, 0.03, 0.02, 0.06]);
/// Altruistic top publishers: light files — music and e-books.
pub const MIX_ALTRUISTIC: CategoryMix = CategoryMix([0.10, 0.08, 0.02, 0.35, 0.05, 0.04, 0.25, 0.11]);

/// Where a profit-driven publisher embeds its promoting URL (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PromoTechnique {
    /// Appended to every released filename (`filename-divxatope.com`).
    FilenameSuffix,
    /// Written in the textbox / description on the content web page —
    /// the paper found this the most common technique.
    Textbox,
    /// A `visit-<url>.txt` file shipped inside the torrent payload.
    TxtFile,
}

/// Content language (paper: 40 % of the portal class publish in a single
/// language; 66 % of those in Spanish).
pub type Language = &'static str;

const ADJ: &[&str] = &[
    "Dark", "Final", "Iron", "Broken", "Silent", "Crimson", "Lost", "Rising", "Hidden", "Last",
    "Golden", "Burning", "Frozen", "Savage", "Electric",
];
const NOUN: &[&str] = &[
    "Empire", "Horizon", "Protocol", "Legacy", "Kingdom", "Storm", "Vendetta", "Odyssey",
    "Frontier", "Reckoning", "Paradox", "Genesis", "Eclipse", "Citadel", "Mirage",
];
const GROUP: &[&str] = &[
    "aXXo", "FXG", "KLAXXON", "DiAMOND", "SAiNTS", "VOMiT", "LOL", "2HD", "NoTV", "FQM",
];

/// Generates a plausible release title for a category.
///
/// Fake publishers pass `catchy = true` to draw from the "recent
/// blockbuster" pool — the same names real content uses, which is exactly
/// the poisoning strategy the paper describes.
pub fn generate_title<R: Rng + ?Sized>(
    rng: &mut R,
    category: Category,
    year: u16,
    catchy: bool,
) -> String {
    let adj = ADJ[rng.gen_range(0..ADJ.len())];
    let noun = NOUN[rng.gen_range(0..NOUN.len())];
    let grp = GROUP[rng.gen_range(0..GROUP.len())];
    // Catchy titles draw from a narrow, popular pool (low indices).
    let (adj, noun) = if catchy {
        (ADJ[rng.gen_range(0..4)], NOUN[rng.gen_range(0..4)])
    } else {
        (adj, noun)
    };
    match category {
        Category::Movies => format!("{adj}.{noun}.{year}.DVDRip.XviD-{grp}"),
        Category::TvShows => format!(
            "{noun}.S{:02}E{:02}.HDTV.XviD-{grp}",
            rng.gen_range(1..8),
            rng.gen_range(1..24)
        ),
        Category::Porn => format!("{adj}{noun}.XXX.{year}.WEBRip-{grp}"),
        Category::Audio => format!("{adj}_{noun}-{year}-Album-MP3-320"),
        Category::Software => format!("{noun}.Pro.v{}.{}-CRACKED", rng.gen_range(1..12), rng.gen_range(0..10)),
        Category::Games => format!("{adj}.{noun}.PC.GAME.iSO-{grp}"),
        Category::Books => format!("{adj}.{noun}.eBook.PDF"),
        Category::Other => format!("{adj}.{noun}.{year}.pack"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::derive;

    #[test]
    fn mixes_are_normalisable_and_video_shares_ordered() {
        for mix in [
            MIX_ALL,
            MIX_FAKE,
            MIX_TOP_HP,
            MIX_TOP_CI,
            MIX_OTHER_WEB,
            MIX_ALTRUISTIC,
        ] {
            let sum: f64 = mix.0.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "mix sums to {sum}");
        }
        // Figure 2 orderings: HP tops CI tops All on video share.
        // (Evaluated through locals so the assertions stay meaningful if
        // the constants are retuned.)
        let (hp, ci, all) = (
            MIX_TOP_HP.video_share(),
            MIX_TOP_CI.video_share(),
            MIX_ALL.video_share(),
        );
        assert!(hp > ci, "hp {hp} vs ci {ci}");
        assert!(ci > all, "ci {ci} vs all {all}");
        // Fake concentrates on video + software.
        let fake_sw = MIX_FAKE.0[4];
        assert!(fake_sw > 0.2, "fake software share {fake_sw}");
        // Other-web class is porn-dominated.
        let web_porn = MIX_OTHER_WEB.0[2];
        assert!(web_porn >= 0.7, "other-web porn share {web_porn}");
    }

    #[test]
    fn sample_follows_mix() {
        let mut rng = derive(1, "content", 0);
        let mut porn = 0;
        let n = 5000;
        for _ in 0..n {
            if MIX_OTHER_WEB.sample(&mut rng) == Category::Porn {
                porn += 1;
            }
        }
        let share = f64::from(porn) / f64::from(n);
        assert!((share - 0.70).abs() < 0.05, "porn share {share}");
    }

    #[test]
    fn sizes_are_positive_and_category_scaled() {
        let mut rng = derive(2, "content", 0);
        let mut movie_total = 0u64;
        let mut book_total = 0u64;
        for _ in 0..200 {
            movie_total += Category::Movies.sample_size(&mut rng);
            book_total += Category::Books.sample_size(&mut rng);
        }
        assert!(movie_total > book_total * 10, "movies should dwarf books");
    }

    #[test]
    fn titles_match_category_shapes() {
        let mut rng = derive(3, "content", 0);
        assert!(generate_title(&mut rng, Category::Movies, 2010, false).contains("DVDRip"));
        assert!(generate_title(&mut rng, Category::TvShows, 2010, false).contains("HDTV"));
        let sw = generate_title(&mut rng, Category::Software, 2010, false);
        assert!(sw.contains("CRACKED"), "{sw}");
    }

    #[test]
    fn titles_are_deterministic_per_rng() {
        let a = generate_title(&mut derive(7, "t", 9), Category::Movies, 2010, true);
        let b = generate_title(&mut derive(7, "t", 9), Category::Movies, 2010, true);
        assert_eq!(a, b);
    }

    #[test]
    fn is_video_partition() {
        let videos: Vec<_> = Category::ALL.iter().filter(|c| c.is_video()).collect();
        assert_eq!(videos.len(), 3);
    }
}
