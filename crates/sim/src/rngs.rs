//! Deterministic RNG discipline.
//!
//! Every stochastic component derives its own [`StdRng`] from the master
//! scenario seed, a stream label, and a numeric id. Two properties follow:
//!
//! 1. **Reproducibility** — the same `(config, seed)` produces a
//!    byte-identical ecosystem regardless of iteration order or threading;
//! 2. **Insensitivity** — adding draws in one component never shifts the
//!    random sequence seen by another, so calibration doesn't ripple.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives an independent RNG for `(stream, id)` under `master` seed.
pub fn derive(master: u64, stream: &str, id: u64) -> StdRng {
    // FNV-1a over the label, then SplitMix64 finalisation mixing in the id.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in stream.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut z = master ^ h ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Samples a log-normal: `exp(N(mu, sigma))`.
///
/// The swarm popularity and seeding-time models are log-normal because the
/// paper's box plots show order-of-magnitude spreads with heavy upper
/// tails (Figures 3 and 4).
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let n: f64 = rand::distributions::Standard.sample(rng);
    let m: f64 = rand::distributions::Standard.sample(rng);
    // Box-Muller from two uniforms.
    let z = (-2.0 * n.max(f64::MIN_POSITIVE).ln()).sqrt()
        * (2.0 * std::f64::consts::PI * m).cos();
    (mu + sigma * z).exp()
}

/// Samples an exponential with the given mean.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples an integer in `[lo, hi]` inclusive (convenience for config ranges).
pub fn int_in<R: Rng + ?Sized>(rng: &mut R, lo: u32, hi: u32) -> u32 {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Weighted choice: returns the index of the chosen weight.
///
/// # Panics
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_stream_separated() {
        let mut a1 = derive(42, "swarm", 7);
        let mut a2 = derive(42, "swarm", 7);
        assert_eq!(a1.gen::<u64>(), a2.gen::<u64>());
        let mut b = derive(42, "swarm", 8);
        let mut c = derive(42, "publisher", 7);
        let mut d = derive(43, "swarm", 7);
        let base = derive(42, "swarm", 7).gen::<u64>();
        assert_ne!(base, b.gen::<u64>());
        assert_ne!(base, c.gen::<u64>());
        assert_ne!(base, d.gen::<u64>());
    }

    #[test]
    fn lognormal_statistics() {
        let mut rng = derive(1, "test", 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| lognormal(&mut rng, 2.0, 0.5)).collect();
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[n / 2];
        // Median of lognormal is exp(mu) = e^2 ≈ 7.39.
        assert!((median - 7.39).abs() / 7.39 < 0.1, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_statistics() {
        let mut rng = derive(2, "test", 0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_nonpositive_mean() {
        let mut rng = derive(0, "t", 0);
        exponential(&mut rng, 0.0);
    }

    #[test]
    fn int_in_handles_degenerate_ranges() {
        let mut rng = derive(3, "test", 0);
        assert_eq!(int_in(&mut rng, 5, 5), 5);
        assert_eq!(int_in(&mut rng, 9, 2), 9);
        for _ in 0..100 {
            let v = int_in(&mut rng, 1, 3);
            assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = derive(4, "test", 0);
        let weights = [0.0, 10.0, 0.0, 1.0];
        let mut counts = [0usize; 4];
        for _ in 0..5000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[1] > counts[3] * 5);
    }

    #[test]
    #[should_panic(expected = "positive value")]
    fn weighted_index_rejects_zero_weights() {
        let mut rng = derive(5, "test", 0);
        weighted_index(&mut rng, &[0.0, 0.0]);
    }
}
