//! Ecosystem orchestration: publication plans, swarm construction, and
//! ground truth.
//!
//! [`Ecosystem::generate`] turns an [`EcosystemConfig`] into the complete
//! simulated world: every publication with its swarm trace, plus the
//! ground-truth aggregates (per-publisher session unions) that the paper's
//! authors could only estimate but we can validate against.

use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::Rng;

use btpub_geodb::{IspId, World};

use crate::content::{self, Category, Language, PromoTechnique};
use crate::intervals::IntervalSet;
use crate::population::{generate_population, EcosystemConfig};
use crate::profile::{Profile, ProfileParams};
use crate::publisher::{Publisher, PublisherId};
use crate::rngs;
use crate::swarm::{generate_peers, PeerGenParams, SwarmTrace};
use crate::time::{SimDuration, SimTime, HOUR};

/// Index of a torrent in the ecosystem (and in the portal index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct TorrentId(pub u32);

/// One published torrent, as planned by the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Publication {
    /// Torrent id (index into `Ecosystem::publications` / `swarms`).
    pub id: TorrentId,
    /// The publishing entity.
    pub publisher: PublisherId,
    /// Index of this torrent within the publisher's output.
    pub pub_seq: u32,
    /// Username the publication appears under on the portal. For fake
    /// publications this may be a hacked top-publisher username.
    pub username: String,
    /// Announcement time (RSS item appears).
    pub at: SimTime,
    /// Portal category.
    pub category: Category,
    /// Release title.
    pub title: String,
    /// Payload size.
    pub size_bytes: u64,
    /// Language tag for language-dedicated publishers.
    pub language: Option<Language>,
    /// Whether the content is fake.
    pub fake: bool,
    /// When moderators remove the listing (fake content only).
    pub removal_at: Option<SimTime>,
    /// Whether the swarm pre-existed on another portal.
    pub cross_posted: bool,
    /// Promoting URL, if the publisher is profit-driven.
    pub promo_url: Option<String>,
    /// How the URL is embedded.
    pub promo_techniques: Vec<PromoTechnique>,
    /// Number of the entity's servers seeding in parallel (≥ 1). Fake
    /// entities usually seed from several servers at once.
    pub seeder_count: u8,
}

impl Publication {
    /// The released filename; profit-driven publishers using the
    /// filename-suffix technique append their URL (`title-example.com`).
    pub fn filename(&self) -> String {
        match (&self.promo_url, self.promo_techniques.contains(&PromoTechnique::FilenameSuffix)) {
            (Some(url), true) => {
                let bare = url.strip_prefix("www.").unwrap_or(url);
                format!("{}-{}", self.title, bare)
            }
            _ => self.title.clone(),
        }
    }

    /// The content-page textbox/description, where most profit-driven
    /// publishers advertise (§5).
    pub fn textbox(&self) -> String {
        match (&self.promo_url, self.promo_techniques.contains(&PromoTechnique::Textbox)) {
            (Some(url), true) => format!(
                "{} | uploaded by {} | more releases at http://{url}",
                self.title, self.username
            ),
            _ => format!("{} | uploaded by {}", self.title, self.username),
        }
    }

    /// Name of the extra `.txt` file shipped inside the payload, if the
    /// publisher uses that technique.
    pub fn txt_file(&self) -> Option<String> {
        match (&self.promo_url, self.promo_techniques.contains(&PromoTechnique::TxtFile)) {
            (Some(url), true) => Some(format!("visit-{url}.txt")),
            _ => None,
        }
    }
}

/// The fully-generated ecosystem.
pub struct Ecosystem {
    /// The configuration it was generated from.
    pub config: EcosystemConfig,
    /// ISP world (server pools partially consumed).
    pub world: World,
    /// All publisher entities.
    pub publishers: Vec<Publisher>,
    /// Usernames of top publishers that fake entities also use.
    pub compromised: Vec<String>,
    /// All publications, sorted by announcement time.
    pub publications: Vec<Publication>,
    /// One swarm trace per publication, same indexing.
    pub swarms: Vec<SwarmTrace>,
    /// Ground truth: per-publisher union of seeding sessions, clamped to
    /// the measurement window (Figure 4c's quantity).
    pub session_unions: Vec<IntervalSet>,
}

impl Ecosystem {
    /// Generates the ecosystem for a configuration. Deterministic in
    /// `(config, config.seed)`.
    pub fn generate(config: EcosystemConfig) -> Ecosystem {
        let _span = btpub_obs::span!("sim.generate");
        let pop = {
            let _span = btpub_obs::span!("sim.population");
            generate_population(&config)
        };
        let world = pop.world;
        let publishers = pop.publishers;
        let horizon = config.horizon();
        btpub_obs::static_gauge!("sim.publishers").set(publishers.len() as i64);

        // --- 1. allocate torrent counts per publisher ---
        let n_fake = (config.torrents as f64 * config.fake_share).round() as usize;
        let n_top = (config.torrents as f64 * config.top_share).round() as usize;
        let n_reg = config.torrents.saturating_sub(n_fake + n_top);
        let mut alloc_rng = rngs::derive(config.seed, "allocation", 0);
        let group_counts = |publishers: &[Publisher], profile_filter: &dyn Fn(&Publisher) -> bool, n: usize, weight: &dyn Fn(&Publisher, &mut StdRng) -> f64, rng: &mut StdRng| -> Vec<(PublisherId, usize)> {
            let members: Vec<&Publisher> =
                publishers.iter().filter(|p| profile_filter(p)).collect();
            if members.is_empty() || n == 0 {
                return Vec::new();
            }
            let weights: Vec<f64> = members.iter().map(|p| weight(p, rng).max(1e-9)).collect();
            let counts = allocate_counts(n, &weights);
            members
                .iter()
                .zip(counts)
                .map(|(p, c)| (p.id, c))
                .collect()
        };
        let mut plan: Vec<(PublisherId, usize)> = Vec::new();
        plan.extend(group_counts(
            &publishers,
            &|p| p.profile == Profile::Fake,
            n_fake,
            &|_, rng| rng.gen_range(0.6..1.4),
            &mut alloc_rng,
        ));
        plan.extend(group_counts(
            &publishers,
            &|p| p.profile.is_top(),
            n_top,
            &|p, _| p.historical_rate_per_day,
            &mut alloc_rng,
        ));
        plan.extend(group_counts(
            &publishers,
            &|p| p.profile == Profile::Regular,
            n_reg,
            &|_, rng| rngs::lognormal(rng, 0.0, 1.0),
            &mut alloc_rng,
        ));

        // --- 2. schedule publications uniformly over the window ---
        let mut sched_rng = rngs::derive(config.seed, "schedule", 0);
        let mut raw: Vec<(SimTime, PublisherId)> = Vec::with_capacity(config.torrents);
        for (pid, count) in &plan {
            for _ in 0..*count {
                let t = SimTime(sched_rng.gen_range(0..config.duration.secs().max(1)));
                raw.push((t, *pid));
            }
        }
        raw.sort();

        // --- 3. pass one: publication details + download targets ---
        let downloader_isps: Vec<(IspId, f64)> = world
            .commercial
            .iter()
            .map(|&isp| (isp, world.pool(isp).block_count() as f64))
            .collect();
        let isp_weights: Vec<f64> = downloader_isps.iter().map(|&(_, w)| w).collect();
        let mut pub_seq = vec![0u32; publishers.len()];
        let mut publications = Vec::with_capacity(raw.len());
        let mut targets = Vec::with_capacity(raw.len());
        for (idx, (at, pid)) in raw.into_iter().enumerate() {
            let mut rng = rngs::derive(config.seed, "torrent", idx as u64);
            let publisher = &publishers[pid.0 as usize];
            let params = config.params.get(publisher.profile);
            let fake = publisher.profile == Profile::Fake;
            let seq = pub_seq[pid.0 as usize];
            pub_seq[pid.0 as usize] += 1;
            let mix = ProfileParams::category_mix(
                publisher.profile,
                publisher.business,
                publisher.fake_kind,
            );
            let category = mix.sample(&mut rng);
            let title = content::generate_title(&mut rng, category, 2010, fake);
            let size_bytes = category.sample_size(&mut rng);
            let username = if fake {
                if !pop.compromised.is_empty() && rng.gen_bool(config.hacked_account_prob) {
                    pop.compromised[rng.gen_range(0..pop.compromised.len())].clone()
                } else {
                    publisher.usernames[rng.gen_range(0..publisher.usernames.len())].clone()
                }
            } else {
                publisher.usernames[0].clone()
            };
            let removal_at = fake.then(|| {
                let delay = rngs::exponential(&mut rng, config.fake_removal_mean.secs() as f64)
                    .max(HOUR.0 as f64);
                at + SimDuration(delay as u64)
            });
            let cross_posted = !fake && rng.gen_bool(config.cross_post_prob);
            // Fake entities seed most torrents from several servers in
            // parallel; only ~20 % are single-seeded (and identifiable).
            let seeder_count: u8 = if fake && !rng.gen_bool(0.20) {
                rng.gen_range(2..=4)
            } else {
                1
            };
            let mut target = (rngs::lognormal(&mut rng, params.popularity_mu, params.popularity_sigma)
                * config.downloads_scale)
                .round()
                .max(1.0) as usize;
            if cross_posted {
                target = (target as f64 * 1.5) as usize;
            }
            targets.push(target);
            publications.push(Publication {
                id: TorrentId(idx as u32),
                publisher: pid,
                pub_seq: seq,
                username,
                at,
                category,
                title,
                size_bytes,
                language: publisher.language,
                fake,
                removal_at,
                cross_posted,
                promo_url: publisher.website.as_ref().map(|w| w.url.clone()),
                promo_techniques: publisher.promo.clone(),
                seeder_count,
            });
        }

        // --- 4. consumption mixing probability ---
        let consumers: Vec<(usize, f64)> = publishers
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let rate = config.params.get(p.profile).consumption_per_day;
                (rate > 0.0).then_some((i, rate))
            })
            .collect();
        let expected_consumptions: f64 = consumers
            .iter()
            .map(|&(_, r)| r * config.duration.as_days())
            .sum();
        let total_targets: f64 = targets.iter().map(|&t| t as f64).sum::<f64>().max(1.0);
        let consume_prob = (expected_consumptions / total_targets).min(0.2);
        let consumer_weights: Vec<f64> = consumers.iter().map(|&(_, w)| w).collect();

        // --- 5. build swarm traces ---
        // Embarrassingly parallel: each trace's RNG is derived from
        // `(seed, "swarm", idx)` alone and the chunked map returns in
        // index order, so the result is byte-identical at any job count.
        let _swarm_span = btpub_obs::span!("sim.swarms");
        let swarm_pop = btpub_obs::static_histogram!("sim.swarm.population");
        let swarms = btpub_par::par_chunk_map_indexed("sim.swarms", publications.len(), |idx| {
            let publication = &publications[idx];
            let mut rng = rngs::derive(config.seed, "swarm", idx as u64);
            let publisher = &publishers[publication.publisher.0 as usize];
            let params = config.params.get(publisher.profile);
            let birth = if publication.cross_posted {
                publication.at - SimDuration::from_hours(rng.gen_range(4.0..12.0))
            } else {
                publication.at
            };
            let sessions = gen_sessions(
                &mut rng,
                publication.at,
                params,
                &config,
                publisher,
            );
            let gen_params = PeerGenParams {
                target_downloads: targets[idx],
                birth,
                horizon,
                removal_at: publication.removal_at,
                tau_days: params.popularity_tau_days,
                fake: publication.fake,
                size_bytes: publication.size_bytes,
                nat_prob: 0.65,
            };
            let peers = generate_peers(&gen_params, &mut rng, |rng, t| {
                if !consumers.is_empty() && rng.gen_bool(consume_prob) {
                    let c = rngs::weighted_index(rng, &consumer_weights);
                    let (pi, _) = consumers[c];
                    let p = &publishers[pi];
                    (u32::from(p.addresses.ip_for(0, t)), Some(p.natted))
                } else {
                    let w = rngs::weighted_index(rng, &isp_weights);
                    let (ip, _) = world.pool(downloader_isps[w].0).sample_customer(rng);
                    (u32::from(ip), None)
                }
            });
            let mut trace = SwarmTrace::new(
                publication.publisher,
                publication.pub_seq,
                publication.at,
                birth,
                sessions,
                publication.removal_at,
                peers,
            );
            trace.set_publisher_seed_count(publication.seeder_count);
            swarm_pop.record(trace.downloads() as u64);
            trace
        });
        drop(_swarm_span);

        // --- 6. ground-truth session unions, clamped to the window ---
        // Grouped serially (cheap), then unioned per publisher in
        // parallel; each union folds that publisher's swarms in index
        // order, matching what the serial fold produced.
        let mut by_publisher: Vec<Vec<usize>> = vec![Vec::new(); publishers.len()];
        for (idx, swarm) in swarms.iter().enumerate() {
            by_publisher[swarm.publisher.0 as usize].push(idx);
        }
        let session_unions =
            btpub_par::par_chunk_map("sim.session_unions", &by_publisher, |swarm_ids| {
                let mut union = IntervalSet::new();
                for &idx in swarm_ids {
                    union.union_with(&swarms[idx].sessions);
                }
                union.clamp(SimTime::ZERO, horizon)
            });

        btpub_obs::static_gauge!("sim.torrents").set(publications.len() as i64);
        btpub_obs::static_gauge!("sim.peers")
            .set(swarms.iter().map(|s| s.downloads() as i64).sum());
        btpub_obs::info!(
            "ecosystem generated";
            torrents = publications.len(),
            publishers = publishers.len(),
            horizon_days = config.duration.as_days()
        );
        Ecosystem {
            config,
            world,
            publishers,
            compromised: pop.compromised,
            publications,
            swarms,
            session_unions,
        }
    }

    /// The address the publisher seeds `torrent` from at time `t` (the
    /// primary seeding server when several seed in parallel).
    pub fn publisher_addr(&self, torrent: TorrentId, t: SimTime) -> Ipv4Addr {
        let p = &self.publications[torrent.0 as usize];
        self.publishers[p.publisher.0 as usize]
            .addresses
            .ip_for(p.pub_seq, t)
    }

    /// All addresses the publishing entity seeds `torrent` from at `t` —
    /// one per parallel seeding server.
    pub fn publisher_addrs(&self, torrent: TorrentId, t: SimTime) -> Vec<Ipv4Addr> {
        self.publisher_addrs_iter(torrent, t).collect()
    }

    /// Iterator form of [`publisher_addrs`](Self::publisher_addrs) — the
    /// announce fast path walks the (typically one-element) address list
    /// without allocating a `Vec` per query.
    pub fn publisher_addrs_iter(
        &self,
        torrent: TorrentId,
        t: SimTime,
    ) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let p = &self.publications[torrent.0 as usize];
        let publisher = &self.publishers[p.publisher.0 as usize];
        (0..u32::from(p.seeder_count)).map(move |j| publisher.addresses.ip_for(p.pub_seq + j, t))
    }

    /// Whether the publisher of `torrent` is behind a NAT.
    pub fn publisher_natted(&self, torrent: TorrentId) -> bool {
        let p = &self.publications[torrent.0 as usize];
        self.publishers[p.publisher.0 as usize].natted
    }

    /// Publisher record lookup.
    pub fn publisher(&self, id: PublisherId) -> &Publisher {
        &self.publishers[id.0 as usize]
    }

    /// Publication and swarm for a torrent.
    pub fn torrent(&self, id: TorrentId) -> (&Publication, &SwarmTrace) {
        (&self.publications[id.0 as usize], &self.swarms[id.0 as usize])
    }

    /// Total ground-truth downloads across all swarms.
    pub fn total_downloads(&self) -> u64 {
        self.swarms.iter().map(|s| s.downloads() as u64).sum()
    }
}

/// Generates the publisher's seeding sessions for one torrent.
fn gen_sessions(
    rng: &mut StdRng,
    announce: SimTime,
    params: &ProfileParams,
    config: &EcosystemConfig,
    publisher: &Publisher,
) -> IntervalSet {
    let total_hours = rngs::lognormal(rng, params.seed_hours_mu, params.seed_hours_sigma);
    let total = SimDuration::from_hours(total_hours.min(45.0 * 24.0));
    let start = if rng.gen_bool(config.late_seed_prob) {
        announce + SimDuration::from_hours(rng.gen_range(1.0..12.0))
    } else {
        announce + SimDuration(rng.gen_range(0..600))
    };
    if !params.diurnal {
        return IntervalSet::from_raw([(start, start + total)]);
    }
    // Diurnal: the publisher is online in a fixed 8-hour daily window
    // (stable per publisher) and seeds during it until the budget is spent
    // or three weeks pass.
    let mut day_rng = rngs::derive(config.seed, "diurnal", u64::from(publisher.id.0));
    let window_start = day_rng.gen_range(0..crate::time::DAY.0);
    let window_len = 8 * HOUR.0;
    let mut sessions = IntervalSet::new();
    let mut remaining = total.secs();
    let mut day_base = (start.0 / crate::time::DAY.0) * crate::time::DAY.0;
    let deadline = start + SimDuration::from_days(21.0);
    while remaining > 0 {
        let w_start = SimTime(day_base + window_start);
        let w_end = w_start + SimDuration(window_len);
        let s = w_start.max(start);
        if s >= deadline {
            break;
        }
        if s < w_end {
            let span = (w_end.since(s).secs()).min(remaining);
            sessions.insert(s, s + SimDuration(span));
            remaining -= span;
        }
        day_base += crate::time::DAY.0;
    }
    sessions
}

/// Largest-remainder allocation of `total` items over `weights`.
fn allocate_counts(total: usize, weights: &[f64]) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "weights must sum to a positive value");
    let raw: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
    let mut counts: Vec<usize> = raw.iter().map(|r| r.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut remainders: Vec<(usize, f64)> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r - r.floor()))
        .collect();
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(i, _) in remainders.iter().take(total - assigned) {
        counts[i] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BusinessClass;

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::tiny(21))
    }

    #[test]
    fn allocate_counts_exact_and_proportional() {
        let counts = allocate_counts(100, &[1.0, 1.0, 2.0]);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert_eq!(counts, vec![25, 25, 50]);
        let counts = allocate_counts(10, &[1.0, 1.0, 1.0]);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        let counts = allocate_counts(0, &[3.0]);
        assert_eq!(counts, vec![0]);
        // Fractional weights still sum exactly.
        let counts = allocate_counts(7, &[0.3, 0.3, 0.5]);
        assert_eq!(counts.iter().sum::<usize>(), 7);
    }

    #[test]
    fn publication_counts_and_shares() {
        let e = eco();
        assert_eq!(e.publications.len(), e.config.torrents);
        assert_eq!(e.swarms.len(), e.config.torrents);
        let fake = e.publications.iter().filter(|p| p.fake).count() as f64;
        let share = fake / e.publications.len() as f64;
        assert!(
            (share - e.config.fake_share).abs() < 0.02,
            "fake share {share}"
        );
        let top = e
            .publications
            .iter()
            .filter(|p| e.publisher(p.publisher).profile.is_top())
            .count() as f64;
        let tshare = top / e.publications.len() as f64;
        assert!(
            (tshare - e.config.top_share).abs() < 0.02,
            "top share {tshare}"
        );
    }

    #[test]
    fn publications_sorted_and_sequenced() {
        let e = eco();
        assert!(e
            .publications
            .windows(2)
            .all(|w| w[0].at <= w[1].at));
        // pub_seq increments per publisher in time order.
        let mut last_seq: btpub_fxhash::FxHashMap<PublisherId, u32> = Default::default();
        for p in &e.publications {
            let prev = last_seq.insert(p.publisher, p.pub_seq);
            if let Some(prev) = prev {
                assert_eq!(p.pub_seq, prev + 1, "sequence gap for {:?}", p.publisher);
            } else {
                assert_eq!(p.pub_seq, 0);
            }
        }
    }

    #[test]
    fn fake_publications_have_removals_and_real_ones_do_not() {
        let e = eco();
        for p in &e.publications {
            assert_eq!(p.fake, p.removal_at.is_some());
            if let Some(r) = p.removal_at {
                assert!(r > p.at);
            }
            if p.fake {
                assert!(!p.cross_posted, "fake torrents are not cross-posted");
            }
        }
    }

    #[test]
    fn cross_posted_swarms_predate_announcement() {
        let e = eco();
        let mut seen = 0;
        for (p, s) in e.publications.iter().zip(&e.swarms) {
            if p.cross_posted {
                assert!(s.birth < p.at);
                seen += 1;
            } else {
                assert_eq!(s.birth, p.at);
            }
        }
        assert!(seen > 0, "some cross-posted torrents exist");
    }

    #[test]
    fn promo_embedding_follows_publisher_class() {
        let e = eco();
        let mut textbox_urls = 0;
        for p in &e.publications {
            let publisher = e.publisher(p.publisher);
            match publisher.business {
                Some(BusinessClass::BtPortal) | Some(BusinessClass::OtherWeb) => {
                    assert!(p.promo_url.is_some());
                    if p.textbox().contains("http://") {
                        textbox_urls += 1;
                    }
                }
                _ => assert!(p.promo_url.is_none()),
            }
        }
        assert!(textbox_urls > 0, "textbox technique in use");
    }

    #[test]
    fn filename_suffix_and_txt_file_render() {
        let e = eco();
        let with_suffix = e
            .publications
            .iter()
            .find(|p| p.promo_techniques.contains(&PromoTechnique::FilenameSuffix));
        if let Some(p) = with_suffix {
            assert!(p.filename().len() > p.title.len());
        }
        let with_txt = e
            .publications
            .iter()
            .find(|p| p.promo_techniques.contains(&PromoTechnique::TxtFile));
        if let Some(p) = with_txt {
            assert!(p.txt_file().unwrap().starts_with("visit-"));
        }
    }

    #[test]
    fn sessions_start_at_or_after_announcement() {
        let e = eco();
        for (p, s) in e.publications.iter().zip(&e.swarms) {
            if let Some(start) = s.sessions.start() {
                assert!(start >= p.at, "seeding before announcement");
            }
            assert!(!s.sessions.is_empty(), "publisher must seed");
        }
    }

    #[test]
    fn fake_entities_seed_much_longer() {
        let e = eco();
        let avg_session = |fake: bool| {
            let (sum, n) = e
                .publications
                .iter()
                .zip(&e.swarms)
                .filter(|(p, _)| p.fake == fake)
                .map(|(_, s)| s.sessions.total().as_hours())
                .fold((0.0, 0usize), |(s, n), h| (s + h, n + 1));
            sum / n as f64
        };
        assert!(
            avg_session(true) > avg_session(false) * 3.0,
            "fake {} vs real {}",
            avg_session(true),
            avg_session(false)
        );
    }

    #[test]
    fn session_unions_cover_individual_sessions() {
        let e = eco();
        for (p, s) in e.publications.iter().zip(&e.swarms) {
            let union = &e.session_unions[p.publisher.0 as usize];
            let clamped = s.sessions.clamp(SimTime::ZERO, e.config.horizon());
            if let Some(start) = clamped.start() {
                assert!(union.contains(start), "union misses a session start");
            }
        }
    }

    #[test]
    fn publisher_addr_is_stable_for_hosting() {
        let e = eco();
        let hosted = e
            .publications
            .iter()
            .find(|p| e.publisher(p.publisher).profile == Profile::TopHosting)
            .expect("a hosting publication exists");
        let a = e.publisher_addr(hosted.id, SimTime(0));
        let b = e.publisher_addr(hosted.id, e.config.horizon());
        assert_eq!(a, b, "server address does not churn");
        let info = e.world.db.lookup(a).unwrap();
        assert_eq!(
            e.world.db.isp(info.isp).kind,
            btpub_geodb::IspKind::HostingProvider
        );
    }

    #[test]
    fn determinism() {
        let a = Ecosystem::generate(EcosystemConfig::tiny(5));
        let b = Ecosystem::generate(EcosystemConfig::tiny(5));
        assert_eq!(a.publications, b.publications);
        assert_eq!(a.total_downloads(), b.total_downloads());
        assert_eq!(
            a.swarms.iter().map(|s| s.downloads()).collect::<Vec<_>>(),
            b.swarms.iter().map(|s| s.downloads()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn downloader_addresses_resolve_in_world() {
        let e = eco();
        let mut checked = 0;
        for s in e.swarms.iter().take(50) {
            for peer in s.peers().iter().take(5) {
                let info = e.world.db.lookup(Ipv4Addr::from(peer.ip));
                assert!(info.is_some(), "downloader IP outside the world");
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn some_consuming_publishers_appear_as_downloaders() {
        let e = Ecosystem::generate(EcosystemConfig {
            downloads_scale: 0.3,
            ..EcosystemConfig::tiny(33)
        });
        let publisher_ips: std::collections::HashSet<u32> = e
            .publishers
            .iter()
            .filter(|p| e.config.params.get(p.profile).consumption_per_day > 0.0)
            .flat_map(|p| p.addresses.all_ips())
            .map(u32::from)
            .collect();
        let hits = e
            .swarms
            .iter()
            .flat_map(|s| s.peers())
            .filter(|p| publisher_ips.contains(&p.ip))
            .count();
        assert!(hits > 0, "consumption mixing produced no publisher downloads");
    }
}
