//! Publisher population generation.
//!
//! Builds the entity set for a scenario: fake publishers at their three
//! hosting providers, top publishers split by business class and ISP kind,
//! and the long tail of regular users. Proportions default to the pb10
//! values the paper reports and every knob is public.

use rand::rngs::StdRng;
use rand::Rng;

use btpub_geodb::{standard_world, IspId, World};

use crate::content::PromoTechnique;
use crate::profile::{BusinessClass, FakeKind, Profile, ProfileParamsSet};
use crate::publisher::{AddressPlan, Publisher, PublisherId, Website};
use crate::rngs;
use crate::time::{SimDuration, SimTime, DAY};

/// Scenario-level configuration for ecosystem generation.
#[derive(Debug, Clone, PartialEq)]
pub struct EcosystemConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Measurement window length.
    pub duration: SimDuration,
    /// Total torrents published on the portal during the window.
    pub torrents: usize,
    /// Share of torrents from fake publishers (paper pb10: 0.30).
    pub fake_share: f64,
    /// Share of torrents from top publishers (paper pb10: 0.375).
    pub top_share: f64,
    /// Number of fake entities (agencies/malware operations).
    pub fake_entities: usize,
    /// Throwaway usernames per fake entity (1030 usernames / 35 entities).
    pub fake_usernames_per_entity: usize,
    /// Number of top publishers (paper: 84 after removing compromised).
    pub top_publishers: usize,
    /// Number of regular publishers in the tail.
    pub regular_publishers: usize,
    /// Global multiplier on per-torrent downloader counts; 1.0 approximates
    /// paper scale, tests use much less.
    pub downloads_scale: f64,
    /// Number of top usernames that fake entities compromise (paper: 16).
    pub compromised_usernames: usize,
    /// Probability a fake publication uses a hacked top username.
    pub hacked_account_prob: f64,
    /// Probability a non-fake torrent was cross-posted on another portal
    /// first (large swarm at RSS time, IP unidentifiable).
    pub cross_post_prob: f64,
    /// Probability the publisher starts seeding only 1–12 h after the
    /// announcement (the paper's "no seeder for a while" case).
    pub late_seed_prob: f64,
    /// Mean moderation delay before a fake listing is removed.
    pub fake_removal_mean: SimDuration,
    /// Per-profile behavioural parameters.
    pub params: ProfileParamsSet,
    /// Share of top publishers in each business class
    /// `(portal, other_web, altruistic)`; paper: (0.26, 0.24, 0.52)
    /// (rescaled to sum to 1).
    pub business_split: (f64, f64, f64),
    /// Probability a publisher of each business class sits at a hosting
    /// provider `(portal, other_web, altruistic)`; overall ≈ 42 %.
    pub hosting_prob: (f64, f64, f64),
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            seed: 0x00B1_7704_4E17,
            duration: SimDuration::from_days(30.0),
            torrents: 4000,
            fake_share: 0.30,
            top_share: 0.375,
            fake_entities: 35,
            fake_usernames_per_entity: 30,
            top_publishers: 84,
            regular_publishers: 2700,
            downloads_scale: 1.0,
            compromised_usernames: 16,
            hacked_account_prob: 0.04,
            cross_post_prob: 0.18,
            late_seed_prob: 0.05,
            fake_removal_mean: SimDuration::from_hours(20.0),
            params: ProfileParamsSet::default(),
            business_split: (0.26, 0.24, 0.52),
            hosting_prob: (0.70, 0.55, 0.20),
        }
    }
}

impl EcosystemConfig {
    /// A small configuration for unit tests: a few hundred torrents and
    /// tiny swarms, still exercising every profile.
    pub fn tiny(seed: u64) -> Self {
        EcosystemConfig {
            seed,
            torrents: 300,
            fake_entities: 6,
            fake_usernames_per_entity: 8,
            top_publishers: 20,
            regular_publishers: 120,
            downloads_scale: 0.05,
            compromised_usernames: 3,
            ..EcosystemConfig::default()
        }
    }

    /// End of the measurement window.
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.duration
    }
}

const USER_WORDS: &[&str] = &[
    "torrent", "divx", "rip", "scene", "warez", "crew", "team", "king", "media", "stream",
    "share", "leech", "seed", "byte", "pirate", "ghost", "wolf", "ninja", "storm", "ultra",
];

fn gen_username(rng: &mut StdRng) -> String {
    let a = USER_WORDS[rng.gen_range(0..USER_WORDS.len())];
    let b = USER_WORDS[rng.gen_range(0..USER_WORDS.len())];
    format!("{a}{b}{:03}", rng.gen_range(0..1000))
}

fn gen_random_account(rng: &mut StdRng) -> String {
    // Fake entities register random-looking throwaway accounts.
    let len = rng.gen_range(8..14);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0..26u8)))
        .collect()
}

/// Builds a DHCP schedule over the window with the given mean reassignment
/// interval, drawing addresses from the ISP's pool.
fn dhcp_schedule(
    world: &World,
    isp: IspId,
    window: SimDuration,
    mean_interval_days: f64,
    rng: &mut StdRng,
) -> Vec<(SimTime, u32)> {
    let mut schedule = Vec::new();
    let mut t = SimTime::ZERO;
    // Start schedules well before the window so `ip_for` at t=0 is defined.
    loop {
        let (ip, _) = world.pool(isp).sample_customer(rng);
        schedule.push((t, u32::from(ip)));
        let gap = rngs::exponential(rng, mean_interval_days * DAY.0 as f64).max(0.5 * DAY.0 as f64);
        t += SimDuration(gap as u64);
        if t > SimTime::ZERO + window + SimDuration::from_days(2.0) {
            break;
        }
    }
    schedule
}

/// Picks a hosting ISP with OVH dominating, as in Tables 2–3.
fn pick_hosting_isp(world: &World, rng: &mut StdRng) -> IspId {
    let names_weights: &[(&str, f64)] = &[
        ("OVH", 52.0),
        ("SoftLayer Tech.", 10.0),
        ("Keyweb", 7.0),
        ("NetDirect", 6.0),
        ("NetWork Operations Center", 6.0),
        ("LeaseWeb", 6.0),
        ("Serverflo", 5.0),
        ("FDCservers", 4.0),
        ("tzulo", 2.0),
        ("4RWEB", 2.0),
    ];
    let weights: Vec<f64> = names_weights.iter().map(|&(_, w)| w).collect();
    let idx = rngs::weighted_index(rng, &weights);
    world
        .isp_by_name(names_weights[idx].0)
        .expect("standard world has all named hosting ISPs")
}

/// Picks a commercial ISP: majors get most of the mass, the tail the rest.
fn pick_commercial_isp(world: &World, rng: &mut StdRng) -> IspId {
    // 60 % majors (weighted), 40 % uniform over the tail.
    let majors: &[(&str, f64)] = &[
        ("Comcast", 14.0),
        ("Road Runner", 9.0),
        ("Virgin Media", 7.0),
        ("SBC", 7.0),
        ("Verizon", 8.0),
        ("Comcor-TV", 5.0),
        ("Telecom Italia", 6.0),
        ("Romania DS", 4.0),
        ("MTT Network", 4.0),
        ("NIB", 3.0),
        ("Open Computer Network", 6.0),
        ("Cosema", 3.0),
        ("Telefonica", 8.0),
        ("Jazz Telecom.", 5.0),
    ];
    if rng.gen_bool(0.6) {
        let weights: Vec<f64> = majors.iter().map(|&(_, w)| w).collect();
        let idx = rngs::weighted_index(rng, &weights);
        world.isp_by_name(majors[idx].0).expect("major ISP present")
    } else {
        world.commercial[rng.gen_range(14..world.commercial.len())]
    }
}

/// The three fake-publisher hosting providers from §3.3.
fn pick_fake_isp(world: &World, rng: &mut StdRng) -> IspId {
    let choices = [("tzulo", 0.40), ("FDCservers", 0.35), ("4RWEB", 0.25)];
    let weights: Vec<f64> = choices.iter().map(|&(_, w)| w).collect();
    let idx = rngs::weighted_index(rng, &weights);
    world.isp_by_name(choices[idx].0).expect("fake ISP present")
}

/// Output of population generation.
pub struct Population {
    /// The instantiated world (pools partially consumed by server rental).
    pub world: World,
    /// All publisher entities: fake first, then top, then regular.
    pub publishers: Vec<Publisher>,
    /// Usernames of top publishers that fake entities also use.
    pub compromised: Vec<String>,
}

/// Generates the publisher population for a configuration.
pub fn generate_population(cfg: &EcosystemConfig) -> Population {
    let mut world = standard_world();
    let mut publishers = Vec::new();
    let window = cfg.duration;

    // --- fake entities ---
    for i in 0..cfg.fake_entities {
        let mut rng = rngs::derive(cfg.seed, "fake-entity", i as u64);
        let isp = pick_fake_isp(&world, &mut rng);
        let server_count = rng.gen_range(2..=6);
        let servers: Vec<u32> = (0..server_count)
            .filter_map(|_| world.pool_mut(isp).allocate_server())
            .map(|(ip, _)| u32::from(ip))
            .collect();
        let usernames: Vec<String> = (0..cfg.fake_usernames_per_entity)
            .map(|_| gen_random_account(&mut rng))
            .collect();
        publishers.push(Publisher {
            id: PublisherId(publishers.len() as u32),
            profile: Profile::Fake,
            fake_kind: Some(if rng.gen_bool(0.5) {
                FakeKind::Antipiracy
            } else {
                FakeKind::Malware
            }),
            business: None,
            usernames,
            isp,
            second_isp: None,
            addresses: AddressPlan::Servers(servers),
            natted: false,
            website: None,
            promo: Vec::new(),
            language: None,
            history_days_before_window: rng.gen_range(30.0..400.0),
            historical_rate_per_day: rng.gen_range(5.0..25.0),
        });
    }

    // --- top publishers ---
    let (p_portal, p_web, p_alt) = cfg.business_split;
    let mut compromised = Vec::new();
    for i in 0..cfg.top_publishers {
        let mut rng = rngs::derive(cfg.seed, "top-publisher", i as u64);
        let class = match rngs::weighted_index(&mut rng, &[p_portal, p_web, p_alt]) {
            0 => BusinessClass::BtPortal,
            1 => BusinessClass::OtherWeb,
            _ => BusinessClass::Altruistic,
        };
        let hosting_p = match class {
            BusinessClass::BtPortal => cfg.hosting_prob.0,
            BusinessClass::OtherWeb => cfg.hosting_prob.1,
            BusinessClass::Altruistic => cfg.hosting_prob.2,
        };
        let at_hosting = rng.gen_bool(hosting_p);
        let username = gen_username(&mut rng);
        let profile = if at_hosting {
            Profile::TopHosting
        } else {
            Profile::TopCommercial
        };
        let params = cfg.params.get(profile);
        let (isp, second_isp, addresses, natted) = if at_hosting {
            let isp = pick_hosting_isp(&world, &mut rng);
            // 20 % single server; otherwise 3–9 (paper: 5.7 average).
            let k = if rng.gen_bool(0.2) { 1 } else { rng.gen_range(3..=9) };
            let servers: Vec<u32> = (0..k)
                .filter_map(|_| world.pool_mut(isp).allocate_server())
                .map(|(ip, _)| u32::from(ip))
                .collect();
            (isp, None, AddressPlan::Servers(servers), false)
        } else {
            let isp = pick_commercial_isp(&world, &mut rng);
            let natted = rng.gen_bool(params.nat_prob);
            if rng.gen_bool(0.28) {
                // home + work (paper case iii).
                let isp2 = pick_commercial_isp(&world, &mut rng);
                let home = dhcp_schedule(&world, isp, window, 6.0, &mut rng);
                let work = dhcp_schedule(&world, isp2, window, 8.0, &mut rng);
                (
                    isp,
                    Some(isp2),
                    AddressPlan::DualDhcp { home, work },
                    natted,
                )
            } else {
                // 40 % effectively-stable leases, 60 % churning (case ii).
                let mean_days = if rng.gen_bool(0.4) { 90.0 } else { 4.0 };
                let sched = dhcp_schedule(&world, isp, window, mean_days, &mut rng);
                (isp, None, AddressPlan::Dhcp(sched), natted)
            }
        };
        // Longitudinal history (Table 4).
        let (life_mu, life_lo, life_hi, rate_mu, rate_sigma, rate_lo, rate_hi) = match class {
            BusinessClass::BtPortal => (420.0f64, 63.0, 1816.0, 8.0f64, 0.9, 0.57, 79.91),
            BusinessClass::OtherWeb => (400.0, 50.0, 1989.0, 3.5, 0.8, 0.38, 18.98),
            BusinessClass::Altruistic => (310.0, 10.0, 1899.0, 2.8, 0.8, 0.10, 23.67),
        };
        let lifetime = rngs::lognormal(&mut rng, life_mu.ln(), 0.8).clamp(life_lo, life_hi);
        let rate = rngs::lognormal(&mut rng, rate_mu.ln(), rate_sigma).clamp(rate_lo, rate_hi);
        let website = match class {
            BusinessClass::BtPortal => Some(Website {
                url: format!("www.{}.com", username.to_lowercase()),
                conversion: rngs::lognormal(&mut rng, 1.7f64.ln(), 0.8),
                rpm_dollars: rngs::lognormal(&mut rng, 2.6f64.ln(), 0.9),
            }),
            BusinessClass::OtherWeb => Some(Website {
                url: format!("www.{}-pics.net", username.to_lowercase()),
                conversion: rngs::lognormal(&mut rng, 1.4f64.ln(), 0.8),
                rpm_dollars: rngs::lognormal(&mut rng, 2.4f64.ln(), 0.9),
            }),
            BusinessClass::Altruistic => None,
        };
        let promo = if website.is_some() {
            // Textbox is the dominant technique; some add a second channel.
            let mut p = vec![PromoTechnique::Textbox];
            if rng.gen_bool(0.25) {
                p.push(PromoTechnique::FilenameSuffix);
            }
            if rng.gen_bool(0.15) {
                p.push(PromoTechnique::TxtFile);
            }
            p
        } else {
            Vec::new()
        };
        // 40 % of the portal class publish in one language; 66 % of those
        // in Spanish (§5.1).
        let language = if class == BusinessClass::BtPortal && rng.gen_bool(0.40) {
            Some(if rng.gen_bool(0.66) {
                "es"
            } else {
                ["it", "nl", "sv"][rng.gen_range(0..3)]
            })
        } else {
            None
        };
        if compromised.len() < cfg.compromised_usernames {
            compromised.push(username.clone());
        }
        publishers.push(Publisher {
            id: PublisherId(publishers.len() as u32),
            profile,
            fake_kind: None,
            business: Some(class),
            usernames: vec![username],
            isp,
            second_isp,
            addresses,
            natted,
            website,
            promo,
            language,
            history_days_before_window: (lifetime - window.as_days()).max(0.0),
            historical_rate_per_day: rate,
        });
    }

    // --- regular publishers ---
    for i in 0..cfg.regular_publishers {
        let mut rng = rngs::derive(cfg.seed, "regular-publisher", i as u64);
        let isp = pick_commercial_isp(&world, &mut rng);
        let params = cfg.params.get(Profile::Regular);
        let mean_days = if rng.gen_bool(0.5) { 60.0 } else { 5.0 };
        let sched = dhcp_schedule(&world, isp, window, mean_days, &mut rng);
        publishers.push(Publisher {
            id: PublisherId(publishers.len() as u32),
            profile: Profile::Regular,
            fake_kind: None,
            business: None,
            usernames: vec![gen_username(&mut rng)],
            isp,
            second_isp: None,
            addresses: AddressPlan::Dhcp(sched),
            natted: rng.gen_bool(params.nat_prob),
            website: None,
            promo: Vec::new(),
            language: None,
            history_days_before_window: rng.gen_range(0.0..700.0),
            historical_rate_per_day: rngs::lognormal(&mut rng, 0.05f64.ln(), 1.0).min(2.0),
        });
    }

    Population {
        world,
        publishers,
        compromised,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpub_geodb::IspKind;

    fn pop() -> Population {
        generate_population(&EcosystemConfig::tiny(7))
    }

    #[test]
    fn population_counts_match_config() {
        let cfg = EcosystemConfig::tiny(7);
        let p = pop();
        assert_eq!(
            p.publishers.len(),
            cfg.fake_entities + cfg.top_publishers + cfg.regular_publishers
        );
        let fake = p
            .publishers
            .iter()
            .filter(|x| x.profile == Profile::Fake)
            .count();
        assert_eq!(fake, cfg.fake_entities);
        assert_eq!(p.compromised.len(), cfg.compromised_usernames);
    }

    #[test]
    fn fake_entities_sit_at_the_three_providers() {
        let p = pop();
        for f in p.publishers.iter().filter(|x| x.profile == Profile::Fake) {
            let name = &p.world.db.isp(f.isp).name;
            assert!(
                ["tzulo", "FDCservers", "4RWEB"].contains(&name.as_str()),
                "fake entity at {name}"
            );
            assert!(f.usernames.len() > 1, "fake entities use many usernames");
            assert!(!f.natted);
            assert!(matches!(f.addresses, AddressPlan::Servers(_)));
        }
    }

    #[test]
    fn top_publishers_have_consistent_profiles() {
        let p = pop();
        for t in p
            .publishers
            .iter()
            .filter(|x| x.profile.is_top())
        {
            assert!(t.business.is_some());
            let kind = p.world.db.isp(t.isp).kind;
            match t.profile {
                Profile::TopHosting => {
                    assert_eq!(kind, IspKind::HostingProvider);
                    assert!(!t.natted, "servers are not NATted");
                }
                Profile::TopCommercial => assert_eq!(kind, IspKind::CommercialIsp),
                _ => unreachable!(),
            }
            // Profit-driven publishers have a website and promo techniques.
            assert_eq!(t.website.is_some(), t.is_profit_driven());
            assert_eq!(!t.promo.is_empty(), t.is_profit_driven());
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = generate_population(&EcosystemConfig::tiny(3));
        let b = generate_population(&EcosystemConfig::tiny(3));
        assert_eq!(a.publishers, b.publishers);
        let c = generate_population(&EcosystemConfig::tiny(4));
        assert_ne!(a.publishers, c.publishers);
    }

    #[test]
    fn business_split_roughly_respected() {
        // Larger population for stable statistics.
        let cfg = EcosystemConfig {
            top_publishers: 400,
            regular_publishers: 0,
            fake_entities: 0,
            ..EcosystemConfig::tiny(11)
        };
        let p = generate_population(&cfg);
        let count = |class| {
            p.publishers
                .iter()
                .filter(|x| x.business == Some(class))
                .count() as f64
                / 400.0
        };
        assert!((count(BusinessClass::BtPortal) - 0.255).abs() < 0.07);
        assert!((count(BusinessClass::OtherWeb) - 0.235).abs() < 0.07);
        assert!((count(BusinessClass::Altruistic) - 0.51).abs() < 0.08);
        // Overall hosting share ≈ 42 %.
        let hosting = p
            .publishers
            .iter()
            .filter(|x| x.profile == Profile::TopHosting)
            .count() as f64
            / 400.0;
        assert!((hosting - 0.42).abs() < 0.08, "hosting share {hosting}");
    }

    #[test]
    fn ovh_dominates_hosting_choices() {
        let cfg = EcosystemConfig {
            top_publishers: 300,
            regular_publishers: 0,
            fake_entities: 0,
            ..EcosystemConfig::tiny(13)
        };
        let p = generate_population(&cfg);
        let hosted: Vec<_> = p
            .publishers
            .iter()
            .filter(|x| x.profile == Profile::TopHosting)
            .collect();
        let ovh = p.world.isp_by_name("OVH").unwrap();
        let at_ovh = hosted.iter().filter(|x| x.isp == ovh).count() as f64;
        assert!(
            at_ovh / hosted.len() as f64 > 0.35,
            "OVH share {}",
            at_ovh / hosted.len() as f64
        );
    }

    #[test]
    fn dhcp_schedules_cover_the_window() {
        let p = pop();
        let horizon = EcosystemConfig::tiny(7).horizon();
        for x in &p.publishers {
            if let AddressPlan::Dhcp(sched) = &x.addresses {
                assert!(!sched.is_empty());
                assert_eq!(sched[0].0, SimTime::ZERO);
                // Schedules are sorted.
                assert!(sched.windows(2).all(|w| w[0].0 <= w[1].0));
                // ip_for never panics anywhere in the window.
                let _ = x.addresses.ip_for(0, horizon);
            }
        }
    }

    #[test]
    fn table4_style_rates_within_paper_bounds() {
        let cfg = EcosystemConfig {
            top_publishers: 200,
            regular_publishers: 0,
            fake_entities: 0,
            ..EcosystemConfig::tiny(17)
        };
        let p = generate_population(&cfg);
        for x in &p.publishers {
            match x.business.unwrap() {
                BusinessClass::BtPortal => {
                    assert!((0.57..=79.91).contains(&x.historical_rate_per_day))
                }
                BusinessClass::OtherWeb => {
                    assert!((0.38..=18.98).contains(&x.historical_rate_per_day))
                }
                BusinessClass::Altruistic => {
                    assert!((0.10..=23.67).contains(&x.historical_rate_per_day))
                }
            }
        }
    }
}
