//! Interval-set arithmetic over simulated time.
//!
//! Used on both sides of the reproduction: the simulator records publishers'
//! *true* seeding sessions as interval sets, and the analysis pipeline
//! reconstructs *estimated* sessions from sparse tracker sightings
//! (Appendix A) — also interval sets. Aggregated session time (Figure 4c)
//! is the measure of the union.

use crate::time::{SimDuration, SimTime};

/// A set of half-open intervals `[start, end)`, kept disjoint and sorted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalSet {
    /// Disjoint, sorted, non-empty intervals.
    ivs: Vec<(SimTime, SimTime)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from possibly-overlapping raw intervals.
    pub fn from_raw<I: IntoIterator<Item = (SimTime, SimTime)>>(raw: I) -> Self {
        let mut s = IntervalSet::new();
        for (a, b) in raw {
            s.insert(a, b);
        }
        s
    }

    /// Inserts `[start, end)`, merging with any overlapping or adjacent
    /// intervals. Empty intervals (`start >= end`) are ignored.
    pub fn insert(&mut self, start: SimTime, end: SimTime) {
        if start >= end {
            return;
        }
        // Find the insertion window: all intervals with iv.end >= start and
        // iv.start <= end merge with the new one (adjacency merges too).
        let lo = self.ivs.partition_point(|iv| iv.1 < start);
        let hi = self.ivs.partition_point(|iv| iv.0 <= end);
        let mut new_start = start;
        let mut new_end = end;
        if lo < hi {
            new_start = new_start.min(self.ivs[lo].0);
            new_end = new_end.max(self.ivs[hi - 1].1);
        }
        self.ivs.splice(lo..hi, [(new_start, new_end)]);
    }

    /// Whether `t` lies inside the set.
    pub fn contains(&self, t: SimTime) -> bool {
        let idx = self.ivs.partition_point(|iv| iv.1 <= t);
        self.ivs.get(idx).is_some_and(|iv| iv.0 <= t)
    }

    /// Total measure of the set.
    pub fn total(&self) -> SimDuration {
        SimDuration(self.ivs.iter().map(|iv| iv.1 .0 - iv.0 .0).sum())
    }

    /// Number of disjoint intervals (sessions).
    pub fn session_count(&self) -> usize {
        self.ivs.len()
    }

    /// Iterates the disjoint intervals in order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, SimTime)> + '_ {
        self.ivs.iter().copied()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Earliest instant in the set.
    pub fn start(&self) -> Option<SimTime> {
        self.ivs.first().map(|iv| iv.0)
    }

    /// Latest instant in the set.
    pub fn end(&self) -> Option<SimTime> {
        self.ivs.last().map(|iv| iv.1)
    }

    /// Restricts the set to `[lo, hi)`.
    pub fn clamp(&self, lo: SimTime, hi: SimTime) -> IntervalSet {
        let mut out = IntervalSet::new();
        for (a, b) in &self.ivs {
            let s = (*a).max(lo);
            let e = (*b).min(hi);
            out.insert(s, e);
        }
        out
    }

    /// Unions another set into this one.
    pub fn union_with(&mut self, other: &IntervalSet) {
        for (a, b) in other.iter() {
            self.insert(a, b);
        }
    }

    /// Measure of overlap with `[lo, hi)`.
    pub fn overlap(&self, lo: SimTime, hi: SimTime) -> SimDuration {
        SimDuration(
            self.ivs
                .iter()
                .map(|&(a, b)| {
                    let s = a.max(lo).0;
                    let e = b.min(hi).0;
                    e.saturating_sub(s)
                })
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime(x)
    }

    #[test]
    fn insert_disjoint_and_total() {
        let mut s = IntervalSet::new();
        s.insert(t(10), t(20));
        s.insert(t(30), t(40));
        assert_eq!(s.session_count(), 2);
        assert_eq!(s.total(), SimDuration(20));
        assert!(s.contains(t(10)));
        assert!(s.contains(t(19)));
        assert!(!s.contains(t(20)), "half-open at the right end");
        assert!(!s.contains(t(25)));
    }

    #[test]
    fn overlapping_inserts_merge() {
        let mut s = IntervalSet::new();
        s.insert(t(10), t(20));
        s.insert(t(15), t(25));
        s.insert(t(5), t(12));
        assert_eq!(s.session_count(), 1);
        assert_eq!(s.total(), SimDuration(20));
        assert_eq!(s.start(), Some(t(5)));
        assert_eq!(s.end(), Some(t(25)));
    }

    #[test]
    fn adjacent_intervals_merge() {
        let mut s = IntervalSet::new();
        s.insert(t(10), t(20));
        s.insert(t(20), t(30));
        assert_eq!(s.session_count(), 1);
        assert_eq!(s.total(), SimDuration(20));
    }

    #[test]
    fn spanning_insert_absorbs_many() {
        let mut s = IntervalSet::from_raw([(t(10), t(11)), (t(20), t(21)), (t(30), t(31))]);
        assert_eq!(s.session_count(), 3);
        s.insert(t(5), t(40));
        assert_eq!(s.session_count(), 1);
        assert_eq!(s.total(), SimDuration(35));
    }

    #[test]
    fn empty_inserts_ignored() {
        let mut s = IntervalSet::new();
        s.insert(t(10), t(10));
        s.insert(t(20), t(5));
        assert!(s.is_empty());
        assert_eq!(s.total(), SimDuration::ZERO);
        assert_eq!(s.start(), None);
    }

    #[test]
    fn clamp_restricts() {
        let s = IntervalSet::from_raw([(t(0), t(10)), (t(20), t(30)), (t(40), t(50))]);
        let c = s.clamp(t(5), t(45));
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![(t(5), t(10)), (t(20), t(30)), (t(40), t(45))]
        );
    }

    #[test]
    fn union_with_merges_sets() {
        let mut a = IntervalSet::from_raw([(t(0), t(10))]);
        let b = IntervalSet::from_raw([(t(5), t(15)), (t(20), t(25))]);
        a.union_with(&b);
        assert_eq!(a.total(), SimDuration(20));
        assert_eq!(a.session_count(), 2);
    }

    #[test]
    fn overlap_measure() {
        let s = IntervalSet::from_raw([(t(0), t(10)), (t(20), t(30))]);
        assert_eq!(s.overlap(t(5), t(25)), SimDuration(10));
        assert_eq!(s.overlap(t(100), t(200)), SimDuration::ZERO);
        assert_eq!(s.overlap(t(0), t(100)), SimDuration(20));
    }

    #[test]
    fn contains_at_boundaries() {
        let s = IntervalSet::from_raw([(t(10), t(20))]);
        assert!(!s.contains(t(9)));
        assert!(s.contains(t(10)));
        assert!(!s.contains(t(20)));
    }
}
