//! The bencode value tree.

use std::collections::BTreeMap;
use std::fmt;

use crate::decode::{decode, DecodeError};

/// A parsed bencode value.
///
/// Dictionaries are stored in a [`BTreeMap`] keyed by raw bytes, which makes
/// canonical (lexicographically sorted) re-encoding automatic.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A byte string. Not required to be valid UTF-8.
    Bytes(Vec<u8>),
    /// A signed 64-bit integer.
    ///
    /// The bencode grammar allows arbitrary-precision integers; every value
    /// exchanged by real BitTorrent implementations fits in an `i64`, so the
    /// decoder rejects anything wider rather than silently truncating.
    Int(i64),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A dictionary with byte-string keys in lexicographic order.
    Dict(BTreeMap<Vec<u8>, Value>),
}

impl Value {
    /// Decodes a complete bencoded document, rejecting trailing bytes.
    pub fn decode(input: &[u8]) -> Result<Value, DecodeError> {
        decode(input)
    }

    /// Encodes the value into canonical bencode.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(crate::encode::encoded_len(self));
        crate::encode::encode_into(self, &mut out);
        out
    }

    /// Builds a dictionary from `(key, value)` pairs.
    ///
    /// Later duplicates overwrite earlier ones, mirroring how permissive
    /// BitTorrent clients treat repeated keys.
    pub fn dict<K, I>(pairs: I) -> Value
    where
        K: Into<Vec<u8>>,
        I: IntoIterator<Item = (K, Value)>,
    {
        Value::Dict(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v))
                .collect::<BTreeMap<_, _>>(),
        )
    }

    /// Builds a list from an iterator of values.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Returns the byte-string payload, if this is a `Bytes` value.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the payload decoded as UTF-8, if this is a `Bytes` value
    /// holding valid UTF-8.
    pub fn as_str(&self) -> Option<&str> {
        self.as_bytes().and_then(|b| std::str::from_utf8(b).ok())
    }

    /// Returns the integer payload, if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a `List` value.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the dictionary payload, if this is a `Dict` value.
    pub fn as_dict(&self) -> Option<&BTreeMap<Vec<u8>, Value>> {
        match self {
            Value::Dict(d) => Some(d),
            _ => None,
        }
    }

    /// Looks up `key` in a dictionary value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_dict().and_then(|d| d.get(key.as_bytes()))
    }

    /// Convenience: `self.get(key)` then [`Value::as_str`].
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Convenience: `self.get(key)` then [`Value::as_int`].
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Value::as_int)
    }

    /// Convenience: `self.get(key)` then [`Value::as_bytes`].
    pub fn get_bytes(&self, key: &str) -> Option<&[u8]> {
        self.get(key).and_then(Value::as_bytes)
    }

    /// Convenience: `self.get(key)` then [`Value::as_list`].
    pub fn get_list(&self, key: &str) -> Option<&[Value]> {
        self.get(key).and_then(Value::as_list)
    }

    /// Inserts `key → value` if this is a dictionary; returns whether the
    /// insertion happened.
    pub fn insert(&mut self, key: impl Into<Vec<u8>>, value: Value) -> bool {
        match self {
            Value::Dict(d) => {
                d.insert(key.into(), value);
                true
            }
            _ => false,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Bytes(s.as_bytes().to_vec())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Bytes(s.into_bytes())
    }
}

impl From<&[u8]> for Value {
    fn from(b: &[u8]) -> Self {
        Value::Bytes(b.to_vec())
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u16> for Value {
    fn from(i: u16) -> Self {
        Value::Int(i64::from(i))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bytes(b) => match std::str::from_utf8(b) {
                Ok(s) => write!(f, "{s:?}"),
                Err(_) => write!(f, "bytes[{}]", b.len()),
            },
            Value::Int(i) => write!(f, "{i}"),
            Value::List(l) => f.debug_list().entries(l).finish(),
            Value::Dict(d) => {
                let mut m = f.debug_map();
                for (k, v) in d {
                    match std::str::from_utf8(k) {
                        Ok(s) => m.entry(&s, v),
                        Err(_) => m.entry(&format_args!("bytes[{}]", k.len()), v),
                    };
                }
                m.finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_expected_variants() {
        let v = Value::dict([
            ("name", Value::from("ubuntu.iso")),
            ("length", Value::from(42i64)),
            ("tags", Value::list([Value::from("linux")])),
        ]);
        assert_eq!(v.get_str("name"), Some("ubuntu.iso"));
        assert_eq!(v.get_int("length"), Some(42));
        assert_eq!(v.get_list("tags").map(<[Value]>::len), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn dict_keys_sorted_regardless_of_insertion_order() {
        let v = Value::dict([("zz", Value::from(1i64)), ("aa", Value::from(2i64))]);
        let keys: Vec<_> = v.as_dict().unwrap().keys().cloned().collect();
        assert_eq!(keys, vec![b"aa".to_vec(), b"zz".to_vec()]);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Value::dict([("k", Value::from(1i64)), ("k", Value::from(2i64))]);
        assert_eq!(v.get_int("k"), Some(2));
    }

    #[test]
    fn insert_only_works_on_dicts() {
        let mut d = Value::dict::<&str, _>([]);
        assert!(d.insert("a", Value::from(1i64)));
        assert_eq!(d.get_int("a"), Some(1));
        let mut i = Value::Int(3);
        assert!(!i.insert("a", Value::from(1i64)));
    }

    #[test]
    fn debug_renders_utf8_and_binary() {
        let v = Value::dict([
            ("s", Value::from("hi")),
            ("b", Value::Bytes(vec![0xff, 0xfe])),
        ]);
        let dbg = format!("{v:?}");
        assert!(dbg.contains("\"hi\""));
        assert!(dbg.contains("bytes[2]"));
    }

    #[test]
    fn non_utf8_bytes_as_str_is_none() {
        let v = Value::Bytes(vec![0xff]);
        assert_eq!(v.as_str(), None);
        assert_eq!(v.as_bytes(), Some(&[0xff][..]));
    }
}
