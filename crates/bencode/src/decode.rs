//! Strict bencode decoding.

use std::collections::BTreeMap;
use std::fmt;

use crate::Value;

/// Maximum nesting depth the decoder accepts.
///
/// Real `.torrent` files nest 3–4 levels; the cap exists so a hostile input
/// like `llllll…` cannot overflow the stack of a recursive parser.
pub const MAX_DEPTH: usize = 64;

/// Errors produced while decoding bencode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended in the middle of a value.
    UnexpectedEof { offset: usize },
    /// A byte that cannot begin or continue a value at this position.
    UnexpectedByte { offset: usize, byte: u8 },
    /// Integer literal violates the grammar (leading zeros, `-0`, empty).
    MalformedInt { offset: usize },
    /// Integer does not fit in an `i64`.
    IntOutOfRange { offset: usize },
    /// String length prefix violates the grammar or exceeds the input.
    MalformedLength { offset: usize },
    /// Dictionary keys out of lexicographic order.
    UnsortedKeys { offset: usize },
    /// The same dictionary key appeared twice.
    DuplicateKey { offset: usize },
    /// Value nesting exceeded [`MAX_DEPTH`].
    TooDeep { offset: usize },
    /// A complete value was decoded but bytes remain.
    TrailingBytes { offset: usize },
}

impl DecodeError {
    /// Byte offset in the input where the error was detected.
    pub fn offset(&self) -> usize {
        match *self {
            DecodeError::UnexpectedEof { offset }
            | DecodeError::UnexpectedByte { offset, .. }
            | DecodeError::MalformedInt { offset }
            | DecodeError::IntOutOfRange { offset }
            | DecodeError::MalformedLength { offset }
            | DecodeError::UnsortedKeys { offset }
            | DecodeError::DuplicateKey { offset }
            | DecodeError::TooDeep { offset }
            | DecodeError::TrailingBytes { offset } => offset,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            DecodeError::UnexpectedByte { offset, byte } => {
                write!(f, "unexpected byte 0x{byte:02x} at byte {offset}")
            }
            DecodeError::MalformedInt { offset } => {
                write!(f, "malformed integer literal at byte {offset}")
            }
            DecodeError::IntOutOfRange { offset } => {
                write!(f, "integer out of i64 range at byte {offset}")
            }
            DecodeError::MalformedLength { offset } => {
                write!(f, "malformed string length at byte {offset}")
            }
            DecodeError::UnsortedKeys { offset } => {
                write!(f, "dictionary keys not sorted at byte {offset}")
            }
            DecodeError::DuplicateKey { offset } => {
                write!(f, "duplicate dictionary key at byte {offset}")
            }
            DecodeError::TooDeep { offset } => {
                write!(f, "nesting deeper than {MAX_DEPTH} at byte {offset}")
            }
            DecodeError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after value at byte {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes exactly one bencoded value spanning the whole input.
pub fn decode(input: &[u8]) -> Result<Value, DecodeError> {
    let mut dec = Decoder::new(input);
    let value = dec.value()?;
    if dec.pos != input.len() {
        return Err(DecodeError::TrailingBytes { offset: dec.pos });
    }
    Ok(value)
}

/// Decodes one bencoded value from the front of the input, returning the
/// value and the number of bytes consumed. Trailing bytes are allowed —
/// useful when bencoded messages are concatenated on a stream.
pub fn decode_prefix(input: &[u8]) -> Result<(Value, usize), DecodeError> {
    let mut dec = Decoder::new(input);
    let value = dec.value()?;
    Ok((value, dec.pos))
}

/// A resumable decoder over a byte slice.
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder positioned at the start of `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Decoder { input, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Decodes the next value.
    pub fn value(&mut self) -> Result<Value, DecodeError> {
        self.value_at_depth(0)
    }

    fn value_at_depth(&mut self, depth: usize) -> Result<Value, DecodeError> {
        if depth > MAX_DEPTH {
            return Err(DecodeError::TooDeep { offset: self.pos });
        }
        match self.peek()? {
            b'i' => self.int(),
            b'l' => self.list(depth),
            b'd' => self.dict(depth),
            b'0'..=b'9' => Ok(Value::Bytes(self.bytes()?.to_vec())),
            byte => Err(DecodeError::UnexpectedByte {
                offset: self.pos,
                byte,
            }),
        }
    }

    fn peek(&self) -> Result<u8, DecodeError> {
        self.input
            .get(self.pos)
            .copied()
            .ok_or(DecodeError::UnexpectedEof { offset: self.pos })
    }

    fn int(&mut self) -> Result<Value, DecodeError> {
        let start = self.pos;
        self.pos += 1; // consume 'i'
        let negative = if self.peek()? == b'-' {
            self.pos += 1;
            true
        } else {
            false
        };
        let digits_start = self.pos;
        let mut magnitude: u64 = 0;
        while let Ok(b @ b'0'..=b'9') = self.peek() {
            magnitude = magnitude
                .checked_mul(10)
                .and_then(|m| m.checked_add(u64::from(b - b'0')))
                .ok_or(DecodeError::IntOutOfRange { offset: start })?;
            self.pos += 1;
        }
        let digits = &self.input[digits_start..self.pos];
        if digits.is_empty() {
            return Err(DecodeError::MalformedInt { offset: start });
        }
        // "i03e" and "i-0e" are invalid per the spec.
        if digits.len() > 1 && digits[0] == b'0' {
            return Err(DecodeError::MalformedInt { offset: start });
        }
        if negative && digits == b"0" {
            return Err(DecodeError::MalformedInt { offset: start });
        }
        if self.peek()? != b'e' {
            return Err(DecodeError::UnexpectedByte {
                offset: self.pos,
                byte: self.input[self.pos],
            });
        }
        self.pos += 1;
        let value = if negative {
            if magnitude > (i64::MAX as u64) + 1 {
                return Err(DecodeError::IntOutOfRange { offset: start });
            }
            (magnitude as i64).wrapping_neg()
        } else {
            i64::try_from(magnitude).map_err(|_| DecodeError::IntOutOfRange { offset: start })?
        };
        Ok(Value::Int(value))
    }

    fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let start = self.pos;
        let mut len: usize = 0;
        let len_start = self.pos;
        while let Ok(b @ b'0'..=b'9') = self.peek() {
            len = len
                .checked_mul(10)
                .and_then(|l| l.checked_add(usize::from(b - b'0')))
                .ok_or(DecodeError::MalformedLength { offset: start })?;
            self.pos += 1;
        }
        let len_digits = &self.input[len_start..self.pos];
        if len_digits.is_empty() || (len_digits.len() > 1 && len_digits[0] == b'0') {
            return Err(DecodeError::MalformedLength { offset: start });
        }
        if self.peek()? != b':' {
            return Err(DecodeError::UnexpectedByte {
                offset: self.pos,
                byte: self.input[self.pos],
            });
        }
        self.pos += 1;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.input.len())
            .ok_or(DecodeError::MalformedLength { offset: start })?;
        let slice = &self.input[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn list(&mut self, depth: usize) -> Result<Value, DecodeError> {
        self.pos += 1; // consume 'l'
        let mut items = Vec::new();
        loop {
            if self.peek()? == b'e' {
                self.pos += 1;
                return Ok(Value::List(items));
            }
            items.push(self.value_at_depth(depth + 1)?);
        }
    }

    fn dict(&mut self, depth: usize) -> Result<Value, DecodeError> {
        self.pos += 1; // consume 'd'
        let mut entries = BTreeMap::new();
        let mut last_key: Option<Vec<u8>> = None;
        loop {
            if self.peek()? == b'e' {
                self.pos += 1;
                return Ok(Value::Dict(entries));
            }
            let key_offset = self.pos;
            if !self.peek()?.is_ascii_digit() {
                return Err(DecodeError::UnexpectedByte {
                    offset: key_offset,
                    byte: self.input[key_offset],
                });
            }
            let key = self.bytes()?.to_vec();
            if let Some(prev) = &last_key {
                if key == *prev {
                    return Err(DecodeError::DuplicateKey { offset: key_offset });
                }
                if key < *prev {
                    return Err(DecodeError::UnsortedKeys { offset: key_offset });
                }
            }
            let value = self.value_at_depth(depth + 1)?;
            entries.insert(key.clone(), value);
            last_key = Some(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_atoms() {
        assert_eq!(decode(b"4:spam").unwrap(), Value::from("spam"));
        assert_eq!(decode(b"0:").unwrap(), Value::from(""));
        assert_eq!(decode(b"i42e").unwrap(), Value::Int(42));
        assert_eq!(decode(b"i-42e").unwrap(), Value::Int(-42));
        assert_eq!(decode(b"i0e").unwrap(), Value::Int(0));
    }

    #[test]
    fn decodes_i64_extremes() {
        assert_eq!(
            decode(b"i9223372036854775807e").unwrap(),
            Value::Int(i64::MAX)
        );
        assert_eq!(
            decode(b"i-9223372036854775808e").unwrap(),
            Value::Int(i64::MIN)
        );
        assert!(matches!(
            decode(b"i9223372036854775808e"),
            Err(DecodeError::IntOutOfRange { .. })
        ));
        assert!(matches!(
            decode(b"i-9223372036854775809e"),
            Err(DecodeError::IntOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_malformed_ints() {
        for bad in [&b"ie"[..], b"i-e", b"i-0e", b"i03e", b"i1x2e", b"i--1e"] {
            assert!(decode(bad).is_err(), "{:?} should fail", bad);
        }
    }

    #[test]
    fn decodes_nested_structures() {
        let v = decode(b"d3:cow3:moo4:spaml1:a1:bee").unwrap();
        assert_eq!(v.get_str("cow"), Some("moo"));
        assert_eq!(v.get_list("spam").unwrap().len(), 2);
    }

    #[test]
    fn rejects_unsorted_and_duplicate_keys() {
        assert!(matches!(
            decode(b"d4:spam4:eggs3:cow3:mooe"),
            Err(DecodeError::UnsortedKeys { .. })
        ));
        assert!(matches!(
            decode(b"d3:cow3:moo3:cow3:mooe"),
            Err(DecodeError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn rejects_trailing_bytes_in_strict_mode() {
        assert!(matches!(
            decode(b"i1ei2e"),
            Err(DecodeError::TrailingBytes { offset: 3 })
        ));
        let (v, used) = decode_prefix(b"i1ei2e").unwrap();
        assert_eq!(v, Value::Int(1));
        assert_eq!(used, 3);
    }

    #[test]
    fn rejects_truncated_inputs() {
        for bad in [
            &b""[..],
            b"4:spa",
            b"i42",
            b"l",
            b"d",
            b"d3:cow",
            b"10:short",
        ] {
            assert!(
                matches!(
                    decode(bad),
                    Err(DecodeError::UnexpectedEof { .. } | DecodeError::MalformedLength { .. })
                ),
                "{:?} should fail with EOF/length",
                bad
            );
        }
    }

    #[test]
    fn rejects_leading_zero_lengths() {
        assert!(matches!(
            decode(b"04:spam"),
            Err(DecodeError::MalformedLength { .. })
        ));
    }

    #[test]
    fn rejects_non_string_dict_keys() {
        assert!(matches!(
            decode(b"di1e3:mooe"),
            Err(DecodeError::UnexpectedByte { .. })
        ));
    }

    #[test]
    fn depth_limit_blocks_list_bombs() {
        let mut bomb = vec![b'l'; MAX_DEPTH + 10];
        bomb.extend(vec![b'e'; MAX_DEPTH + 10]);
        assert!(matches!(decode(&bomb), Err(DecodeError::TooDeep { .. })));
        // Exactly at the limit is fine.
        let mut ok = vec![b'l'; MAX_DEPTH];
        ok.extend(vec![b'e'; MAX_DEPTH]);
        assert!(decode(&ok).is_ok());
    }

    #[test]
    fn huge_length_prefix_does_not_allocate() {
        assert!(decode(b"99999999999999999999:x").is_err());
        assert!(decode(b"18446744073709551616:x").is_err());
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = decode(b"l4:spami-0ee").unwrap_err();
        assert_eq!(err.offset(), 7);
    }

    #[test]
    fn display_messages_are_informative() {
        let msg = decode(b"i--1e").unwrap_err().to_string();
        assert!(msg.contains("byte"), "{msg}");
    }
}
