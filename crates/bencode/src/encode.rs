//! Canonical bencode encoding.

use crate::Value;

/// Appends the canonical encoding of `value` to `out`.
pub fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Bytes(b) => {
            push_usize(b.len(), out);
            out.push(b':');
            out.extend_from_slice(b);
        }
        Value::Int(i) => {
            out.push(b'i');
            out.extend_from_slice(i.to_string().as_bytes());
            out.push(b'e');
        }
        Value::List(items) => {
            out.push(b'l');
            for item in items {
                encode_into(item, out);
            }
            out.push(b'e');
        }
        Value::Dict(entries) => {
            out.push(b'd');
            // BTreeMap iteration order is the lexicographic key order the
            // bencode spec requires, so no sort is needed here.
            for (k, v) in entries {
                push_usize(k.len(), out);
                out.push(b':');
                out.extend_from_slice(k);
                encode_into(v, out);
            }
            out.push(b'e');
        }
    }
}

/// Returns the exact number of bytes [`encode_into`] will produce.
///
/// Used to pre-size buffers when encoding large announce responses.
pub fn encoded_len(value: &Value) -> usize {
    match value {
        Value::Bytes(b) => decimal_digits(b.len() as u64) + 1 + b.len(),
        Value::Int(i) => {
            let digits = decimal_digits(i.unsigned_abs()) + usize::from(*i < 0);
            2 + digits
        }
        Value::List(items) => 2 + items.iter().map(encoded_len).sum::<usize>(),
        Value::Dict(entries) => {
            2 + entries
                .iter()
                .map(|(k, v)| decimal_digits(k.len() as u64) + 1 + k.len() + encoded_len(v))
                .sum::<usize>()
        }
    }
}

fn push_usize(n: usize, out: &mut Vec<u8>) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut n = n;
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

fn decimal_digits(mut n: u64) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(v: &Value) -> Vec<u8> {
        v.encode()
    }

    #[test]
    fn encodes_strings() {
        assert_eq!(enc(&Value::from("spam")), b"4:spam");
        assert_eq!(enc(&Value::from("")), b"0:");
    }

    #[test]
    fn encodes_integers() {
        assert_eq!(enc(&Value::Int(42)), b"i42e");
        assert_eq!(enc(&Value::Int(0)), b"i0e");
        assert_eq!(enc(&Value::Int(-7)), b"i-7e");
        assert_eq!(enc(&Value::Int(i64::MIN)), b"i-9223372036854775808e");
        assert_eq!(enc(&Value::Int(i64::MAX)), b"i9223372036854775807e");
    }

    #[test]
    fn encodes_lists() {
        let v = Value::list([Value::from("spam"), Value::Int(42)]);
        assert_eq!(enc(&v), b"l4:spami42ee");
        assert_eq!(enc(&Value::list([])), b"le");
    }

    #[test]
    fn encodes_dicts_sorted() {
        let v = Value::dict([("spam", Value::from("eggs")), ("cow", Value::from("moo"))]);
        assert_eq!(enc(&v), b"d3:cow3:moo4:spam4:eggse");
        assert_eq!(enc(&Value::dict::<&str, _>([])), b"de");
    }

    #[test]
    fn encoded_len_matches_actual_length() {
        let samples = [
            Value::from(""),
            Value::from("x".repeat(1000)),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::list([Value::Int(1), Value::from("ab")]),
            Value::dict([("a", Value::Int(9)), ("bb", Value::list([]))]),
        ];
        for v in &samples {
            assert_eq!(encoded_len(v), enc(v).len(), "mismatch for {v:?}");
        }
    }

    #[test]
    fn binary_keys_encode_raw() {
        let v = Value::Dict(
            [(vec![0xff, 0x00], Value::Int(1))]
                .into_iter()
                .collect(),
        );
        assert_eq!(enc(&v), b"d2:\xff\x00i1ee");
    }

    #[test]
    fn nested_structures_roundtrip_by_length() {
        let v = Value::dict([(
            "info",
            Value::dict([
                ("pieces", Value::Bytes(vec![0u8; 40])),
                ("files", Value::list([Value::dict([("length", Value::Int(5))])])),
            ]),
        )]);
        assert_eq!(encoded_len(&v), enc(&v).len());
    }
}
