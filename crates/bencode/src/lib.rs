//! # btpub-bencode
//!
//! A from-scratch implementation of the bencode serialisation format used
//! throughout the BitTorrent ecosystem (`.torrent` metainfo files, tracker
//! announce responses, and several peer-wire extensions).
//!
//! Bencode supports four kinds of values:
//!
//! * byte strings — `4:spam`
//! * integers — `i42e`
//! * lists — `l4:spami42ee`
//! * dictionaries — `d3:cow3:moo4:spam4:eggse` (keys are byte strings and
//!   MUST appear in lexicographic order)
//!
//! The implementation is strict on decode (rejects leading zeros, `-0`,
//! unsorted or duplicate dictionary keys, and trailing garbage by default)
//! and always emits canonical output on encode, which guarantees that
//! `decode ∘ encode` and `encode ∘ decode` are both identities. Canonical
//! output matters for BitTorrent because the info-hash is computed over the
//! encoded `info` dictionary.
//!
//! ```
//! use btpub_bencode::Value;
//!
//! let v = Value::dict([
//!     ("announce", Value::from("http://tracker.example/announce")),
//!     ("size", Value::from(1234i64)),
//! ]);
//! let bytes = v.encode();
//! assert_eq!(Value::decode(&bytes).unwrap(), v);
//! ```

mod decode;
mod encode;
mod value;

pub use decode::{decode, decode_prefix, DecodeError, Decoder, MAX_DEPTH};
pub use encode::{encode_into, encoded_len};
pub use value::Value;
