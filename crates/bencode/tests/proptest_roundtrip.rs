//! Property tests: bencode round-trips and decoder robustness.

use btpub_bencode::{decode, decode_prefix, encoded_len, Value};
use proptest::collection::{btree_map, vec};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..8).prop_map(Value::List),
            btree_map(vec(any::<u8>(), 0..16), inner, 0..8).prop_map(Value::Dict),
        ]
    })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(v in arb_value()) {
        let bytes = v.encode();
        prop_assert_eq!(decode(&bytes).unwrap(), v);
    }

    #[test]
    fn encoded_len_is_exact(v in arb_value()) {
        prop_assert_eq!(encoded_len(&v), v.encode().len());
    }

    #[test]
    fn decode_never_panics(data in vec(any::<u8>(), 0..256)) {
        let _ = decode(&data);
    }

    #[test]
    fn decode_prefix_consumes_exactly_one_value(v in arb_value(), tail in vec(any::<u8>(), 0..32)) {
        let mut bytes = v.encode();
        let value_len = bytes.len();
        bytes.extend_from_slice(&tail);
        let (decoded, used) = decode_prefix(&bytes).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, value_len);
    }

    #[test]
    fn canonical_encoding_is_stable(v in arb_value()) {
        // encode -> decode -> encode must be a fixed point.
        let once = v.encode();
        let twice = decode(&once).unwrap().encode();
        prop_assert_eq!(once, twice);
    }
}
