//! Ablation experiments over the measurement design (DESIGN.md §5):
//!
//! 1. **vantage points** — how many crawler machines are needed for good
//!    download coverage and session-estimation accuracy;
//! 2. **offline threshold** — the Appendix A 2 h/4 h/6 h robustness check
//!    against ground truth;
//! 3. **tracker sample size W** — the capture-probability model's
//!    sensitivity, analytically.
//!
//! ```text
//! cargo run --release -p btpub-bench --bin ablate
//! ```

use btpub::analysis::session::{capture_probability, queries_needed};
use btpub::crawler::{run_crawl, CrawlerConfig};
use btpub::sim::Ecosystem;
use btpub::{Scale, Scenario};

fn main() {
    let scenario = Scenario::pb10(Scale {
        torrents: 0.04,
        downloads: 0.10,
        majors: 0.04,
    });
    btpub_obs::info!("generating shared ecosystem"; torrents = scenario.eco.torrents);
    let eco = Ecosystem::generate(scenario.eco.clone());

    println!("== ablation 1: vantage points ==");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "vantage", "identified", "coverage", "session-err", "crawl-secs"
    );
    for vantage in [1u32, 2, 4, 8] {
        let cfg = CrawlerConfig {
            vantage_points: vantage,
            name: format!("v{vantage}"),
            ..CrawlerConfig::default()
        };
        let started = std::time::Instant::now();
        let dataset = run_crawl(&eco, &cfg);
        let elapsed = started.elapsed().as_secs_f64();
        // Reuse the Study analysis layer on this dataset.
        let study = btpub::Study {
            scenario: scenario.clone(),
            eco: Ecosystem::generate(scenario.eco.clone()),
            dataset,
        };
        let analyses = study.analyze();
        let v1 = analyses.experiments().v1_validation();
        println!(
            "{:>8} {:>11.0}% {:>11.0}% {:>14.2} {:>12.1}",
            vantage,
            v1.ip_identified_frac * 100.0,
            v1.download_coverage * 100.0,
            v1.session_error_median,
            elapsed
        );
    }

    println!("\n== ablation 2: offline threshold (hours) vs ground truth ==");
    let study = btpub::Study {
        scenario: scenario.clone(),
        eco: Ecosystem::generate(scenario.eco.clone()),
        dataset: run_crawl(&eco, &CrawlerConfig::default()),
    };
    let analyses = study.analyze();
    let aa = analyses.experiments().aa_session_model();
    println!(
        "  top median aggregated session: 2h={:.1}h 4h={:.1}h 6h={:.1}h (paper: 'similar results')",
        aa.threshold_sensitivity[0], aa.threshold_sensitivity[1], aa.threshold_sensitivity[2]
    );

    println!("\n== ablation 3: tracker sample size W (N = 165) ==");
    println!("{:>6} {:>10} {:>16}", "W", "m for .99", "P after 13 queries");
    for w in [20u32, 50, 100, 165] {
        println!(
            "{:>6} {:>10} {:>16.4}",
            w,
            queries_needed(w, 165, 0.99),
            capture_probability(w, 165, 13)
        );
    }
}
