//! `btpub-ops`: one-command incident archives for the serving plane.
//!
//! ```text
//! btpub-ops bundle --out PATH [--manifest PATH] [--daemon HOST:PORT]
//!                  [--blackbox PREFIX] [--note TEXT]
//! btpub-ops triage PATH [--baseline MANIFEST] [--p99-tolerance PCT]
//! ```
//!
//! `bundle` collects whatever evidence exists about a (possibly still
//! limping) daemon — the latest periodic manifest, a live
//! `/metrics`/`/healthz`/`/trace/snapshot` scrape, the black-box ring
//! dumps the breaker trips left behind — into **one** versioned,
//! CRC-trailered archive (the PR 8 checkpoint framing: magic, version,
//! length-prefixed named sections, whole-file CRC-32 trailer, atomic
//! write). `triage` verifies the CRC before parsing a single field,
//! then renders the operator-facing incident summary: breaker history,
//! full-rate adaptive-tracing windows, top dropped/capped trace sites,
//! the black-box dumps by name, and p99 latency regressions against a
//! baseline manifest.
//!
//! Exit codes: `0` rendered/written, `1` refused (corrupt archive, io
//! failure, nothing to bundle), `2` usage.

use std::path::{Path, PathBuf};

use btpub_faults::NetConfig;
use btpub_stream::checkpoint::{crc32, Dec, Enc};
use btpub_tracker::client::HttpSession;
use serde_json::Value;

/// On-disk magic for an incident archive.
const ARCHIVE_MAGIC: &[u8; 8] = b"BTPUBINC";
/// Bumped whenever the section encoding changes shape.
const ARCHIVE_VERSION: u32 = 1;

fn usage() -> ! {
    eprintln!(
        "usage: btpub-ops bundle --out PATH [--manifest PATH] [--daemon HOST:PORT] \
         [--blackbox PREFIX] [--note TEXT]\n\
         \x20      btpub-ops triage PATH [--baseline MANIFEST] [--p99-tolerance PCT]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("bundle") => bundle(&args[1..]),
        Some("triage") => triage(&args[1..]),
        _ => usage(),
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------
// bundle
// ---------------------------------------------------------------------

fn bundle(args: &[String]) -> i32 {
    let mut out: Option<PathBuf> = None;
    let mut manifest: Option<PathBuf> = None;
    let mut daemon: Option<String> = None;
    let mut blackbox: Option<String> = None;
    let mut note: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--out" => out = Some(value(i).into()),
            "--manifest" => manifest = Some(value(i).into()),
            "--daemon" => daemon = Some(value(i)),
            "--blackbox" => blackbox = Some(value(i)),
            "--note" => note = Some(value(i)),
            _ => usage(),
        }
        i += 2;
    }
    let Some(out) = out else { usage() };
    if manifest.is_none() && daemon.is_none() && blackbox.is_none() {
        eprintln!("btpub-ops: nothing to bundle (give --manifest, --daemon, or --blackbox)");
        return 1;
    }

    // Section order is the render order: build meta first, then the
    // run-level evidence, then the per-dump black-box files.
    let mut sections: Vec<(String, Vec<u8>)> = Vec::new();
    let meta = format!(
        "{{\"tool\":\"btpub-ops\",\"version\":\"{}\",\"archive_version\":{},\"note\":{}}}\n",
        env!("CARGO_PKG_VERSION"),
        ARCHIVE_VERSION,
        match &note {
            Some(n) => serde_json::Value::from(n.as_str()).to_string(),
            None => "null".into(),
        }
    );
    sections.push(("meta".into(), meta.into_bytes()));

    if let Some(path) = &manifest {
        match std::fs::read(path) {
            Ok(bytes) => sections.push(("manifest".into(), bytes)),
            Err(e) => {
                eprintln!("btpub-ops: cannot read manifest {}: {e}", path.display());
                return 1;
            }
        }
    }

    if let Some(addr) = &daemon {
        let net = NetConfig::loopback_test();
        let url = format!("http://{addr}/announce");
        let mut session = match HttpSession::connect(&url, &net) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("btpub-ops: cannot reach daemon at {addr}: {e}");
                return 1;
            }
        };
        for (name, target) in [
            ("healthz", "/healthz"),
            ("metrics", "/metrics?format=json"),
            ("trace", "/trace/snapshot"),
        ] {
            match session.get(target) {
                Ok(bytes) => sections.push((name.into(), bytes)),
                Err(e) => {
                    eprintln!("btpub-ops: daemon GET {target} failed: {e}");
                    return 1;
                }
            }
        }
    }

    if let Some(prefix) = &blackbox {
        match collect_blackbox(prefix) {
            Ok(dumps) => {
                for (name, bytes) in dumps {
                    sections.push((format!("blackbox/{name}"), bytes));
                }
            }
            Err(e) => {
                eprintln!("btpub-ops: cannot scan black-box prefix {prefix}: {e}");
                return 1;
            }
        }
    }

    let mut enc = Enc::new();
    enc.u32(sections.len() as u32);
    for (name, bytes) in &sections {
        enc.str(name);
        enc.bytes(bytes);
    }
    let mut file = Vec::new();
    file.extend_from_slice(ARCHIVE_MAGIC);
    file.extend_from_slice(&ARCHIVE_VERSION.to_le_bytes());
    file.extend_from_slice(&enc.into_bytes());
    let crc = crc32(&file);
    file.extend_from_slice(&crc.to_le_bytes());

    // Atomic: assemble next to the target, rename over it, so a watcher
    // (or a second bundle) never reads a torn archive.
    let tmp = out.with_extension("btinc.tmp");
    let write = std::fs::write(&tmp, &file).and_then(|()| std::fs::rename(&tmp, &out));
    if let Err(e) = write {
        eprintln!("btpub-ops: cannot write archive {}: {e}", out.display());
        return 1;
    }
    println!(
        "bundled {} sections into {} ({} bytes, crc {crc:#010x})",
        sections.len(),
        out.display(),
        file.len()
    );
    for (name, bytes) in &sections {
        println!("  {name} ({} bytes)", bytes.len());
    }
    0
}

/// Black-box dumps matching `<prefix>-*.json` (the naming
/// `trace::trip` uses), sorted by file name so the sequence numbers
/// keep trip order.
fn collect_blackbox(prefix: &str) -> std::io::Result<Vec<(String, Vec<u8>)>> {
    let p = Path::new(prefix);
    let dir = match p.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let stem = p
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with(&format!("{stem}-")) && name.ends_with(".json") {
            out.push((name, std::fs::read(entry.path())?));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

// ---------------------------------------------------------------------
// triage
// ---------------------------------------------------------------------

fn triage(args: &[String]) -> i32 {
    let mut path: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut p99_tolerance = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--baseline" => {
                baseline = Some(value(i).into());
                i += 2;
            }
            "--p99-tolerance" => {
                p99_tolerance = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            a if !a.starts_with("--") && path.is_none() => {
                path = Some(a.into());
                i += 1;
            }
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let sections = match read_archive(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("btpub-ops: {e}");
            return 1;
        }
    };
    render_triage(&path, &sections, baseline.as_deref(), p99_tolerance)
}

/// Reads and fully validates an archive: magic, version, then the
/// whole-file CRC *before* any section is parsed — a torn or
/// bit-flipped archive is refused by name, never misparsed.
fn read_archive(path: &Path) -> Result<Vec<(String, Vec<u8>)>, String> {
    let data = std::fs::read(path)
        .map_err(|e| format!("cannot read incident archive {}: {e}", path.display()))?;
    if data.len() < ARCHIVE_MAGIC.len() + 8 || &data[..8] != ARCHIVE_MAGIC {
        return Err(format!(
            "incident archive {} refused: bad magic (not a btpub-ops archive)",
            path.display()
        ));
    }
    let body = &data[..data.len() - 4];
    let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    let computed = crc32(body);
    if stored != computed {
        return Err(format!(
            "incident archive {} refused: crc mismatch (stored {stored:#010x}, \
             computed {computed:#010x}) — file is corrupt or truncated",
            path.display()
        ));
    }
    let version = u32::from_le_bytes(body[8..12].try_into().unwrap());
    if version != ARCHIVE_VERSION {
        return Err(format!(
            "incident archive {} refused: format version mismatch (file v{version}, \
             binary v{ARCHIVE_VERSION})",
            path.display()
        ));
    }
    let mut dec = Dec::new(&body[12..]);
    let mut parse = || -> Result<Vec<(String, Vec<u8>)>, btpub_stream::checkpoint::CheckpointError> {
        let count = dec.u32()?;
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name = dec.str()?;
            let bytes = dec.bytes()?;
            out.push((name, bytes));
        }
        Ok(out)
    };
    parse().map_err(|e| format!("incident archive {} refused: {e}", path.display()))
}

fn section<'a>(sections: &'a [(String, Vec<u8>)], name: &str) -> Option<&'a [u8]> {
    sections
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, b)| b.as_slice())
}

fn parse_json(bytes: &[u8]) -> Option<Value> {
    serde_json::from_str(std::str::from_utf8(bytes).ok()?).ok()
}

/// The metrics snapshot to triage from: the live `/metrics` scrape when
/// the bundle has one, else the manifest's embedded snapshot.
fn snapshot_of(sections: &[(String, Vec<u8>)]) -> Option<Value> {
    if let Some(v) = section(sections, "metrics").and_then(parse_json) {
        return Some(v);
    }
    let manifest = section(sections, "manifest").and_then(parse_json)?;
    Some(manifest["snapshot"].clone())
}

/// Counters under `prefix`, as `(suffix, value)`, descending by value.
fn counters_under(snapshot: &Value, prefix: &str) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = snapshot["counters"]
        .as_object()
        .map(|m| {
            m.iter()
                .filter_map(|(k, v)| {
                    let suffix = k.strip_prefix(prefix)?;
                    Some((suffix.to_string(), v.as_u64()?))
                })
                .collect()
        })
        .unwrap_or_default();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

fn render_triage(
    path: &Path,
    sections: &[(String, Vec<u8>)],
    baseline: Option<&Path>,
    p99_tolerance: f64,
) -> i32 {
    println!("incident archive v{ARCHIVE_VERSION}: {}", path.display());
    let names: Vec<&str> = sections.iter().map(|(n, _)| n.as_str()).collect();
    println!("sections: {} ({})", sections.len(), names.join(", "));

    if let Some(meta) = section(sections, "meta").and_then(parse_json) {
        println!("\n== build ==");
        println!(
            "tool={} version={}",
            meta["tool"].as_str().unwrap_or("?"),
            meta["version"].as_str().unwrap_or("?")
        );
        if let Some(note) = meta["note"].as_str() {
            println!("note: {note}");
        }
    }

    if let Some(health) = section(sections, "healthz") {
        println!("\n== health ==");
        for line in String::from_utf8_lossy(health).lines() {
            println!("  {line}");
        }
    }

    let snapshot = snapshot_of(sections);
    if let Some(snap) = &snapshot {
        println!("\n== breakers ==");
        let mut opened = counters_under(snap, "retry.breaker.");
        opened.retain(|(name, _)| name.ends_with(".opened"));
        if opened.is_empty() {
            println!("  no breaker ever opened");
        }
        for (name, count) in &opened {
            let tracker = name.trim_end_matches(".opened");
            println!("  breaker {tracker}: opened {count} time(s)  [TRIPPED]");
        }

        println!("\n== adaptive tracing ==");
        let windows = counters_under(snap, "trace.adaptive.windows");
        let total = windows
            .iter()
            .find(|(n, _)| n.is_empty())
            .map_or(0, |(_, v)| *v);
        if total == 0 {
            println!("  no full-rate sampling window opened");
        } else {
            println!("  full-rate sampling windows opened: {total}");
            for (name, count) in &windows {
                if let Some(reason) = name.strip_prefix('.') {
                    println!("    window by {reason}: {count} opened");
                }
            }
            for (reason, count) in counters_under(snap, "trace.adaptive.closed.") {
                println!("    window by {reason}: {count} closed");
            }
        }

        println!("\n== trace loss ==");
        let dropped = counters_under(snap, "trace.dropped.");
        let capped = counters_under(snap, "trace.capped.");
        if dropped.is_empty() && capped.is_empty() {
            println!("  lossless: no trace events dropped or capped");
        }
        for (lane, count) in dropped.iter().take(5) {
            println!("  dropped {count} events on lane {lane}");
        }
        for (lane, count) in capped.iter().take(5) {
            println!("  capped {count} events on lane {lane}");
        }
    } else {
        println!("\n(no metrics snapshot in this archive — breaker/adaptive/loss sections skipped)");
    }

    println!("\n== black box ==");
    let dumps: Vec<&str> = sections
        .iter()
        .filter_map(|(n, _)| n.strip_prefix("blackbox/"))
        .collect();
    if dumps.is_empty() {
        println!("  no black-box dumps bundled");
    }
    for name in &dumps {
        let size = section(sections, &format!("blackbox/{name}")).map_or(0, <[u8]>::len);
        println!("  dump {name} ({size} bytes)");
    }

    if let Some(base_path) = baseline {
        println!("\n== p99 vs baseline ==");
        let base = std::fs::read_to_string(base_path)
            .ok()
            .and_then(|t| serde_json::from_str::<Value>(&t).ok());
        match (base, &snapshot) {
            (Some(base), Some(snap)) => {
                let regressions = p99_regressions(&base, snap, p99_tolerance);
                if regressions.is_empty() {
                    println!("  no p99 regressions beyond {p99_tolerance}%");
                }
                for line in regressions {
                    println!("  {line}");
                }
            }
            (None, _) => println!("  cannot read baseline manifest {}", base_path.display()),
            (_, None) => println!("  archive has no metrics snapshot to compare"),
        }
    }
    0
}

/// Histogram p99s that regressed beyond `tolerance_pct` against the
/// baseline manifest's snapshot. Latency can legitimately wobble, so
/// this is advisory triage, not a digest gate.
fn p99_regressions(baseline: &Value, snapshot: &Value, tolerance_pct: f64) -> Vec<String> {
    fn root(v: &Value) -> &Value {
        if v["snapshot"].as_object().is_some() {
            &v["snapshot"]
        } else {
            v
        }
    }
    let base = root(baseline);
    let snap = root(snapshot);
    let mut out = Vec::new();
    let (Some(base_h), Some(snap_h)) =
        (base["histograms"].as_object(), snap["histograms"].as_object())
    else {
        return out;
    };
    let mut names: Vec<&String> = base_h.keys().collect();
    names.sort();
    for name in names {
        let old = base_h.get(name).and_then(|h| h["p99"].as_f64());
        let new = snap_h.get(name).and_then(|h| h["p99"].as_f64());
        let (Some(old), Some(new)) = (old, new) else {
            continue;
        };
        if old > 0.0 && new > old * (1.0 + tolerance_pct / 100.0) {
            out.push(format!(
                "histogram {name}: p99 {old:.0} -> {new:.0} ({:+.1}%)",
                (new - old) / old * 100.0
            ));
        }
    }
    out
}
