//! `btpub-load`: the deterministic load generator as a command.
//!
//! ```text
//! btpub-load [--seed N] [--torrents T] [--clients C] [--announces A]
//!            [--ecosystem] [--no-garble] [--drivers D] [--shards S]
//!            [--transport udp|tcp|mixed] [--mode batch|single]
//!            [--profile clean|flaky|hostile]
//!            [--udp ADDR --url URL]
//!            [--metrics PATH] [--manifest PATH] [--report]
//! ```
//!
//! Builds a replayable announce [`Script`] (synthetic by default;
//! `--ecosystem` replays a generated tiny ecosystem instead), computes
//! the in-process oracle snapshot, fires the script over real loopback
//! sockets, and compares the daemon's final snapshot byte-for-byte
//! against the oracle. Exits 1 on any divergence.
//!
//! By default it self-hosts a [`ServeDaemon`] with `--shards` shards.
//! With `--udp` and `--url` it targets an external daemon instead (one
//! started by `btpub-serve` with the *same* `--seed`, `--torrents`, and
//! `--profile`, or the snapshots cannot match); the final snapshot is
//! fetched over HTTP from the daemon's `/snapshot` endpoint.
//!
//! `--metrics` dumps the full metric registry (including the `serve.*`
//! counters and latency histograms the daemon recorded in-process),
//! `--manifest` writes a run manifest for `obs_diff` (the `serve.*`
//! tallies ride along but stay out of the digest — retransmits inflate
//! them), and `--report` prints the human-readable text report to
//! stdout.

use btpub_faults::{FaultProfile, NetConfig};
use btpub_sim::{Ecosystem, EcosystemConfig};
use btpub_tracker::client::HttpSession;
use btpub_tracker::serve::load::{self, LoadConfig, Mode, Transport};
use btpub_tracker::serve::script::Script;
use btpub_tracker::serve::{oracle, ServeConfig, ServeDaemon};

/// Outcome-class labels indexed by wire code.
const CLASS_NAMES: [&str; 8] = [
    "admitted",
    "duplicate",
    "rate_limited",
    "blacklisted",
    "unknown",
    "down",
    "dropped",
    "malformed",
];

fn usage() -> ! {
    eprintln!(
        "usage: btpub-load [--seed N] [--torrents T] [--clients C] [--announces A] \
         [--ecosystem] [--no-garble] [--drivers D] [--shards S] [--transport udp|tcp|mixed] \
         [--mode batch|single] [--profile clean|flaky|hostile] [--udp ADDR --url URL] \
         [--metrics PATH] [--manifest PATH] [--report]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 0u64;
    let mut torrents = 32u32;
    let mut clients = 128u32;
    let mut announces = 10_000usize;
    let mut ecosystem = false;
    let mut no_garble = false;
    let mut shards = 8usize;
    let mut profile = FaultProfile::clean();
    let mut cfg = LoadConfig::new(4);
    let mut udp: Option<std::net::SocketAddr> = None;
    let mut url: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut manifest_path: Option<String> = None;
    let mut text_report = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        if flag == "--ecosystem" {
            ecosystem = true;
            i += 1;
            continue;
        }
        if flag == "--no-garble" {
            no_garble = true;
            i += 1;
            continue;
        }
        if flag == "--report" {
            text_report = true;
            i += 1;
            continue;
        }
        let value = args.get(i + 1).cloned().unwrap_or_else(|| usage());
        let num = |v: &str| -> u64 { v.parse().unwrap_or_else(|_| usage()) };
        match flag.as_str() {
            "--seed" => seed = num(&value),
            "--torrents" => torrents = num(&value) as u32,
            "--clients" => clients = num(&value).max(1) as u32,
            "--announces" => announces = num(&value) as usize,
            "--drivers" => cfg.drivers = num(&value).max(1) as usize,
            "--shards" => shards = num(&value).max(1) as usize,
            "--transport" => {
                cfg.transport = match value.as_str() {
                    "udp" => Transport::Udp,
                    "tcp" => Transport::Tcp,
                    "mixed" => Transport::Mixed,
                    _ => usage(),
                }
            }
            "--mode" => {
                cfg.mode = match value.as_str() {
                    "batch" => Mode::Batch,
                    "single" => Mode::Single,
                    _ => usage(),
                }
            }
            "--profile" => {
                profile = match value.as_str() {
                    "clean" => FaultProfile::clean(),
                    "flaky" => FaultProfile::flaky(),
                    "hostile" => FaultProfile::hostile(),
                    _ => usage(),
                }
            }
            "--udp" => udp = Some(value.parse().unwrap_or_else(|_| usage())),
            "--url" => url = Some(value),
            "--metrics" => metrics_path = Some(value),
            "--manifest" => manifest_path = Some(value),
            _ => usage(),
        }
        i += 2;
    }
    cfg.profile = profile.clone();
    let fault_name = profile.name.clone();

    let mut script = if ecosystem {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(seed));
        Script::from_ecosystem(&eco)
    } else {
        Script::synthetic(seed, torrents, clients, announces)
    };
    if no_garble {
        script.ops.retain(|o| !o.garbled);
    }
    eprintln!(
        "btpub-load: {} ops over {} torrents, {} drivers",
        script.ops.len(),
        script.torrents,
        cfg.drivers
    );
    let expected = oracle::oracle_snapshot(&script, profile.clone());

    let started = std::time::Instant::now();
    let (snapshot, report) = match (udp, url) {
        (Some(udp_addr), Some(announce_url)) => {
            let report = load::run(&script, udp_addr, &announce_url, &cfg)
                .expect("load run against external daemon");
            let mut session = HttpSession::connect(&announce_url, &NetConfig::loopback_test())
                .expect("connect for /snapshot");
            let bytes = session.get("/snapshot").expect("fetch /snapshot");
            (String::from_utf8(bytes).expect("snapshot is text"), report)
        }
        (None, None) => {
            let mut scfg = ServeConfig::new(script.seed, shards, script.torrents);
            scfg.profile = profile;
            let daemon = ServeDaemon::start(scfg).expect("bind loopback daemon");
            let report = load::run(&script, daemon.udp_addr(), &daemon.announce_url(), &cfg)
                .expect("load run");
            (daemon.shutdown(), report)
        }
        _ => {
            eprintln!("btpub-load: --udp and --url must be given together");
            std::process::exit(2);
        }
    };
    let wall = started.elapsed().as_secs_f64();

    eprintln!(
        "btpub-load: sent {} (+{} garbled) in {:.3}s = {:.0} announces/s, {} errors",
        report.sent,
        report.garbled_sent,
        wall,
        report.sent as f64 / wall.max(1e-9),
        report.errors
    );
    for (name, count) in CLASS_NAMES.iter().zip(report.classes.0) {
        if count > 0 {
            eprintln!("btpub-load:   {name:<12} {count}");
        }
    }
    if !report.latencies_ns.is_empty() {
        let mut lat = report.latencies_ns.clone();
        lat.sort_unstable();
        eprintln!(
            "btpub-load:   p50 {} ns, p99 {} ns ({} exchanges)",
            lat[lat.len() / 2],
            lat[(lat.len() * 99 / 100).min(lat.len() - 1)],
            lat.len()
        );
    }

    // Observability artifacts come before the verdict so a diverging
    // run still leaves its metrics behind for the post-mortem. In
    // self-hosted mode the daemon ran in-process, so the registry holds
    // the full serve.* surface; against an external daemon it only
    // holds this side of the wire.
    if let Some(path) = &metrics_path {
        let json = serde_json::to_string_pretty(&btpub_obs::global().snapshot())
            .expect("snapshot serializes");
        std::fs::write(path, json).expect("write --metrics");
        eprintln!("btpub-load: metrics snapshot written to {path}");
    }
    if let Some(path) = &manifest_path {
        use serde_json::Value;
        let meta = [
            ("bin", Value::from("btpub-load")),
            ("seed", Value::from(seed)),
            ("torrents", Value::from(u64::from(script.torrents))),
            ("ops", Value::from(script.ops.len() as u64)),
            ("fault_profile", Value::from(fault_name)),
            ("shards", Value::from(shards as u64)),
        ];
        let manifest = btpub_obs::manifest::build(btpub_obs::global(), &meta);
        btpub_obs::manifest::write(std::path::Path::new(path), &manifest)
            .expect("write --manifest");
        eprintln!("btpub-load: run manifest written to {path}");
    }
    if text_report {
        print!("{}", btpub_obs::text_report(btpub_obs::global()));
    }

    if snapshot == expected {
        eprintln!("btpub-load: snapshot matches the oracle ({} bytes)", snapshot.len());
    } else {
        eprintln!("btpub-load: SNAPSHOT MISMATCH");
        for (i, (a, b)) in expected.lines().zip(snapshot.lines()).enumerate() {
            if a != b {
                eprintln!("btpub-load: first divergence at line {i}:");
                eprintln!("btpub-load:   oracle: {a}");
                eprintln!("btpub-load:   live:   {b}");
                break;
            }
        }
        std::process::exit(1);
    }
}
