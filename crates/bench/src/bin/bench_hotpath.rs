//! Hot-path profile benchmark → `BENCH_hotpath.json`.
//!
//! ```text
//! bench_hotpath [--scale tiny|repro|paper] [--jobs N] [--out PATH] [--gate PATH]
//! ```
//!
//! Measures what the hot-path work actually costs, per phase:
//!
//! * **phase walls** — the `repro --scenario all` pipeline run once at the
//!   requested scale with explicit barriers between generate → crawl →
//!   analyze → report, so each phase's wall clock is attributable;
//! * **announce latency** — p50/p99 of `tracker.announce.latency_ns`
//!   across every announce the crawl issued;
//! * **allocator discipline** — a microbenchmark of the steady-state
//!   announce loop (`TrackerSim::query_into` with a warm reply buffer)
//!   under a counting global allocator, reported as allocations per
//!   query, plus the pipeline-wide `hotpath.alloc.saved` counter;
//! * **task coarsening** — total tasks executed across every `par.*`
//!   pool, the number the chunked maps are meant to keep small.
//!
//! `--gate OLD.json` turns the run into a regression gate: it compares
//! the fresh numbers against a committed `BENCH_hotpath.json` and exits
//! nonzero if allocations per query regressed (hard), the tiny-scale
//! pipeline wall regressed by more than 20 % (noise-tolerant), or the
//! armed flight-recorder overhead exceeded its 5 % ceiling (hard — the
//! whole point of the production-cheap recorder).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use btpub::{Scale, Scenario, Study};
use btpub_par::Jobs;
use btpub_sim::{Ecosystem, SimDuration};
use btpub_tracker::TrackerSim;

/// `System`, plus a count of allocation entry points (alloc + realloc).
/// Deallocation is free-running and untracked: the gate cares about how
/// often the hot loop asks the allocator for memory, not about balance.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Wall clock of each pipeline phase, seconds.
#[derive(serde::Serialize, serde::Deserialize)]
struct PhaseWalls {
    generate_s: f64,
    crawl_s: f64,
    analyze_s: f64,
    report_s: f64,
    total_s: f64,
}

/// The emitted measurement record.
#[derive(serde::Serialize, serde::Deserialize)]
struct BenchReport {
    /// Benchmark id.
    bench: String,
    /// Scale preset of the phase-wall measurement.
    scale: String,
    /// Detected available parallelism.
    cpus: usize,
    /// Worker count the pipeline ran at.
    jobs: usize,
    /// Per-phase wall clock at the requested scale.
    phases: PhaseWalls,
    /// Pipeline wall at tiny scale (the regression gate's yardstick,
    /// cheap enough to re-measure on every `scripts/check.sh` run).
    wall_s_tiny: f64,
    /// Median announce latency, nanoseconds.
    announce_p50_ns: f64,
    /// Tail announce latency, nanoseconds.
    announce_p99_ns: f64,
    /// Announces measured.
    announce_count: u64,
    /// Tasks executed across every `par.*` pool during the phase run.
    pool_tasks: u64,
    /// Steady-state announces that completed without growing the reply
    /// buffer (`hotpath.alloc.saved`), phase run.
    alloc_saved: u64,
    /// Allocator calls per announce in the warm-buffer microbenchmark.
    allocs_per_query: f64,
    /// Flight-recorder cost: per-announce wall with the recorder armed vs
    /// disarmed, as a percentage (`Option` so baselines written before
    /// the recorder existed still parse). Gated against a fixed 5 %
    /// ceiling — armed tracing must stay cheap enough to leave on in
    /// production.
    trace_overhead_pct: Option<f64>,
    /// Same lap with 1-in-16 deterministic sampling on the announce
    /// site — the configuration a production deployment would run.
    /// Informational (it is bounded above by the unsampled number).
    trace_overhead_sampled_pct: Option<f64>,
    /// Report bytes produced (sanity: the pipeline really ran).
    report_bytes: usize,
}

/// One pipeline pass with a barrier (and a timestamp) between phases.
fn run_phases(scale: Scale, jobs: usize) -> (PhaseWalls, usize) {
    btpub_par::set_global(Jobs::new(jobs));
    let scenarios = [
        ("mn08", Scenario::mn08(scale)),
        ("pb09", Scenario::pb09(scale)),
        ("pb10", Scenario::pb10(scale)),
    ];
    let t0 = Instant::now();
    let ecos: Vec<Ecosystem> = scenarios
        .iter()
        .map(|(_, sc)| Ecosystem::generate(sc.eco.clone()))
        .collect();
    let generate_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let studies: Vec<Study> = scenarios
        .iter()
        .zip(ecos)
        .map(|((_, sc), eco)| {
            let dataset = btpub_crawler::run_crawl(&eco, &sc.crawler);
            Study {
                scenario: sc.clone(),
                eco,
                dataset,
            }
        })
        .collect();
    let crawl_s = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let analyses: Vec<_> = studies.iter().map(Study::analyze).collect();
    let analyze_s = t2.elapsed().as_secs_f64();

    let t3 = Instant::now();
    let report_bytes: usize = analyses
        .iter()
        .map(|a| a.experiments().full_report().len())
        .sum();
    let report_s = t3.elapsed().as_secs_f64();

    (
        PhaseWalls {
            generate_s,
            crawl_s,
            analyze_s,
            report_s,
            total_s: t0.elapsed().as_secs_f64(),
        },
        report_bytes,
    )
}

/// Allocator calls per announce once the reply buffer and tracker state
/// are warm — the number the scratch-buffer work drives toward zero.
fn measure_allocs_per_query() -> f64 {
    let scenario = Scenario::pb10(Scale::tiny());
    let eco = Ecosystem::generate(scenario.eco.clone());
    let mut tracker = TrackerSim::new(&eco);
    let mut peers = Vec::new();
    let n = eco.publications.len() as u32;
    let queries = 4096u32;
    // One announce per (client, torrent) pair, an hour into each swarm's
    // life, cycling torrents — the crawler's steady state. The first lap
    // warms the buffer, the scratch space and the tracker's maps.
    let mut run = |base: u32, count: u32| {
        for i in 0..count {
            let torrent = btpub_sim::TorrentId(i % n);
            let at = eco.publications[(i % n) as usize].at + SimDuration::from_hours(1.0);
            let _ = tracker.query_into(base + i, torrent, at, 50, &mut peers);
        }
    };
    run(1_000_000, queries);
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    run(2_000_000, queries);
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    (after - before) as f64 / f64::from(queries)
}

/// One timed lap of the warm announce loop; returns seconds per query.
/// Announces land a day into each swarm's life — near the flash-crowd
/// peak, where replies carry a real peer list. An announce into an
/// hour-old (near-empty) swarm costs a fraction of what the crawl's
/// steady state pays, which would inflate any fixed per-event cost
/// into an unrepresentative percentage.
fn timed_batch(
    eco: &Ecosystem,
    tracker: &mut TrackerSim,
    peers: &mut Vec<std::net::Ipv4Addr>,
    base: u32,
    batch: u32,
) -> f64 {
    let n = eco.publications.len() as u32;
    let t0 = Instant::now();
    for i in 0..batch {
        let torrent = btpub_sim::TorrentId(i % n);
        let at = eco.publications[(i % n) as usize].at + SimDuration::from_hours(24.0);
        let _ = tracker.query_into(base + i, torrent, at, 50, peers);
    }
    t0.elapsed().as_secs_f64() / f64::from(batch)
}

/// Per-announce cost of arming the flight recorder: thousands of
/// interleaved off/on lap pairs over the same warm tracker, scored as
/// the *average of the two order-cohort medians of per-pair on/off
/// ratios*. Each adjacent pair runs microseconds apart, so slow drift
/// (frequency scaling, cache placement) cancels within the pair; a
/// scheduler preemption spike lands in one lap and turns that single
/// pair into an outlier ratio, which the median across pairs rejects;
/// and alternating the order within the pair cancels the residual
/// position bias a fixed off-then-on order bakes in. This is what
/// lets a hard 5 % gate hold on a small shared box where individual
/// lap walls swing by ±10 %. With the recorder armed every announce
/// also records
/// a complete event into the thread-local staging buffer, so with an
/// empty `sample_spec` this measures the true worst-case event rate;
/// with e.g. `"tracker.announce:16,seed:42"` it measures the sampled
/// production configuration instead. The spec is cleared before
/// returning.
///
/// The lap runs against the *repro*-scale ecosystem, not tiny: a tiny
/// announce copies a handful of peers and finishes in ~100ns, which
/// inflates a fixed ~10ns recorder cost into a scary-looking
/// percentage no production announce would ever see. The repro reply
/// sizes are the ones the paper's crawl sees, so the percentage the
/// gate pins is the one that matters.
fn measure_trace_overhead_pct(eco: &Ecosystem, sample_spec: &str) -> f64 {
    if !sample_spec.is_empty() {
        btpub_obs::trace::set_sample_spec(sample_spec).expect("bench sample spec parses");
    }
    let mut tracker = TrackerSim::new(eco);
    let mut peers = Vec::new();
    // Short laps, many pairs: an adjacent (off, on) pair spans ~300µs,
    // inside which frequency-governor drift is negligible, and the
    // median over hundreds of pairs rejects the laps a preemption
    // landed in. Pairs alternate lap order (off-then-on, on-then-off)
    // so any systematic within-pair slowdown — boost decay, cache
    // warming — biases half the ratios up and half down instead of
    // inflating them all. The gate treats the result as a hard
    // ceiling, so the estimate must sit well clear of scheduler
    // jitter; the whole measurement still costs well under a second.
    let batch = 256u32;
    let rounds = 2056usize;
    let mut base = 10_000_000u32;
    // Warm lap: reply buffer, tracker maps, interned trace symbols.
    btpub_obs::trace::set_enabled(true);
    timed_batch(eco, &mut tracker, &mut peers, base, batch);
    base += batch;
    let mut off = Vec::with_capacity(rounds);
    let mut on = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let on_first = round % 2 == 1;
        for half in 0..2 {
            let armed = (half == 0) == on_first;
            btpub_obs::trace::set_enabled(armed);
            let lap = timed_batch(eco, &mut tracker, &mut peers, base, batch);
            base += batch;
            if armed { on.push(lap) } else { off.push(lap) }
        }
    }
    btpub_obs::trace::set_enabled(false);
    let _ = btpub_obs::trace::drain();
    if !sample_spec.is_empty() {
        btpub_obs::trace::set_sample_spec("").expect("clearing sample spec");
    }
    {
        let mut o = off.clone();
        o.sort_by(f64::total_cmp);
        let mut n = on.clone();
        n.sort_by(f64::total_cmp);
        eprintln!(
            "    lap medians: off {:.0}ns/query, on {:.0}ns/query",
            o[o.len() / 2] * 1e9,
            n[n.len() / 2] * 1e9
        );
    }
    // Median each order-cohort separately, then average: a systematic
    // second-lap-of-the-pair slowdown shifts the two cohorts in
    // opposite directions, and the average cancels it exactly; a
    // single median over the bimodal mixture would sit wherever the
    // cohort overlap happens to put it.
    let cohort = |parity: usize| -> f64 {
        let mut ratios: Vec<f64> = off
            .iter()
            .zip(&on)
            .skip(parity)
            .step_by(2)
            .map(|(o, n)| n / o)
            .collect();
        ratios.sort_by(f64::total_cmp);
        ratios[ratios.len() / 2]
    };
    let (off_first, on_first) = (cohort(0), cohort(1));
    eprintln!(
        "    cohort medians: off-first {:+.2}%, on-first {:+.2}%",
        (off_first - 1.0) * 100.0,
        (on_first - 1.0) * 100.0
    );
    ((off_first + on_first) / 2.0 - 1.0) * 100.0
}

/// Applies the regression gate; returns the failure messages.
fn gate_failures(old: &BenchReport, new: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    // A baseline recorded on different hardware or at a different job
    // count gates nothing: its wall clocks and pool behaviour are not
    // comparable to this run's. Refuse outright rather than letting a
    // stale environment pass (or fail) the perf gate for the wrong
    // reason — scripts/bench.sh regenerates the baseline in place.
    if new.cpus != old.cpus || new.jobs != old.jobs {
        failures.push(format!(
            "baseline environment mismatch: baseline has cpus={}/jobs={}, \
             this run has cpus={}/jobs={} — regenerate the baseline here \
             (scripts/bench.sh)",
            old.cpus, old.jobs, new.cpus, new.jobs
        ));
        return failures;
    }
    // Hard: the announce loop must not start allocating again. Allow a
    // tenth of an allocation per query of slack for map-resize jitter.
    if new.allocs_per_query > old.allocs_per_query + 0.1 {
        failures.push(format!(
            "allocs per query regressed: {:.3} -> {:.3}",
            old.allocs_per_query, new.allocs_per_query
        ));
    }
    // Noise-tolerant: tiny-scale pipeline wall within +20 %.
    if new.wall_s_tiny > old.wall_s_tiny * 1.20 {
        failures.push(format!(
            "tiny-scale wall regressed >20%: {:.3}s -> {:.3}s",
            old.wall_s_tiny, new.wall_s_tiny
        ));
    }
    // Hard ceiling, not a relative comparison: armed tracing must cost
    // at most TRACE_OVERHEAD_CEILING_PCT on the announce lap, full stop.
    // A fixed ceiling cannot ratchet upward the way a relative gate
    // would if a regression ever got committed as the new baseline.
    if let Some(pct) = new.trace_overhead_pct {
        if pct > TRACE_OVERHEAD_CEILING_PCT {
            failures.push(format!(
                "armed trace overhead {pct:+.2}% exceeds the \
                 {TRACE_OVERHEAD_CEILING_PCT:.0}% ceiling"
            ));
        }
    }
    failures
}

/// Armed flight-recorder overhead ceiling on the announce lap, percent.
/// The ISSUE acceptance criterion: armed tracing in production costs
/// low single digits, enforced on every `scripts/check.sh` run.
const TRACE_OVERHEAD_CEILING_PCT: f64 = 5.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_repro();
    let mut scale_name = "repro".to_string();
    let mut jobs = 1usize;
    let mut out = "BENCH_hotpath.json".to_string();
    let mut gate: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::tiny(),
                    Some("repro") => Scale::default_repro(),
                    Some("paper") => Scale::paper(),
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
                scale_name = args[i].clone();
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                out = match args.get(i) {
                    Some(p) => p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                };
            }
            "--gate" => {
                i += 1;
                gate = match args.get(i) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--gate requires a path");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cpus = Jobs::detected().get();
    eprintln!("bench_hotpath: scale={scale_name} jobs={jobs} (cpus={cpus})");

    // Warm-up pass (allocator, page cache, metric handles), then the
    // gate yardstick: one timed tiny-scale pipeline pass at --jobs 1.
    let _ = run_phases(Scale::tiny(), 1);
    let (tiny_phases, _) = run_phases(Scale::tiny(), 1);
    let wall_s_tiny = tiny_phases.total_s;
    eprintln!("  tiny pipeline: {wall_s_tiny:.3}s");

    // Reset the announce/pool view so percentiles and task counts below
    // describe only the measured pass. Counters are monotonic, so take
    // before/after snapshots instead.
    let reg = btpub_obs::global();
    let announce_before = reg.histogram("tracker.announce.latency_ns").count();
    let saved_before = reg.counter("hotpath.alloc.saved").value();
    let tasks_before: u64 = pool_task_total();

    let (phases, report_bytes) = if scale_name == "tiny" {
        let r = run_phases(Scale::tiny(), jobs);
        eprintln!("  measured pipeline: {:.3}s", r.0.total_s);
        r
    } else {
        let r = run_phases(scale, jobs);
        eprintln!("  measured pipeline: {:.3}s", r.0.total_s);
        r
    };

    let announce = reg.histogram("tracker.announce.latency_ns");
    let announce_count = announce.count() - announce_before;
    let alloc_saved = reg.counter("hotpath.alloc.saved").value() - saved_before;
    let pool_tasks = pool_task_total() - tasks_before;

    let allocs_per_query = measure_allocs_per_query();
    eprintln!("  allocs/query (warm): {allocs_per_query:.3}");
    // One repro-scale ecosystem shared by both overhead laps (see
    // measure_trace_overhead_pct for why repro, not tiny).
    let overhead_eco = Ecosystem::generate(Scenario::pb10(Scale::default_repro()).eco.clone());
    let trace_overhead_pct = measure_trace_overhead_pct(&overhead_eco, "");
    eprintln!("  trace overhead (recorder on vs off): {trace_overhead_pct:+.2}%");
    let trace_overhead_sampled_pct =
        measure_trace_overhead_pct(&overhead_eco, "tracker.announce:16,seed:42");
    eprintln!("  trace overhead (sampled 1-in-16): {trace_overhead_sampled_pct:+.2}%");

    let report = BenchReport {
        bench: "hotpath".into(),
        scale: scale_name,
        cpus,
        jobs,
        phases,
        wall_s_tiny,
        // Quantiles over the whole histogram; the warm-up contributes
        // the same distribution, so the estimate stands for the run.
        announce_p50_ns: announce.quantile(0.5),
        announce_p99_ns: announce.quantile(0.99),
        announce_count,
        pool_tasks,
        alloc_saved,
        allocs_per_query,
        trace_overhead_pct: Some(trace_overhead_pct),
        trace_overhead_sampled_pct: Some(trace_overhead_sampled_pct),
        report_bytes,
    };
    let json = serde_json::to_string_pretty(&serde_json::to_value(&report).expect("serializes"))
        .expect("renders");
    std::fs::write(&out, &json).expect("write bench report");
    eprintln!(
        "bench_hotpath: total {:.3}s (gen {:.3} / crawl {:.3} / analyze {:.3} / report {:.3}), \
         announce p50 {:.0}ns p99 {:.0}ns, {} pool tasks -> {out}",
        report.phases.total_s,
        report.phases.generate_s,
        report.phases.crawl_s,
        report.phases.analyze_s,
        report.phases.report_s,
        report.announce_p50_ns,
        report.announce_p99_ns,
        report.pool_tasks,
    );

    if let Some(gate_path) = gate {
        let old: BenchReport = serde_json::from_str(
            &std::fs::read_to_string(&gate_path).expect("read gate baseline"),
        )
        .expect("parse gate baseline");
        let failures = gate_failures(&old, &report);
        if failures.is_empty() {
            eprintln!(
                "bench_hotpath: gate OK vs {gate_path} (allocs/query {:.3} <= {:.3}+0.1, \
                 tiny wall {:.3}s <= {:.3}s*1.2, armed trace {:+.2}% <= {:.0}%)",
                report.allocs_per_query,
                old.allocs_per_query,
                report.wall_s_tiny,
                old.wall_s_tiny,
                report.trace_overhead_pct.unwrap_or(0.0),
                TRACE_OVERHEAD_CEILING_PCT,
            );
        } else {
            for f in &failures {
                eprintln!("bench_hotpath: GATE FAIL — {f}");
            }
            std::process::exit(1);
        }
    }
}

/// Sum of every `par.*.tasks` counter.
fn pool_task_total() -> u64 {
    btpub_obs::global()
        .counters()
        .into_iter()
        .filter(|(name, _)| name.starts_with("par.") && name.ends_with(".tasks"))
        .map(|(_, v)| v)
        .sum()
}
