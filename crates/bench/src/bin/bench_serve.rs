//! Serving-daemon benchmark → `BENCH_serve.json`.
//!
//! ```text
//! bench_serve [--jobs N] [--out PATH] [--gate PATH] [--replay NEW.json]
//! ```
//!
//! Three laps against a live [`btpub_tracker::serve::ServeDaemon`] on
//! loopback sockets:
//!
//! * **parity** — a mixed UDP/TCP batch replay at shard counts 1 and 8,
//!   each compared byte-for-byte against the in-process oracle (the
//!   acceptance criterion: sharding and socket interleaving must not
//!   change the final swarm snapshot);
//! * **throughput** — a UDP batch-frame replay (`--jobs` driver
//!   threads, 256 announces per datagram) timed end-to-end, also
//!   oracle-checked, with per-shard announce balance recorded;
//! * **latency** — single BEP 15 announces, one datagram per announce,
//!   p50/p99 of the client-observed round trip.
//!
//! `--gate OLD.json` compares a fresh (or `--replay`ed) measurement
//! against the committed baseline and exits nonzero if any oracle
//! parity check failed or if announces/sec fell more than 20% below the
//! baseline. A baseline recorded on different cpus/jobs is refused
//! outright — it gates nothing. `--replay NEW.json` skips measurement
//! and gates an existing report file; `scripts/check.sh` uses it to
//! prove the gate fires on a doctored baseline.

use std::time::Instant;

use btpub_faults::FaultProfile;
use btpub_par::Jobs;
use btpub_tracker::serve::load::{self, LoadConfig, Mode, Transport};
use btpub_tracker::serve::script::Script;
use btpub_tracker::serve::{oracle, ServeConfig, ServeDaemon};

/// Shard count of the throughput/latency daemons (and the high end of
/// the parity sweep).
const SHARDS: usize = 8;

/// Announces in the parity scripts (each runs twice: 1 shard, 8 shards).
const PARITY_ANNOUNCES: usize = 1_200;

/// Announces in the throughput script.
const THROUGHPUT_ANNOUNCES: usize = 100_000;

/// Announces in the latency script (one round trip each).
const LATENCY_ANNOUNCES: usize = 2_500;

/// Allowed throughput drop vs the committed baseline before the gate
/// fails (the ISSUE's >20% regression rule).
const MAX_THROUGHPUT_DROP: f64 = 0.20;

/// The emitted measurement record.
#[derive(serde::Serialize, serde::Deserialize)]
struct BenchReport {
    /// Benchmark id.
    bench: String,
    /// Detected available parallelism.
    cpus: usize,
    /// Load-driver thread count.
    jobs: usize,
    /// Swarm shard count of the measured daemon.
    shards: usize,
    /// Non-garbled announces sent in the throughput lap.
    throughput_announces: u64,
    /// Wall clock of the throughput lap, seconds.
    throughput_wall_s: f64,
    /// The headline: announces applied per second, end-to-end over UDP
    /// batch frames.
    announces_per_sec: f64,
    /// Max per-shard announce count deviation from the mean, percent
    /// (0 = perfectly balanced shards).
    shard_imbalance_pct: f64,
    /// Single-announce round-trip latency, nanoseconds.
    latency_announces: u64,
    p50_ns: u64,
    p99_ns: u64,
    /// Oracle parity: live snapshot == in-process oracle snapshot.
    oracle_match_1shard: bool,
    oracle_match_8shard: bool,
    oracle_match_throughput: bool,
    /// Client-side exchanges that exhausted their retries, all laps.
    load_errors: u64,
}

/// Runs `script` against a fresh daemon and reports whether the final
/// snapshot matches the oracle, plus driver errors.
fn parity_lap(script: &Script, shards: usize, drivers: usize) -> (bool, u64) {
    let expected = oracle::oracle_snapshot(script, FaultProfile::clean());
    let daemon =
        ServeDaemon::start(ServeConfig::new(script.seed, shards, script.torrents))
            .expect("bind loopback daemon");
    let cfg = LoadConfig::new(drivers);
    let report = load::run(script, daemon.udp_addr(), &daemon.announce_url(), &cfg)
        .expect("load run");
    (daemon.shutdown() == expected, report.errors)
}

/// Max deviation from the mean, percent.
fn imbalance_pct(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return 0.0;
    }
    let mean = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&c| (c as f64 - mean).abs() / mean * 100.0)
        .fold(0.0, f64::max)
}

/// Applies the regression gate; returns the failure messages.
fn gate_failures(old: &BenchReport, new: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    // A baseline from a different environment gates nothing: refuse it
    // rather than comparing throughput across machines or driver counts.
    if old.cpus != new.cpus || old.jobs != new.jobs {
        failures.push(format!(
            "baseline environment mismatch: baseline cpus={}/jobs={}, this run \
             cpus={}/jobs={} — regenerate the baseline here (scripts/bench.sh)",
            old.cpus, old.jobs, new.cpus, new.jobs
        ));
        return failures;
    }
    // Hard: every live replay must land on the oracle's bytes.
    if !new.oracle_match_1shard {
        failures.push("live snapshot diverged from the oracle at 1 shard".into());
    }
    if !new.oracle_match_8shard {
        failures.push("live snapshot diverged from the oracle at 8 shards".into());
    }
    if !new.oracle_match_throughput {
        failures.push("throughput-lap snapshot diverged from the oracle".into());
    }
    // Hard: >20% throughput regression.
    let floor = old.announces_per_sec * (1.0 - MAX_THROUGHPUT_DROP);
    if new.announces_per_sec < floor {
        failures.push(format!(
            "throughput regressed: {:.0} announces/s vs baseline {:.0} \
             (floor {:.0}, -{:.0}%)",
            new.announces_per_sec,
            old.announces_per_sec,
            floor,
            (1.0 - new.announces_per_sec / old.announces_per_sec) * 100.0
        ));
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 1usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut gate: Option<String> = None;
    let mut replay: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                out = match args.get(i) {
                    Some(p) => p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                };
            }
            "--gate" => {
                i += 1;
                gate = match args.get(i) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--gate requires a path");
                        std::process::exit(2);
                    }
                };
            }
            "--replay" => {
                i += 1;
                replay = match args.get(i) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--replay requires a path");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let read_report = |path: &str| -> BenchReport {
        serde_json::from_str(&std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_serve: cannot read {path}: {e}");
            std::process::exit(2);
        }))
        .unwrap_or_else(|e| {
            eprintln!("bench_serve: cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };

    let report = if let Some(new_path) = replay {
        // Gate an existing measurement without re-running it.
        read_report(&new_path)
    } else {
        let cpus = Jobs::detected().get();
        eprintln!("bench_serve: jobs={jobs} (cpus={cpus}), shards={SHARDS}");
        let mut load_errors = 0u64;

        // Parity: mixed UDP/TCP transports, shard counts 1 and 8.
        let parity_script = Script::synthetic(0xB901, 16, 64, PARITY_ANNOUNCES);
        let drivers = jobs.max(2); // Mixed needs at least one of each.
        let (oracle_match_1shard, e1) = parity_lap(&parity_script, 1, drivers);
        let (oracle_match_8shard, e8) = parity_lap(&parity_script, SHARDS, drivers);
        load_errors += e1 + e8;
        eprintln!(
            "  parity: 1 shard match={oracle_match_1shard}, \
             {SHARDS} shards match={oracle_match_8shard}"
        );

        // Throughput: UDP batch frames, oracle-checked. Best wall clock
        // of five laps (fresh daemon each): scheduler noise on a shared
        // box is one-sided, so the fastest lap is the stable number the
        // 20% regression gate holds, while a real regression slows every
        // lap. Garbled ops are trimmed so the batches stay uniformly
        // full; the oracle replays the same trimmed script.
        let mut tp_script = Script::synthetic(0xB902, 32, 256, THROUGHPUT_ANNOUNCES);
        tp_script.ops.retain(|o| !o.garbled);
        let tp_expected = oracle::oracle_snapshot(&tp_script, FaultProfile::clean());
        let mut throughput_wall_s = f64::INFINITY;
        let mut sent = 0u64;
        let mut shard_counts = Vec::new();
        let mut oracle_match_throughput = true;
        for lap in 0..5 {
            let daemon = ServeDaemon::start(ServeConfig::new(
                tp_script.seed,
                SHARDS,
                tp_script.torrents,
            ))
            .expect("bind loopback daemon");
            let mut cfg = LoadConfig::new(jobs);
            cfg.transport = Transport::Udp;
            let t0 = Instant::now();
            let tp_report =
                load::run(&tp_script, daemon.udp_addr(), &daemon.announce_url(), &cfg)
                    .expect("throughput run");
            let wall = t0.elapsed().as_secs_f64();
            load_errors += tp_report.errors;
            if wall < throughput_wall_s {
                throughput_wall_s = wall;
                sent = tp_report.sent;
                shard_counts = daemon.plane().shard_announce_counts();
            }
            oracle_match_throughput &= daemon.shutdown() == tp_expected;
            eprintln!(
                "  throughput lap {lap}: {} announces in {wall:.3}s = {:.0}/s",
                tp_report.sent,
                tp_report.sent as f64 / wall
            );
        }
        let announces_per_sec = sent as f64 / throughput_wall_s;
        eprintln!(
            "  throughput: best {:.0}/s, match={oracle_match_throughput}, shards={shard_counts:?}",
            announces_per_sec
        );

        // Latency: one BEP 15 datagram per announce.
        let lat_script = Script::synthetic(0xB903, 8, 32, LATENCY_ANNOUNCES);
        let daemon = ServeDaemon::start(ServeConfig::new(
            lat_script.seed,
            SHARDS,
            lat_script.torrents,
        ))
        .expect("bind loopback daemon");
        let mut cfg = LoadConfig::new(jobs);
        cfg.transport = Transport::Udp;
        cfg.mode = Mode::Single;
        let lat_report = load::run(&lat_script, daemon.udp_addr(), &daemon.announce_url(), &cfg)
            .expect("latency run");
        load_errors += lat_report.errors;
        drop(daemon);
        let mut lat = lat_report.latencies_ns;
        lat.sort_unstable();
        let pct = |p: usize| -> u64 {
            if lat.is_empty() {
                return 0;
            }
            lat[(lat.len() * p / 100).min(lat.len() - 1)]
        };
        let (p50_ns, p99_ns) = (pct(50), pct(99));
        eprintln!(
            "  latency: {} round trips, p50 {p50_ns} ns, p99 {p99_ns} ns",
            lat.len()
        );

        BenchReport {
            bench: "serve".into(),
            cpus,
            jobs,
            shards: SHARDS,
            throughput_announces: sent,
            throughput_wall_s,
            announces_per_sec,
            shard_imbalance_pct: imbalance_pct(&shard_counts),
            latency_announces: lat.len() as u64,
            p50_ns,
            p99_ns,
            oracle_match_1shard,
            oracle_match_8shard,
            oracle_match_throughput,
            load_errors,
        }
    };

    let json =
        serde_json::to_string_pretty(&serde_json::to_value(&report).expect("serializes"))
            .expect("renders");
    std::fs::write(&out, &json).expect("write bench report");
    eprintln!(
        "bench_serve: {:.0} announces/s, p50 {} ns, p99 {} ns, imbalance {:.1}%, \
         parity 1/{}/tp = {}/{}/{} -> {out}",
        report.announces_per_sec,
        report.p50_ns,
        report.p99_ns,
        report.shard_imbalance_pct,
        report.shards,
        report.oracle_match_1shard,
        report.oracle_match_8shard,
        report.oracle_match_throughput,
    );

    if let Some(gate_path) = gate {
        let old = read_report(&gate_path);
        let failures = gate_failures(&old, &report);
        if failures.is_empty() {
            eprintln!(
                "bench_serve: gate OK vs {gate_path} ({:.0}/s >= {:.0}/s floor, \
                 all oracle parity checks pass)",
                report.announces_per_sec,
                old.announces_per_sec * (1.0 - MAX_THROUGHPUT_DROP),
            );
        } else {
            for f in &failures {
                eprintln!("bench_serve: GATE FAIL — {f}");
            }
            std::process::exit(1);
        }
    }
}
