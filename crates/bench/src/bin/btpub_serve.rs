//! `btpub-serve`: the sharded tracker daemon as a command.
//!
//! ```text
//! btpub-serve [--seed N] [--shards N] [--torrents N]
//!             [--udp-port P] [--tcp-port P]
//!             [--udp-workers N] [--tcp-workers N]
//!             [--profile clean|flaky|hostile] [--duration SECS]
//!             [--manifest PATH] [--manifest-every SECS]
//! ```
//!
//! Binds both front ends, prints the bound addresses on the first
//! stdout line (`udp=... tcp=... announce=...`) so a driver script can
//! parse them, then serves until `--duration` elapses or stdin reaches
//! EOF. On shutdown the daemon drains every worker, writes the final
//! swarm snapshot to stdout (the same text `btpub-load` compares
//! against its oracle), and the counter totals to stderr.

use std::io::{Read, Write};

use btpub_faults::FaultProfile;
use btpub_tracker::serve::{ServeConfig, ServeDaemon};

fn usage() -> ! {
    eprintln!(
        "usage: btpub-serve [--seed N] [--shards N] [--torrents N] \
         [--udp-port P] [--tcp-port P] [--udp-workers N] [--tcp-workers N] \
         [--profile clean|flaky|hostile] [--duration SECS] \
         [--manifest PATH] [--manifest-every SECS]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::new(0, 8, 64);
    let mut duration: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        let num = |i: usize| -> u64 {
            value(i).parse().unwrap_or_else(|_| usage())
        };
        match args[i].as_str() {
            "--seed" => cfg.seed = num(i),
            "--shards" => cfg.shards = num(i).max(1) as usize,
            "--torrents" => cfg.torrents = num(i) as u32,
            "--udp-port" => cfg.udp_port = num(i) as u16,
            "--tcp-port" => cfg.tcp_port = num(i) as u16,
            "--udp-workers" => cfg.udp_workers = num(i).max(1) as usize,
            "--tcp-workers" => cfg.tcp_workers = num(i).max(1) as usize,
            "--profile" => {
                cfg.profile = match value(i).as_str() {
                    "clean" => FaultProfile::clean(),
                    "flaky" => FaultProfile::flaky(),
                    "hostile" => FaultProfile::hostile(),
                    _ => usage(),
                }
            }
            "--duration" => duration = Some(num(i)),
            "--manifest" => cfg.manifest = Some(value(i).into()),
            "--manifest-every" => cfg.manifest_every_secs = num(i).max(1),
            _ => usage(),
        }
        i += 2;
    }

    let daemon = match ServeDaemon::start(cfg.clone()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("btpub-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "udp={} tcp={} announce={}",
        daemon.udp_addr(),
        daemon.tcp_addr(),
        daemon.announce_url()
    );
    std::io::stdout().flush().ok();
    eprintln!(
        "btpub-serve: seed={} shards={} torrents={} workers={}udp/{}tcp",
        cfg.seed, cfg.shards, cfg.torrents, cfg.udp_workers, cfg.tcp_workers
    );

    match duration {
        Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
        None => {
            // Serve until the controlling process closes our stdin.
            let mut sink = Vec::new();
            let _ = std::io::stdin().read_to_end(&mut sink);
        }
    }

    let counts = daemon.plane().counts();
    let shards = daemon.plane().shard_announce_counts();
    let snapshot = daemon.shutdown();
    eprintln!("btpub-serve: {counts:?}");
    eprintln!("btpub-serve: shard announces {shards:?}");
    print!("{snapshot}");
}
