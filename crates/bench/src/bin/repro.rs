//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale tiny|repro|paper|<preset>xN|N] [--scenario mn08|pb09|pb10|all]
//!       [--exp ID] [--jobs N] [--stream] [--spill-dir DIR] [--spill-chunk N]
//!       [--checkpoint-dir DIR] [--checkpoint-every N]
//!       [--metrics out.json] [--fault-profile clean|flaky|hostile]
//!       [--trace out.json] [--manifest out.json]
//! ```
//!
//! Experiment ids: t1 f1 t2 t3 s33 f2 f3 f4 s51 t4 t5 s6 aa v1 (default:
//! the full report). Output is the side-by-side "ours vs paper" text that
//! EXPERIMENTS.md records. Diagnostics go through `btpub_obs` (set
//! `BTPUB_LOG=info` to watch progress); `--metrics` dumps the full
//! observability snapshot as JSON and a per-experiment wall-time table is
//! printed to stderr at the end.
//!
//! Fault injection: `--fault-profile <name>` (else `BTPUB_FAULTS`, else
//! `clean`) runs every campaign against a deterministically broken world —
//! see `crates/faults`. The active profile is echoed in each scenario
//! header so archived reports are self-describing.
//!
//! Parallelism: `--jobs N` (else `BTPUB_JOBS`, else all cores) sets the
//! worker count for every `btpub-par` pool; with `--scenario all` the
//! three campaigns also run concurrently. Reports are assembled in
//! scenario order off the workers, so stdout is **byte-identical** at any
//! job count — `scripts/check.sh` diffs `--jobs 1` against `--jobs 4`.
//!
//! Streaming: `--stream` runs each campaign through the bounded-channel
//! pipeline (`StreamStudy`) instead of materializing the dataset —
//! stdout stays byte-identical to the materialized path (gated by
//! `scripts/check.sh` at jobs 1 and 4, clean and hostile). `--spill-dir
//! DIR` (implies `--stream`) spills the global distinct-IP set to sorted
//! segment runs under DIR; an unwritable DIR warns once on stderr and
//! falls back to in-memory. `--spill-chunk N` (implies `--stream`)
//! overrides the spill chunk capacity — a small N forces run flushing at
//! tiny scales, which the crash-injection tests use. `--trace` still
//! records spans in stream mode, but per-scenario campaign timelines
//! need the materialized dataset and are skipped.
//!
//! Checkpointing: `--checkpoint-dir DIR` (implies `--stream`) snapshots
//! the fold state under `DIR/<scenario>/` every `--checkpoint-every N`
//! folds (default 256) and resumes from an existing checkpoint on start;
//! the final report is byte-identical to an uninterrupted run (gated by
//! `scripts/check.sh`, which kills a campaign mid-flight with
//! `BTPUB_CRASH` and diffs the resumed stdout). A corrupt or mismatched
//! checkpoint is refused with a named reason and exit code 1; an
//! unwritable DIR warns once and runs checkpoint-free.
//!
//! Scale: besides the presets, `--scale` accepts a campaign-length
//! multiplier — `tinyx100` (any `<preset>xN`) or a bare integer `N`
//! (shorthand for `tinyxN`): N× the torrents at unchanged swarm density
//! and major-publisher population. `0` warns once and runs at 1×.
//!
//! Tracing: `--trace PATH` (or `BTPUB_TRACE=1`/`BTPUB_TRACE=PATH`) arms
//! the flight recorder and drains it into Chrome trace event JSON at
//! exit — load it in Perfetto (ui.perfetto.dev) or `chrome://tracing`.
//! Per-scenario campaign timelines go to **stderr**: stdout carries the
//! report alone and stays byte-identical whether or not tracing is on.
//! `--manifest PATH` writes a run manifest (arguments + a digest of the
//! deterministic metrics) for `obs_diff` to compare across runs.

use std::fmt::Write as _;
use std::path::PathBuf;

use btpub::experiments::{render_full_report, ReportData};
use btpub::{CheckpointPolicy, Scale, Scenario, StreamOptions, StreamOutcome, StreamStudy, Study};
use btpub_faults::FaultProfile;

/// The known experiment ids (`--exp`), excluding `all`.
const EXPERIMENT_IDS: [&str; 14] = [
    "t1", "f1", "t2", "t3", "s33", "f2", "f3", "f4", "s51", "t4", "t5", "s6", "aa", "v1",
];

fn scenario_by_name(name: &str, scale: Scale) -> Option<Scenario> {
    match name {
        "mn08" => Some(Scenario::mn08(scale)),
        "pb09" => Some(Scenario::pb09(scale)),
        "pb10" => Some(Scenario::pb10(scale)),
        _ => None,
    }
}

/// Parses `--scale`: a preset (`tiny|repro|paper`), a preset with a
/// campaign-length multiplier (`tinyx100`), or a bare multiplier `N`
/// (shorthand for `tinyxN`). A multiplier of `0` is meaningless — it
/// warns once on stderr, naming the value and the accepted forms, and
/// falls back to 1×.
fn parse_scale(raw: &str) -> Option<(Scale, u64)> {
    fn preset(name: &str) -> Option<Scale> {
        match name {
            "tiny" => Some(Scale::tiny()),
            "repro" => Some(Scale::default_repro()),
            "paper" => Some(Scale::paper()),
            _ => None,
        }
    }
    let (base, mult) = if let Ok(n) = raw.parse::<u64>() {
        (Scale::tiny(), n)
    } else if let Some((name, n)) = raw.split_once('x') {
        (preset(name)?, n.parse::<u64>().ok()?)
    } else {
        return preset(raw).map(|s| (s, 1));
    };
    let mult = if mult == 0 {
        btpub_stream::warn_once(
            "repro.scale.zero",
            &format!(
                "--scale {raw:?}: campaign multiplier 0 is meaningless, running at 1x \
                 (accepted forms: tiny|repro|paper, <preset>xN, or a bare positive \
                 integer N meaning tinyxN)"
            ),
        );
        1
    } else {
        mult
    };
    Some((base, mult))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_repro();
    let mut scale_mult = 1u64;
    let mut scale_name = "repro".to_string();
    let mut scenario_names = vec!["pb10".to_string()];
    let mut exp: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut manifest_path: Option<String> = None;
    let mut fault_profile: Option<FaultProfile> = None;
    let mut stream = false;
    let mut spill_dir: Option<PathBuf> = None;
    let mut spill_chunk: Option<usize> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut checkpoint_every = 256u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                (scale, scale_mult) = match args.get(i).and_then(|raw| parse_scale(raw)) {
                    Some(parsed) => parsed,
                    None => {
                        eprintln!(
                            "unknown scale {:?} (accepted: tiny|repro|paper, <preset>xN, \
                             or a bare campaign multiplier N meaning tinyxN)",
                            args.get(i)
                        );
                        std::process::exit(2);
                    }
                };
                scale_name = args[i].clone();
            }
            "--stream" => stream = true,
            "--spill-dir" => {
                i += 1;
                spill_dir = args.get(i).map(PathBuf::from);
                if spill_dir.is_none() {
                    eprintln!("--spill-dir requires a path");
                    std::process::exit(2);
                }
                // Spilling only exists on the streaming path.
                stream = true;
            }
            "--spill-chunk" => {
                i += 1;
                spill_chunk = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--spill-chunk requires a positive integer");
                        std::process::exit(2);
                    }
                };
                stream = true;
            }
            "--checkpoint-dir" => {
                i += 1;
                checkpoint_dir = args.get(i).map(PathBuf::from);
                if checkpoint_dir.is_none() {
                    eprintln!("--checkpoint-dir requires a path");
                    std::process::exit(2);
                }
                // Checkpointing only exists on the streaming path.
                stream = true;
            }
            "--checkpoint-every" => {
                i += 1;
                checkpoint_every = match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--checkpoint-every requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--scenario" => {
                i += 1;
                let v = args.get(i).cloned().unwrap_or_default();
                scenario_names = if v == "all" {
                    vec!["mn08".into(), "pb09".into(), "pb10".into()]
                } else {
                    vec![v]
                };
            }
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned();
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => btpub_par::set_global(btpub_par::Jobs::new(n)),
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--metrics" => {
                i += 1;
                metrics_path = args.get(i).cloned();
                if metrics_path.is_none() {
                    eprintln!("--metrics requires a path");
                    std::process::exit(2);
                }
            }
            "--trace" => {
                i += 1;
                trace_path = args.get(i).cloned();
                if trace_path.is_none() {
                    eprintln!("--trace requires a path");
                    std::process::exit(2);
                }
            }
            "--manifest" => {
                i += 1;
                manifest_path = args.get(i).cloned();
                if manifest_path.is_none() {
                    eprintln!("--manifest requires a path");
                    std::process::exit(2);
                }
            }
            "--fault-profile" => {
                i += 1;
                fault_profile = match args.get(i).map(String::as_str) {
                    Some(name) => match FaultProfile::by_name(name) {
                        Some(p) => Some(p),
                        None => {
                            eprintln!("unknown fault profile {name} (expected clean|flaky|hostile)");
                            std::process::exit(2);
                        }
                    },
                    None => {
                        eprintln!("--fault-profile requires a name");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Validate everything up front: the scenario fan-out below must not
    // discover bad arguments mid-flight.
    if let Some(id) = exp.as_deref() {
        if id != "all" && !EXPERIMENT_IDS.contains(&id) {
            eprintln!("unknown experiment {id}");
            std::process::exit(2);
        }
    }
    // CLI beats environment (`BTPUB_TRACE`), which beats off. Arming the
    // recorder up front means every span/fault/announce below is captured.
    if trace_path.is_some() {
        btpub_obs::trace::set_enabled(true);
    } else if btpub_obs::trace::enabled() {
        trace_path = Some(
            btpub_obs::trace::env_path().unwrap_or_else(|| "trace.json".to_string()),
        );
    }
    // A crashing armed run should still yield a loadable trace: the
    // hook drains the rings to the --trace path after the default
    // panic message.
    if let Some(path) = trace_path.as_deref() {
        btpub_obs::trace::install_panic_hook(path);
    }
    // CLI beats environment, which beats the clean default.
    let fault_profile = fault_profile
        .or_else(FaultProfile::from_env)
        .unwrap_or_else(FaultProfile::clean);
    let scenarios: Vec<(String, Scenario)> = scenario_names
        .iter()
        .map(|name| match scenario_by_name(name, scale) {
            Some(s) => {
                // The campaign-length multiplier lives on the scenario
                // (`tinyx100` = 100× the torrents over 100× the days), so
                // it composes with any preset.
                let mut s = s.times(scale_mult);
                s.crawler.fault_profile = fault_profile.clone();
                (name.clone(), s)
            }
            None => {
                eprintln!("unknown scenario {name}");
                std::process::exit(2);
            }
        })
        .collect();

    // Run the campaigns concurrently (`--scenario all` ⇒ three independent
    // studies), then print the assembled chunks in scenario order so
    // stdout does not depend on completion order or job count.
    let exp_ref = exp.as_deref();
    let stream_opts = stream.then_some(StreamOptions {
        spill_dir,
        spill_chunk,
        checkpoint: checkpoint_dir.map(|dir| CheckpointPolicy {
            dir,
            every: checkpoint_every,
        }),
    });
    let chunks = btpub_par::par_map("repro.scenarios", &scenarios, |(name, scenario)| {
        run_scenario(name, scenario, exp_ref, stream_opts.as_ref())
    });
    for (chunk, _) in &chunks {
        print!("{chunk}");
    }
    // Campaign timelines render only under --trace, and only to stderr:
    // the report on stdout must not gain a byte when tracing is on.
    for (_, timeline) in &chunks {
        if let Some(tl) = timeline {
            eprint!("{tl}");
        }
    }

    print_experiment_timings();
    // Drain the trace *before* the metrics/manifest writes: drain() is
    // what records the trace.dropped.* / trace.capped.* accounting into
    // the registry, and silent event loss must be visible in --metrics
    // output (it is excluded from manifest digests, so traced and
    // traceless manifests still agree).
    if let Some(path) = trace_path {
        match btpub_obs::trace::write_chrome_trace(std::path::Path::new(&path)) {
            Ok(events) => eprintln!("trace written: {path} ({events} events)"),
            Err(e) => {
                eprintln!("failed to write trace to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = metrics_path {
        write_metrics(&path);
    }
    if let Some(path) = manifest_path {
        write_manifest(&path, &scale_name, &scenario_names, &fault_profile, stream);
    }
}

/// Runs one campaign end to end and renders its stdout chunk, plus the
/// stderr campaign timeline when the flight recorder is armed.
///
/// Both drivers funnel into one [`ReportData`] and one renderer
/// ([`render_exp`]), so the materialized and streaming paths cannot
/// disagree on a stdout byte without disagreeing on the data itself.
fn run_scenario(
    name: &str,
    scenario: &Scenario,
    exp: Option<&str>,
    stream: Option<&StreamOptions>,
) -> (String, Option<String>) {
    let started = std::time::Instant::now();
    let (data, timeline) = match stream {
        Some(opts) => {
            btpub_obs::info!(
                "[{name}] generating + streaming crawl";
                torrents = scenario.eco.torrents,
                days = scenario.eco.duration.as_days(),
            );
            // Per-scenario spill and checkpoint subdirectories:
            // `--scenario all` runs the campaigns concurrently, and
            // neither segment runs nor checkpoint files may collide
            // across them.
            let opts = StreamOptions {
                spill_dir: opts.spill_dir.as_ref().map(|d| d.join(name)),
                spill_chunk: opts.spill_chunk,
                checkpoint: opts.checkpoint.as_ref().map(|p| CheckpointPolicy {
                    dir: p.dir.join(name),
                    every: p.every,
                }),
            };
            let study = match StreamStudy::try_run(scenario, &opts) {
                Ok(StreamOutcome::Complete(study)) => study,
                Ok(StreamOutcome::Interrupted { .. }) => {
                    unreachable!("repro runs without an interrupting observer")
                }
                Err(e) => {
                    // A refused checkpoint (corrupt, or from a different
                    // scenario/seed) must fail loudly, not silently
                    // restart the campaign: the operator pointed us at
                    // state we cannot honour.
                    eprintln!("[{name}] checkpoint error: {e}");
                    std::process::exit(1);
                }
            };
            btpub_obs::info!(
                "[{name}] campaign done (streamed)";
                secs = started.elapsed().as_secs_f64(),
                torrents = study.analyses.totals.torrents_total,
                distinct_ips = study.analyses.totals.distinct_ips,
            );
            // Campaign timelines need the materialized dataset; the
            // streaming path deliberately never has one.
            (study.report_data(), None)
        }
        None => {
            btpub_obs::info!(
                "[{name}] generating + crawling";
                torrents = scenario.eco.torrents,
                days = scenario.eco.duration.as_days(),
            );
            let study = Study::run(scenario);
            btpub_obs::info!(
                "[{name}] campaign done";
                secs = started.elapsed().as_secs_f64(),
                torrents = study.dataset.torrent_count(),
                distinct_ips = study.dataset.distinct_ip_count(),
            );
            let timeline = btpub_obs::trace::enabled().then(|| {
                let plan = (!scenario.crawler.fault_profile.is_clean()).then(|| {
                    btpub_faults::FaultPlan::new(
                        scenario.eco.seed,
                        scenario.crawler.fault_profile.clone(),
                    )
                });
                btpub_crawler::campaign_timeline(&study.dataset, plan.as_ref())
            });
            let analyses = study.analyze();
            (analyses.experiments().report_data(), timeline)
        }
    };
    let mut out = String::new();
    writeln!(out, "################ scenario {name} ################").unwrap();
    writeln!(out, "# fault-profile: {}", scenario.crawler.fault_profile.name).unwrap();
    render_exp(&mut out, exp, &data);
    (out, timeline)
}

/// Renders one experiment section (or the full report) from the
/// already-computed [`ReportData`].
fn render_exp(out: &mut String, exp: Option<&str>, data: &ReportData) {
    match exp {
        None | Some("all") => write!(out, "{}", render_full_report(data)).unwrap(),
        Some("t1") => writeln!(out, "{:#?}", data.t1).unwrap(),
        Some("f1") => {
            let f = &data.f1;
            writeln!(
                out,
                "top3%={:.1}% top_k={} shares={:.3}/{:.3}",
                f.share_top3pct, f.top_k, f.top_k_shares.0, f.top_k_shares.1
            )
            .unwrap();
            for p in f.cdf.iter().step_by((f.cdf.len() / 20).max(1)) {
                writeln!(
                    out,
                    "  {:6.2}% publishers -> {:6.2}% content",
                    p.pct_publishers, p.pct_content
                )
                .unwrap();
            }
        }
        Some("t2") => {
            for row in &data.t2 {
                writeln!(
                    out,
                    "{:<28} {:<16} {:>6.2}%",
                    row.name,
                    row.kind.to_string(),
                    row.pct_content
                )
                .unwrap();
            }
        }
        Some("t3") => writeln!(out, "{:#?}", data.t3).unwrap(),
        Some("s33") => writeln!(out, "{:#?}", data.s33).unwrap(),
        Some("f2") => {
            for (g, d) in &data.f2 {
                writeln!(
                    out,
                    "{:<7} n={:<6} video={:.1}% fractions={:?}",
                    g.label(),
                    d.n,
                    d.video_share() * 100.0,
                    d.fractions
                )
                .unwrap();
            }
        }
        Some("f3") => {
            for (g, b) in &data.f3 {
                writeln!(out, "{:<7} {:?}", g.label(), b).unwrap();
            }
        }
        Some("f4") => {
            for (g, b) in &data.f4 {
                writeln!(out, "{:<7} {:?}", g.label(), b).unwrap();
            }
        }
        Some("s51") => writeln!(out, "{:#?}", data.s51).unwrap(),
        Some("t4") => {
            for row in &data.t4 {
                writeln!(out, "{row:#?}").unwrap();
            }
        }
        Some("t5") => {
            for row in &data.t5 {
                writeln!(out, "{row:#?}").unwrap();
            }
        }
        Some("s6") => writeln!(out, "{:#?}", data.s6).unwrap(),
        Some("aa") => writeln!(out, "{:#?}", data.aa).unwrap(),
        Some("v1") => writeln!(out, "{:#?}", data.v1).unwrap(),
        Some(other) => unreachable!("experiment ids validated in main: {other}"),
    }
}

/// Writes the run manifest: the arguments that shaped this run plus a
/// digest of the deterministic slice of the metric snapshot, for
/// `obs_diff` to compare against another run's manifest.
fn write_manifest(
    path: &str,
    scale: &str,
    scenarios: &[String],
    profile: &FaultProfile,
    stream: bool,
) {
    use serde_json::Value;
    let meta = [
        ("bin", Value::from("repro")),
        ("scale", Value::from(scale)),
        ("scenarios", Value::from(scenarios.join(","))),
        ("fault_profile", Value::from(profile.name.as_str())),
        // Streaming and materialized runs exercise different span/counter
        // sets; obs_diff must refuse to compare them as if they were twins.
        ("stream", Value::from(stream)),
        // The *effective* job count (after the available-parallelism
        // cap): pool task counters legitimately differ across job
        // counts, so obs_diff refuses to compare manifests that
        // disagree here rather than reporting bogus regressions.
        ("jobs_effective", Value::from(btpub_par::global().effective().get() as u64)),
    ];
    let manifest = btpub_obs::manifest::build(btpub_obs::global(), &meta);
    if let Err(e) = btpub_obs::manifest::write(std::path::Path::new(path), &manifest) {
        eprintln!("failed to write manifest to {path}: {e}");
        std::process::exit(1);
    }
    btpub_obs::info!("run manifest written"; path = path);
}

/// Wall-time table for every `exp.*` span recorded this run, sorted by
/// total time descending. Goes to stderr so stdout stays the report.
fn print_experiment_timings() {
    let reg = btpub_obs::global();
    let mut rows: Vec<(String, u64, u64)> = reg
        .histograms()
        .into_iter()
        .filter_map(|(name, h)| {
            let short = name.strip_prefix("span.exp.")?.strip_suffix(".ns")?;
            Some((short.to_string(), h.count(), h.sum()))
        })
        .collect();
    if rows.is_empty() {
        return;
    }
    rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    eprintln!("---------------- experiment timings ----------------");
    eprintln!("{:<8} {:>5} {:>12} {:>12}", "exp", "runs", "total", "mean");
    for (name, count, total_ns) in rows {
        let total = std::time::Duration::from_nanos(total_ns);
        let mean = std::time::Duration::from_nanos(total_ns / count.max(1));
        eprintln!("{name:<8} {count:>5} {total:>12.3?} {mean:>12.3?}");
    }
}

/// Dumps the global observability snapshot (counters, gauges, histogram
/// quantiles) to `path` as pretty-printed JSON. Pool metrics
/// (`par.<pool>.*`) ride along with everything else.
fn write_metrics(path: &str) {
    let snapshot = btpub_obs::global().snapshot();
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("failed to write metrics to {path}: {e}");
        std::process::exit(1);
    }
    btpub_obs::info!("metrics snapshot written"; path = path);
}
