//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale tiny|repro|paper] [--scenario mn08|pb09|pb10|all] [--exp ID]
//!       [--jobs N] [--metrics out.json] [--fault-profile clean|flaky|hostile]
//! ```
//!
//! Experiment ids: t1 f1 t2 t3 s33 f2 f3 f4 s51 t4 t5 s6 aa v1 (default:
//! the full report). Output is the side-by-side "ours vs paper" text that
//! EXPERIMENTS.md records. Diagnostics go through `btpub_obs` (set
//! `BTPUB_LOG=info` to watch progress); `--metrics` dumps the full
//! observability snapshot as JSON and a per-experiment wall-time table is
//! printed to stderr at the end.
//!
//! Fault injection: `--fault-profile <name>` (else `BTPUB_FAULTS`, else
//! `clean`) runs every campaign against a deterministically broken world —
//! see `crates/faults`. The active profile is echoed in each scenario
//! header so archived reports are self-describing.
//!
//! Parallelism: `--jobs N` (else `BTPUB_JOBS`, else all cores) sets the
//! worker count for every `btpub-par` pool; with `--scenario all` the
//! three campaigns also run concurrently. Reports are assembled in
//! scenario order off the workers, so stdout is **byte-identical** at any
//! job count — `scripts/check.sh` diffs `--jobs 1` against `--jobs 4`.

use std::fmt::Write as _;

use btpub::{Scale, Scenario, Study};
use btpub_faults::FaultProfile;

/// The known experiment ids (`--exp`), excluding `all`.
const EXPERIMENT_IDS: [&str; 14] = [
    "t1", "f1", "t2", "t3", "s33", "f2", "f3", "f4", "s51", "t4", "t5", "s6", "aa", "v1",
];

fn scenario_by_name(name: &str, scale: Scale) -> Option<Scenario> {
    match name {
        "mn08" => Some(Scenario::mn08(scale)),
        "pb09" => Some(Scenario::pb09(scale)),
        "pb10" => Some(Scenario::pb10(scale)),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_repro();
    let mut scenario_names = vec!["pb10".to_string()];
    let mut exp: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut fault_profile: Option<FaultProfile> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::tiny(),
                    Some("repro") => Scale::default_repro(),
                    Some("paper") => Scale::paper(),
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--scenario" => {
                i += 1;
                let v = args.get(i).cloned().unwrap_or_default();
                scenario_names = if v == "all" {
                    vec!["mn08".into(), "pb09".into(), "pb10".into()]
                } else {
                    vec![v]
                };
            }
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned();
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => btpub_par::set_global(btpub_par::Jobs::new(n)),
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--metrics" => {
                i += 1;
                metrics_path = args.get(i).cloned();
                if metrics_path.is_none() {
                    eprintln!("--metrics requires a path");
                    std::process::exit(2);
                }
            }
            "--fault-profile" => {
                i += 1;
                fault_profile = match args.get(i).map(String::as_str) {
                    Some(name) => match FaultProfile::by_name(name) {
                        Some(p) => Some(p),
                        None => {
                            eprintln!("unknown fault profile {name} (expected clean|flaky|hostile)");
                            std::process::exit(2);
                        }
                    },
                    None => {
                        eprintln!("--fault-profile requires a name");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Validate everything up front: the scenario fan-out below must not
    // discover bad arguments mid-flight.
    if let Some(id) = exp.as_deref() {
        if id != "all" && !EXPERIMENT_IDS.contains(&id) {
            eprintln!("unknown experiment {id}");
            std::process::exit(2);
        }
    }
    // CLI beats environment, which beats the clean default.
    let fault_profile = fault_profile
        .or_else(FaultProfile::from_env)
        .unwrap_or_else(FaultProfile::clean);
    let scenarios: Vec<(String, Scenario)> = scenario_names
        .iter()
        .map(|name| match scenario_by_name(name, scale) {
            Some(mut s) => {
                s.crawler.fault_profile = fault_profile.clone();
                (name.clone(), s)
            }
            None => {
                eprintln!("unknown scenario {name}");
                std::process::exit(2);
            }
        })
        .collect();

    // Run the campaigns concurrently (`--scenario all` ⇒ three independent
    // studies), then print the assembled chunks in scenario order so
    // stdout does not depend on completion order or job count.
    let exp_ref = exp.as_deref();
    let chunks = btpub_par::par_map("repro.scenarios", &scenarios, |(name, scenario)| {
        run_scenario(name, scenario, exp_ref)
    });
    for chunk in &chunks {
        print!("{chunk}");
    }

    print_experiment_timings();
    if let Some(path) = metrics_path {
        write_metrics(&path);
    }
}

/// Runs one campaign end to end and renders its stdout chunk.
fn run_scenario(name: &str, scenario: &Scenario, exp: Option<&str>) -> String {
    btpub_obs::info!(
        "[{name}] generating + crawling";
        torrents = scenario.eco.torrents,
        days = scenario.eco.duration.as_days(),
    );
    let started = std::time::Instant::now();
    let study = Study::run(scenario);
    btpub_obs::info!(
        "[{name}] campaign done";
        secs = started.elapsed().as_secs_f64(),
        torrents = study.dataset.torrent_count(),
        distinct_ips = study.dataset.distinct_ip_count(),
    );
    let analyses = study.analyze();
    let ex = analyses.experiments();
    let mut out = String::new();
    writeln!(out, "################ scenario {name} ################").unwrap();
    writeln!(out, "# fault-profile: {}", scenario.crawler.fault_profile.name).unwrap();
    match exp {
        None | Some("all") => write!(out, "{}", ex.full_report()).unwrap(),
        Some("t1") => {
            let t = ex.t1_dataset();
            writeln!(out, "{t:#?}").unwrap();
        }
        Some("f1") => {
            let f = ex.fig1_skewness();
            writeln!(
                out,
                "top3%={:.1}% top_k={} shares={:.3}/{:.3}",
                f.share_top3pct, f.top_k, f.top_k_shares.0, f.top_k_shares.1
            )
            .unwrap();
            for p in f.cdf.iter().step_by((f.cdf.len() / 20).max(1)) {
                writeln!(
                    out,
                    "  {:6.2}% publishers -> {:6.2}% content",
                    p.pct_publishers, p.pct_content
                )
                .unwrap();
            }
        }
        Some("t2") => {
            for row in ex.t2_isps() {
                writeln!(
                    out,
                    "{:<28} {:<16} {:>6.2}%",
                    row.name,
                    row.kind.to_string(),
                    row.pct_content
                )
                .unwrap();
            }
        }
        Some("t3") => writeln!(out, "{:#?}", ex.t3_footprints()).unwrap(),
        Some("s33") => writeln!(out, "{:#?}", ex.s33_mapping()).unwrap(),
        Some("f2") => {
            for (g, d) in ex.fig2_content_types() {
                writeln!(
                    out,
                    "{:<7} n={:<6} video={:.1}% fractions={:?}",
                    g.label(),
                    d.n,
                    d.video_share() * 100.0,
                    d.fractions
                )
                .unwrap();
            }
        }
        Some("f3") => {
            for (g, b) in ex.fig3_popularity() {
                writeln!(out, "{:<7} {:?}", g.label(), b).unwrap();
            }
        }
        Some("f4") => {
            for (g, b) in ex.fig4_seeding() {
                writeln!(out, "{:<7} {:?}", g.label(), b).unwrap();
            }
        }
        Some("s51") => writeln!(out, "{:#?}", ex.s51_classes()).unwrap(),
        Some("t4") => {
            for row in ex.t4_longitudinal() {
                writeln!(out, "{row:#?}").unwrap();
            }
        }
        Some("t5") => {
            for row in ex.t5_economics() {
                writeln!(out, "{row:#?}").unwrap();
            }
        }
        Some("s6") => writeln!(out, "{:#?}", ex.s6_hosting_income()).unwrap(),
        Some("aa") => writeln!(out, "{:#?}", ex.aa_session_model()).unwrap(),
        Some("v1") => writeln!(out, "{:#?}", ex.v1_validation()).unwrap(),
        Some(other) => unreachable!("experiment ids validated in main: {other}"),
    }
    out
}

/// Wall-time table for every `exp.*` span recorded this run, sorted by
/// total time descending. Goes to stderr so stdout stays the report.
fn print_experiment_timings() {
    let reg = btpub_obs::global();
    let mut rows: Vec<(String, u64, u64)> = reg
        .histograms()
        .into_iter()
        .filter_map(|(name, h)| {
            let short = name.strip_prefix("span.exp.")?.strip_suffix(".ns")?;
            Some((short.to_string(), h.count(), h.sum()))
        })
        .collect();
    if rows.is_empty() {
        return;
    }
    rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    eprintln!("---------------- experiment timings ----------------");
    eprintln!("{:<8} {:>5} {:>12} {:>12}", "exp", "runs", "total", "mean");
    for (name, count, total_ns) in rows {
        let total = std::time::Duration::from_nanos(total_ns);
        let mean = std::time::Duration::from_nanos(total_ns / count.max(1));
        eprintln!("{name:<8} {count:>5} {total:>12.3?} {mean:>12.3?}");
    }
}

/// Dumps the global observability snapshot (counters, gauges, histogram
/// quantiles) to `path` as pretty-printed JSON. Pool metrics
/// (`par.<pool>.*`) ride along with everything else.
fn write_metrics(path: &str) {
    let snapshot = btpub_obs::global().snapshot();
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("failed to write metrics to {path}: {e}");
        std::process::exit(1);
    }
    btpub_obs::info!("metrics snapshot written"; path = path);
}
