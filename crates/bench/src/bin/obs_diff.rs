//! Compares two run manifests (or raw metric snapshots) and flags metric
//! regressions; also validates Chrome trace files and can *watch* a live
//! manifest path.
//!
//! ```text
//! obs_diff OLD.json NEW.json [--tolerance-pct P]
//! obs_diff --validate-trace TRACE.json [--min-events N]
//! obs_diff --watch BASELINE.json LIVE.json [--tolerance-pct P]
//!          [--interval-ms MS] [--max-checks N] [--expect-partial]
//! ```
//!
//! Exit codes: `0` — manifests match (or the trace is valid); `1` —
//! differences found (or the trace is invalid, or a watch saw a
//! regression); `2` — usage or I/O error, *or two manifests from
//! incompatible configurations* (different bin / scale / scenarios /
//! fault profile / effective jobs — diffing those would report config
//! skew as a bogus metric regression, so the comparison is refused).
//! `scripts/check.sh` uses all three modes as gates.
//!
//! Watch mode is the live-ops side of the manifest protocol: a daemon
//! emitting periodic manifests (`btpub-monitor --manifest-every N`) is
//! tailed here and compared against a known-good baseline every time
//! the file changes. Strict watch (the default) treats *any*
//! deterministic difference as a regression and exits 1 the moment one
//! appears; `--expect-partial` understands a still-running daemon —
//! metrics lagging the baseline are progress-in-flight, metrics
//! *above* baseline (or absent from it) are regressions, and reaching
//! the full baseline exits 0.
//!
//! Inputs are `repro --manifest` / `btpub-monitor --manifest` output,
//! but bare `--metrics` snapshots work too — comparison falls back to
//! the snapshot itself when there is no `"snapshot"` key. Timing
//! histograms, scheduling counters and `trace.*` recorder accounting
//! are excluded on both sides (see `btpub_obs::manifest`), so runs at
//! different job counts or with tracing armed compare equal unless a
//! *deterministic* metric really moved.

use serde_json::Value;

fn usage() -> ! {
    eprintln!(
        "usage: obs_diff OLD.json NEW.json [--tolerance-pct P]\n       \
         obs_diff --validate-trace TRACE.json [--min-events N]\n       \
         obs_diff --watch BASELINE.json LIVE.json [--tolerance-pct P] \
         [--interval-ms MS] [--max-checks N] [--expect-partial]"
    );
    std::process::exit(2);
}

fn read_json(path: &str) -> Value {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_diff: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obs_diff: {path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    }
}

/// Refuses to compare manifests whose configuration meta disagrees —
/// exit 2, distinct from a metric regression's exit 1.
fn guard_compatible(old: &Value, new: &Value, old_path: &str, new_path: &str) {
    let clashes = btpub_obs::manifest::incompatible(old, new);
    if clashes.is_empty() {
        return;
    }
    eprintln!(
        "obs_diff: refusing to compare {old_path} and {new_path}: \
         they describe different run configurations:"
    );
    for c in &clashes {
        eprintln!("  {c}");
    }
    std::process::exit(2);
}

/// Validates a Chrome trace file: JSON parses, `traceEvents` is an array,
/// and it holds at least `min_events` non-metadata events. Replaces a
/// `jq`-based check so the gate has no dependency beyond this workspace.
fn validate_trace(path: &str, min_events: usize) -> ! {
    let root = read_json(path);
    let Some(events) = root.get("traceEvents").and_then(Value::as_array) else {
        eprintln!("obs_diff: {path}: no traceEvents array");
        std::process::exit(1);
    };
    let real = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) != Some("M"))
        .count();
    let lanes = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
        .count();
    if real < min_events {
        eprintln!(
            "obs_diff: {path}: {real} events (< {min_events} required), {lanes} lanes"
        );
        std::process::exit(1);
    }
    println!("trace ok: {path} ({real} events across {lanes} lanes)");
    std::process::exit(0);
}

/// File identity for change detection: (mtime, length). Cheap enough to
/// poll; the manifest writer renames into place, so a changed identity
/// means a complete new manifest.
fn file_sig(path: &str) -> Option<(std::time::SystemTime, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

struct WatchOpts {
    tolerance_pct: f64,
    interval_ms: u64,
    max_checks: u64,
    expect_partial: bool,
}

/// Flight-recorder loss accounting in a live snapshot: total
/// `trace.dropped.*` / `trace.capped.*` events plus the per-lane lines.
/// The trace counters are digest-excluded, so a lossy trace would
/// otherwise sail through a watch silently — but a verdict over a lossy
/// run means any `/trace/snapshot` evidence is incomplete, which the
/// operator should know *before* trusting it.
fn trace_loss(live: &Value) -> (u64, Vec<String>) {
    let root = live.get("snapshot").unwrap_or(live);
    let mut total = 0u64;
    let mut lines = Vec::new();
    if let Some(counters) = root.get("counters").and_then(Value::as_object) {
        for (name, v) in counters.iter() {
            let lost = v.as_u64().unwrap_or(0);
            if lost == 0 {
                continue;
            }
            if let Some(lane) = name.strip_prefix("trace.dropped.") {
                total += lost;
                lines.push(format!("lane {lane}: {lost} events dropped (ring overflow)"));
            } else if let Some(lane) = name.strip_prefix("trace.capped.") {
                total += lost;
                lines.push(format!("lane {lane}: {lost} events capped (rate cap)"));
            }
        }
    }
    lines.sort();
    (total, lines)
}

/// Tails `live_path`, re-comparing against the baseline every time the
/// file changes. See the module docs for strict vs `--expect-partial`
/// semantics. With `--max-checks 0` a healthy watch runs forever (a
/// live health probe that only exits on regression).
fn watch(baseline_path: &str, live_path: &str, opts: &WatchOpts) -> ! {
    let baseline = read_json(baseline_path);
    let mut checks = 0u64;
    let mut last_sig = None;
    let mut last_loss = 0u64;
    loop {
        let sig = file_sig(live_path);
        if sig.is_some() && sig != last_sig {
            last_sig = sig;
            // The writer renames complete files into place, but the
            // path may briefly not parse while being replaced on
            // filesystems without atomic rename — tolerate and retry.
            let Ok(text) = std::fs::read_to_string(live_path) else {
                std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
                continue;
            };
            let Ok(live) = serde_json::from_str::<Value>(&text) else {
                std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
                continue;
            };
            guard_compatible(&baseline, &live, baseline_path, live_path);
            checks += 1;
            // Warn (once per growth) when the watched run's flight
            // recorder lost events — the verdict below still stands,
            // but its trace evidence is lossy.
            let (loss, lanes) = trace_loss(&live);
            if loss > last_loss {
                eprintln!(
                    "obs_diff: warning: watched run has a lossy trace \
                     ({loss} events dropped/capped):"
                );
                for l in &lanes {
                    eprintln!("  {l}");
                }
                last_loss = loss;
            }
            if opts.expect_partial {
                let v = btpub_obs::manifest::watch_verdict(&baseline, &live, opts.tolerance_pct);
                if !v.overshoots.is_empty() {
                    eprintln!(
                        "obs_diff: watch check {checks}: {} metric(s) beyond baseline:",
                        v.overshoots.len()
                    );
                    for o in &v.overshoots {
                        eprintln!("  {o}");
                    }
                    std::process::exit(1);
                }
                if v.behind == 0 {
                    println!(
                        "watch: {live_path} reached baseline {baseline_path} \
                         ({}/{} metrics, check {checks})",
                        v.matched, v.total
                    );
                    std::process::exit(0);
                }
                println!(
                    "watch: in flight — {}/{} metrics at baseline, {} behind (check {checks})",
                    v.matched, v.total, v.behind
                );
            } else {
                let diffs = btpub_obs::manifest::diff(&baseline, &live, opts.tolerance_pct);
                if !diffs.is_empty() {
                    eprintln!(
                        "obs_diff: watch check {checks}: {} regression(s) vs {baseline_path}:",
                        diffs.len()
                    );
                    for d in &diffs {
                        eprintln!("  {d}");
                    }
                    std::process::exit(1);
                }
                println!("watch: {live_path} matches baseline (check {checks})");
            }
            if opts.max_checks > 0 && checks >= opts.max_checks {
                if opts.expect_partial {
                    // Bounded partial watch that never converged: the
                    // daemon stalled short of baseline — a failure, not
                    // a pass.
                    eprintln!(
                        "obs_diff: watch gave up after {checks} check(s) \
                         without reaching baseline"
                    );
                    std::process::exit(1);
                }
                std::process::exit(0);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance_pct = 0.0f64;
    let mut validate: Option<String> = None;
    let mut min_events = 1usize;
    let mut watch_mode = false;
    let mut interval_ms = 500u64;
    let mut max_checks = 0u64;
    let mut expect_partial = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance-pct" => {
                i += 1;
                tolerance_pct = match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(p) if p >= 0.0 => p,
                    _ => usage(),
                };
            }
            "--validate-trace" => {
                i += 1;
                match args.get(i) {
                    Some(p) => validate = Some(p.clone()),
                    None => usage(),
                }
            }
            "--min-events" => {
                i += 1;
                min_events = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => n,
                    None => usage(),
                };
            }
            "--watch" => watch_mode = true,
            "--interval-ms" => {
                i += 1;
                interval_ms = match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage(),
                };
            }
            "--max-checks" => {
                i += 1;
                max_checks = match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) => n,
                    None => usage(),
                };
            }
            "--expect-partial" => expect_partial = true,
            other if other.starts_with("--") => usage(),
            other => paths.push(other.to_string()),
        }
        i += 1;
    }

    if let Some(path) = validate {
        if !paths.is_empty() || watch_mode {
            usage();
        }
        validate_trace(&path, min_events);
    }
    if paths.len() != 2 {
        usage();
    }
    if watch_mode {
        let opts = WatchOpts {
            tolerance_pct,
            interval_ms,
            max_checks,
            expect_partial,
        };
        watch(&paths[0], &paths[1], &opts);
    }
    let old = read_json(&paths[0]);
    let new = read_json(&paths[1]);
    guard_compatible(&old, &new, &paths[0], &paths[1]);
    let diffs = btpub_obs::manifest::diff(&old, &new, tolerance_pct);
    if diffs.is_empty() {
        println!(
            "manifests match: {} == {} (tolerance {tolerance_pct}%)",
            paths[0], paths[1]
        );
        std::process::exit(0);
    }
    eprintln!(
        "obs_diff: {} deterministic metric difference(s) between {} and {}:",
        diffs.len(),
        paths[0],
        paths[1]
    );
    for d in &diffs {
        eprintln!("  {d}");
    }
    std::process::exit(1);
}
