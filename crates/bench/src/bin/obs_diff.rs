//! Compares two run manifests (or raw metric snapshots) and flags metric
//! regressions; also validates Chrome trace files.
//!
//! ```text
//! obs_diff OLD.json NEW.json [--tolerance-pct P]
//! obs_diff --validate-trace TRACE.json [--min-events N]
//! ```
//!
//! Exit codes: `0` — manifests match (or the trace is valid); `1` —
//! differences found (or the trace is invalid); `2` — usage or I/O error.
//! `scripts/check.sh` uses both modes as gates: a repro run must produce
//! the same deterministic metrics as its twin, and a `--trace` run must
//! produce a loadable trace with events in it.
//!
//! Inputs are `repro --manifest` output, but bare `--metrics` snapshots
//! work too — comparison falls back to the snapshot itself when there is
//! no `"snapshot"` key. Timing histograms and scheduling counters are
//! excluded on both sides (see `btpub_obs::manifest`), so runs at
//! different job counts compare equal unless a *deterministic* metric
//! really moved.

use serde_json::Value;

fn usage() -> ! {
    eprintln!(
        "usage: obs_diff OLD.json NEW.json [--tolerance-pct P]\n       obs_diff --validate-trace TRACE.json [--min-events N]"
    );
    std::process::exit(2);
}

fn read_json(path: &str) -> Value {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_diff: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obs_diff: {path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    }
}

/// Validates a Chrome trace file: JSON parses, `traceEvents` is an array,
/// and it holds at least `min_events` non-metadata events. Replaces a
/// `jq`-based check so the gate has no dependency beyond this workspace.
fn validate_trace(path: &str, min_events: usize) -> ! {
    let root = read_json(path);
    let Some(events) = root.get("traceEvents").and_then(Value::as_array) else {
        eprintln!("obs_diff: {path}: no traceEvents array");
        std::process::exit(1);
    };
    let real = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) != Some("M"))
        .count();
    let lanes = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
        .count();
    if real < min_events {
        eprintln!(
            "obs_diff: {path}: {real} events (< {min_events} required), {lanes} lanes"
        );
        std::process::exit(1);
    }
    println!("trace ok: {path} ({real} events across {lanes} lanes)");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance_pct = 0.0f64;
    let mut validate: Option<String> = None;
    let mut min_events = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance-pct" => {
                i += 1;
                tolerance_pct = match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(p) if p >= 0.0 => p,
                    _ => usage(),
                };
            }
            "--validate-trace" => {
                i += 1;
                match args.get(i) {
                    Some(p) => validate = Some(p.clone()),
                    None => usage(),
                }
            }
            "--min-events" => {
                i += 1;
                min_events = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => n,
                    None => usage(),
                };
            }
            other if other.starts_with("--") => usage(),
            other => paths.push(other.to_string()),
        }
        i += 1;
    }

    if let Some(path) = validate {
        if !paths.is_empty() {
            usage();
        }
        validate_trace(&path, min_events);
    }
    if paths.len() != 2 {
        usage();
    }
    let old = read_json(&paths[0]);
    let new = read_json(&paths[1]);
    let diffs = btpub_obs::manifest::diff(&old, &new, tolerance_pct);
    if diffs.is_empty() {
        println!(
            "manifests match: {} == {} (tolerance {tolerance_pct}%)",
            paths[0], paths[1]
        );
        std::process::exit(0);
    }
    eprintln!(
        "obs_diff: {} deterministic metric difference(s) between {} and {}:",
        diffs.len(),
        paths[0],
        paths[1]
    );
    for d in &diffs {
        eprintln!("  {d}");
    }
    std::process::exit(1);
}
