//! Serial-vs-parallel wall-clock benchmark → `BENCH_par.json`.
//!
//! ```text
//! bench_par [--scale tiny|repro|paper] [--jobs N] [--runs K] [--out PATH]
//! ```
//!
//! Runs the `repro --scenario all` pipeline (generate → crawl → analyze →
//! full report, for mn08 + pb09 + pb10) in-process at `--jobs 1` and at
//! `--jobs N` (default: detected cores), taking the best of `--runs`
//! (default 1) for each, verifies the two reports are **byte-identical**
//! (exit 1 if not — that would be a determinism bug), and writes the
//! measurement to `--out` (default `BENCH_par.json`). This seeds the
//! repo's bench trajectory; `scripts/bench.sh` is the entry point.

use std::time::Instant;

use btpub::{Scale, Scenario, Study};
use btpub_par::Jobs;

/// The emitted measurement record.
#[derive(serde::Serialize)]
struct BenchReport {
    /// Benchmark id, for when more BENCH_*.json files join this one.
    bench: String,
    /// Scale preset the pipeline ran at.
    scale: String,
    /// Detected available parallelism of the machine the numbers are from.
    cpus: usize,
    /// Requested worker count of the parallel configuration.
    jobs: usize,
    /// What the `Jobs` policy resolves the request to (capped at `cpus`);
    /// `1` means both configurations ran the no-pool serial fast path and
    /// any wall-clock difference is measurement noise.
    jobs_effective: usize,
    /// Timed runs per configuration (best-of).
    runs: usize,
    /// Best wall-clock seconds at `--jobs 1`.
    wall_s_serial: f64,
    /// Best wall-clock seconds at `--jobs N`.
    wall_s_parallel: f64,
    /// `wall_s_serial / wall_s_parallel`.
    speedup: f64,
    /// Whether serial and parallel stdout reports matched byte for byte.
    reports_identical: bool,
    /// Total tasks executed across every `par.*` pool, both configs.
    pool_tasks: u64,
    /// Total successful steals across every `par.*` pool, both configs.
    pool_steals: u64,
}

/// One full `--scenario all` pipeline pass; returns (seconds, report).
fn run_all(scale: Scale, jobs: usize) -> (f64, String) {
    btpub_par::set_global(Jobs::new(jobs));
    let scenarios = [
        ("mn08", Scenario::mn08(scale)),
        ("pb09", Scenario::pb09(scale)),
        ("pb10", Scenario::pb10(scale)),
    ];
    let t0 = Instant::now();
    let chunks = btpub_par::par_map("repro.scenarios", &scenarios, |(name, scenario)| {
        let study = Study::run(scenario);
        let analyses = study.analyze();
        format!(
            "################ scenario {name} ################\n{}",
            analyses.experiments().full_report()
        )
    });
    (t0.elapsed().as_secs_f64(), chunks.concat())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_repro();
    let mut scale_name = "repro".to_string();
    let mut jobs = Jobs::detected().get();
    let mut runs = 1usize;
    let mut out = "BENCH_par.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::tiny(),
                    Some("repro") => Scale::default_repro(),
                    Some("paper") => Scale::paper(),
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
                scale_name = args[i].clone();
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--runs" => {
                i += 1;
                runs = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--runs requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                out = match args.get(i) {
                    Some(p) => p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cpus = Jobs::detected().get();
    eprintln!("bench_par: scale={scale_name} jobs=1 vs jobs={jobs} (cpus={cpus}, best of {runs})");

    // Warm-up pass outside the timings (allocator, page cache, lazily
    // initialised metric handles), at tiny scale to keep it cheap.
    let _ = run_all(Scale::tiny(), 1);

    // Interleave the configurations (1, N, 1, N, …) so slow drift in the
    // environment (thermal state, page cache, background load) biases
    // both best-of minimums equally instead of whichever ran last.
    let mut wall_serial = f64::INFINITY;
    let mut report_serial = String::new();
    let mut wall_par = f64::INFINITY;
    let mut report_par = String::new();
    for r in 0..runs {
        let (w, rep) = run_all(scale, 1);
        eprintln!("  jobs=1  run {}: {w:.3}s", r + 1);
        if w < wall_serial {
            wall_serial = w;
        }
        report_serial = rep;
        let (w, rep) = run_all(scale, jobs);
        eprintln!("  jobs={jobs} run {}: {w:.3}s", r + 1);
        if w < wall_par {
            wall_par = w;
        }
        report_par = rep;
    }

    let identical = report_serial == report_par;
    let (pool_tasks, pool_steals) = btpub_obs::global()
        .counters()
        .into_iter()
        .fold((0u64, 0u64), |(t, s), (name, v)| {
            if name.starts_with("par.") && name.ends_with(".tasks") {
                (t + v, s)
            } else if name.starts_with("par.") && name.ends_with(".steals") {
                (t, s + v)
            } else {
                (t, s)
            }
        });
    let report = BenchReport {
        bench: "par".into(),
        scale: scale_name,
        cpus,
        jobs,
        jobs_effective: Jobs::new(jobs).effective().get(),
        runs,
        wall_s_serial: wall_serial,
        wall_s_parallel: wall_par,
        speedup: wall_serial / wall_par.max(1e-9),
        reports_identical: identical,
        pool_tasks,
        pool_steals,
    };
    let json = serde_json::to_string_pretty(&serde_json::to_value(&report).expect("serializes"))
        .expect("renders");
    std::fs::write(&out, &json).expect("write bench report");
    eprintln!(
        "bench_par: serial {wall_serial:.3}s, parallel {wall_par:.3}s, speedup {:.2}x -> {out}",
        report.speedup
    );
    if !identical {
        eprintln!("bench_par: FAIL — serial and parallel reports differ (determinism bug)");
        std::process::exit(1);
    }
}
