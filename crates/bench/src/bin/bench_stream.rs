//! Streaming-pipeline memory benchmark → `BENCH_stream.json`.
//!
//! ```text
//! bench_stream [--jobs N] [--out PATH] [--gate PATH] [--replay NEW.json]
//! ```
//!
//! The question this answers: does the bounded streaming pipeline
//! (`repro --stream`) actually hold crawl+analysis memory flat when the
//! campaign grows 100×? It runs the pb10 scenario at tiny scale (1×) and
//! at the 100×-shape (`Scenario::pb10(Scale::tiny()).times(100)`: 100×
//! the torrents over 100× the days, so announcement density, swarm
//! lifetimes and the in-flight monitoring window all stay at tiny shape)
//! under a byte-counting global allocator and
//! records, per configuration:
//!
//! * **peak bytes** — high-water mark of live heap bytes *over the
//!   post-generation baseline*, so the simulated world (whose size scales
//!   with the campaign by construction) is excluded and the number
//!   isolates crawl + aggregation + report;
//! * **records/sec** — torrent records ingested per wall-clock second of
//!   the crawl+aggregate phase;
//! * **wall per phase** — generate / crawl+aggregate / report.
//!
//! The materialized pipeline is measured at both shapes for contrast
//! (`--gate` runs skip the expensive materialized 100× pass), and the 1×
//! streaming report is asserted byte-identical to the materialized one
//! in-process.
//!
//! `--gate OLD.json` compares a fresh (or `--replay`ed) measurement
//! against the committed baseline and exits nonzero if the streaming
//! 100×-shape peak exceeds the baseline's fixed `ceiling_bytes`, if
//! memory growth from 1× to 100× is no longer sublinear, if the 1×
//! streaming report diverged from the materialized one, or if the
//! baseline was recorded on different cpus/jobs than this run (a
//! mismatched baseline gates nothing). `--replay NEW.json` skips the
//! measurement and gates an existing report file — `scripts/check.sh`
//! uses it to prove the gate actually fails on a doctored baseline.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use btpub::{Scale, Scenario, StreamOptions, StreamStudy, Study};
use btpub_par::Jobs;
use btpub_sim::Ecosystem;

/// `System`, plus live-byte accounting: `CUR` tracks currently-live heap
/// bytes, `PEAK` their high-water mark (via `fetch_max`, so concurrent
/// producer/consumer threads are counted too).
struct PeakAlloc;

static CUR: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn count_alloc(size: usize) {
    let cur = CUR.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(cur, Ordering::Relaxed);
}

fn count_dealloc(size: usize) {
    CUR.fetch_sub(size as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            count_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        count_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new = unsafe { System.realloc(ptr, layout, new_size) };
        if !new.is_null() {
            count_dealloc(layout.size());
            count_alloc(new_size);
        }
        new
    }
}

#[global_allocator]
static ALLOCATOR: PeakAlloc = PeakAlloc;

/// Resets the high-water mark to the currently-live bytes and returns
/// that baseline: `peak_since() - baseline` is the measurement.
fn reset_peak() -> u64 {
    let cur = CUR.load(Ordering::Relaxed);
    PEAK.store(cur, Ordering::Relaxed);
    cur
}

fn peak() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Campaign-length multiplier of the large shape (torrents *and* days;
/// announcement density and the publisher population stay at tiny scale).
const MULTIPLIER: u64 = 100;

/// Hard ceiling for the streaming 100×-shape crawl+analysis peak, bytes.
/// Fixed rather than baseline-relative so a regression can never ratchet
/// itself in as the new normal; sized ≈2× the measured ~11.8 MB peak so
/// honest jitter passes while a materializing pipeline (measured ~66×
/// over at this shape) trips immediately.
const STREAM_PEAK_CEILING_BYTES: u64 = 24 * 1024 * 1024;

/// Sublinearity bound: the streaming peak at 100× the campaign length
/// must stay under this many multiples of the 1× peak. A truly bounded
/// pipeline sits well below; a materializing one sits near 100.
const MAX_PEAK_GROWTH_RATIO: f64 = 16.0;

/// One measured pipeline pass.
#[derive(Debug)]
struct Measured {
    peak_bytes: u64,
    records: usize,
    crawl_s: f64,
    report_s: f64,
    report: String,
}

/// Crawl + aggregate + report on the streaming path, over a pre-generated
/// world so the measurement window holds only the pipeline itself.
fn measure_stream(scenario: &Scenario, eco: Ecosystem) -> Measured {
    let baseline = reset_peak();
    let t0 = Instant::now();
    let study = StreamStudy::run_on(scenario, eco, &StreamOptions::default());
    let crawl_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let report = study.full_report();
    let report_s = t1.elapsed().as_secs_f64();
    Measured {
        peak_bytes: peak() - baseline,
        records: study.analyses.totals.torrents_total,
        crawl_s,
        report_s,
        report,
    }
}

/// The same window on the materialized path.
fn measure_materialized(scenario: &Scenario, eco: Ecosystem) -> Measured {
    let baseline = reset_peak();
    let t0 = Instant::now();
    let study = Study::run_on(scenario, eco);
    let crawl_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let analyses = study.analyze();
    let report = analyses.experiments().full_report();
    let report_s = t1.elapsed().as_secs_f64();
    Measured {
        peak_bytes: peak() - baseline,
        records: study.dataset.torrent_count(),
        crawl_s,
        report_s,
        report,
    }
}

/// The emitted measurement record.
#[derive(serde::Serialize, serde::Deserialize)]
struct BenchReport {
    /// Benchmark id.
    bench: String,
    /// Scale preset the shapes are built from.
    scale: String,
    /// Campaign-length multiplier of the large shape.
    multiplier: u64,
    /// Detected available parallelism.
    cpus: usize,
    /// Worker count the pipelines ran at.
    jobs: usize,
    /// Torrent records ingested at 1× / at the 100×-shape.
    records_1x: usize,
    records_100x: usize,
    /// World-generation wall clock for the 100×-shape, seconds (outside
    /// the memory window; listed so total cost is attributable).
    generate_100x_s: f64,
    /// Crawl+aggregate and report walls, streaming 100×-shape.
    stream_crawl_100x_s: f64,
    stream_report_100x_s: f64,
    /// Records ingested per second, streaming 100×-shape crawl phase.
    records_per_sec_100x: f64,
    /// Peak live heap bytes over the post-generation baseline.
    materialized_peak_bytes_1x: u64,
    /// `None` on `--gate` runs (the expensive contrast pass is skipped).
    materialized_peak_bytes_100x: Option<u64>,
    stream_peak_bytes_1x: u64,
    stream_peak_bytes_100x: u64,
    /// `stream_peak_bytes_100x / stream_peak_bytes_1x` — sublinearity in
    /// one number (campaign grew 100×; this must stay far below that).
    peak_growth_ratio: f64,
    /// The fixed gate ceiling the 100×-shape streaming peak is held to.
    ceiling_bytes: u64,
    /// Whether the 1× streaming report was byte-identical to the
    /// materialized one in this very process.
    reports_identical_1x: bool,
    /// Report bytes produced (sanity: the pipeline really ran).
    report_bytes: usize,
}

/// Applies the regression gate; returns the failure messages.
fn gate_failures(old: &BenchReport, new: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    // A baseline from a different environment gates nothing: refuse it
    // rather than comparing walls across machines or worker counts.
    if old.cpus != new.cpus || old.jobs != new.jobs {
        failures.push(format!(
            "baseline environment mismatch: baseline cpus={}/jobs={}, this run \
             cpus={}/jobs={} — regenerate the baseline here (scripts/bench.sh)",
            old.cpus, old.jobs, new.cpus, new.jobs
        ));
    }
    // Hard: the 100×-shape streaming peak must fit under the committed
    // ceiling. This is the memory-boundedness contract.
    if new.stream_peak_bytes_100x > old.ceiling_bytes {
        failures.push(format!(
            "streaming 100x-shape peak {} bytes exceeds the {} byte ceiling",
            new.stream_peak_bytes_100x, old.ceiling_bytes
        ));
    }
    // Hard: growth from 1× to 100× must stay sublinear.
    if new.peak_growth_ratio > MAX_PEAK_GROWTH_RATIO {
        failures.push(format!(
            "peak grew {:.1}x from 1x to {}x campaign length (bound {:.0}x) — \
             something materializes per-record state again",
            new.peak_growth_ratio, new.multiplier, MAX_PEAK_GROWTH_RATIO
        ));
    }
    // Hard: streaming must keep producing the materialized bytes.
    if !new.reports_identical_1x {
        failures.push(
            "streaming report diverged from the materialized report at 1x".into(),
        );
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 1usize;
    let mut out = "BENCH_stream.json".to_string();
    let mut gate: Option<String> = None;
    let mut replay: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                out = match args.get(i) {
                    Some(p) => p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                };
            }
            "--gate" => {
                i += 1;
                gate = match args.get(i) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--gate requires a path");
                        std::process::exit(2);
                    }
                };
            }
            "--replay" => {
                i += 1;
                replay = match args.get(i) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--replay requires a path");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let read_report = |path: &str| -> BenchReport {
        serde_json::from_str(&std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_stream: cannot read {path}: {e}");
            std::process::exit(2);
        }))
        .unwrap_or_else(|e| {
            eprintln!("bench_stream: cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };

    let report = if let Some(new_path) = replay {
        // Gate an existing measurement without re-running it.
        read_report(&new_path)
    } else {
        btpub_par::set_global(Jobs::new(jobs));
        let cpus = Jobs::detected().get();
        eprintln!("bench_stream: jobs={jobs} (cpus={cpus}), multiplier={MULTIPLIER}");

        let tiny = Scenario::pb10(Scale::tiny());
        let large = Scenario::pb10(Scale::tiny()).times(MULTIPLIER);

        // Warm-up (allocator arenas, page cache, metric handles).
        let _ = measure_materialized(&tiny, Ecosystem::generate(tiny.eco.clone()));

        let mat_1x = measure_materialized(&tiny, Ecosystem::generate(tiny.eco.clone()));
        let stream_1x = measure_stream(&tiny, Ecosystem::generate(tiny.eco.clone()));
        let reports_identical_1x = stream_1x.report == mat_1x.report;
        eprintln!(
            "  1x:   materialized peak {:>12} B, streaming peak {:>12} B, identical={}",
            mat_1x.peak_bytes, stream_1x.peak_bytes, reports_identical_1x
        );

        // The materialized 100×-shape pass exists to show the contrast in
        // committed baselines; gate runs skip it (it is the slow, hungry
        // configuration — the one the streaming path exists to replace).
        let mat_100x = if gate.is_none() {
            let eco = Ecosystem::generate(large.eco.clone());
            let m = measure_materialized(&large, eco);
            eprintln!("  100x: materialized peak {:>12} B", m.peak_bytes);
            Some(m)
        } else {
            None
        };

        let t_gen = Instant::now();
        let eco = Ecosystem::generate(large.eco.clone());
        let generate_100x_s = t_gen.elapsed().as_secs_f64();
        let stream_100x = measure_stream(&large, eco);
        eprintln!(
            "  100x: streaming    peak {:>12} B, {} records in {:.3}s",
            stream_100x.peak_bytes, stream_100x.records, stream_100x.crawl_s
        );

        BenchReport {
            bench: "stream".into(),
            scale: "tiny".into(),
            multiplier: MULTIPLIER,
            cpus,
            jobs,
            records_1x: stream_1x.records,
            records_100x: stream_100x.records,
            generate_100x_s,
            stream_crawl_100x_s: stream_100x.crawl_s,
            stream_report_100x_s: stream_100x.report_s,
            records_per_sec_100x: stream_100x.records as f64 / stream_100x.crawl_s,
            materialized_peak_bytes_1x: mat_1x.peak_bytes,
            materialized_peak_bytes_100x: mat_100x.as_ref().map(|m| m.peak_bytes),
            stream_peak_bytes_1x: stream_1x.peak_bytes,
            stream_peak_bytes_100x: stream_100x.peak_bytes,
            peak_growth_ratio: stream_100x.peak_bytes as f64
                / stream_1x.peak_bytes.max(1) as f64,
            ceiling_bytes: STREAM_PEAK_CEILING_BYTES,
            reports_identical_1x,
            report_bytes: stream_100x.report.len(),
        }
    };

    let json =
        serde_json::to_string_pretty(&serde_json::to_value(&report).expect("serializes"))
            .expect("renders");
    std::fs::write(&out, &json).expect("write bench report");
    eprintln!(
        "bench_stream: stream peak {} B (1x) -> {} B ({}x-shape), growth {:.2}x, \
         {:.0} records/s -> {out}",
        report.stream_peak_bytes_1x,
        report.stream_peak_bytes_100x,
        report.multiplier,
        report.peak_growth_ratio,
        report.records_per_sec_100x,
    );

    if let Some(gate_path) = gate {
        let old = read_report(&gate_path);
        let failures = gate_failures(&old, &report);
        if failures.is_empty() {
            eprintln!(
                "bench_stream: gate OK vs {gate_path} (peak {} B <= ceiling {} B, \
                 growth {:.2}x <= {:.0}x, 1x reports identical)",
                report.stream_peak_bytes_100x,
                old.ceiling_bytes,
                report.peak_growth_ratio,
                MAX_PEAK_GROWTH_RATIO,
            );
        } else {
            for f in &failures {
                eprintln!("bench_stream: GATE FAIL — {f}");
            }
            std::process::exit(1);
        }
    }
}
