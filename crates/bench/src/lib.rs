//! Shared fixtures for the benchmarks and the `repro` binary.

use std::sync::OnceLock;

use btpub::{Scale, Scenario, Study};

/// A cached tiny pb10 study — benchmark setup must not dominate timings.
pub fn tiny_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(&Scenario::pb10(Scale::tiny())))
}

/// A cached tiny mn08 study (IP-keyed analyses).
pub fn tiny_mn08() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(&Scenario::mn08(Scale::tiny())))
}
