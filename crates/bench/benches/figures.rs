//! One Criterion group per paper *figure*.
//!
//! * `f1_skewness` — the contribution CDF over all publishers.
//! * `f2_content_types` — category distributions per group.
//! * `f3_popularity` — per-group popularity boxes.
//! * `f4_seeding` — session estimation + the three seeding boxes (the
//!   computational core of §4.3, which the authors could only run on a
//!   400-publisher sample).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use btpub_analysis::content_type::category_distribution;
use btpub_analysis::fake::Group;
use btpub_analysis::popularity::popularity_box;
use btpub_analysis::seeding::group_seeding_boxes;
use btpub_analysis::skewness::contribution_cdf;
use btpub_bench::tiny_study;

fn f1_skewness(c: &mut Criterion) {
    let analyses = tiny_study().analyze();
    c.bench_function("f1_skewness/cdf", |b| {
        b.iter(|| black_box(contribution_cdf(&analyses.publishers)))
    });
}

fn f2_content_types(c: &mut Criterion) {
    let study = tiny_study();
    let analyses = study.analyze();
    let mut g = c.benchmark_group("f2_content_types");
    for group in Group::ALL {
        g.bench_function(group.label(), |b| {
            b.iter(|| {
                black_box(category_distribution(
                    &study.dataset,
                    &analyses.publishers,
                    &analyses.groups,
                    group,
                ))
            })
        });
    }
    g.finish();
}

fn f3_popularity(c: &mut Criterion) {
    let study = tiny_study();
    let analyses = study.analyze();
    let mut g = c.benchmark_group("f3_popularity");
    for group in [Group::All, Group::Top, Group::Fake] {
        g.bench_function(group.label(), |b| {
            b.iter(|| {
                black_box(popularity_box(
                    &analyses.publishers,
                    &analyses.groups,
                    group,
                    7,
                ))
            })
        });
    }
    g.finish();
}

fn f4_seeding(c: &mut Criterion) {
    let study = tiny_study();
    let analyses = study.analyze();
    let mut g = c.benchmark_group("f4_seeding");
    g.sample_size(20);
    for group in [Group::Top, Group::Fake] {
        g.bench_function(group.label(), |b| {
            b.iter(|| {
                black_box(group_seeding_boxes(
                    &study.dataset,
                    &analyses.publishers,
                    &analyses.groups,
                    group,
                    7,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(figures, f1_skewness, f2_content_types, f3_popularity, f4_seeding);
criterion_main!(figures);
