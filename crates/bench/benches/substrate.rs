//! Substrate micro-benchmarks: the building blocks every experiment sits
//! on — wire codecs, hashing, GeoIP lookup, swarm-trace queries and
//! tracker sampling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::net::Ipv4Addr;

use btpub_bench::tiny_study;
use btpub_bencode::Value;
use btpub_proto::metainfo::MetainfoBuilder;
use btpub_proto::sha1::sha1;
use btpub_proto::tracker::AnnounceRequest;
use btpub_proto::types::{InfoHash, PeerId};
use btpub_sim::{SimDuration, SimTime};
use btpub_tracker::sim::TrackerSim;

fn bencode_roundtrip(c: &mut Criterion) {
    let metainfo = MetainfoBuilder::new("http://t.example/announce", "payload.bin", 700 << 20)
        .comment("a fairly typical torrent with 2800 pieces")
        .build();
    let bytes = metainfo.encode();
    let mut g = c.benchmark_group("substrate_bencode");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_torrent", |b| b.iter(|| black_box(metainfo.encode())));
    g.bench_function("decode_torrent", |b| {
        b.iter(|| black_box(Value::decode(&bytes).unwrap()))
    });
    g.bench_function("info_hash", |b| b.iter(|| black_box(metainfo.info_hash())));
    g.finish();
}

fn sha1_throughput(c: &mut Criterion) {
    let data = vec![0xabu8; 1 << 20];
    let mut g = c.benchmark_group("substrate_sha1");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("1MiB", |b| b.iter(|| black_box(sha1(&data))));
    g.finish();
}

fn announce_codec(c: &mut Criterion) {
    let req = AnnounceRequest {
        info_hash: InfoHash([0xAB; 20]),
        peer_id: PeerId::azureus_style("BP", "0100", [7; 12]),
        port: 6881,
        uploaded: 123,
        downloaded: 456,
        left: 789,
        event: btpub_proto::tracker::AnnounceEvent::Started,
        numwant: 200,
        compact: true,
    };
    let query = req.to_query();
    let mut g = c.benchmark_group("substrate_announce");
    g.bench_function("to_query", |b| b.iter(|| black_box(req.to_query())));
    g.bench_function("from_query", |b| {
        b.iter(|| black_box(AnnounceRequest::from_query(&query).unwrap()))
    });
    g.finish();
}

fn geodb_lookup(c: &mut Criterion) {
    let study = tiny_study();
    let db = &study.eco.world.db;
    let ips: Vec<Ipv4Addr> = (0..1024u32)
        .map(|i| Ipv4Addr::from(0x0100_0000u32 + i * 65_537))
        .collect();
    let mut g = c.benchmark_group("substrate_geodb");
    g.throughput(Throughput::Elements(ips.len() as u64));
    g.bench_function("lookup_1024", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for ip in &ips {
                hits += usize::from(db.lookup(*ip).is_some());
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn swarm_queries(c: &mut Criterion) {
    let study = tiny_study();
    let (idx, swarm) = study
        .eco
        .swarms
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.downloads())
        .unwrap();
    let t = study.eco.publications[idx].at + SimDuration::from_hours(3.0);
    let mut g = c.benchmark_group("substrate_swarm");
    g.bench_function("active_count", |b| {
        b.iter(|| black_box(swarm.active_count(t)))
    });
    g.bench_function("seeder_count", |b| {
        b.iter(|| black_box(swarm.seeder_count(t)))
    });
    let mut rng = btpub_sim::rngs::derive(1, "bench", 0);
    g.bench_function("sample_200", |b| {
        b.iter(|| black_box(swarm.sample_active(t, 200, &mut rng).len()))
    });
    g.finish();
}

fn tracker_query(c: &mut Criterion) {
    let study = tiny_study();
    c.bench_function("substrate_tracker/query", |b| {
        // Fresh tracker per iteration batch to avoid unbounded rate-limit
        // state; advance time so no query is rate-limited.
        let mut tracker = TrackerSim::new(&study.eco);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration(1000);
            black_box(tracker.query(1, btpub_sim::TorrentId(0), t, 200).ok())
        })
    });
}

criterion_group!(
    substrate,
    bencode_roundtrip,
    sha1_throughput,
    announce_codec,
    geodb_lookup,
    swarm_queries,
    tracker_query
);
criterion_main!(substrate);
