//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * `ablation_estimator` — Appendix A sensitivity: session-estimation
//!   accuracy/cost as the tracker sample size W varies (20/50/200).
//! * `ablation_threshold` — the 2 h / 4 h / 6 h offline-threshold
//!   robustness computation.
//! * `ablation_swarm_model` — trace-driven swarm queries vs the naive
//!   full-scan alternative, across swarm sizes (the hybrid trace/event
//!   design's justification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use btpub_analysis::session::{capture_probability, estimate_sessions, queries_needed};
use btpub_analysis::seeding::group_seeding_boxes;
use btpub_analysis::fake::Group;
use btpub_bench::tiny_study;
use btpub_sim::intervals::IntervalSet;
use btpub_sim::publisher::PublisherId;
use btpub_sim::swarm::{PeerRecord, SwarmTrace};
use btpub_sim::{SimDuration, SimTime};

fn estimator_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_estimator");
    for w in [20u32, 50, 200] {
        g.bench_with_input(BenchmarkId::new("queries_needed", w), &w, |b, &w| {
            b.iter(|| black_box(queries_needed(w, 165.max(w), 0.99)))
        });
        g.bench_with_input(BenchmarkId::new("capture_curve", w), &w, |b, &w| {
            b.iter(|| {
                let n = 200u32;
                let mut total = 0.0;
                for m in 1..=20 {
                    total += capture_probability(w, n, m);
                }
                black_box(total)
            })
        });
    }
    // Estimation itself over a long sighting series.
    let sightings: Vec<SimTime> = (0..2000u64).map(|i| SimTime(i * 900)).collect();
    g.bench_function("estimate_2000_sightings", |b| {
        b.iter(|| {
            black_box(estimate_sessions(
                &sightings,
                SimDuration::from_hours(4.0),
                SimDuration(450),
            ))
        })
    });
    g.finish();
}

fn threshold_robustness(c: &mut Criterion) {
    let study = tiny_study();
    let analyses = study.analyze();
    let mut g = c.benchmark_group("ablation_threshold");
    g.sample_size(10);
    for hours in [2.0f64, 4.0, 6.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{hours}h")),
            &hours,
            |b, _| {
                // The full Fig 4 computation is the threshold's consumer;
                // its cost is identical across thresholds, which is itself
                // the point: robustness checks are cheap.
                b.iter(|| {
                    black_box(group_seeding_boxes(
                        &study.dataset,
                        &analyses.publishers,
                        &analyses.groups,
                        Group::Top,
                        7,
                    ))
                })
            },
        );
    }
    g.finish();
}

fn make_swarm(peers: usize) -> SwarmTrace {
    let records: Vec<PeerRecord> = (0..peers as u32)
        .map(|i| {
            let arrival = SimTime(u64::from(i) * 37 % 800_000);
            PeerRecord {
                ip: i,
                arrival,
                completed: Some(arrival + SimDuration(3600)),
                departure: arrival + SimDuration(7200),
                natted: i % 3 == 0,
                abort_progress: 1.0,
            }
        })
        .collect();
    SwarmTrace::new(
        PublisherId(0),
        0,
        SimTime(0),
        SimTime(0),
        IntervalSet::from_raw([(SimTime(0), SimTime(900_000))]),
        None,
        records,
    )
}

fn swarm_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_swarm_model");
    for peers in [1_000usize, 10_000, 100_000] {
        let swarm = make_swarm(peers);
        let t = SimTime(400_000);
        g.bench_with_input(
            BenchmarkId::new("indexed_counts", peers),
            &peers,
            |b, _| b.iter(|| black_box((swarm.active_count(t), swarm.seeder_count(t)))),
        );
        g.bench_with_input(BenchmarkId::new("naive_scan", peers), &peers, |b, _| {
            b.iter(|| {
                let active = swarm.peers().iter().filter(|p| p.active(t)).count();
                let seeding = swarm.peers().iter().filter(|p| p.seeding(t)).count();
                black_box((active, seeding))
            })
        });
        let mut rng = btpub_sim::rngs::derive(1, "ablate", peers as u64);
        g.bench_with_input(BenchmarkId::new("sample_200", peers), &peers, |b, _| {
            b.iter(|| black_box(swarm.sample_active(t, 200, &mut rng).len()))
        });
    }
    g.finish();
}

criterion_group!(ablation, estimator_sensitivity, threshold_robustness, swarm_model);
criterion_main!(ablation);
