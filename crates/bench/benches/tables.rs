//! One Criterion group per paper *table*.
//!
//! * `t1_dataset` — building a Table 1 row: ecosystem generation + crawl
//!   (the full measurement pipeline) at micro scale, plus dataset
//!   counters at tiny scale.
//! * `t2_isp_ranking` — Table 2's ISP ranking over the crawled dataset.
//! * `t3_footprint` — Table 3's per-ISP footprint extraction.
//! * `t4_longitudinal` — Table 4 from portal user pages.
//! * `t5_economics` — Table 5 via the six-monitor oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use btpub::{Scale, Scenario, Study};
use btpub_analysis::isp::{isp_footprint, top_isps};
use btpub_bench::tiny_study;

fn t1_dataset(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_dataset");
    // The full pipeline, micro scale: this is the headline cost number.
    g.sample_size(10);
    g.bench_function("generate_and_crawl_micro", |b| {
        b.iter(|| {
            let mut scenario = Scenario::pb10(Scale {
                torrents: 0.002,
                downloads: 0.02,
                majors: 0.1,
            });
            scenario.eco.regular_publishers = 40;
            let study = Study::run(black_box(&scenario));
            black_box(study.dataset.torrent_count())
        })
    });
    let study = tiny_study();
    g.bench_function("dataset_counters", |b| {
        b.iter(|| {
            (
                black_box(study.dataset.torrent_count()),
                black_box(study.dataset.ip_identified_count()),
                black_box(study.dataset.distinct_ip_count()),
            )
        })
    });
    g.finish();
}

fn t2_isp_ranking(c: &mut Criterion) {
    let study = tiny_study();
    c.bench_function("t2_isp_ranking/top10", |b| {
        b.iter(|| black_box(top_isps(&study.dataset, &study.eco.world.db, 10)))
    });
}

fn t3_footprint(c: &mut Criterion) {
    let study = tiny_study();
    let mut g = c.benchmark_group("t3_footprint");
    for isp in ["OVH", "Comcast"] {
        g.bench_function(isp, |b| {
            b.iter(|| black_box(isp_footprint(&study.dataset, &study.eco.world.db, isp)))
        });
    }
    g.finish();
}

fn t4_longitudinal(c: &mut Criterion) {
    let study = tiny_study();
    let analyses = study.analyze();
    c.bench_function("t4_longitudinal/rows", |b| {
        b.iter(|| black_box(analyses.experiments().t4_longitudinal()))
    });
}

fn t5_economics(c: &mut Criterion) {
    let study = tiny_study();
    let analyses = study.analyze();
    c.bench_function("t5_economics/rows", |b| {
        b.iter(|| black_box(analyses.experiments().t5_economics()))
    });
}

criterion_group!(
    tables,
    t1_dataset,
    t2_isp_ranking,
    t3_footprint,
    t4_longitudinal,
    t5_economics
);
criterion_main!(tables);
