//! Kill-and-resume sweep: aborts `repro` at seeded crash points
//! mid-campaign, resumes from the on-disk checkpoint, and asserts the
//! final report is byte-identical to an uninterrupted run.
//!
//! This is the process-level proof of the crash-safety invariant: death
//! at *any* of the planted sites — mid-fold, mid-checkpoint-write (all
//! four stages of the atomic rename dance), mid-spill-flush — costs at
//! most one checkpoint interval of replay and never changes a report
//! byte. The hit index for each site comes from
//! [`btpub_faults::hit_for`], i.e. the same `mix(seed, site, index)`
//! family as every other seeded draw, so the sweep is deterministic and
//! a failure names a reproducible `BTPUB_CRASH=<site>:<hit>` spec.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

use btpub::{Scale, Scenario};

/// Crash site + the window its hit index is drawn from. The window must
/// stay under the site's occurrence count in a tiny pb10 campaign (384
/// folds, 6 checkpoint saves at `--checkpoint-every 64`, ≥2 spill runs
/// at `--spill-chunk 1024`), or the abort would never fire and the
/// "crash run must die" assertion below catches it.
const CHECKPOINT_SITES: [(&str, u64); 5] = [
    ("stream.checkpoint", 5),
    ("checkpoint.write.begin", 5),
    ("checkpoint.mid_write", 5),
    ("checkpoint.pre_rename", 5),
    ("checkpoint.write.end", 5),
];
const STREAM_SITES: [(&str, u64); 2] = [("stream.fold", 300), ("sink.emit", 300)];
const SPILL_SITES: [(&str, u64); 2] = [("spill.flush.frame", 2), ("spill.flush.finish", 2)];

fn campaign_seed() -> u64 {
    Scenario::pb10(Scale::tiny()).eco.seed
}

fn tmp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("btpub-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `repro --scale tiny --scenario pb10 --stream <extra>`, optionally
/// with `BTPUB_CRASH=<spec>` armed. Returns (success, stdout, stderr).
fn run_repro(extra: &[&str], crash: Option<&str>) -> (bool, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(["--scale", "tiny", "--scenario", "pb10", "--stream"]);
    cmd.args(extra);
    match crash {
        Some(spec) => {
            cmd.env("BTPUB_CRASH", spec);
        }
        None => {
            cmd.env_remove("BTPUB_CRASH");
        }
    }
    let out = cmd.output().expect("spawn repro");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The uninterrupted streaming report — the byte-for-byte ground truth
/// every resumed run must reproduce. Computed once per test binary.
fn baseline() -> &'static str {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let (ok, stdout, stderr) = run_repro(&[], None);
        assert!(ok, "uninterrupted baseline run failed:\n{stderr}");
        stdout
    })
}

/// Crash at `<site>:<hit>`, then resume; the resumed stdout must equal
/// the uninterrupted baseline byte for byte.
fn crash_then_resume(site: &str, hit: u64, dir: &Path, extra_args: &[&str]) {
    let ckpt = dir.join("ckpt");
    let mut args: Vec<&str> = vec!["--checkpoint-dir"];
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    args.push(&ckpt_s);
    args.extend_from_slice(&["--checkpoint-every", "64"]);
    args.extend_from_slice(extra_args);

    let spec = format!("{site}:{hit}");
    let (ok, _, stderr) = run_repro(&args, Some(&spec));
    assert!(!ok, "crash run at {spec} must die, but exited cleanly");
    assert!(
        stderr.contains(&format!("btpub-crash: injected abort at {spec}")),
        "crash run at {spec} died for the wrong reason:\n{stderr}"
    );

    let (ok, stdout, stderr) = run_repro(&args, None);
    assert!(ok, "resume after {spec} failed:\n{stderr}");
    assert_eq!(
        stdout,
        baseline(),
        "resume after {spec} changed report bytes"
    );
}

#[test]
fn crash_and_resume_at_checkpoint_sites() {
    let base = tmp_base("ckpt-sites");
    let seed = campaign_seed();
    for (site, window) in CHECKPOINT_SITES {
        let hit = btpub_faults::hit_for(seed, site, window);
        crash_then_resume(site, hit, &base.join(site.replace('.', "-")), &[]);
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn crash_and_resume_at_stream_sites() {
    let base = tmp_base("stream-sites");
    let seed = campaign_seed();
    for (site, window) in STREAM_SITES {
        let hit = btpub_faults::hit_for(seed, site, window);
        crash_then_resume(site, hit, &base.join(site.replace('.', "-")), &[]);
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn crash_and_resume_at_spill_sites() {
    let base = tmp_base("spill-sites");
    let seed = campaign_seed();
    for (site, window) in SPILL_SITES {
        let dir = base.join(site.replace('.', "-"));
        let spill = dir.join("spill");
        let spill_s = spill.to_str().unwrap().to_string();
        let hit = btpub_faults::hit_for(seed, site, window);
        // A tiny chunk cap (clamped to its 1024 floor) forces run
        // flushing at tiny scale, so the spill crash sites actually
        // fire; the report still matches the in-memory baseline.
        crash_then_resume(
            site,
            hit,
            &dir,
            &["--spill-dir", &spill_s, "--spill-chunk", "1024"],
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Two kills in one campaign: crash, resume into a second crash later
/// in the fold sequence, resume again, and still match the baseline.
#[test]
fn chained_crashes_still_converge() {
    let base = tmp_base("chained");
    let ckpt = base.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let args = ["--checkpoint-dir", &ckpt_s, "--checkpoint-every", "64"];

    let (ok, _, stderr) = run_repro(&args, Some("stream.fold:100"));
    assert!(!ok, "first crash must die:\n{stderr}");
    // The resumed process re-counts site arrivals from zero, so a
    // second armed run crashes again further into the campaign.
    let (ok, _, stderr) = run_repro(&args, Some("stream.fold:150"));
    assert!(!ok, "second crash must die:\n{stderr}");
    let (ok, stdout, stderr) = run_repro(&args, None);
    assert!(ok, "final resume failed:\n{stderr}");
    assert_eq!(stdout, baseline(), "chained resume changed report bytes");
    let _ = std::fs::remove_dir_all(&base);
}

/// The invariant holds under crawl parallelism: kill at jobs 4, resume
/// at jobs 4, compare against the (jobs-independent) baseline.
#[test]
fn crash_and_resume_at_jobs_4() {
    let base = tmp_base("jobs4");
    let ckpt = base.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let args = [
        "--checkpoint-dir",
        &ckpt_s,
        "--checkpoint-every",
        "64",
        "--jobs",
        "4",
    ];

    let seed = campaign_seed();
    let hit = btpub_faults::hit_for(seed, "stream.checkpoint", 5);
    let spec = format!("stream.checkpoint:{hit}");
    let (ok, _, stderr) = run_repro(&args, Some(&spec));
    assert!(!ok, "crash run at {spec} (jobs 4) must die:\n{stderr}");
    let (ok, stdout, stderr) = run_repro(&args, None);
    assert!(ok, "resume at jobs 4 failed:\n{stderr}");
    assert_eq!(
        stdout,
        baseline(),
        "resume at jobs 4 changed report bytes"
    );
    let _ = std::fs::remove_dir_all(&base);
}

/// A corrupted checkpoint must be *refused with a named reason*, never
/// silently reinterpreted: flip one payload byte and resume.
#[test]
fn corrupted_checkpoint_is_refused() {
    let base = tmp_base("corrupt");
    let ckpt = base.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let args = ["--checkpoint-dir", &ckpt_s, "--checkpoint-every", "64"];

    let (ok, _, stderr) = run_repro(&args, Some("stream.fold:100"));
    assert!(!ok, "crash run must die:\n{stderr}");
    let file = ckpt.join("pb10").join("checkpoint.ckpt");
    let mut bytes = std::fs::read(&file).expect("checkpoint exists after crash");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&file, &bytes).unwrap();

    let (ok, _, stderr) = run_repro(&args, None);
    assert!(!ok, "resume from a corrupted checkpoint must fail");
    assert!(
        stderr.contains("crc mismatch") || stderr.contains("corrupt"),
        "refusal must name the corruption:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&base);
}
