//! `.torrent` metainfo files.
//!
//! A metainfo file is a bencoded dictionary with an `announce` URL and an
//! `info` dictionary describing the payload. The torrent's identity — its
//! [`InfoHash`] — is the SHA-1 of the canonical bencoding of `info`, which
//! is why this module re-encodes `info` canonically before hashing.

use std::fmt;

use btpub_bencode::{DecodeError, Value};

use crate::types::InfoHash;

/// A single file inside a multi-file torrent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Path components relative to the torrent root directory.
    pub path: Vec<String>,
    /// File size in bytes.
    pub length: u64,
}

/// The `info` dictionary: payload description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoDict {
    /// Suggested name for the file (single-file) or directory (multi-file).
    pub name: String,
    /// Piece size in bytes; real-world torrents use powers of two
    /// (256 KiB – 4 MiB).
    pub piece_length: u32,
    /// Concatenated 20-byte SHA-1 digests, one per piece.
    pub pieces: Vec<u8>,
    /// Single-file: total length. Mutually exclusive with `files`.
    pub length: Option<u64>,
    /// Multi-file: the file list. Mutually exclusive with `length`.
    pub files: Vec<FileEntry>,
    /// BEP 27 private flag: clients must only use the listed tracker
    /// (private BitTorrent portals from §5.1 of the paper set this).
    pub private: bool,
}

impl InfoDict {
    /// Total payload size in bytes.
    pub fn total_length(&self) -> u64 {
        self.length
            .unwrap_or_else(|| self.files.iter().map(|f| f.length).sum())
    }

    /// Number of pieces implied by the pieces digest string.
    pub fn piece_count(&self) -> usize {
        self.pieces.len() / 20
    }

    fn to_value(&self) -> Value {
        let mut d = Value::dict([
            ("name", Value::from(self.name.clone())),
            ("piece length", Value::from(i64::from(self.piece_length))),
            ("pieces", Value::from(self.pieces.clone())),
        ]);
        if let Some(len) = self.length {
            d.insert("length", Value::Int(len as i64));
        } else {
            d.insert(
                "files",
                Value::list(self.files.iter().map(|f| {
                    Value::dict([
                        ("length", Value::Int(f.length as i64)),
                        (
                            "path",
                            Value::list(f.path.iter().map(|p| Value::from(p.clone()))),
                        ),
                    ])
                })),
            );
        }
        if self.private {
            d.insert("private", Value::Int(1));
        }
        d
    }

    fn from_value(v: &Value) -> Result<Self, MetainfoError> {
        let name = v
            .get_str("name")
            .ok_or(MetainfoError::Missing("info.name"))?
            .to_string();
        let piece_length = v
            .get_int("piece length")
            .ok_or(MetainfoError::Missing("info.piece length"))?;
        let piece_length = u32::try_from(piece_length)
            .map_err(|_| MetainfoError::Invalid("info.piece length out of range"))?;
        if piece_length == 0 {
            return Err(MetainfoError::Invalid("info.piece length is zero"));
        }
        let pieces = v
            .get_bytes("pieces")
            .ok_or(MetainfoError::Missing("info.pieces"))?
            .to_vec();
        if pieces.len() % 20 != 0 {
            return Err(MetainfoError::Invalid(
                "info.pieces not a multiple of 20 bytes",
            ));
        }
        let length = v.get_int("length");
        let files_val = v.get_list("files");
        let (length, files) = match (length, files_val) {
            (Some(_), Some(_)) => {
                return Err(MetainfoError::Invalid("both length and files present"))
            }
            (None, None) => return Err(MetainfoError::Missing("info.length or info.files")),
            (Some(len), None) => {
                let len =
                    u64::try_from(len).map_err(|_| MetainfoError::Invalid("negative length"))?;
                (Some(len), Vec::new())
            }
            (None, Some(list)) => {
                let mut files = Vec::with_capacity(list.len());
                for f in list {
                    let length = f
                        .get_int("length")
                        .and_then(|l| u64::try_from(l).ok())
                        .ok_or(MetainfoError::Invalid("file entry length"))?;
                    let path = f
                        .get_list("path")
                        .ok_or(MetainfoError::Invalid("file entry path"))?
                        .iter()
                        .map(|p| {
                            p.as_str()
                                .map(str::to_string)
                                .ok_or(MetainfoError::Invalid("non-utf8 path component"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if path.is_empty() {
                        return Err(MetainfoError::Invalid("empty file path"));
                    }
                    files.push(FileEntry { path, length });
                }
                if files.is_empty() {
                    return Err(MetainfoError::Invalid("empty files list"));
                }
                (None, files)
            }
        };
        Ok(InfoDict {
            name,
            piece_length,
            pieces,
            length,
            files,
            private: v.get_int("private") == Some(1),
        })
    }
}

/// A parsed (or constructed) `.torrent` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metainfo {
    /// Primary tracker announce URL.
    pub announce: String,
    /// Optional tiered announce list (BEP 12), flattened to one tier here.
    pub announce_list: Vec<String>,
    /// Unix creation timestamp.
    pub creation_date: Option<i64>,
    /// Free-text comment. Profit-driven publishers in the paper used this
    /// (and the filename) to embed their promoting URL.
    pub comment: Option<String>,
    /// Client that created the torrent.
    pub created_by: Option<String>,
    /// The payload description.
    pub info: InfoDict,
}

impl Metainfo {
    /// Computes the torrent's info-hash (SHA-1 of canonical `info`).
    pub fn info_hash(&self) -> InfoHash {
        InfoHash::of_info(&self.info.to_value().encode())
    }

    /// Serialises to bencoded `.torrent` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut d = Value::dict([
            ("announce", Value::from(self.announce.clone())),
            ("info", self.info.to_value()),
        ]);
        if !self.announce_list.is_empty() {
            d.insert(
                "announce-list",
                Value::list([Value::list(
                    self.announce_list.iter().map(|u| Value::from(u.clone())),
                )]),
            );
        }
        if let Some(ts) = self.creation_date {
            d.insert("creation date", Value::Int(ts));
        }
        if let Some(c) = &self.comment {
            d.insert("comment", Value::from(c.clone()));
        }
        if let Some(c) = &self.created_by {
            d.insert("created by", Value::from(c.clone()));
        }
        d.encode()
    }

    /// Parses `.torrent` bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, MetainfoError> {
        let v = Value::decode(bytes)?;
        let announce = v
            .get_str("announce")
            .ok_or(MetainfoError::Missing("announce"))?
            .to_string();
        let announce_list = v
            .get_list("announce-list")
            .map(|tiers| {
                tiers
                    .iter()
                    .filter_map(Value::as_list)
                    .flatten()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        let info = v.get("info").ok_or(MetainfoError::Missing("info"))?;
        Ok(Metainfo {
            announce,
            announce_list,
            creation_date: v.get_int("creation date"),
            comment: v.get_str("comment").map(str::to_string),
            created_by: v.get_str("created by").map(str::to_string),
            info: InfoDict::from_value(info)?,
        })
    }
}

/// Errors from parsing a `.torrent` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetainfoError {
    /// The outer bencode was malformed.
    Bencode(DecodeError),
    /// A required key was absent.
    Missing(&'static str),
    /// A key was present but semantically invalid.
    Invalid(&'static str),
}

impl fmt::Display for MetainfoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetainfoError::Bencode(e) => write!(f, "bencode error: {e}"),
            MetainfoError::Missing(k) => write!(f, "missing key: {k}"),
            MetainfoError::Invalid(k) => write!(f, "invalid value: {k}"),
        }
    }
}

impl std::error::Error for MetainfoError {}

impl From<DecodeError> for MetainfoError {
    fn from(e: DecodeError) -> Self {
        MetainfoError::Bencode(e)
    }
}

/// Convenience builder for tests, the simulator and examples.
#[derive(Debug, Clone)]
pub struct MetainfoBuilder {
    announce: String,
    name: String,
    piece_length: u32,
    total_length: u64,
    comment: Option<String>,
    created_by: Option<String>,
    creation_date: Option<i64>,
    private: bool,
    piece_seed: u64,
    real_payload: bool,
}

impl MetainfoBuilder {
    /// Starts a builder for a single-file torrent of `total_length` bytes.
    pub fn new(announce: &str, name: &str, total_length: u64) -> Self {
        MetainfoBuilder {
            announce: announce.to_string(),
            name: name.to_string(),
            piece_length: 256 * 1024,
            total_length,
            comment: None,
            created_by: None,
            creation_date: None,
            private: false,
            piece_seed: 0,
            real_payload: false,
        }
    }

    /// Sets the piece size (bytes). Must be non-zero.
    pub fn piece_length(mut self, len: u32) -> Self {
        assert!(len > 0, "piece length must be non-zero");
        self.piece_length = len;
        self
    }

    /// Sets the comment field.
    pub fn comment(mut self, c: &str) -> Self {
        self.comment = Some(c.to_string());
        self
    }

    /// Sets the creating client string.
    pub fn created_by(mut self, c: &str) -> Self {
        self.created_by = Some(c.to_string());
        self
    }

    /// Sets the creation timestamp.
    pub fn creation_date(mut self, ts: i64) -> Self {
        self.creation_date = Some(ts);
        self
    }

    /// Marks the torrent private (BEP 27).
    pub fn private(mut self, p: bool) -> Self {
        self.private = p;
        self
    }

    /// Seeds the deterministic synthetic piece hashes, so two torrents with
    /// identical names/sizes still get distinct info-hashes.
    pub fn piece_seed(mut self, seed: u64) -> Self {
        self.piece_seed = seed;
        self
    }

    /// Backs the torrent with a real synthetic payload: piece digests are
    /// SHA-1 over the bytes [`crate::payload`] generates for
    /// `(piece_seed, index)`, so downloads can actually be verified.
    /// Costs one SHA-1 pass over the whole size — testbed files only.
    pub fn real_payload(mut self, real: bool) -> Self {
        self.real_payload = real;
        self
    }

    /// Builds the metainfo, synthesising per-piece digests
    /// deterministically from `(name, seed, piece index)` — or, with
    /// [`MetainfoBuilder::real_payload`], hashing the actual synthetic
    /// payload bytes.
    pub fn build(self) -> Metainfo {
        let pieces = if self.real_payload {
            crate::payload::pieces_digest(self.piece_seed, self.total_length, self.piece_length)
        } else {
            let pieces_needed = if self.total_length == 0 {
                0
            } else {
                (self.total_length - 1) / u64::from(self.piece_length) + 1
            } as usize;
            let mut pieces = Vec::with_capacity(pieces_needed * 20);
            for idx in 0..pieces_needed {
                let mut h = crate::sha1::Sha1::new();
                h.update(self.name.as_bytes());
                h.update(&self.piece_seed.to_be_bytes());
                h.update(&(idx as u64).to_be_bytes());
                pieces.extend_from_slice(&h.finalize());
            }
            pieces
        };
        Metainfo {
            announce: self.announce,
            announce_list: Vec::new(),
            creation_date: self.creation_date,
            comment: self.comment,
            created_by: self.created_by,
            info: InfoDict {
                name: self.name,
                piece_length: self.piece_length,
                pieces,
                length: Some(self.total_length),
                files: Vec::new(),
                private: self.private,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metainfo {
        MetainfoBuilder::new("http://tracker.example/announce", "show.s01e01.avi", 700_000_000)
            .comment("visit www.example-portal.com")
            .created_by("btpub/0.1")
            .creation_date(1_270_512_000)
            .build()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        let bytes = m.encode();
        let back = Metainfo::decode(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn info_hash_is_stable_and_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.info_hash(), b.info_hash());
        let c = MetainfoBuilder::new("http://tracker.example/announce", "show.s01e01.avi", 700_000_000)
            .piece_seed(1)
            .build();
        assert_ne!(a.info_hash(), c.info_hash());
        // The comment is outside `info`, so it must not change the hash.
        let mut d = sample();
        d.comment = Some("something else".into());
        assert_eq!(a.info_hash(), d.info_hash());
    }

    #[test]
    fn piece_count_covers_length() {
        let m = MetainfoBuilder::new("t", "f", 1_000_000)
            .piece_length(256 * 1024)
            .build();
        assert_eq!(m.info.piece_count(), 4);
        assert_eq!(m.info.total_length(), 1_000_000);
        let exact = MetainfoBuilder::new("t", "f", 512 * 1024)
            .piece_length(256 * 1024)
            .build();
        assert_eq!(exact.info.piece_count(), 2);
        let empty = MetainfoBuilder::new("t", "f", 0).build();
        assert_eq!(empty.info.piece_count(), 0);
    }

    #[test]
    fn multi_file_roundtrip() {
        let mut m = sample();
        m.info.length = None;
        m.info.files = vec![
            FileEntry {
                path: vec!["dir".into(), "a.mkv".into()],
                length: 100,
            },
            FileEntry {
                path: vec!["readme-visit-site.txt".into()],
                length: 20,
            },
        ];
        let back = Metainfo::decode(&m.encode()).unwrap();
        assert_eq!(back.info.files.len(), 2);
        assert_eq!(back.info.total_length(), 120);
    }

    #[test]
    fn private_flag_roundtrip() {
        let m = MetainfoBuilder::new("t", "f", 10).private(true).build();
        let back = Metainfo::decode(&m.encode()).unwrap();
        assert!(back.info.private);
        assert_ne!(
            m.info_hash(),
            MetainfoBuilder::new("t", "f", 10).build().info_hash(),
            "private flag is inside info and must alter the hash"
        );
    }

    #[test]
    fn rejects_semantic_garbage() {
        // both length and files
        let mut v = Value::decode(&sample().encode()).unwrap();
        let info = v.get("info").unwrap().clone();
        let mut bad_info = info.clone();
        bad_info.insert("files", Value::list([]));
        v.insert("info", bad_info);
        assert!(matches!(
            Metainfo::decode(&v.encode()),
            Err(MetainfoError::Invalid(_))
        ));
        // pieces not multiple of 20
        let mut bad_info2 = info;
        bad_info2.insert("pieces", Value::Bytes(vec![0u8; 21]));
        v.insert("info", bad_info2);
        assert!(Metainfo::decode(&v.encode()).is_err());
    }

    #[test]
    fn rejects_missing_keys() {
        assert!(matches!(
            Metainfo::decode(&Value::dict([("announce", Value::from("x"))]).encode()),
            Err(MetainfoError::Missing("info"))
        ));
        assert!(matches!(
            Metainfo::decode(b"not bencode at all"),
            Err(MetainfoError::Bencode(_))
        ));
    }

    #[test]
    fn announce_list_flattens_tiers() {
        let mut m = sample();
        m.announce_list = vec!["http://a/ann".into(), "http://b/ann".into()];
        let back = Metainfo::decode(&m.encode()).unwrap();
        assert_eq!(back.announce_list, m.announce_list);
    }
}
