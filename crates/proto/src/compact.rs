//! Compact peer encoding (BEP 23).
//!
//! Trackers answer `compact=1` announces with a byte string containing one
//! 6-byte record per peer: 4 bytes of IPv4 address in network order followed
//! by a 2-byte big-endian port. The paper's crawler always requests compact
//! responses because it solicits the maximum 200 peers per query.

use std::net::{Ipv4Addr, SocketAddrV4};

/// Encodes peers into the 6-byte-per-peer compact format.
pub fn encode_peers(peers: &[SocketAddrV4]) -> Vec<u8> {
    let mut out = Vec::with_capacity(peers.len() * 6);
    for p in peers {
        out.extend_from_slice(&p.ip().octets());
        out.extend_from_slice(&p.port().to_be_bytes());
    }
    out
}

/// Decodes a compact peer list. Returns `None` if the length is not a
/// multiple of 6.
pub fn decode_peers(data: &[u8]) -> Option<Vec<SocketAddrV4>> {
    if !data.len().is_multiple_of(6) {
        return None;
    }
    Some(
        data.chunks_exact(6)
            .map(|c| {
                SocketAddrV4::new(
                    Ipv4Addr::new(c[0], c[1], c[2], c[3]),
                    u16::from_be_bytes([c[4], c[5]]),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let peers = vec![
            SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 1), 6881),
            SocketAddrV4::new(Ipv4Addr::new(192, 168, 255, 254), 65535),
            SocketAddrV4::new(Ipv4Addr::new(0, 0, 0, 0), 0),
        ];
        assert_eq!(decode_peers(&encode_peers(&peers)).unwrap(), peers);
    }

    #[test]
    fn known_bytes() {
        let peers = vec![SocketAddrV4::new(Ipv4Addr::new(1, 2, 3, 4), 0x1a2b)];
        assert_eq!(encode_peers(&peers), vec![1, 2, 3, 4, 0x1a, 0x2b]);
    }

    #[test]
    fn empty_list() {
        assert_eq!(encode_peers(&[]), Vec::<u8>::new());
        assert_eq!(decode_peers(&[]).unwrap(), vec![]);
    }

    #[test]
    fn rejects_partial_records() {
        assert_eq!(decode_peers(&[1, 2, 3, 4, 5]), None);
        assert_eq!(decode_peers(&[0; 7]), None);
    }
}
