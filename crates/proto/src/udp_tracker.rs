//! The UDP tracker protocol (BEP 15).
//!
//! The OpenBitTorrent tracker the paper crawled served most of its load
//! over UDP: a stateless, 16-byte-header protocol with a connection-id
//! handshake to prevent source-address spoofing. Packet layouts (all
//! integers big-endian):
//!
//! ```text
//! connect  req: protocol_id(8)=0x41727101980 action(4)=0 transaction(4)
//! connect  rsp: action(4)=0 transaction(4) connection_id(8)
//! announce req: connection_id(8) action(4)=1 transaction(4) info_hash(20)
//!               peer_id(20) downloaded(8) left(8) uploaded(8) event(4)
//!               ip(4) key(4) num_want(4) port(2)
//! announce rsp: action(4)=1 transaction(4) interval(4) leechers(4)
//!               seeders(4) peers(6 each)
//! scrape   req: connection_id(8) action(4)=2 transaction(4) hashes(20 each)
//! scrape   rsp: action(4)=2 transaction(4) [seeders(4) completed(4) leechers(4)]*
//! error    rsp: action(4)=3 transaction(4) message(utf-8)
//! ```

use std::net::SocketAddrV4;

use crate::compact;
use crate::tracker::{AnnounceEvent, ScrapeEntry};
use crate::types::{InfoHash, PeerId};

/// The magic protocol id of a connect request.
pub const PROTOCOL_ID: u64 = 0x0417_2710_1980;

/// Action codes.
pub mod action {
    /// Connect handshake.
    pub const CONNECT: u32 = 0;
    /// Announce.
    pub const ANNOUNCE: u32 = 1;
    /// Scrape.
    pub const SCRAPE: u32 = 2;
    /// Error.
    pub const ERROR: u32 = 3;
}

/// Any request a UDP tracker can receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpRequest {
    /// Connection-id handshake.
    Connect {
        /// Client-chosen transaction id, echoed in the response.
        transaction_id: u32,
    },
    /// An announce under an established connection id.
    Announce {
        /// The id issued by a prior connect.
        connection_id: u64,
        /// Client transaction id.
        transaction_id: u32,
        /// Torrent.
        info_hash: InfoHash,
        /// Announcing peer.
        peer_id: PeerId,
        /// Bytes downloaded.
        downloaded: u64,
        /// Bytes left (0 ⇒ seeder).
        left: u64,
        /// Bytes uploaded.
        uploaded: u64,
        /// Lifecycle event.
        event: AnnounceEvent,
        /// Peers wanted (`u32::MAX` ⇒ default).
        num_want: u32,
        /// Listening port.
        port: u16,
    },
    /// A scrape for up to 74 torrents.
    Scrape {
        /// The id issued by a prior connect.
        connection_id: u64,
        /// Client transaction id.
        transaction_id: u32,
        /// Torrents to scrape.
        info_hashes: Vec<InfoHash>,
    },
}

/// Any response a UDP tracker can send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpResponse {
    /// Handshake reply carrying the connection id.
    Connect {
        /// Echoed transaction id.
        transaction_id: u32,
        /// Id to use in subsequent requests.
        connection_id: u64,
    },
    /// Announce reply.
    Announce {
        /// Echoed transaction id.
        transaction_id: u32,
        /// Re-announce interval, seconds.
        interval: u32,
        /// Leecher count.
        leechers: u32,
        /// Seeder count.
        seeders: u32,
        /// Peer sample.
        peers: Vec<SocketAddrV4>,
    },
    /// Scrape reply, one entry per requested hash, in request order.
    Scrape {
        /// Echoed transaction id.
        transaction_id: u32,
        /// Counters per torrent.
        entries: Vec<ScrapeEntry>,
    },
    /// Error reply.
    Error {
        /// Echoed transaction id.
        transaction_id: u32,
        /// Human-readable reason.
        message: String,
    },
}

/// Wire decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpError {
    /// Datagram shorter than its header requires.
    Truncated,
    /// Connect request without the magic protocol id.
    BadProtocolId,
    /// Unknown action code.
    UnknownAction(u32),
    /// Event code out of range.
    BadEvent(u32),
}

impl std::fmt::Display for UdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UdpError::Truncated => write!(f, "truncated datagram"),
            UdpError::BadProtocolId => write!(f, "bad protocol id"),
            UdpError::UnknownAction(a) => write!(f, "unknown action {a}"),
            UdpError::BadEvent(e) => write!(f, "bad event code {e}"),
        }
    }
}

impl std::error::Error for UdpError {}

fn be32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

fn be64(b: &[u8]) -> u64 {
    u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn event_to_wire(e: AnnounceEvent) -> u32 {
    match e {
        AnnounceEvent::Interval => 0,
        AnnounceEvent::Completed => 1,
        AnnounceEvent::Started => 2,
        AnnounceEvent::Stopped => 3,
    }
}

fn event_from_wire(v: u32) -> Result<AnnounceEvent, UdpError> {
    match v {
        0 => Ok(AnnounceEvent::Interval),
        1 => Ok(AnnounceEvent::Completed),
        2 => Ok(AnnounceEvent::Started),
        3 => Ok(AnnounceEvent::Stopped),
        other => Err(UdpError::BadEvent(other)),
    }
}

impl UdpRequest {
    /// Serialises the request datagram.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            UdpRequest::Connect { transaction_id } => {
                let mut out = Vec::with_capacity(16);
                out.extend_from_slice(&PROTOCOL_ID.to_be_bytes());
                out.extend_from_slice(&action::CONNECT.to_be_bytes());
                out.extend_from_slice(&transaction_id.to_be_bytes());
                out
            }
            UdpRequest::Announce {
                connection_id,
                transaction_id,
                info_hash,
                peer_id,
                downloaded,
                left,
                uploaded,
                event,
                num_want,
                port,
            } => {
                let mut out = Vec::with_capacity(98);
                out.extend_from_slice(&connection_id.to_be_bytes());
                out.extend_from_slice(&action::ANNOUNCE.to_be_bytes());
                out.extend_from_slice(&transaction_id.to_be_bytes());
                out.extend_from_slice(&info_hash.0);
                out.extend_from_slice(&peer_id.0);
                out.extend_from_slice(&downloaded.to_be_bytes());
                out.extend_from_slice(&left.to_be_bytes());
                out.extend_from_slice(&uploaded.to_be_bytes());
                out.extend_from_slice(&event_to_wire(*event).to_be_bytes());
                out.extend_from_slice(&0u32.to_be_bytes()); // ip: default
                out.extend_from_slice(&0u32.to_be_bytes()); // key
                out.extend_from_slice(&num_want.to_be_bytes());
                out.extend_from_slice(&port.to_be_bytes());
                out
            }
            UdpRequest::Scrape {
                connection_id,
                transaction_id,
                info_hashes,
            } => {
                let mut out = Vec::with_capacity(16 + info_hashes.len() * 20);
                out.extend_from_slice(&connection_id.to_be_bytes());
                out.extend_from_slice(&action::SCRAPE.to_be_bytes());
                out.extend_from_slice(&transaction_id.to_be_bytes());
                for ih in info_hashes {
                    out.extend_from_slice(&ih.0);
                }
                out
            }
        }
    }

    /// Parses a request datagram.
    pub fn decode(data: &[u8]) -> Result<UdpRequest, UdpError> {
        if data.len() < 16 {
            return Err(UdpError::Truncated);
        }
        let head = be64(&data[0..8]);
        let act = be32(&data[8..12]);
        let transaction_id = be32(&data[12..16]);
        match act {
            action::CONNECT => {
                if head != PROTOCOL_ID {
                    return Err(UdpError::BadProtocolId);
                }
                Ok(UdpRequest::Connect { transaction_id })
            }
            action::ANNOUNCE => {
                if data.len() < 98 {
                    return Err(UdpError::Truncated);
                }
                let mut ih = [0u8; 20];
                ih.copy_from_slice(&data[16..36]);
                let mut pid = [0u8; 20];
                pid.copy_from_slice(&data[36..56]);
                Ok(UdpRequest::Announce {
                    connection_id: head,
                    transaction_id,
                    info_hash: InfoHash(ih),
                    peer_id: PeerId(pid),
                    downloaded: be64(&data[56..64]),
                    left: be64(&data[64..72]),
                    uploaded: be64(&data[72..80]),
                    event: event_from_wire(be32(&data[80..84]))?,
                    num_want: be32(&data[92..96]),
                    port: u16::from_be_bytes([data[96], data[97]]),
                })
            }
            action::SCRAPE => {
                let mut hashes = Vec::new();
                let mut rest = &data[16..];
                while rest.len() >= 20 {
                    let mut ih = [0u8; 20];
                    ih.copy_from_slice(&rest[..20]);
                    hashes.push(InfoHash(ih));
                    rest = &rest[20..];
                }
                Ok(UdpRequest::Scrape {
                    connection_id: head,
                    transaction_id,
                    info_hashes: hashes,
                })
            }
            other => Err(UdpError::UnknownAction(other)),
        }
    }
}

impl UdpResponse {
    /// Serialises the response datagram.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            UdpResponse::Connect {
                transaction_id,
                connection_id,
            } => {
                let mut out = Vec::with_capacity(16);
                out.extend_from_slice(&action::CONNECT.to_be_bytes());
                out.extend_from_slice(&transaction_id.to_be_bytes());
                out.extend_from_slice(&connection_id.to_be_bytes());
                out
            }
            UdpResponse::Announce {
                transaction_id,
                interval,
                leechers,
                seeders,
                peers,
            } => {
                let mut out = Vec::with_capacity(20 + peers.len() * 6);
                out.extend_from_slice(&action::ANNOUNCE.to_be_bytes());
                out.extend_from_slice(&transaction_id.to_be_bytes());
                out.extend_from_slice(&interval.to_be_bytes());
                out.extend_from_slice(&leechers.to_be_bytes());
                out.extend_from_slice(&seeders.to_be_bytes());
                out.extend_from_slice(&compact::encode_peers(peers));
                out
            }
            UdpResponse::Scrape {
                transaction_id,
                entries,
            } => {
                let mut out = Vec::with_capacity(8 + entries.len() * 12);
                out.extend_from_slice(&action::SCRAPE.to_be_bytes());
                out.extend_from_slice(&transaction_id.to_be_bytes());
                for e in entries {
                    out.extend_from_slice(&e.complete.to_be_bytes());
                    out.extend_from_slice(&e.downloaded.to_be_bytes());
                    out.extend_from_slice(&e.incomplete.to_be_bytes());
                }
                out
            }
            UdpResponse::Error {
                transaction_id,
                message,
            } => {
                let mut out = Vec::with_capacity(8 + message.len());
                out.extend_from_slice(&action::ERROR.to_be_bytes());
                out.extend_from_slice(&transaction_id.to_be_bytes());
                out.extend_from_slice(message.as_bytes());
                out
            }
        }
    }

    /// Parses a response datagram.
    pub fn decode(data: &[u8]) -> Result<UdpResponse, UdpError> {
        if data.len() < 8 {
            return Err(UdpError::Truncated);
        }
        let act = be32(&data[0..4]);
        let transaction_id = be32(&data[4..8]);
        match act {
            action::CONNECT => {
                if data.len() < 16 {
                    return Err(UdpError::Truncated);
                }
                Ok(UdpResponse::Connect {
                    transaction_id,
                    connection_id: be64(&data[8..16]),
                })
            }
            action::ANNOUNCE => {
                if data.len() < 20 {
                    return Err(UdpError::Truncated);
                }
                let peers =
                    compact::decode_peers(&data[20..]).ok_or(UdpError::Truncated)?;
                Ok(UdpResponse::Announce {
                    transaction_id,
                    interval: be32(&data[8..12]),
                    leechers: be32(&data[12..16]),
                    seeders: be32(&data[16..20]),
                    peers,
                })
            }
            action::SCRAPE => {
                let mut entries = Vec::new();
                let mut rest = &data[8..];
                while rest.len() >= 12 {
                    entries.push(ScrapeEntry {
                        complete: be32(&rest[0..4]),
                        downloaded: be32(&rest[4..8]),
                        incomplete: be32(&rest[8..12]),
                    });
                    rest = &rest[12..];
                }
                Ok(UdpResponse::Scrape {
                    transaction_id,
                    entries,
                })
            }
            action::ERROR => Ok(UdpResponse::Error {
                transaction_id,
                message: String::from_utf8_lossy(&data[8..]).into_owned(),
            }),
            other => Err(UdpError::UnknownAction(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn connect_roundtrip() {
        let req = UdpRequest::Connect {
            transaction_id: 0xDEAD_BEEF,
        };
        let wire = req.encode();
        assert_eq!(wire.len(), 16);
        assert_eq!(UdpRequest::decode(&wire).unwrap(), req);
        let rsp = UdpResponse::Connect {
            transaction_id: 0xDEAD_BEEF,
            connection_id: 0x0123_4567_89AB_CDEF,
        };
        assert_eq!(UdpResponse::decode(&rsp.encode()).unwrap(), rsp);
    }

    #[test]
    fn connect_requires_magic() {
        let mut wire = UdpRequest::Connect { transaction_id: 1 }.encode();
        wire[0] ^= 1;
        assert_eq!(UdpRequest::decode(&wire), Err(UdpError::BadProtocolId));
    }

    #[test]
    fn announce_roundtrip_all_events() {
        for event in [
            AnnounceEvent::Interval,
            AnnounceEvent::Completed,
            AnnounceEvent::Started,
            AnnounceEvent::Stopped,
        ] {
            let req = UdpRequest::Announce {
                connection_id: 42,
                transaction_id: 7,
                info_hash: InfoHash([9; 20]),
                peer_id: PeerId([8; 20]),
                downloaded: 1,
                left: 2,
                uploaded: 3,
                event,
                num_want: 200,
                port: 6881,
            };
            let wire = req.encode();
            assert_eq!(wire.len(), 98);
            assert_eq!(UdpRequest::decode(&wire).unwrap(), req);
        }
    }

    #[test]
    fn announce_response_roundtrip() {
        let rsp = UdpResponse::Announce {
            transaction_id: 3,
            interval: 900,
            leechers: 10,
            seeders: 2,
            peers: vec![
                SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 1), 6881),
                SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 2), 6882),
            ],
        };
        assert_eq!(UdpResponse::decode(&rsp.encode()).unwrap(), rsp);
    }

    #[test]
    fn scrape_roundtrip() {
        let req = UdpRequest::Scrape {
            connection_id: 99,
            transaction_id: 4,
            info_hashes: vec![InfoHash([1; 20]), InfoHash([2; 20])],
        };
        assert_eq!(UdpRequest::decode(&req.encode()).unwrap(), req);
        let rsp = UdpResponse::Scrape {
            transaction_id: 4,
            entries: vec![
                ScrapeEntry {
                    complete: 1,
                    downloaded: 100,
                    incomplete: 40,
                },
                ScrapeEntry::default(),
            ],
        };
        assert_eq!(UdpResponse::decode(&rsp.encode()).unwrap(), rsp);
    }

    #[test]
    fn error_roundtrip() {
        let rsp = UdpResponse::Error {
            transaction_id: 5,
            message: "connection id expired".into(),
        };
        assert_eq!(UdpResponse::decode(&rsp.encode()).unwrap(), rsp);
    }

    #[test]
    fn truncated_and_unknown_rejected() {
        assert_eq!(UdpRequest::decode(&[0; 8]), Err(UdpError::Truncated));
        assert_eq!(UdpResponse::decode(&[0; 4]), Err(UdpError::Truncated));
        let mut wire = UdpRequest::Connect { transaction_id: 1 }.encode();
        wire[8..12].copy_from_slice(&9u32.to_be_bytes());
        assert_eq!(UdpRequest::decode(&wire), Err(UdpError::UnknownAction(9)));
        let mut bad_event = UdpRequest::Announce {
            connection_id: 1,
            transaction_id: 1,
            info_hash: InfoHash([0; 20]),
            peer_id: PeerId([0; 20]),
            downloaded: 0,
            left: 0,
            uploaded: 0,
            event: AnnounceEvent::Started,
            num_want: 1,
            port: 1,
        }
        .encode();
        bad_event[80..84].copy_from_slice(&7u32.to_be_bytes());
        assert_eq!(UdpRequest::decode(&bad_event), Err(UdpError::BadEvent(7)));
    }
}
