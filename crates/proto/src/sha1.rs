//! SHA-1, as specified in FIPS 180-4.
//!
//! BitTorrent identifies a torrent by the SHA-1 digest of the canonical
//! bencoding of its `info` dictionary, and verifies every downloaded piece
//! against a SHA-1 hash from the metainfo. SHA-1 is cryptographically broken
//! for collision resistance, but the reproduction needs wire-compatible
//! *identifiers*, not security, so implementing it from scratch keeps the
//! dependency set minimal.

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let want = 64 - self.buf_len;
            let take = want.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append: bypass update's length accounting.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_every_split() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let whole = sha1(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 299, 300] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // 55, 56, 57, 63, 64 bytes cross the padding-block boundary.
        let known = [
            (55usize, "c1c8bbdc22796e28c0e15163d20899b65621d65a"),
            (56, "c2db330f6083854c99d4b5bfb6e8f29f201be699"),
            (64, "0098ba824b5c16427bd7a1122a5a442a25ec644d"),
        ];
        for (n, want) in known {
            let data = vec![b'a'; n];
            assert_eq!(hex(&sha1(&data)), want, "len {n}");
        }
    }
}
