//! # btpub-proto
//!
//! BitTorrent wire formats, implemented from scratch on top of
//! [`btpub_bencode`]:
//!
//! * [`sha1`] — the SHA-1 digest (info-hashes are SHA-1 over the canonical
//!   bencoding of the `info` dictionary);
//! * [`metainfo`] — `.torrent` files: build, encode, parse, info-hash;
//! * [`tracker`] — the HTTP tracker protocol: announce / scrape requests
//!   (query-string encoding with binary-safe percent escapes) and bencoded
//!   responses with compact peer lists;
//! * [`peerwire`] — the TCP peer-wire protocol: handshake and the
//!   length-prefixed message set (`choke` … `cancel`), plus
//!   [`peerwire::Bitfield`], which the crawler in this reproduction uses to
//!   distinguish the initial seeder from leechers (§2 of the paper);
//! * [`payload`] — deterministic synthetic payloads whose SHA-1 piece
//!   digests match the metainfo, for real piece transfer + verification;
//! * [`udp_tracker`] — the BEP 15 UDP tracker protocol (connect /
//!   announce / scrape datagrams);
//! * [`compact`] — the 6-byte compact `IPv4:port` peer encoding;
//! * [`urlencode`] — percent-encoding as used in tracker GET requests.
//!
//! Everything here works against both the in-memory simulated network and
//! real TCP sockets (see `btpub-tracker` and `examples/live_tracker.rs`).

pub mod compact;
pub mod metainfo;
pub mod payload;
pub mod peerwire;
pub mod sha1;
pub mod tracker;
pub mod types;
pub mod udp_tracker;
pub mod urlencode;

pub use metainfo::{FileEntry, InfoDict, Metainfo, MetainfoError};
pub use types::{InfoHash, PeerId};
