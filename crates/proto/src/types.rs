//! Core identifier types shared across the protocol stack.

use std::fmt;
use std::str::FromStr;

/// A 20-byte torrent identifier: SHA-1 of the bencoded `info` dictionary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InfoHash(pub [u8; 20]);

impl InfoHash {
    /// Computes the info-hash of an already-bencoded `info` dictionary.
    pub fn of_info(bencoded_info: &[u8]) -> Self {
        InfoHash(crate::sha1::sha1(bencoded_info))
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Renders as 40 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        hex20(&self.0)
    }

    /// Parses 40 hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        parse_hex20(s).map(InfoHash)
    }
}

impl fmt::Debug for InfoHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InfoHash({})", self.to_hex())
    }
}

impl fmt::Display for InfoHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl FromStr for InfoHash {
    type Err = &'static str;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        InfoHash::from_hex(s).ok_or("expected 40 hex characters")
    }
}

/// A 20-byte peer identifier, conventionally using Azureus-style prefixes
/// like `-TR2840-` followed by random bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeerId(pub [u8; 20]);

impl PeerId {
    /// Builds an Azureus-style peer id: `-XXNNNN-` + 12 random bytes.
    ///
    /// `client` must be exactly 2 ASCII characters and `version` 4;
    /// anything else is normalised by truncation/padding with `0`.
    pub fn azureus_style(client: &str, version: &str, random: [u8; 12]) -> Self {
        let mut id = [0u8; 20];
        id[0] = b'-';
        let mut cl = client.bytes().chain(std::iter::repeat(b'0'));
        id[1] = cl.next().unwrap();
        id[2] = cl.next().unwrap();
        let mut ver = version.bytes().chain(std::iter::repeat(b'0'));
        for slot in &mut id[3..7] {
            *slot = ver.next().unwrap();
        }
        id[7] = b'-';
        id[8..20].copy_from_slice(&random);
        PeerId(id)
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Extracts the 2-character client code if this is an Azureus-style id.
    pub fn client_code(&self) -> Option<&str> {
        if self.0[0] == b'-' && self.0[7] == b'-' {
            std::str::from_utf8(&self.0[1..3]).ok()
        } else {
            None
        }
    }

    /// Renders as 40 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        hex20(&self.0)
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.bytes().all(|b| b.is_ascii_graphic()) => write!(f, "PeerId({s})"),
            _ => write!(f, "PeerId({})", self.to_hex()),
        }
    }
}

/// Hex-encodes 20 bytes via a stack buffer: one `String` allocation,
/// no per-byte formatting machinery.
fn hex20(bytes: &[u8; 20]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut buf = [0u8; 40];
    for (i, &b) in bytes.iter().enumerate() {
        buf[i * 2] = DIGITS[usize::from(b >> 4)];
        buf[i * 2 + 1] = DIGITS[usize::from(b & 0x0f)];
    }
    String::from_utf8(buf.to_vec()).expect("hex digits are ASCII")
}

fn parse_hex20(s: &str) -> Option<[u8; 20]> {
    let s = s.as_bytes();
    if s.len() != 40 {
        return None;
    }
    let mut out = [0u8; 20];
    for (i, pair) in s.chunks_exact(2).enumerate() {
        let hi = hex_digit(pair[0])?;
        let lo = hex_digit(pair[1])?;
        out[i] = (hi << 4) | lo;
    }
    Some(out)
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infohash_hex_roundtrip() {
        let h = InfoHash(*b"01234567890123456789");
        let hex = h.to_hex();
        assert_eq!(hex.len(), 40);
        assert_eq!(InfoHash::from_hex(&hex), Some(h));
        assert_eq!(hex.parse::<InfoHash>().unwrap(), h);
    }

    #[test]
    fn infohash_rejects_bad_hex() {
        assert_eq!(InfoHash::from_hex("zz"), None);
        assert_eq!(InfoHash::from_hex(&"g".repeat(40)), None);
        assert!("tooshort".parse::<InfoHash>().is_err());
    }

    #[test]
    fn infohash_uppercase_hex_accepted() {
        let h = InfoHash([0xAB; 20]);
        let upper = h.to_hex().to_uppercase();
        assert_eq!(InfoHash::from_hex(&upper), Some(h));
    }

    #[test]
    fn azureus_peer_id_layout() {
        let id = PeerId::azureus_style("TR", "2840", [7u8; 12]);
        assert_eq!(&id.0[..8], b"-TR2840-");
        assert_eq!(id.client_code(), Some("TR"));
    }

    #[test]
    fn azureus_peer_id_pads_short_fields() {
        let id = PeerId::azureus_style("X", "1", [0u8; 12]);
        assert_eq!(&id.0[..8], b"-X01000-");
    }

    #[test]
    fn non_azureus_id_has_no_client_code() {
        let id = PeerId(*b"random_bytes_here_xx");
        assert_eq!(id.client_code(), None);
    }

    #[test]
    fn debug_impls_readable() {
        let h = InfoHash([1; 20]);
        assert!(format!("{h:?}").contains("0101"));
        let id = PeerId::azureus_style("UT", "3300", *b"abcdefghijkl");
        assert!(format!("{id:?}").contains("-UT3300-"));
    }
}
