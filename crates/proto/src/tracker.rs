//! HTTP tracker protocol: announce and scrape.
//!
//! An announce is an HTTP GET whose query string carries the binary
//! `info_hash` and `peer_id` plus transfer counters; the response is a
//! bencoded dictionary with the re-announce `interval`, seeder/leecher
//! counts and a peer list (compact or dictionary form). The paper's
//! crawler drives exactly this interface: it always asks for `numwant=200`
//! and respects the tracker's 10–15 minute minimum interval to avoid being
//! blacklisted (§2).

use std::fmt;
use std::net::{Ipv4Addr, SocketAddrV4};

use btpub_bencode::Value;

use crate::compact;
use crate::types::{InfoHash, PeerId};
use crate::urlencode;

/// The event field of an announce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnnounceEvent {
    /// First announce of a session.
    Started,
    /// Clean shutdown.
    Stopped,
    /// Download just finished (the peer became a seeder).
    Completed,
    /// Periodic keep-alive announce (no `event` parameter on the wire).
    #[default]
    Interval,
}

impl AnnounceEvent {
    fn as_wire(self) -> Option<&'static str> {
        match self {
            AnnounceEvent::Started => Some("started"),
            AnnounceEvent::Stopped => Some("stopped"),
            AnnounceEvent::Completed => Some("completed"),
            AnnounceEvent::Interval => None,
        }
    }

    fn from_wire(s: &[u8]) -> Option<Self> {
        match s {
            b"started" => Some(AnnounceEvent::Started),
            b"stopped" => Some(AnnounceEvent::Stopped),
            b"completed" => Some(AnnounceEvent::Completed),
            b"" => Some(AnnounceEvent::Interval),
            _ => None,
        }
    }
}

/// A parsed announce request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnounceRequest {
    /// Torrent being announced.
    pub info_hash: InfoHash,
    /// The announcing peer's self-chosen id.
    pub peer_id: PeerId,
    /// TCP port the peer accepts connections on.
    pub port: u16,
    /// Total bytes uploaded this session.
    pub uploaded: u64,
    /// Total bytes downloaded this session.
    pub downloaded: u64,
    /// Bytes still needed; `0` means the peer is a seeder.
    pub left: u64,
    /// Session lifecycle event.
    pub event: AnnounceEvent,
    /// Number of peers the client wants (the crawler uses 200).
    pub numwant: u32,
    /// Whether a compact (BEP 23) peer list is requested.
    pub compact: bool,
}

impl AnnounceRequest {
    /// Renders the request as an HTTP query string (no leading `?`).
    pub fn to_query(&self) -> String {
        let port = self.port.to_string();
        let uploaded = self.uploaded.to_string();
        let downloaded = self.downloaded.to_string();
        let left = self.left.to_string();
        let numwant = self.numwant.to_string();
        let compact = if self.compact { "1" } else { "0" };
        let mut pairs: Vec<(&str, &[u8])> = vec![
            ("info_hash", &self.info_hash.0[..]),
            ("peer_id", &self.peer_id.0[..]),
            ("port", port.as_bytes()),
            ("uploaded", uploaded.as_bytes()),
            ("downloaded", downloaded.as_bytes()),
            ("left", left.as_bytes()),
            ("numwant", numwant.as_bytes()),
            ("compact", compact.as_bytes()),
        ];
        if let Some(ev) = self.event.as_wire() {
            pairs.push(("event", ev.as_bytes()));
        }
        urlencode::build_query(pairs)
    }

    /// Parses a query string into an announce request.
    pub fn from_query(query: &str) -> Result<Self, TrackerError> {
        let mut info_hash = None;
        let mut peer_id = None;
        let mut port = None;
        let mut uploaded = 0u64;
        let mut downloaded = 0u64;
        let mut left = 0u64;
        let mut event = AnnounceEvent::Interval;
        let mut numwant = 50u32;
        let mut compact = false;
        for (k, v) in urlencode::parse_query(query) {
            match k.as_str() {
                "info_hash" => {
                    let arr: [u8; 20] = v
                        .try_into()
                        .map_err(|_| TrackerError::BadParam("info_hash"))?;
                    info_hash = Some(InfoHash(arr));
                }
                "peer_id" => {
                    let arr: [u8; 20] =
                        v.try_into().map_err(|_| TrackerError::BadParam("peer_id"))?;
                    peer_id = Some(PeerId(arr));
                }
                "port" => port = Some(parse_num::<u16>(&v, "port")?),
                "uploaded" => uploaded = parse_num(&v, "uploaded")?,
                "downloaded" => downloaded = parse_num(&v, "downloaded")?,
                "left" => left = parse_num(&v, "left")?,
                "numwant" => numwant = parse_num(&v, "numwant")?,
                "compact" => compact = v == b"1",
                "event" => {
                    event =
                        AnnounceEvent::from_wire(&v).ok_or(TrackerError::BadParam("event"))?;
                }
                _ => {} // unknown params ignored, as real trackers do
            }
        }
        Ok(AnnounceRequest {
            info_hash: info_hash.ok_or(TrackerError::MissingParam("info_hash"))?,
            peer_id: peer_id.ok_or(TrackerError::MissingParam("peer_id"))?,
            port: port.ok_or(TrackerError::MissingParam("port"))?,
            uploaded,
            downloaded,
            left,
            event,
            numwant,
            compact,
        })
    }

    /// True when the announcing peer holds the complete payload.
    pub fn is_seeder(&self) -> bool {
        self.left == 0
    }
}

/// One peer entry in a non-compact announce response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerEntry {
    /// Peer id, if the tracker discloses it (`no_peer_id` omits it).
    pub peer_id: Option<PeerId>,
    /// Peer address.
    pub addr: SocketAddrV4,
}

/// A tracker's reply to an announce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnounceResponse {
    /// Normal reply.
    Ok {
        /// Seconds the client must wait before re-announcing.
        interval: u32,
        /// Number of seeders in the swarm (`complete`).
        complete: u32,
        /// Number of leechers in the swarm (`incomplete`).
        incomplete: u32,
        /// Sampled peers.
        peers: Vec<PeerEntry>,
        /// Whether `peers` was encoded compactly.
        compact: bool,
    },
    /// Tracker refused the announce (`failure reason`).
    Failure(String),
}

impl AnnounceResponse {
    /// Bencodes the response.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AnnounceResponse::Failure(reason) => {
                Value::dict([("failure reason", Value::from(reason.clone()))]).encode()
            }
            AnnounceResponse::Ok {
                interval,
                complete,
                incomplete,
                peers,
                compact: compact_form,
            } => {
                let peers_value = if *compact_form {
                    let addrs: Vec<SocketAddrV4> = peers.iter().map(|p| p.addr).collect();
                    Value::Bytes(compact::encode_peers(&addrs))
                } else {
                    Value::list(peers.iter().map(|p| {
                        let mut d = Value::dict([
                            ("ip", Value::from(p.addr.ip().to_string())),
                            ("port", Value::from(p.addr.port())),
                        ]);
                        if let Some(id) = p.peer_id {
                            d.insert("peer id", Value::Bytes(id.0.to_vec()));
                        }
                        d
                    }))
                };
                Value::dict([
                    ("interval", Value::from(*interval)),
                    ("complete", Value::from(*complete)),
                    ("incomplete", Value::from(*incomplete)),
                    ("peers", peers_value),
                ])
                .encode()
            }
        }
    }

    /// Decodes a bencoded response.
    pub fn decode(bytes: &[u8]) -> Result<Self, TrackerError> {
        let v = Value::decode(bytes).map_err(|_| TrackerError::BadResponse("bencode"))?;
        if let Some(reason) = v.get_str("failure reason") {
            return Ok(AnnounceResponse::Failure(reason.to_string()));
        }
        let interval = v
            .get_int("interval")
            .and_then(|i| u32::try_from(i).ok())
            .ok_or(TrackerError::BadResponse("interval"))?;
        let complete = v
            .get_int("complete")
            .and_then(|i| u32::try_from(i).ok())
            .unwrap_or(0);
        let incomplete = v
            .get_int("incomplete")
            .and_then(|i| u32::try_from(i).ok())
            .unwrap_or(0);
        let (peers, compact_form) = match v.get("peers") {
            Some(Value::Bytes(b)) => {
                let addrs =
                    compact::decode_peers(b).ok_or(TrackerError::BadResponse("compact peers"))?;
                (
                    addrs
                        .into_iter()
                        .map(|addr| PeerEntry {
                            peer_id: None,
                            addr,
                        })
                        .collect(),
                    true,
                )
            }
            Some(Value::List(list)) => {
                let mut peers = Vec::with_capacity(list.len());
                for p in list {
                    let ip: Ipv4Addr = p
                        .get_str("ip")
                        .and_then(|s| s.parse().ok())
                        .ok_or(TrackerError::BadResponse("peer ip"))?;
                    let port = p
                        .get_int("port")
                        .and_then(|i| u16::try_from(i).ok())
                        .ok_or(TrackerError::BadResponse("peer port"))?;
                    let peer_id = p
                        .get_bytes("peer id")
                        .and_then(|b| <[u8; 20]>::try_from(b).ok())
                        .map(PeerId);
                    peers.push(PeerEntry {
                        peer_id,
                        addr: SocketAddrV4::new(ip, port),
                    });
                }
                (peers, false)
            }
            _ => return Err(TrackerError::BadResponse("peers")),
        };
        Ok(AnnounceResponse::Ok {
            interval,
            complete,
            incomplete,
            peers,
            compact: compact_form,
        })
    }
}

/// Per-torrent counters in a scrape response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrapeEntry {
    /// Current seeder count.
    pub complete: u32,
    /// Total number of `completed` events the tracker has seen — the
    /// closest thing the ecosystem has to a download counter.
    pub downloaded: u32,
    /// Current leecher count.
    pub incomplete: u32,
}

/// A scrape response: counters per requested info-hash.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrapeResponse {
    /// `(info_hash, counters)` pairs.
    pub files: Vec<(InfoHash, ScrapeEntry)>,
}

impl ScrapeResponse {
    /// Bencodes the scrape response.
    pub fn encode(&self) -> Vec<u8> {
        let files = Value::Dict(
            self.files
                .iter()
                .map(|(ih, e)| {
                    (
                        ih.0.to_vec(),
                        Value::dict([
                            ("complete", Value::from(e.complete)),
                            ("downloaded", Value::from(e.downloaded)),
                            ("incomplete", Value::from(e.incomplete)),
                        ]),
                    )
                })
                .collect(),
        );
        Value::dict([("files", files)]).encode()
    }

    /// Decodes a bencoded scrape response.
    pub fn decode(bytes: &[u8]) -> Result<Self, TrackerError> {
        let v = Value::decode(bytes).map_err(|_| TrackerError::BadResponse("bencode"))?;
        let files = v
            .get("files")
            .and_then(Value::as_dict)
            .ok_or(TrackerError::BadResponse("files"))?;
        let mut out = Vec::with_capacity(files.len());
        for (k, entry) in files {
            let ih = <[u8; 20]>::try_from(k.as_slice())
                .map_err(|_| TrackerError::BadResponse("info_hash key"))?;
            let get = |key| {
                entry
                    .get_int(key)
                    .and_then(|i| u32::try_from(i).ok())
                    .unwrap_or(0)
            };
            out.push((
                InfoHash(ih),
                ScrapeEntry {
                    complete: get("complete"),
                    downloaded: get("downloaded"),
                    incomplete: get("incomplete"),
                },
            ));
        }
        Ok(ScrapeResponse { files: out })
    }
}

/// Errors in the tracker wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackerError {
    /// A required query parameter was absent.
    MissingParam(&'static str),
    /// A query parameter failed to parse.
    BadParam(&'static str),
    /// The response body was malformed.
    BadResponse(&'static str),
}

impl fmt::Display for TrackerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrackerError::MissingParam(p) => write!(f, "missing announce parameter: {p}"),
            TrackerError::BadParam(p) => write!(f, "malformed announce parameter: {p}"),
            TrackerError::BadResponse(part) => write!(f, "malformed tracker response: {part}"),
        }
    }
}

impl std::error::Error for TrackerError {}

fn parse_num<T: std::str::FromStr>(v: &[u8], name: &'static str) -> Result<T, TrackerError> {
    std::str::from_utf8(v)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(TrackerError::BadParam(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> AnnounceRequest {
        AnnounceRequest {
            info_hash: InfoHash([0xAB; 20]),
            peer_id: PeerId::azureus_style("BP", "0100", [3; 12]),
            port: 6881,
            uploaded: 10,
            downloaded: 20,
            left: 30,
            event: AnnounceEvent::Started,
            numwant: 200,
            compact: true,
        }
    }

    #[test]
    fn announce_query_roundtrip() {
        let r = req();
        let q = r.to_query();
        assert_eq!(AnnounceRequest::from_query(&q).unwrap(), r);
    }

    #[test]
    fn interval_event_omitted_on_wire() {
        let mut r = req();
        r.event = AnnounceEvent::Interval;
        let q = r.to_query();
        assert!(!q.contains("event="));
        assert_eq!(AnnounceRequest::from_query(&q).unwrap().event, AnnounceEvent::Interval);
    }

    #[test]
    fn seeder_detection() {
        let mut r = req();
        assert!(!r.is_seeder());
        r.left = 0;
        assert!(r.is_seeder());
    }

    #[test]
    fn missing_params_rejected() {
        assert_eq!(
            AnnounceRequest::from_query("port=1"),
            Err(TrackerError::MissingParam("info_hash"))
        );
        let q = req().to_query().replace("port=6881", "");
        assert_eq!(
            AnnounceRequest::from_query(&q),
            Err(TrackerError::MissingParam("port"))
        );
    }

    #[test]
    fn bad_params_rejected() {
        assert!(matches!(
            AnnounceRequest::from_query("info_hash=short&peer_id=x&port=1"),
            Err(TrackerError::BadParam("info_hash"))
        ));
        let q = req().to_query().replace("port=6881", "port=99999");
        assert!(matches!(
            AnnounceRequest::from_query(&q),
            Err(TrackerError::BadParam("port"))
        ));
    }

    #[test]
    fn unknown_params_ignored() {
        let q = format!("{}&trackerid=xyz&key=abc", req().to_query());
        assert!(AnnounceRequest::from_query(&q).is_ok());
    }

    fn peers() -> Vec<PeerEntry> {
        vec![
            PeerEntry {
                peer_id: None,
                addr: "10.1.2.3:6881".parse().unwrap(),
            },
            PeerEntry {
                peer_id: None,
                addr: "172.16.0.9:51413".parse().unwrap(),
            },
        ]
    }

    #[test]
    fn compact_response_roundtrip() {
        let resp = AnnounceResponse::Ok {
            interval: 900,
            complete: 1,
            incomplete: 41,
            peers: peers(),
            compact: true,
        };
        assert_eq!(AnnounceResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn dict_response_roundtrip_preserves_peer_ids() {
        let mut ps = peers();
        ps[0].peer_id = Some(PeerId([9; 20]));
        let resp = AnnounceResponse::Ok {
            interval: 600,
            complete: 3,
            incomplete: 7,
            peers: ps,
            compact: false,
        };
        let back = AnnounceResponse::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn failure_response_roundtrip() {
        let resp = AnnounceResponse::Failure("torrent not registered".into());
        assert_eq!(AnnounceResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn empty_peer_list_is_valid() {
        // The crawler's stop rule counts consecutive empty replies (§2).
        let resp = AnnounceResponse::Ok {
            interval: 900,
            complete: 0,
            incomplete: 0,
            peers: vec![],
            compact: true,
        };
        match AnnounceResponse::decode(&resp.encode()).unwrap() {
            AnnounceResponse::Ok { peers, .. } => assert!(peers.is_empty()),
            _ => panic!("expected Ok"),
        }
    }

    #[test]
    fn scrape_roundtrip() {
        let resp = ScrapeResponse {
            files: vec![
                (
                    InfoHash([1; 20]),
                    ScrapeEntry {
                        complete: 5,
                        downloaded: 1000,
                        incomplete: 42,
                    },
                ),
                (InfoHash([2; 20]), ScrapeEntry::default()),
            ],
        };
        assert_eq!(ScrapeResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(AnnounceResponse::decode(b"garbage").is_err());
        assert!(AnnounceResponse::decode(&Value::dict([("interval", Value::Int(1))]).encode()).is_err());
        assert!(ScrapeResponse::decode(b"de").is_err());
    }
}
