//! Percent-encoding for tracker GET requests.
//!
//! Tracker announce URLs carry raw 20-byte `info_hash` / `peer_id` values in
//! the query string, so the codec must be binary-safe rather than
//! UTF-8-only. The unreserved set follows RFC 3986 (`A–Z a–z 0–9 - _ . ~`),
//! which matches what mainstream BitTorrent clients emit.

/// Percent-encodes arbitrary bytes.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 3);
    for &b in data {
        if is_unreserved(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(HEX[(b >> 4) as usize] as char);
            out.push(HEX[(b & 0xf) as usize] as char);
        }
    }
    out
}

/// Decodes a percent-encoded string back to raw bytes.
///
/// Returns `None` on a dangling `%` or non-hex escape. `+` is *not* treated
/// as space — trackers use RFC 3986 encoding, not HTML form encoding.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = hex_val(*bytes.get(i + 1)?)?;
            let lo = hex_val(*bytes.get(i + 2)?)?;
            out.push((hi << 4) | lo);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Some(out)
}

/// Splits a query string (`a=1&b=%20`) into decoded key/value pairs.
///
/// Pairs with undecodable escapes are dropped; a key without `=` maps to an
/// empty value, mirroring lenient tracker implementations.
pub fn parse_query(query: &str) -> Vec<(String, Vec<u8>)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .filter_map(|part| {
            let (k, v) = part.split_once('=').unwrap_or((part, ""));
            let key = decode(k)?;
            let key = String::from_utf8(key).ok()?;
            Some((key, decode(v)?))
        })
        .collect()
}

/// Builds a query string from key/value pairs, percent-encoding values.
pub fn build_query<'a, I>(pairs: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a [u8])>,
{
    let mut out = String::new();
    for (k, v) in pairs {
        if !out.is_empty() {
            out.push('&');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(&encode(v));
    }
    out
}

const HEX: &[u8; 16] = b"0123456789ABCDEF";

fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~')
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreserved_passthrough() {
        assert_eq!(encode(b"AZaz09-_.~"), "AZaz09-_.~");
    }

    #[test]
    fn binary_bytes_escaped() {
        assert_eq!(encode(&[0x00, 0xff, b' ']), "%00%FF%20");
    }

    #[test]
    fn decode_inverts_encode() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn decode_rejects_bad_escapes() {
        assert_eq!(decode("%"), None);
        assert_eq!(decode("%1"), None);
        assert_eq!(decode("%zz"), None);
        assert_eq!(decode("ok%41"), Some(b"okA".to_vec()));
    }

    #[test]
    fn plus_is_literal() {
        assert_eq!(decode("a+b").unwrap(), b"a+b");
    }

    #[test]
    fn query_roundtrip() {
        let ih = [0x12u8, 0x34, 0xab];
        let q = build_query([("info_hash", &ih[..]), ("port", b"6881")]);
        assert_eq!(q, "info_hash=%124%AB&port=6881");
        let parsed = parse_query(&q);
        assert_eq!(parsed[0], ("info_hash".to_string(), ih.to_vec()));
        assert_eq!(parsed[1], ("port".to_string(), b"6881".to_vec()));
    }

    #[test]
    fn parse_query_tolerates_oddities() {
        let parsed = parse_query("&&flag&k=v&bad=%zz&");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], ("flag".to_string(), vec![]));
        assert_eq!(parsed[1], ("k".to_string(), b"v".to_vec()));
    }
}
