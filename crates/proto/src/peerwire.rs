//! The TCP peer-wire protocol.
//!
//! After the tracker introduces peers to each other, they speak this
//! protocol: a 68-byte handshake followed by length-prefixed messages. The
//! crawler in the paper only needs the opening exchange — it connects,
//! handshakes, reads the remote `bitfield`, and disconnects: a peer whose
//! bitfield has every piece set is a seeder, which is how the initial
//! publisher's IP is pinned down when a young swarm has a single seeder
//! (§2, "Identifying Initial Publisher").

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::types::{InfoHash, PeerId};

/// The protocol string in the handshake.
pub const PSTR: &[u8; 19] = b"BitTorrent protocol";

/// Total handshake length: 1 + 19 + 8 + 20 + 20.
pub const HANDSHAKE_LEN: usize = 68;

/// The fixed-size opening handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// Extension bits; all zero here (no DHT/extension protocol).
    pub reserved: [u8; 8],
    /// Torrent the connection is about.
    pub info_hash: InfoHash,
    /// The remote peer's id.
    pub peer_id: PeerId,
}

impl Handshake {
    /// Creates a handshake with cleared reserved bits.
    pub fn new(info_hash: InfoHash, peer_id: PeerId) -> Self {
        Handshake {
            reserved: [0; 8],
            info_hash,
            peer_id,
        }
    }

    /// Serialises to the 68-byte wire form.
    pub fn encode(&self) -> [u8; HANDSHAKE_LEN] {
        let mut out = [0u8; HANDSHAKE_LEN];
        out[0] = PSTR.len() as u8;
        out[1..20].copy_from_slice(PSTR);
        out[20..28].copy_from_slice(&self.reserved);
        out[28..48].copy_from_slice(&self.info_hash.0);
        out[48..68].copy_from_slice(&self.peer_id.0);
        out
    }

    /// Parses the 68-byte wire form.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        if buf.len() < HANDSHAKE_LEN {
            return Err(WireError::Truncated);
        }
        if buf[0] as usize != PSTR.len() || &buf[1..20] != PSTR {
            return Err(WireError::BadProtocolString);
        }
        let mut reserved = [0u8; 8];
        reserved.copy_from_slice(&buf[20..28]);
        let mut ih = [0u8; 20];
        ih.copy_from_slice(&buf[28..48]);
        let mut pid = [0u8; 20];
        pid.copy_from_slice(&buf[48..68]);
        Ok(Handshake {
            reserved,
            info_hash: InfoHash(ih),
            peer_id: PeerId(pid),
        })
    }
}

/// A peer's piece-availability bitmap.
///
/// Bit 0 of byte 0 (the most significant bit) is piece 0. Spare bits in the
/// final byte must be zero.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitfield {
    bits: Vec<u8>,
    pieces: usize,
}

impl Bitfield {
    /// An all-zero bitfield for `pieces` pieces.
    pub fn empty(pieces: usize) -> Self {
        Bitfield {
            bits: vec![0u8; pieces.div_ceil(8)],
            pieces,
        }
    }

    /// An all-one bitfield (a seeder's bitfield).
    pub fn full(pieces: usize) -> Self {
        let mut bf = Bitfield::empty(pieces);
        for i in 0..pieces {
            bf.set(i);
        }
        bf
    }

    /// Reconstructs from wire bytes, validating length and spare bits.
    pub fn from_bytes(bytes: &[u8], pieces: usize) -> Result<Self, WireError> {
        if bytes.len() != pieces.div_ceil(8) {
            return Err(WireError::BadBitfieldLength {
                got: bytes.len(),
                want: pieces.div_ceil(8),
            });
        }
        let bf = Bitfield {
            bits: bytes.to_vec(),
            pieces,
        };
        // Spare bits beyond `pieces` must be zero.
        for i in pieces..bytes.len() * 8 {
            if bf.bit(i) {
                return Err(WireError::SpareBitsSet);
            }
        }
        Ok(bf)
    }

    /// Number of pieces this bitfield describes.
    pub fn piece_count(&self) -> usize {
        self.pieces
    }

    /// Marks piece `i` as held.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.pieces, "piece index {i} out of range");
        self.bits[i / 8] |= 0x80 >> (i % 8);
    }

    /// Whether piece `i` is held.
    pub fn has(&self, i: usize) -> bool {
        i < self.pieces && self.bit(i)
    }

    fn bit(&self, i: usize) -> bool {
        self.bits[i / 8] & (0x80 >> (i % 8)) != 0
    }

    /// Number of pieces held.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when every piece is held — the seeder test used by the crawler.
    pub fn is_seed(&self) -> bool {
        self.count() == self.pieces
    }

    /// Completion in [0, 1].
    pub fn completion(&self) -> f64 {
        if self.pieces == 0 {
            1.0
        } else {
            self.count() as f64 / self.pieces as f64
        }
    }

    /// Raw wire bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }
}

impl fmt::Debug for Bitfield {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitfield({}/{})", self.count(), self.pieces)
    }
}

/// A length-prefixed peer-wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Zero-length keep-alive.
    KeepAlive,
    /// id 0.
    Choke,
    /// id 1.
    Unchoke,
    /// id 2.
    Interested,
    /// id 3.
    NotInterested,
    /// id 4: the sender now has piece `index`.
    Have {
        /// Piece index.
        index: u32,
    },
    /// id 5: the sender's full availability bitmap (raw; piece count is
    /// only known from the metainfo, so validation happens at a higher
    /// layer via [`Bitfield::from_bytes`]).
    Bitfield(Bytes),
    /// id 6: request a block.
    Request {
        /// Piece index.
        index: u32,
        /// Byte offset within the piece.
        begin: u32,
        /// Block length in bytes.
        length: u32,
    },
    /// id 7: a block of data.
    Piece {
        /// Piece index.
        index: u32,
        /// Byte offset within the piece.
        begin: u32,
        /// The block payload.
        data: Bytes,
    },
    /// id 8: cancel a pending request.
    Cancel {
        /// Piece index.
        index: u32,
        /// Byte offset within the piece.
        begin: u32,
        /// Block length in bytes.
        length: u32,
    },
}

impl Message {
    /// Appends the framed message to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            Message::KeepAlive => buf.put_u32(0),
            Message::Choke => frame(buf, 0, &[]),
            Message::Unchoke => frame(buf, 1, &[]),
            Message::Interested => frame(buf, 2, &[]),
            Message::NotInterested => frame(buf, 3, &[]),
            Message::Have { index } => frame(buf, 4, &index.to_be_bytes()),
            Message::Bitfield(bits) => frame(buf, 5, bits),
            Message::Request {
                index,
                begin,
                length,
            } => {
                let mut p = [0u8; 12];
                p[0..4].copy_from_slice(&index.to_be_bytes());
                p[4..8].copy_from_slice(&begin.to_be_bytes());
                p[8..12].copy_from_slice(&length.to_be_bytes());
                frame(buf, 6, &p);
            }
            Message::Piece { index, begin, data } => {
                buf.put_u32(9 + data.len() as u32);
                buf.put_u8(7);
                buf.put_u32(*index);
                buf.put_u32(*begin);
                buf.put_slice(data);
            }
            Message::Cancel {
                index,
                begin,
                length,
            } => {
                let mut p = [0u8; 12];
                p[0..4].copy_from_slice(&index.to_be_bytes());
                p[4..8].copy_from_slice(&begin.to_be_bytes());
                p[8..12].copy_from_slice(&length.to_be_bytes());
                frame(buf, 8, &p);
            }
        }
    }

    /// Attempts to decode one framed message from the front of `buf`.
    ///
    /// Returns `Ok(None)` when more bytes are needed; on success the
    /// consumed bytes are removed from `buf`. This is the incremental
    /// "framing" pattern for stream sockets.
    pub fn decode(buf: &mut BytesMut) -> Result<Option<Message>, WireError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(WireError::FrameTooLarge(len));
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        buf.advance(4);
        if len == 0 {
            return Ok(Some(Message::KeepAlive));
        }
        let id = buf.get_u8();
        let mut payload = buf.split_to(len - 1);
        let msg = match id {
            0 => expect_empty(&payload, Message::Choke)?,
            1 => expect_empty(&payload, Message::Unchoke)?,
            2 => expect_empty(&payload, Message::Interested)?,
            3 => expect_empty(&payload, Message::NotInterested)?,
            4 => {
                if payload.len() != 4 {
                    return Err(WireError::BadPayload(4));
                }
                Message::Have {
                    index: payload.get_u32(),
                }
            }
            5 => Message::Bitfield(payload.freeze()),
            6 | 8 => {
                if payload.len() != 12 {
                    return Err(WireError::BadPayload(id));
                }
                let index = payload.get_u32();
                let begin = payload.get_u32();
                let length = payload.get_u32();
                if id == 6 {
                    Message::Request {
                        index,
                        begin,
                        length,
                    }
                } else {
                    Message::Cancel {
                        index,
                        begin,
                        length,
                    }
                }
            }
            7 => {
                if payload.len() < 8 {
                    return Err(WireError::BadPayload(7));
                }
                let index = payload.get_u32();
                let begin = payload.get_u32();
                Message::Piece {
                    index,
                    begin,
                    data: payload.freeze(),
                }
            }
            other => return Err(WireError::UnknownMessage(other)),
        };
        Ok(Some(msg))
    }
}

/// Upper bound on a single frame; generous for 16 KiB blocks plus headers,
/// and a guard against hostile length prefixes.
pub const MAX_FRAME: usize = 1 << 20;

fn frame(buf: &mut BytesMut, id: u8, payload: &[u8]) {
    buf.put_u32(1 + payload.len() as u32);
    buf.put_u8(id);
    buf.put_slice(payload);
}

fn expect_empty(payload: &[u8], msg: Message) -> Result<Message, WireError> {
    if payload.is_empty() {
        Ok(msg)
    } else {
        Err(WireError::BadPayload(match msg {
            Message::Choke => 0,
            Message::Unchoke => 1,
            Message::Interested => 2,
            _ => 3,
        }))
    }
}

/// Peer-wire protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes for a handshake.
    Truncated,
    /// Handshake protocol string mismatch.
    BadProtocolString,
    /// Frame length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// Message id not in the base protocol.
    UnknownMessage(u8),
    /// Payload length inconsistent with the message id.
    BadPayload(u8),
    /// Bitfield byte length does not match the piece count.
    BadBitfieldLength {
        /// Bytes received.
        got: usize,
        /// Bytes required for the piece count.
        want: usize,
    },
    /// A bit beyond the last piece was set.
    SpareBitsSet,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated handshake"),
            WireError::BadProtocolString => write!(f, "not a BitTorrent handshake"),
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            WireError::UnknownMessage(id) => write!(f, "unknown message id {id}"),
            WireError::BadPayload(id) => write!(f, "bad payload for message id {id}"),
            WireError::BadBitfieldLength { got, want } => {
                write!(f, "bitfield length {got}, expected {want}")
            }
            WireError::SpareBitsSet => write!(f, "spare bits set in bitfield"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_roundtrip() {
        let hs = Handshake::new(InfoHash([7; 20]), PeerId([9; 20]));
        let bytes = hs.encode();
        assert_eq!(bytes.len(), HANDSHAKE_LEN);
        assert_eq!(Handshake::decode(&bytes).unwrap(), hs);
    }

    #[test]
    fn handshake_rejects_wrong_protocol() {
        let mut bytes = Handshake::new(InfoHash([0; 20]), PeerId([0; 20])).encode();
        bytes[5] ^= 0xff;
        assert_eq!(Handshake::decode(&bytes), Err(WireError::BadProtocolString));
        assert_eq!(Handshake::decode(&bytes[..10]), Err(WireError::Truncated));
    }

    fn roundtrip(msg: Message) {
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let decoded = Message::decode(&mut buf).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert!(buf.is_empty(), "all bytes consumed");
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::KeepAlive);
        roundtrip(Message::Choke);
        roundtrip(Message::Unchoke);
        roundtrip(Message::Interested);
        roundtrip(Message::NotInterested);
        roundtrip(Message::Have { index: 42 });
        roundtrip(Message::Bitfield(Bytes::from_static(&[0xf0, 0x80])));
        roundtrip(Message::Request {
            index: 1,
            begin: 2,
            length: 16384,
        });
        roundtrip(Message::Piece {
            index: 3,
            begin: 16384,
            data: Bytes::from_static(b"payload"),
        });
        roundtrip(Message::Cancel {
            index: 1,
            begin: 2,
            length: 3,
        });
    }

    #[test]
    fn partial_frames_return_none() {
        let mut buf = BytesMut::new();
        Message::Have { index: 7 }.encode(&mut buf);
        let full = buf.clone();
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            assert_eq!(Message::decode(&mut partial).unwrap(), None, "cut={cut}");
        }
    }

    #[test]
    fn pipelined_messages_decode_in_order() {
        let mut buf = BytesMut::new();
        Message::Unchoke.encode(&mut buf);
        Message::Have { index: 1 }.encode(&mut buf);
        Message::KeepAlive.encode(&mut buf);
        assert_eq!(Message::decode(&mut buf).unwrap(), Some(Message::Unchoke));
        assert_eq!(
            Message::decode(&mut buf).unwrap(),
            Some(Message::Have { index: 1 })
        );
        assert_eq!(Message::decode(&mut buf).unwrap(), Some(Message::KeepAlive));
        assert_eq!(Message::decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut buf = BytesMut::from(&u32::MAX.to_be_bytes()[..]);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn unknown_and_malformed_ids_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u8(99);
        assert_eq!(
            Message::decode(&mut buf),
            Err(WireError::UnknownMessage(99))
        );
        let mut buf = BytesMut::new();
        buf.put_u32(3); // have with 2-byte payload
        buf.put_u8(4);
        buf.put_slice(&[0, 0]);
        assert_eq!(Message::decode(&mut buf), Err(WireError::BadPayload(4)));
    }

    #[test]
    fn bitfield_set_has_count() {
        let mut bf = Bitfield::empty(10);
        assert_eq!(bf.count(), 0);
        assert!(!bf.is_seed());
        bf.set(0);
        bf.set(9);
        assert!(bf.has(0) && bf.has(9) && !bf.has(5));
        assert!(!bf.has(10));
        assert_eq!(bf.count(), 2);
        assert!((bf.completion() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn full_bitfield_is_seed() {
        for pieces in [1usize, 7, 8, 9, 64, 1000] {
            let bf = Bitfield::full(pieces);
            assert!(bf.is_seed(), "pieces={pieces}");
            assert_eq!(bf.count(), pieces);
            // Round-trips through wire bytes.
            let back = Bitfield::from_bytes(bf.as_bytes(), pieces).unwrap();
            assert!(back.is_seed());
        }
    }

    #[test]
    fn zero_piece_bitfield_is_trivially_seed() {
        assert!(Bitfield::full(0).is_seed());
        assert_eq!(Bitfield::empty(0).completion(), 1.0);
    }

    #[test]
    fn bitfield_wire_validation() {
        assert!(matches!(
            Bitfield::from_bytes(&[0xff], 10),
            Err(WireError::BadBitfieldLength { got: 1, want: 2 })
        ));
        // bit 7 set for a 7-piece torrent → spare bit
        assert_eq!(
            Bitfield::from_bytes(&[0x01], 7),
            Err(WireError::SpareBitsSet)
        );
        assert!(Bitfield::from_bytes(&[0xfe], 7).unwrap().is_seed());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitfield::empty(3).set(3);
    }
}
