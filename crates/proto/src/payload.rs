//! Deterministic synthetic payloads.
//!
//! The live testbed needs *actual bytes* whose SHA-1 piece digests match
//! the metainfo, so a downloader can verify what it received — the
//! operation behind §5's "the few downloaded files were indeed fake
//! contents": a fake publisher serves bytes that do not hash to the
//! advertised pieces.
//!
//! Payloads are generated from a seed with a SplitMix64 stream, so a
//! seeder can serve any block on demand without storing the file.

use crate::sha1::Sha1;

/// Generates the bytes of one piece.
///
/// `len` is the piece length, except possibly shorter for the final piece.
pub fn piece_bytes(seed: u64, piece_index: u32, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(piece_index) << 17)
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    while out.len() < len {
        state = splitmix(state);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// A sub-range of a piece, for serving 16 KiB blocks.
pub fn block_bytes(seed: u64, piece_index: u32, piece_len: usize, begin: usize, len: usize) -> Vec<u8> {
    let piece = piece_bytes(seed, piece_index, piece_len);
    let end = (begin + len).min(piece.len());
    piece[begin.min(piece.len())..end].to_vec()
}

/// Length of piece `index` for a file of `total_len` in `piece_len` pieces.
pub fn piece_len_at(total_len: u64, piece_len: u32, index: u32) -> usize {
    let start = u64::from(index) * u64::from(piece_len);
    let remaining = total_len.saturating_sub(start);
    remaining.min(u64::from(piece_len)) as usize
}

/// Number of pieces for a file.
pub fn piece_count(total_len: u64, piece_len: u32) -> u32 {
    if total_len == 0 {
        0
    } else {
        ((total_len - 1) / u64::from(piece_len) + 1) as u32
    }
}

/// The concatenated 20-byte SHA-1 digests of every piece — what goes in
/// the metainfo's `pieces` field when the torrent is backed by a real
/// synthetic payload.
pub fn pieces_digest(seed: u64, total_len: u64, piece_len: u32) -> Vec<u8> {
    let n = piece_count(total_len, piece_len);
    let mut out = Vec::with_capacity(n as usize * 20);
    for index in 0..n {
        let data = piece_bytes(seed, index, piece_len_at(total_len, piece_len, index));
        let mut h = Sha1::new();
        h.update(&data);
        out.extend_from_slice(&h.finalize());
    }
    out
}

/// The whole file at once (testbed sizes only).
pub fn file_bytes(seed: u64, total_len: u64, piece_len: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(total_len as usize);
    for index in 0..piece_count(total_len, piece_len) {
        out.extend(piece_bytes(
            seed,
            index,
            piece_len_at(total_len, piece_len, index),
        ));
    }
    out
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::sha1;

    #[test]
    fn pieces_are_deterministic_and_distinct() {
        let a = piece_bytes(7, 0, 1024);
        let b = piece_bytes(7, 0, 1024);
        assert_eq!(a, b);
        assert_ne!(a, piece_bytes(7, 1, 1024), "pieces differ by index");
        assert_ne!(a, piece_bytes(8, 0, 1024), "pieces differ by seed");
        assert_eq!(a.len(), 1024);
    }

    #[test]
    fn block_bytes_are_slices_of_pieces() {
        let piece = piece_bytes(3, 5, 4096);
        let block = block_bytes(3, 5, 4096, 1024, 512);
        assert_eq!(block, &piece[1024..1536]);
        // Out-of-range begin yields empty.
        assert!(block_bytes(3, 5, 4096, 5000, 10).is_empty());
        // Length clamps at the piece end.
        assert_eq!(block_bytes(3, 5, 4096, 4000, 512).len(), 96);
    }

    #[test]
    fn piece_geometry() {
        assert_eq!(piece_count(0, 1024), 0);
        assert_eq!(piece_count(1, 1024), 1);
        assert_eq!(piece_count(1024, 1024), 1);
        assert_eq!(piece_count(1025, 1024), 2);
        assert_eq!(piece_len_at(1025, 1024, 0), 1024);
        assert_eq!(piece_len_at(1025, 1024, 1), 1);
        assert_eq!(piece_len_at(1025, 1024, 2), 0);
    }

    #[test]
    fn digest_matches_file_bytes() {
        let (seed, total, plen) = (42u64, 10_000u64, 4096u32);
        let digest = pieces_digest(seed, total, plen);
        let file = file_bytes(seed, total, plen);
        assert_eq!(file.len() as u64, total);
        assert_eq!(digest.len(), 3 * 20);
        for (i, chunk) in file.chunks(plen as usize).enumerate() {
            assert_eq!(&digest[i * 20..(i + 1) * 20], &sha1(chunk));
        }
    }
}
