//! Property tests for the wire formats.

use btpub_proto::compact::{decode_peers, encode_peers};
use btpub_proto::peerwire::{Bitfield, Message};
use btpub_proto::tracker::{AnnounceEvent, AnnounceRequest};
use btpub_proto::types::{InfoHash, PeerId};
use btpub_proto::urlencode;
use bytes::BytesMut;
use proptest::prelude::*;
use std::net::{Ipv4Addr, SocketAddrV4};

fn arb_event() -> impl Strategy<Value = AnnounceEvent> {
    prop_oneof![
        Just(AnnounceEvent::Started),
        Just(AnnounceEvent::Stopped),
        Just(AnnounceEvent::Completed),
        Just(AnnounceEvent::Interval),
    ]
}

proptest! {
    #[test]
    fn urlencode_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(urlencode::decode(&urlencode::encode(&data)).unwrap(), data);
    }

    #[test]
    fn urlencode_decode_never_panics(s in "\\PC*") {
        let _ = urlencode::decode(&s);
    }

    #[test]
    fn compact_roundtrip(addrs in proptest::collection::vec((any::<u32>(), any::<u16>()), 0..64)) {
        let peers: Vec<SocketAddrV4> = addrs
            .into_iter()
            .map(|(ip, port)| SocketAddrV4::new(Ipv4Addr::from(ip), port))
            .collect();
        prop_assert_eq!(decode_peers(&encode_peers(&peers)).unwrap(), peers);
    }

    #[test]
    fn announce_query_roundtrip(
        ih in any::<[u8; 20]>(),
        pid in any::<[u8; 20]>(),
        port in any::<u16>(),
        up in any::<u64>(),
        down in any::<u64>(),
        left in any::<u64>(),
        numwant in 0u32..500,
        compact in any::<bool>(),
        event in arb_event(),
    ) {
        let req = AnnounceRequest {
            info_hash: InfoHash(ih),
            peer_id: PeerId(pid),
            port, uploaded: up, downloaded: down, left, event, numwant, compact,
        };
        prop_assert_eq!(AnnounceRequest::from_query(&req.to_query()).unwrap(), req);
    }

    #[test]
    fn message_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = BytesMut::from(&data[..]);
        // Drain until error or exhaustion; must never panic.
        while let Ok(Some(_)) = Message::decode(&mut buf) {}
    }

    #[test]
    fn bitfield_count_matches_set_bits(pieces in 1usize..512, set in proptest::collection::vec(any::<proptest::sample::Index>(), 0..64)) {
        let mut bf = Bitfield::empty(pieces);
        let mut expected = std::collections::HashSet::new();
        for idx in set {
            let i = idx.index(pieces);
            bf.set(i);
            expected.insert(i);
        }
        prop_assert_eq!(bf.count(), expected.len());
        prop_assert_eq!(bf.is_seed(), expected.len() == pieces);
        let back = Bitfield::from_bytes(bf.as_bytes(), pieces).unwrap();
        prop_assert_eq!(back.count(), expected.len());
    }
}
