//! A deterministic string interner with `u32` symbols.
//!
//! Analysis keys tens of thousands of torrent records by publisher
//! username (and classification by promo URL). Hashing and cloning those
//! `String`s per record dominates the aggregation profile; interning
//! turns every subsequent lookup into a `u32` hash and every clone into
//! a `Copy`.
//!
//! Determinism: symbols are assigned densely in first-insertion order,
//! so the same insertion sequence always yields the same `Sym` values.
//! `Sym` deliberately does **not** implement `Ord` — symbol order is
//! insertion order, not lexicographic order, and letting it leak into a
//! sort would silently reorder report rows. Resolve to `&str` first;
//! the compiler then enforces the "strings at report time" rule.

use crate::{FxBuildHasher, FxHashMap};

/// An interned string. `Copy`, 4 bytes, hashes as a single `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The dense index of this symbol (0-based insertion order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only string pool. Not thread-safe by design: build it up
/// front (population generation / dataset walk), then share `&Interner`
/// freely across workers — resolution and lookup are `&self`.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    /// Borrowed views into `strings`; boxed str keeps them stable.
    map: FxHashMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default()),
            strings: Vec::with_capacity(cap),
        }
    }

    /// Interns `s`, returning the existing symbol if already present.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.strings.len()).expect("interner overflow: > u32::MAX symbols"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a previously interned string without inserting.
    #[inline]
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string. Panics on a foreign `Sym`
    /// (one minted by a different interner) — that is always a bug.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The symbol at a dense index, if one has been minted. The inverse
    /// of [`Sym::index`] — what lets serialized state name symbols by
    /// index and a restore turn them back into `Sym`s after re-interning
    /// the same strings in the same order.
    #[inline]
    pub fn sym_at(&self, index: usize) -> Option<Sym> {
        (index < self.strings.len()).then_some(Sym(index as u32))
    }

    /// All interned strings in symbol (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_dedup() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        let a2 = i.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("beta"), Some(b));
        assert_eq!(i.get("gamma"), None);
    }

    #[test]
    fn symbols_are_dense_insertion_order() {
        let mut i = Interner::new();
        for (n, s) in ["x", "y", "z"].iter().enumerate() {
            assert_eq!(i.intern(s).index(), n);
        }
        let order: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(order, ["x", "y", "z"]);
    }

    #[test]
    fn deterministic_across_instances() {
        // Same insertion sequence ⇒ same symbols, regardless of process
        // state — this is what makes Sym safe under serial ≡ parallel.
        let build = || {
            let mut i = Interner::new();
            let syms: Vec<Sym> = (0..1000)
                .map(|n| i.intern(&format!("user{:04}", n * 7 % 991)))
                .collect();
            (i, syms)
        };
        let (i1, s1) = build();
        let (i2, s2) = build();
        assert_eq!(s1, s2);
        for (a, b) in i1.iter().zip(i2.iter()) {
            assert_eq!(a, b);
        }
    }
}
