//! Deterministic, allocation-free hashing for the measurement hot paths.
//!
//! The std `HashMap` defaults to SipHash-1-3 behind a per-process random
//! seed. That buys DoS resistance the simulator does not need (every key
//! is produced by our own deterministic generators, never by an
//! adversary) and costs real time on the announce path, where a
//! `HashMap<(ClientId, TorrentId), SimTime>` lookup runs once per
//! simulated announce — millions of times per campaign.
//!
//! [`FxHasher`] is the Firefox/rustc multiply-rotate hash: fold each
//! 8-byte word into the state with a rotate, xor and odd-constant
//! multiply. It is not DoS resistant and must never be fed untrusted
//! keys, but it is 3-5× cheaper than SipHash on short keys, has no
//! per-process seed, and therefore hashes identically across runs and
//! across threads — a property the repo's serial ≡ parallel invariant
//! gets for free with std only because we re-derive it here.
//!
//! Determinism caveat: hash *iteration order* of `FxHashMap` is stable
//! across runs (no random seed) but is still insertion- and
//! capacity-dependent, so nothing report-facing may iterate one of these
//! maps without sorting. That rule predates this crate — all
//! report-facing iteration flows through `BTreeMap` or an explicit
//! `sort` (see DESIGN.md) — and the golden-report fixture test enforces
//! it end to end.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

pub mod intern;

pub use intern::{Interner, Sym};

/// A `HashMap` keyed by [`FxHasher`]. Drop-in for `std::collections::HashMap`
/// (construct with `FxHashMap::default()` or [`with_capacity`](fx_map_with_capacity)).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Zero-sized, seedless `BuildHasher` — every map hashes identically.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `FxHashMap::with_capacity` is unavailable on non-`RandomState` maps;
/// this is the idiomatic substitute.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// `FxHashSet::with_capacity` equivalent.
pub fn fx_set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Multiplicative word-at-a-time hasher (the rustc/Firefox "Fx" hash).
///
/// State transition per word: `state = (state.rotate_left(5) ^ word) * K`
/// with `K` an odd 64-bit constant derived from the golden ratio. Byte
/// tails are folded in as words via the same step.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// 2^64 / φ, forced odd — the classic Fibonacci hashing multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            // Fold the tail length in so "ab" + "" and "a" + "b" differ
            // at the prefix-free layer above (str hashing appends 0xff).
            self.add_to_hash(u64::from_le_bytes(word) ^ (tail.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        // No per-process seed: two independently built hashers agree.
        assert_eq!(hash_of(&(42u64, 7u32)), hash_of(&(42u64, 7u32)));
        assert_eq!(hash_of(&"publisher"), hash_of(&"publisher"));
    }

    #[test]
    fn pinned_reference_values() {
        // Pin the algorithm itself: a silent change to the mixing
        // constants would invalidate any persisted hash-derived data.
        let mut h = FxHasher::default();
        h.write_u64(0);
        assert_eq!(h.finish(), 0);
        let mut h = FxHasher::default();
        h.write_u64(1);
        assert_eq!(h.finish(), SEED);
        let mut h = FxHasher::default();
        h.write(b"abcdefgh");
        let expected = u64::from_le_bytes(*b"abcdefgh").wrapping_mul(SEED);
        assert_eq!(h.finish(), expected);
    }

    #[test]
    fn tail_bytes_are_length_distinguished() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip_with_tuple_keys() {
        let mut m: FxHashMap<(u64, u32), u32> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert((i, (i % 97) as u32), i as u32);
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.get(&(1234, (1234 % 97) as u32)), Some(&1234));
    }

    #[test]
    fn distribution_sanity_on_sequential_keys() {
        // Sequential u64 keys (ClientId-style) must not collapse into a
        // few buckets: check the low 10 bits spread reasonably.
        let mut buckets = [0u32; 1024];
        for i in 0..100_000u64 {
            buckets[(hash_of(&i) & 1023) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        // Perfectly uniform would be ~98 per bucket; allow 4x skew.
        assert!(max < 400, "worst bucket holds {max} of 100000 keys");
    }
}
