//! §4.1 / Figure 2: content-type distribution per publisher group.

use btpub_crawler::Dataset;
use btpub_sim::content::Category;

use crate::fake::{Group, Groups};
use crate::publishers::PublisherStats;

/// The per-group category distribution (fractions over [`Category::ALL`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryDistribution {
    /// Fractions, indexed like [`Category::ALL`]. Sums to 1 unless the
    /// group published nothing.
    pub fractions: [f64; 8],
    /// Number of torrents behind the distribution.
    pub n: usize,
}

impl CategoryDistribution {
    /// Fraction of video content (Movies + TV + Porn), the headline
    /// quantity of Figure 2.
    pub fn video_share(&self) -> f64 {
        self.fractions[0] + self.fractions[1] + self.fractions[2]
    }

    /// Fraction for one category.
    pub fn share(&self, cat: Category) -> f64 {
        let idx = Category::ALL.iter().position(|c| *c == cat).expect("known");
        self.fractions[idx]
    }
}

/// Computes Figure 2's distribution for one group.
pub fn category_distribution(
    dataset: &Dataset,
    publishers: &[PublisherStats],
    groups: &Groups,
    group: Group,
) -> CategoryDistribution {
    category_distribution_with(|idx| dataset.torrents[idx].category, publishers, groups, group)
}

/// Core of [`category_distribution`], parameterized over where a torrent
/// index resolves to its category: the materialized path reads the full
/// record, the streaming path reads a one-byte-per-torrent column.
pub fn category_distribution_with(
    category_of: impl Fn(usize) -> Category,
    publishers: &[PublisherStats],
    groups: &Groups,
    group: Group,
) -> CategoryDistribution {
    let mut counts = [0usize; 8];
    let mut n = 0usize;
    for p in publishers {
        if !groups.contains(&p.key, group) {
            continue;
        }
        for &idx in &p.torrents {
            let cat = category_of(idx);
            let pos = Category::ALL.iter().position(|c| *c == cat).expect("known");
            counts[pos] += 1;
            n += 1;
        }
    }
    let mut fractions = [0.0f64; 8];
    if n > 0 {
        for (f, c) in fractions.iter_mut().zip(counts) {
            *f = c as f64 / n as f64;
        }
    }
    CategoryDistribution { fractions, n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publishers::{aggregate_publishers, PublisherKey};
    use btpub_crawler::TorrentRecord;
    use btpub_sim::{SimTime, TorrentId};

    fn rec(id: u32, user: &str, cat: Category) -> TorrentRecord {
        TorrentRecord {
            torrent: TorrentId(id),
            announced_at: SimTime(0),
            first_contact_at: None,
            category: cat,
            title: "t".into(),
            filename: "t".into(),
            textbox: None,
            size_bytes: 1,
            language: None,
            username: Some(user.into()),
            publisher_ip: None,
            ip_failure: None,
            first_complete: 0,
            first_incomplete: 0,
            sightings: vec![],
            observed_ips: vec![],
            observed_removed: false,
        }
    }

    #[test]
    fn distribution_counts_by_group() {
        let ds = Dataset {
            name: "t".into(),
            start: SimTime(0),
            end: SimTime(1),
            has_usernames: true,
            torrents: vec![
                rec(0, "a", Category::Movies),
                rec(1, "a", Category::Movies),
                rec(2, "a", Category::Audio),
                rec(3, "b", Category::Books),
            ],
        };
        let pubs = aggregate_publishers(&ds);
        let mut groups = Groups::default();
        groups.top.push(PublisherKey::Username("a".into()));
        let top = category_distribution(&ds, &pubs, &groups, Group::Top);
        assert_eq!(top.n, 3);
        assert!((top.share(Category::Movies) - 2.0 / 3.0).abs() < 1e-9);
        assert!((top.video_share() - 2.0 / 3.0).abs() < 1e-9);
        let all = category_distribution(&ds, &pubs, &groups, Group::All);
        assert_eq!(all.n, 4);
        assert!((all.fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let fake = category_distribution(&ds, &pubs, &groups, Group::Fake);
        assert_eq!(fake.n, 0);
        assert_eq!(fake.video_share(), 0.0);
    }
}
