//! Streaming, memory-bounded analysis: every §3–§6 aggregate computed
//! record by record, without ever materializing the campaign dataset.
//!
//! The pipeline is split in two: [`RecordDigest::reduce`] is a pure,
//! order-free function of one record that consumes its heavy payload
//! (sightings become per-threshold seeding sessions), and
//! [`StreamAggregator::fold`] consumes digests in announcement order —
//! exactly the order a materialized `Dataset::torrents` holds records —
//! folding each into the same accumulator types the materialized
//! pipeline uses internally
//! ([`Partial`], [`ClassAcc`], [`SeedAcc`], [`GroupSignals`],
//! [`IspAgg`]). The heavy per-record payloads (sightings, observed
//! downloader IPs, title/filename/textbox strings) are consumed at
//! ingest and dropped; what survives is bounded by the publisher and ISP
//! populations plus a one-byte-per-torrent category column.
//!
//! Because both drivers share the accumulator code and fold records in
//! the same order, [`StreamAggregator::finish`] yields publishers,
//! groups and classifications that are **byte-identical** to the
//! materialized pipeline's — float summation order included.
//!
//! The one campaign-sized set — distinct downloader IPs across all
//! swarms (Table 1's "#IP addresses") — goes through
//! [`DistinctU32`], which can spill sorted runs to disk and merge-count
//! them at the end, keeping resident memory fixed.

use std::collections::BTreeMap;

use btpub_crawler::TorrentRecord;
use btpub_fxhash::{FxHashMap, Interner};
use btpub_geodb::GeoDb;
use btpub_sim::content::Category;
use btpub_sim::intervals::IntervalSet;
use btpub_sim::SimDuration;
use btpub_stream::checkpoint::{CheckpointError, Dec, Enc};
use btpub_stream::spill::DistinctU32;

use crate::classify::{ClassAcc, Classified};
use crate::fake::{
    assign_groups_from, fake_entities_from, mapping_stats_from, GroupSignals, Groups, MappingStats,
};
use crate::isp::IspAgg;
use crate::publishers::{attribution, resolve_and_sort, IKey, Partial, PublisherKey, PublisherStats};
use crate::seeding::{torrent_sessions, SeedAcc, SeedingMetrics};

/// Offline thresholds tracked at ingest: Appendix A's 2 h / 4 h / 6 h.
/// Index [`DEFAULT_THRESHOLD_IDX`] is the pipeline default (4 h).
pub const SEEDING_THRESHOLDS_H: [f64; 3] = [2.0, 4.0, 6.0];

/// Index of the default 4 h threshold in [`SEEDING_THRESHOLDS_H`].
pub const DEFAULT_THRESHOLD_IDX: usize = 1;

/// What the aggregator needs to know about the campaign up front.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Whether the portal exposes usernames (false for mn08-style runs).
    pub has_usernames: bool,
    /// The top-k cut used for group assignment and mapping stats.
    pub top_k: usize,
}

/// Per-publisher accumulators, keyed like the materialized fold.
#[derive(Default)]
struct PubAcc {
    partial: Partial,
    class: ClassAcc,
    seeding: [SeedAcc; 3],
}

/// Per-identified-IP accumulators (fake entities + §6 are IP-keyed).
#[derive(Default)]
struct IpAcc {
    torrents: Vec<usize>,
    downloads: u64,
    seeding: SeedAcc,
}

/// A [`TorrentRecord`] shrunk to what the order-sensitive fold still
/// needs: the sightings vector — the one payload that grows with a
/// torrent's monitored lifetime — is consumed up front into the
/// per-threshold seeding sessions and dropped. Records may be reduced
/// in *any* order (everything here is a pure function of one record),
/// which is what lets a reorder buffer hold digests instead of full
/// records while waiting for announcement order.
pub struct RecordDigest {
    /// The record, minus its sightings (already folded into `sessions`).
    /// `observed_ips` stays: it is deduplicated at finalize, so its
    /// length is the distinct-downloader count the fold reads.
    pub rec: TorrentRecord,
    /// Seeding sessions at each [`SEEDING_THRESHOLDS_H`] threshold,
    /// present iff the record has an identified publisher IP (the only
    /// case the fold estimates sessions for).
    sessions: Option<[IntervalSet; 3]>,
}

impl RecordDigest {
    /// Reduces one record. Pure and order-free by construction.
    pub fn reduce(mut rec: TorrentRecord) -> RecordDigest {
        let sessions = rec.publisher_ip.is_some().then(|| {
            SEEDING_THRESHOLDS_H
                .map(|hours| torrent_sessions(&rec, SimDuration::from_hours(hours)))
        });
        rec.sightings = Vec::new();
        RecordDigest { rec, sessions }
    }
}

/// Total order on aggregation keys for byte-stable checkpoint output.
fn ikey_rank(key: &IKey) -> (u8, u32) {
    match key {
        IKey::User(s) => (0, s.index() as u32),
        IKey::Ip(ip) => (1, *ip),
    }
}

fn encode_ikey(enc: &mut Enc, key: &IKey) {
    let (tag, val) = ikey_rank(key);
    enc.u8(tag);
    enc.u32(val);
}

fn decode_ikey(dec: &mut Dec, users: &Interner) -> Result<IKey, CheckpointError> {
    let tag = dec.u8()?;
    let val = dec.u32()?;
    match tag {
        0 => users
            .sym_at(val as usize)
            .map(IKey::User)
            .ok_or(CheckpointError::Decode { what: "IKey symbol index" }),
        1 => Ok(IKey::Ip(val)),
        _ => Err(CheckpointError::Decode { what: "IKey tag" }),
    }
}

/// Campaign-wide scalar totals (Table 1 and the share denominators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamTotals {
    /// Total torrents crawled.
    pub torrents_total: usize,
    /// Torrents with a username.
    pub torrents_username: usize,
    /// Torrents with an identified publisher IP.
    pub torrents_ip: usize,
    /// Sum of observed downloaders across all torrents.
    pub total_downloads: u64,
    /// Distinct downloader IPs across every swarm.
    pub distinct_ips: usize,
}

/// The record-at-a-time aggregation pipeline.
pub struct StreamAggregator<'d> {
    cfg: StreamConfig,
    db: &'d GeoDb,
    users: Interner,
    pubs: FxHashMap<IKey, PubAcc>,
    per_ip: FxHashMap<u32, IpAcc>,
    signals: GroupSignals,
    isp: IspAgg,
    categories: Vec<Category>,
    distinct: DistinctU32,
    torrents_username: usize,
    torrents_ip: usize,
    total_downloads: u64,
    next_idx: usize,
}

impl<'d> StreamAggregator<'d> {
    /// Creates an aggregator; `distinct` controls whether the global
    /// distinct-IP count stays in memory or spills sorted runs to disk.
    pub fn new(cfg: StreamConfig, db: &'d GeoDb, distinct: DistinctU32) -> Self {
        StreamAggregator {
            cfg,
            db,
            users: Interner::with_capacity(1024),
            pubs: FxHashMap::default(),
            per_ip: FxHashMap::default(),
            signals: GroupSignals::default(),
            isp: IspAgg::default(),
            categories: Vec::new(),
            distinct,
            torrents_username: 0,
            torrents_ip: 0,
            total_downloads: 0,
            next_idx: 0,
        }
    }

    /// Number of records ingested so far.
    pub fn records_ingested(&self) -> usize {
        self.next_idx
    }

    /// Folds the next record in. Records must arrive in announcement
    /// order (convenience wrapper over [`RecordDigest::reduce`] +
    /// [`Self::fold`]; the implicit torrent index is the arrival
    /// position).
    pub fn ingest(&mut self, rec: &TorrentRecord) {
        self.fold(&RecordDigest::reduce(rec.clone()));
    }

    /// Folds the next digest in. Digests must be folded in announcement
    /// order — symbol interning, index assignment and float summation
    /// order all depend on it — but because [`RecordDigest::reduce`] is
    /// order-free, a consumer receiving records out of order only ever
    /// buffers digests, never full records.
    pub fn fold(&mut self, digest: &RecordDigest) {
        let rec = &digest.rec;
        let idx = self.next_idx;
        self.next_idx += 1;
        self.categories.push(rec.category);
        if rec.username.is_some() {
            self.torrents_username += 1;
        }
        if rec.publisher_ip.is_some() {
            self.torrents_ip += 1;
        }
        self.total_downloads += rec.observed_downloaders() as u64;
        self.distinct.insert_all(&rec.observed_ips);
        // Intern in record order — symbol assignment matches
        // `intern_usernames` over the materialized dataset.
        if let Some(u) = &rec.username {
            self.users.intern(u);
        }
        self.signals.observe(rec, &self.users);
        self.isp.observe(rec.publisher_ip, self.db);
        // Per-publisher accumulators (username- or IP-keyed).
        let users = self.cfg.has_usernames.then_some(&self.users);
        let key = attribution(users, rec);
        if let Some(key) = key {
            let acc = self.pubs.entry(key).or_default();
            acc.partial.observe(idx, rec);
            acc.class.observe(rec);
        }
        // Seeding sessions: estimated once per threshold at reduce time,
        // fed to both the publisher-keyed and the IP-keyed accumulators.
        if let Some(ip) = rec.publisher_ip {
            let ip_acc = self.per_ip.entry(u32::from(ip)).or_default();
            ip_acc.torrents.push(idx);
            ip_acc.downloads += rec.observed_downloaders() as u64;
            let sessions3 = digest
                .sessions
                .as_ref()
                .expect("sessions reduced for every identified record");
            for (i, sessions) in sessions3.iter().enumerate() {
                if i == DEFAULT_THRESHOLD_IDX {
                    ip_acc.seeding.observe_sessions(sessions);
                }
                if let Some(key) = key {
                    if let Some(acc) = self.pubs.get_mut(&key) {
                        acc.seeding[i].observe_sessions(sessions);
                    }
                }
            }
        }
    }

    /// Serializes the aggregator's complete fold state for a checkpoint.
    ///
    /// Symbols are written by dense index; the interner itself is written
    /// as its strings in symbol order, so decoding re-interns them and
    /// recovers identical `Sym` values. Hash maps are written key-sorted:
    /// checkpoints of the same state are byte-identical no matter what
    /// iteration order the maps happen to have, and restoring them cannot
    /// perturb the report because nothing report-facing iterates these
    /// maps unsorted (the standing fxhash contract).
    pub fn encode_state(&self, enc: &mut Enc) {
        enc.usize(self.users.len());
        for (_, s) in self.users.iter() {
            enc.str(s);
        }
        let mut pub_keys: Vec<&IKey> = self.pubs.keys().collect();
        pub_keys.sort_by_key(|k| ikey_rank(k));
        enc.usize(pub_keys.len());
        for key in pub_keys {
            encode_ikey(enc, key);
            let acc = &self.pubs[key];
            enc.usize(acc.partial.torrents.len());
            for &t in &acc.partial.torrents {
                enc.usize(t);
            }
            enc.u64(acc.partial.downloads);
            let mut ips: Vec<u32> = acc.partial.ips.iter().copied().collect();
            ips.sort_unstable();
            enc.usize(ips.len());
            for ip in ips {
                enc.u32(ip);
            }
            acc.class.encode_state(enc);
            for s in &acc.seeding {
                s.encode_state(enc);
            }
        }
        let mut ip_keys: Vec<u32> = self.per_ip.keys().copied().collect();
        ip_keys.sort_unstable();
        enc.usize(ip_keys.len());
        for ip in ip_keys {
            enc.u32(ip);
            let acc = &self.per_ip[&ip];
            enc.usize(acc.torrents.len());
            for &t in &acc.torrents {
                enc.usize(t);
            }
            enc.u64(acc.downloads);
            acc.seeding.encode_state(enc);
        }
        self.signals.encode_state(enc);
        self.isp.encode_state(enc);
        enc.usize(self.categories.len());
        for cat in &self.categories {
            let idx = Category::ALL
                .iter()
                .position(|c| c == cat)
                .expect("category in Category::ALL");
            enc.u8(idx as u8);
        }
        self.distinct.encode_state(enc);
        enc.usize(self.torrents_username);
        enc.usize(self.torrents_ip);
        enc.u64(self.total_downloads);
        enc.usize(self.next_idx);
    }

    /// Restores an aggregator from [`Self::encode_state`] bytes. `spill`
    /// mirrors the `DistinctU32` construction arguments of the current
    /// run; a checkpoint holding spilled runs is refused without one.
    pub fn decode_state(
        cfg: StreamConfig,
        db: &'d GeoDb,
        spill: Option<(&std::path::Path, usize)>,
        dec: &mut Dec,
    ) -> Result<Self, CheckpointError> {
        let mut users = Interner::with_capacity(1024);
        for _ in 0..dec.usize()? {
            let s = dec.str()?;
            users.intern(&s);
        }
        let mut pubs: FxHashMap<IKey, PubAcc> = FxHashMap::default();
        for _ in 0..dec.usize()? {
            let key = decode_ikey(dec, &users)?;
            let mut partial = Partial::default();
            for _ in 0..dec.usize()? {
                partial.torrents.push(dec.usize()?);
            }
            partial.downloads = dec.u64()?;
            for _ in 0..dec.usize()? {
                partial.ips.insert(dec.u32()?);
            }
            let class = ClassAcc::decode_state(dec)?;
            let seeding = [
                SeedAcc::decode_state(dec)?,
                SeedAcc::decode_state(dec)?,
                SeedAcc::decode_state(dec)?,
            ];
            pubs.insert(key, PubAcc { partial, class, seeding });
        }
        let mut per_ip: FxHashMap<u32, IpAcc> = FxHashMap::default();
        for _ in 0..dec.usize()? {
            let ip = dec.u32()?;
            let mut acc = IpAcc::default();
            for _ in 0..dec.usize()? {
                acc.torrents.push(dec.usize()?);
            }
            acc.downloads = dec.u64()?;
            acc.seeding = SeedAcc::decode_state(dec)?;
            per_ip.insert(ip, acc);
        }
        let signals = GroupSignals::decode_state(dec, &users)?;
        let isp = IspAgg::decode_state(dec)?;
        let n_cats = dec.usize()?;
        let mut categories = Vec::with_capacity(n_cats.min(1 << 20));
        for _ in 0..n_cats {
            let idx = dec.u8()? as usize;
            let cat = Category::ALL
                .get(idx)
                .copied()
                .ok_or(CheckpointError::Decode { what: "Category index" })?;
            categories.push(cat);
        }
        let distinct = DistinctU32::decode_state(dec, spill)?;
        Ok(StreamAggregator {
            cfg,
            db,
            users,
            pubs,
            per_ip,
            signals,
            isp,
            categories,
            distinct,
            torrents_username: dec.usize()?,
            torrents_ip: dec.usize()?,
            total_downloads: dec.u64()?,
            next_idx: dec.usize()?,
        })
    }

    /// Finishes the aggregation: resolves, sorts, detects, classifies.
    pub fn finish(self) -> StreamAnalyses {
        let _span = btpub_obs::span!("analysis.stream_finish");
        let StreamAggregator {
            cfg,
            db,
            users,
            pubs,
            per_ip,
            signals,
            isp,
            categories,
            distinct,
            torrents_username,
            torrents_ip,
            total_downloads,
            next_idx,
        } = self;
        let mut partials: FxHashMap<IKey, Partial> = FxHashMap::default();
        let mut extras: FxHashMap<IKey, (ClassAcc, [SeedAcc; 3])> = FxHashMap::default();
        for (key, acc) in pubs {
            partials.insert(key, acc.partial);
            extras.insert(key, (acc.class, acc.seeding));
        }
        let users_opt = cfg.has_usernames.then_some(&users);
        let publishers = resolve_and_sort(partials, users_opt);
        let groups = assign_groups_from(&signals, &publishers, db, cfg.top_k, users_opt);
        let ikey_of = |key: &PublisherKey| -> Option<IKey> {
            match key {
                PublisherKey::Username(u) => users.get(u).map(IKey::User),
                PublisherKey::Ip(ip) => Some(IKey::Ip(*ip)),
            }
        };
        // Classification, in Top order — same traversal as `classify_top`.
        let classified: Vec<Classified> = groups
            .top
            .iter()
            .filter_map(|key| {
                let ik = ikey_of(key)?;
                let (class_acc, _) = extras.get(&ik)?;
                Some(class_acc.clone().finish(key.clone()))
            })
            .collect();
        // Per-publisher seeding metrics at every tracked threshold.
        let mut seeding: FxHashMap<PublisherKey, [Option<SeedingMetrics>; 3]> =
            FxHashMap::default();
        for p in &publishers {
            let Some(ik) = ikey_of(&p.key) else { continue };
            let Some((_, accs)) = extras.get(&ik) else { continue };
            let metrics = [accs[0].metrics(), accs[1].metrics(), accs[2].metrics()];
            seeding.insert(p.key.clone(), metrics);
        }
        // IP-keyed fake entities (ascending-IP BTreeMap keeps the sort's
        // tie order identical to `fake_ip_stats`).
        let mut fake_per_ip: BTreeMap<u32, (Vec<usize>, u64)> = BTreeMap::new();
        let mut fake_seeding: FxHashMap<u32, Option<SeedingMetrics>> = FxHashMap::default();
        for (ip, acc) in per_ip {
            if !groups.fake_ips.contains(&ip) {
                continue;
            }
            fake_seeding.insert(ip, acc.seeding.metrics());
            fake_per_ip.insert(ip, (acc.torrents, acc.downloads));
        }
        let fake_entities = fake_entities_from(fake_per_ip);
        let mapping = mapping_stats_from(
            &publishers,
            db,
            cfg.top_k,
            &users,
            &signals.top_ips(),
            &signals.by_ip,
            &signals.ip_torrents,
        );
        let totals = StreamTotals {
            torrents_total: next_idx,
            torrents_username,
            torrents_ip,
            total_downloads,
            distinct_ips: distinct.finish() as usize,
        };
        StreamAnalyses {
            publishers,
            groups,
            classified,
            fake_entities,
            mapping,
            isp,
            categories,
            totals,
            seeding,
            fake_seeding,
        }
    }
}

/// Everything the report needs, computed without a materialized dataset.
pub struct StreamAnalyses {
    /// Per-publisher aggregation, sorted exactly like
    /// [`crate::publishers::aggregate_publishers`].
    pub publishers: Vec<PublisherStats>,
    /// §3.3 group assignment.
    pub groups: Groups,
    /// §5.1 classification of the Top set.
    pub classified: Vec<Classified>,
    /// IP-keyed fake entities (Figure 4's Fake unit).
    pub fake_entities: Vec<PublisherStats>,
    /// §3.3 username↔IP mapping statistics.
    pub mapping: MappingStats,
    /// Per-ISP aggregate behind Tables 2–3 and §6.
    pub isp: IspAgg,
    /// One category per torrent, in announcement order (Figure 2).
    pub categories: Vec<Category>,
    /// Campaign-wide totals (Table 1, share denominators).
    pub totals: StreamTotals,
    /// Per-publisher seeding metrics at the 2 h / 4 h / 6 h thresholds.
    pub seeding: FxHashMap<PublisherKey, [Option<SeedingMetrics>; 3]>,
    /// Per-fake-IP-entity seeding metrics at the default threshold.
    pub fake_seeding: FxHashMap<u32, Option<SeedingMetrics>>,
}

impl StreamAnalyses {
    /// A publisher's seeding metrics at one tracked threshold index.
    pub fn seeding_of(&self, key: &PublisherKey, threshold_idx: usize) -> Option<SeedingMetrics> {
        self.seeding.get(key).and_then(|m| m[threshold_idx])
    }

    /// A fake entity's seeding metrics at the default threshold.
    pub fn fake_seeding_of(&self, key: &PublisherKey) -> Option<SeedingMetrics> {
        match key {
            PublisherKey::Ip(ip) => self.fake_seeding.get(ip).copied().flatten(),
            PublisherKey::Username(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_top;
    use crate::fake::{assign_groups, fake_ip_stats};
    use crate::publishers::aggregate_publishers;
    use crate::seeding::publisher_seeding_metrics;
    use crate::session::default_offline_threshold;
    use btpub_crawler::{Dataset, Sighting};
    use btpub_geodb::{GeoDbBuilder, IspKind};
    use btpub_sim::{SimTime, TorrentId};
    use std::net::Ipv4Addr;

    fn db() -> GeoDb {
        let mut b = GeoDbBuilder::new();
        let hp = b.add_isp("HostCo", IspKind::HostingProvider, "US");
        let ci = b.add_isp("CableCo", IspKind::CommercialIsp, "US");
        let loc = b.add_location("X", "US");
        b.add_slash16(0x0A00, hp, loc);
        b.add_slash16(0x1800, ci, loc);
        b.build().unwrap()
    }

    fn rec(
        id: u32,
        user: &str,
        ip: Option<[u8; 4]>,
        removed: bool,
        cat: Category,
    ) -> TorrentRecord {
        let sightings = (0..12)
            .map(|i| Sighting {
                at: SimTime::from_hours(f64::from(id) + f64::from(i) * 0.25),
                complete: 1,
                incomplete: 2,
                sampled: 3,
                publisher_seen: ip.is_some() && i % 2 == 0,
            })
            .collect();
        TorrentRecord {
            torrent: TorrentId(id),
            announced_at: SimTime(u64::from(id)),
            first_contact_at: Some(SimTime(u64::from(id))),
            category: cat,
            title: format!("t{id}"),
            filename: format!("Rls.{id}.DVDRip-promo{}.com", id % 3),
            textbox: id.is_multiple_of(2).then(|| format!("visit http://www.site{}.net", id % 3)),
            size_bytes: 100,
            username: Some(user.into()),
            language: id.is_multiple_of(2).then(|| "es".to_string()),
            publisher_ip: ip.map(Ipv4Addr::from),
            ip_failure: None,
            first_complete: 1,
            first_incomplete: 0,
            sightings,
            observed_ips: vec![id * 3, id * 3 + 1, 7],
            observed_removed: removed,
        }
    }

    fn dataset() -> Dataset {
        let mut torrents = Vec::new();
        // A hosted top publisher, a cable publisher, a fake mill on one
        // IP with a takedown, and a long tail.
        for i in 0..6 {
            torrents.push(rec(i, "bighost", Some([10, 0, 0, 1]), false, Category::Movies));
        }
        for i in 6..10 {
            torrents.push(rec(i, "cable", Some([24, 0, 0, 9]), false, Category::TvShows));
        }
        torrents.push(rec(10, "mill-a", Some([10, 0, 9, 9]), true, Category::Porn));
        torrents.push(rec(11, "mill-b", Some([10, 0, 9, 9]), false, Category::Porn));
        torrents.push(rec(12, "mill-c", Some([10, 0, 9, 9]), false, Category::Porn));
        for i in 13..20 {
            torrents.push(rec(i, &format!("small{i}"), None, false, Category::Audio));
        }
        Dataset {
            name: "stream-test".into(),
            start: SimTime(0),
            end: SimTime::from_hours(100.0),
            has_usernames: true,
            torrents,
        }
    }

    fn stream(ds: &Dataset, db: &GeoDb, top_k: usize) -> StreamAnalyses {
        let mut agg = StreamAggregator::new(
            StreamConfig {
                has_usernames: ds.has_usernames,
                top_k,
            },
            db,
            DistinctU32::in_memory(),
        );
        for rec in &ds.torrents {
            agg.ingest(rec);
        }
        agg.finish()
    }

    #[test]
    fn streaming_matches_materialized_pipeline() {
        let ds = dataset();
        let database = db();
        let top_k = 5;
        let s = stream(&ds, &database, top_k);
        let publishers = aggregate_publishers(&ds);
        assert_eq!(s.publishers, publishers);
        let groups = assign_groups(&ds, &publishers, &database, top_k);
        assert_eq!(s.groups.fake_usernames, groups.fake_usernames);
        assert_eq!(s.groups.fake_ips, groups.fake_ips);
        assert_eq!(s.groups.top, groups.top);
        assert_eq!(s.groups.top_hp, groups.top_hp);
        assert_eq!(s.groups.top_ci, groups.top_ci);
        assert_eq!(s.groups.compromised_in_top_k, groups.compromised_in_top_k);
        assert_eq!(s.classified, classify_top(&ds, &publishers, &groups));
        assert_eq!(s.fake_entities, fake_ip_stats(&ds, &groups));
        assert_eq!(
            s.mapping,
            crate::fake::mapping_stats(&ds, &publishers, &database, top_k)
        );
        assert_eq!(
            s.isp.top_isps(&database, 10),
            crate::isp::top_isps(&ds, &database, 10)
        );
        assert_eq!(
            s.isp.footprint(&database, "HostCo"),
            crate::isp::isp_footprint(&ds, &database, "HostCo")
        );
        assert_eq!(s.totals.torrents_total, ds.torrent_count());
        assert_eq!(s.totals.torrents_username, ds.username_identified_count());
        assert_eq!(s.totals.torrents_ip, ds.ip_identified_count());
        assert_eq!(s.totals.distinct_ips, ds.distinct_ip_count());
        // Seeding metrics match the materialized estimator bit-for-bit.
        for p in &publishers {
            let expect = publisher_seeding_metrics(&ds, p, default_offline_threshold());
            assert_eq!(s.seeding_of(&p.key, DEFAULT_THRESHOLD_IDX), expect, "{}", p.key);
        }
        for entity in &s.fake_entities {
            let expect = publisher_seeding_metrics(&ds, entity, default_offline_threshold());
            assert_eq!(s.fake_seeding_of(&entity.key), expect);
        }
    }

    #[test]
    fn aggregator_state_roundtrips_mid_campaign() {
        let ds = dataset();
        let database = db();
        let cfg = StreamConfig { has_usernames: true, top_k: 5 };
        let mut a = StreamAggregator::new(cfg.clone(), &database, DistinctU32::in_memory());
        for rec in &ds.torrents[..10] {
            a.ingest(rec);
        }
        let mut enc = Enc::new();
        a.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut b =
            StreamAggregator::decode_state(cfg, &database, None, &mut Dec::new(&bytes)).unwrap();
        // Folding the rest into the original and the restored copy must
        // leave them in byte-identical states…
        for rec in &ds.torrents[10..] {
            a.ingest(rec);
            b.ingest(rec);
        }
        let (mut ea, mut eb) = (Enc::new(), Enc::new());
        a.encode_state(&mut ea);
        b.encode_state(&mut eb);
        assert_eq!(ea.into_bytes(), eb.into_bytes());
        // …and identical states finish into identical analyses.
        let sa = a.finish();
        let sb = b.finish();
        assert_eq!(sa.publishers, sb.publishers);
        assert_eq!(sa.classified, sb.classified);
        assert_eq!(sa.fake_entities, sb.fake_entities);
        assert_eq!(sa.totals, sb.totals);
    }

    #[test]
    fn checkpoint_bytes_are_stable_for_identical_folds() {
        // Two aggregators fed the same records must emit the same
        // checkpoint bytes — map iteration order must not leak.
        let ds = dataset();
        let database = db();
        let cfg = StreamConfig { has_usernames: true, top_k: 5 };
        let encode = || {
            let mut agg =
                StreamAggregator::new(cfg.clone(), &database, DistinctU32::in_memory());
            for rec in &ds.torrents {
                agg.ingest(rec);
            }
            let mut enc = Enc::new();
            agg.encode_state(&mut enc);
            enc.into_bytes()
        };
        assert_eq!(encode(), encode());
    }

    #[test]
    fn streaming_matches_materialized_in_ip_mode() {
        let mut ds = dataset();
        ds.has_usernames = false;
        for t in &mut ds.torrents {
            t.username = None;
        }
        let database = db();
        let s = stream(&ds, &database, 5);
        let publishers = aggregate_publishers(&ds);
        assert_eq!(s.publishers, publishers);
        let groups = assign_groups(&ds, &publishers, &database, 5);
        assert_eq!(s.groups.top, groups.top);
        assert_eq!(s.classified, classify_top(&ds, &publishers, &groups));
    }
}
