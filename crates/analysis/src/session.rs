//! Appendix A: estimating a peer's session time from sparse tracker
//! samples.
//!
//! Each tracker query returns a random `W`-subset of the `N` peers in a
//! swarm, so the publisher's presence is only *sampled*. The paper models
//! the probability of catching a present peer within `m` queries as
//!
//! ```text
//! P = 1 − (1 − W/N)^m
//! ```
//!
//! and derives that with the conservative `N = 165`, `W = 50`, `m = 13`
//! queries (≈ 4 hours at 18 minutes per query) a present peer is seen with
//! `P > 0.99`. A peer unseen for 4 hours is therefore declared offline —
//! the session-splitting threshold used to reconstruct seeding sessions.

use btpub_sim::intervals::IntervalSet;
use btpub_sim::{SimDuration, SimTime};

/// The paper's capture-probability model: `P = 1 − (1 − W/N)^m`.
///
/// # Panics
/// Panics unless `0 < w <= n`.
pub fn capture_probability(w: u32, n: u32, m: u32) -> f64 {
    assert!(w > 0 && w <= n, "need 0 < W <= N");
    1.0 - (1.0 - f64::from(w) / f64::from(n)).powi(m as i32)
}

/// Smallest `m` such that `capture_probability(w, n, m) >= p`.
pub fn queries_needed(w: u32, n: u32, p: f64) -> u32 {
    assert!((0.0..1.0).contains(&p), "p must be in [0,1)");
    if w == n {
        return 1;
    }
    let miss = 1.0 - f64::from(w) / f64::from(n);
    ((1.0 - p).ln() / miss.ln()).ceil() as u32
}

/// The paper's offline threshold: 4 hours (validated against 2 h and 6 h).
pub fn default_offline_threshold() -> SimDuration {
    SimDuration::from_hours(4.0)
}

/// Reconstructs session intervals from the instants a peer was sighted.
///
/// Consecutive sightings closer than `offline_threshold` belong to one
/// session; a longer gap splits sessions. Each session is padded by `pad`
/// at both ends to account for presence before the first and after the
/// last catching query (half the typical query spacing is a reasonable
/// choice; the paper's sessions are likewise lower-bound estimates).
pub fn estimate_sessions(
    sightings: &[SimTime],
    offline_threshold: SimDuration,
    pad: SimDuration,
) -> IntervalSet {
    let _span = btpub_obs::span!("analysis.estimate_sessions");
    let mut out = IntervalSet::new();
    if sightings.is_empty() {
        return out;
    }
    debug_assert!(
        sightings.windows(2).all(|w| w[0] <= w[1]),
        "sightings must be time-ordered"
    );
    let mut start = sightings[0];
    let mut last = sightings[0];
    for &t in &sightings[1..] {
        if t.since(last) > offline_threshold {
            out.insert(start - pad, last + pad);
            start = t;
        }
        last = t;
    }
    out.insert(start - pad, last + pad);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_appendix_numbers() {
        // N=165, W=50: m=13 queries give P > 0.99 (Appendix A).
        let p = capture_probability(50, 165, 13);
        assert!(p > 0.99, "P = {p}");
        assert!(capture_probability(50, 165, 12) < p);
        assert_eq!(queries_needed(50, 165, 0.99), 13);
    }

    #[test]
    fn capture_probability_properties() {
        // Monotone in m; equals W/N at m=1; 1 when W=N.
        assert!((capture_probability(50, 165, 1) - 50.0 / 165.0).abs() < 1e-12);
        assert_eq!(capture_probability(10, 10, 1), 1.0);
        let mut prev = 0.0;
        for m in 1..50 {
            let p = capture_probability(20, 200, m);
            assert!(p > prev);
            prev = p;
        }
        assert_eq!(queries_needed(10, 10, 0.999), 1);
    }

    #[test]
    #[should_panic(expected = "0 < W <= N")]
    fn capture_rejects_w_above_n() {
        capture_probability(200, 100, 1);
    }

    fn t(h: f64) -> SimTime {
        SimTime::from_hours(h)
    }

    #[test]
    fn single_session_when_gaps_small() {
        let sightings = vec![t(10.0), t(11.0), t(13.0), t(16.0)];
        let s = estimate_sessions(&sightings, default_offline_threshold(), SimDuration::ZERO);
        assert_eq!(s.session_count(), 1);
        assert_eq!(s.total(), SimDuration::from_hours(6.0));
    }

    #[test]
    fn long_gap_splits_sessions() {
        let sightings = vec![t(10.0), t(11.0), t(20.0), t(21.0)];
        let s = estimate_sessions(&sightings, default_offline_threshold(), SimDuration::ZERO);
        assert_eq!(s.session_count(), 2);
        assert_eq!(s.total(), SimDuration::from_hours(2.0));
    }

    #[test]
    fn threshold_is_inclusive() {
        // A gap of exactly the threshold does NOT split.
        let sightings = vec![t(0.0), t(4.0)];
        let s = estimate_sessions(&sightings, default_offline_threshold(), SimDuration::ZERO);
        assert_eq!(s.session_count(), 1);
        // Below the threshold the gap splits; zero-pad point sessions are
        // empty intervals, so use a 1-second pad to make them visible.
        let s2 = estimate_sessions(&sightings, SimDuration::from_hours(3.99), SimDuration(1));
        assert_eq!(s2.session_count(), 2);
    }

    #[test]
    fn padding_extends_sessions() {
        let sightings = vec![t(10.0)];
        let pad = SimDuration::from_mins(9.0);
        let s = estimate_sessions(&sightings, default_offline_threshold(), pad);
        assert_eq!(s.session_count(), 1);
        assert_eq!(s.total(), SimDuration::from_mins(18.0));
    }

    #[test]
    fn empty_sightings_empty_sessions() {
        let s = estimate_sessions(&[], default_offline_threshold(), SimDuration::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn estimation_error_shrinks_with_query_rate() {
        // Ground truth: one 24 h session. Sample it at various spacings
        // with catch probability 1 (small swarm) — the estimate should
        // approach the truth as spacing shrinks.
        let truth_start = t(0.0);
        let truth_end = t(24.0);
        let mut errors = Vec::new();
        for spacing_mins in [120.0, 30.0, 5.0] {
            let spacing = SimDuration::from_mins(spacing_mins);
            let mut sightings = Vec::new();
            let mut x = truth_start;
            while x < truth_end {
                sightings.push(x);
                x += spacing;
            }
            let est = estimate_sessions(
                &sightings,
                default_offline_threshold(),
                SimDuration(spacing.secs() / 2),
            );
            let err = (est.total().as_hours() - 24.0).abs();
            errors.push(err);
        }
        assert!(errors[0] >= errors[1] && errors[1] >= errors[2]);
        assert!(errors[2] < 0.25, "5-minute sampling should be accurate");
    }
}
