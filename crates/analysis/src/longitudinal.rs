//! §5.2 / Table 4: longitudinal view of major publishers.
//!
//! For each top publisher, the paper scrapes the username's portal page —
//! which lists the account's *entire* publication history, not just the
//! measurement window — and derives the account lifetime and the average
//! publishing rate over it.

use btpub_portal::Portal;
use btpub_sim::profile::BusinessClass;
use btpub_sim::SimTime;

use crate::classify::Classified;
use crate::publishers::PublisherKey;
use crate::stats::MinMedAvgMax;

/// One row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongitudinalRow {
    /// Publisher class.
    pub class: BusinessClass,
    /// Lifetime in days: min/median/avg/max over the class.
    pub lifetime_days: MinMedAvgMax,
    /// Average publishing rate (contents/day): min/median/avg/max.
    pub rate_per_day: MinMedAvgMax,
}

/// Computes Table 4 from the portal's user pages as of `as_of`
/// (the paper used June 4 2010, after the pb10 window closed).
pub fn longitudinal_rows(
    portal: &Portal<'_>,
    classified: &[Classified],
    as_of: SimTime,
) -> Vec<LongitudinalRow> {
    [
        BusinessClass::BtPortal,
        BusinessClass::OtherWeb,
        BusinessClass::Altruistic,
    ]
    .into_iter()
    .filter_map(|class| {
        let mut lifetimes = Vec::new();
        let mut rates = Vec::new();
        for c in classified.iter().filter(|c| c.class == class) {
            let PublisherKey::Username(username) = &c.key else {
                continue;
            };
            let Some(page) = portal.user_page(username, as_of) else {
                continue; // account gone (would be a fake signal)
            };
            lifetimes.push(page.lifetime_days);
            rates.push(page.avg_rate_per_day);
        }
        Some(LongitudinalRow {
            class,
            lifetime_days: MinMedAvgMax::of(&lifetimes)?,
            rate_per_day: MinMedAvgMax::of(&rates)?,
        })
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fake::assign_groups;
    use crate::publishers::aggregate_publishers;
    use btpub_crawler::{run_crawl, CrawlerConfig};
    use btpub_sim::{Ecosystem, EcosystemConfig};

    #[test]
    fn rows_cover_all_classes_with_sane_values() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(111));
        let portal = Portal::new(&eco);
        let ds = run_crawl(&eco, &CrawlerConfig::default());
        let pubs = aggregate_publishers(&ds);
        let groups = assign_groups(&ds, &pubs, &eco.world.db, 30);
        let classified = crate::classify::classify_top(&ds, &pubs, &groups);
        let rows = longitudinal_rows(&portal, &classified, eco.config.horizon());
        assert!(!rows.is_empty());
        for row in &rows {
            assert!(row.lifetime_days.min > 0.0);
            assert!(row.lifetime_days.max <= 2000.0);
            assert!(row.rate_per_day.min >= 0.0);
            assert!(
                row.rate_per_day.max <= 100.0,
                "rate {} implausible",
                row.rate_per_day.max
            );
            assert!(row.lifetime_days.min <= row.lifetime_days.median);
            assert!(row.lifetime_days.median <= row.lifetime_days.max);
        }
    }
}
