//! Descriptive statistics used by the figures and tables.

use serde::Serialize;

/// Linear-interpolation percentile of a sample, `q` in `[0, 1]`.
///
/// Returns `None` on an empty sample. NaNs are rejected by debug assert —
/// the pipeline never produces them.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    debug_assert!((0.0..=1.0).contains(&q));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Five-number summary plus mean — one box of the paper's box plots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BoxStats {
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Computes the summary; `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(BoxStats {
            min: sorted[0],
            p25: percentile(&sorted, 0.25)?,
            median: percentile(&sorted, 0.50)?,
            p75: percentile(&sorted, 0.75)?,
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            n: sorted.len(),
        })
    }
}

/// `min / median / average / max`, the format of Tables 4–5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MinMedAvgMax {
    /// Smallest sample.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Mean.
    pub avg: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl MinMedAvgMax {
    /// Computes the summary; `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<MinMedAvgMax> {
        let b = BoxStats::of(values)?;
        Some(MinMedAvgMax {
            min: b.min,
            median: b.median,
            avg: b.mean,
            max: b.max,
            n: b.n,
        })
    }
}

/// Relative error bound of a collapsed [`QuantileSketch`]: every
/// reported quantile is within ±1% of the exact nearest-rank quantile.
pub const SKETCH_RELATIVE_ERROR: f64 = 0.01;

/// Samples a [`QuantileSketch`] holds exactly before collapsing into
/// log-spaced buckets. Below this, results are bit-identical to the
/// full-vector [`BoxStats::of`] path; above it, memory is fixed at the
/// bucket table regardless of stream length.
pub const SKETCH_DEFAULT_BUDGET: usize = 4096;

/// Streaming quantile sketch for non-negative samples, deterministic and
/// fixed-error (DDSketch-style log buckets).
///
/// Two regimes:
///
/// * **exact** — up to `budget` samples are stored verbatim and every
///   summary delegates to the exact code path, so reference-scale report
///   sections that route through the sketch stay byte-identical to the
///   historical full-vector computation;
/// * **collapsed** — once the budget is crossed, samples live in buckets
///   `(γ^(i-1), γ^i]` with `γ = (1+α)/(1-α)`, `α =`
///   [`SKETCH_RELATIVE_ERROR`]. A quantile query walks the cumulative
///   counts and returns the bucket's midpoint estimate, which is within
///   `α` relative error of the exact nearest-rank quantile. Min, max,
///   mean and count remain exact (tracked directly).
///
/// Determinism: bucket assignment is a pure function of the value, so
/// identical push sequences produce identical summaries — independent of
/// when the collapse happened. The mean follows the push-order float sum,
/// exactly like summing the materialized vector in the same order.
pub struct QuantileSketch {
    budget: usize,
    exact: Vec<f64>,
    collapsed: Option<Buckets>,
}

struct Buckets {
    gamma: f64,
    ln_gamma: f64,
    /// Bucket index -> count; BTreeMap so walks ascend value order.
    counts: std::collections::BTreeMap<i32, u64>,
    zeros: u64,
    n: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Buckets {
    fn new() -> Buckets {
        let a = SKETCH_RELATIVE_ERROR;
        let gamma = (1.0 + a) / (1.0 - a);
        Buckets {
            gamma,
            ln_gamma: gamma.ln(),
            counts: std::collections::BTreeMap::new(),
            zeros: 0,
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    fn push(&mut self, v: f64) {
        debug_assert!(v >= 0.0 && v.is_finite(), "sketch samples are non-negative");
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0.0 {
            self.zeros += 1;
        } else {
            let idx = (v.ln() / self.ln_gamma).ceil() as i32;
            *self.counts.entry(idx).or_insert(0) += 1;
        }
    }

    /// Nearest-rank quantile estimate: the value of the bucket holding
    /// the `(⌊q·(n-1)⌋+1)`-th smallest sample.
    fn quantile(&self, q: f64) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.n - 1) as f64).floor() as u64;
        if rank < self.zeros {
            return Some(0.0);
        }
        let mut seen = self.zeros;
        for (&idx, &count) in &self.counts {
            seen += count;
            if rank < seen {
                // Midpoint of (γ^(i-1), γ^i]: 2γ^i / (γ+1), within α of
                // every member of the bucket.
                let est = 2.0 * self.gamma.powi(idx) / (self.gamma + 1.0);
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    pub fn new() -> QuantileSketch {
        Self::with_budget(SKETCH_DEFAULT_BUDGET)
    }

    /// `budget` = number of samples kept exactly before collapsing.
    pub fn with_budget(budget: usize) -> QuantileSketch {
        QuantileSketch { budget: budget.max(1), exact: Vec::new(), collapsed: None }
    }

    /// Sketch of a full sample (collapses only past the default budget).
    pub fn from_values(values: &[f64]) -> QuantileSketch {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    pub fn push(&mut self, v: f64) {
        if let Some(b) = &mut self.collapsed {
            b.push(v);
            return;
        }
        self.exact.push(v);
        if self.exact.len() > self.budget {
            let mut b = Buckets::new();
            for &x in &self.exact {
                b.push(x);
            }
            self.exact = Vec::new();
            self.collapsed = Some(b);
        }
    }

    /// True while every sample is stored verbatim (summaries are exact).
    pub fn is_exact(&self) -> bool {
        self.collapsed.is_none()
    }

    pub fn len(&self) -> usize {
        match &self.collapsed {
            Some(b) => b.n as usize,
            None => self.exact.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Quantile estimate; exact (linear interpolation, matching
    /// [`percentile`]) below the budget, within
    /// [`SKETCH_RELATIVE_ERROR`] of the nearest-rank quantile above it.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match &self.collapsed {
            Some(b) => b.quantile(q),
            None => {
                let mut sorted = self.exact.clone();
                sorted.sort_by(f64::total_cmp);
                percentile(&sorted, q)
            }
        }
    }

    /// Box summary; bit-identical to [`BoxStats::of`] while exact.
    pub fn box_stats(&self) -> Option<BoxStats> {
        match &self.collapsed {
            None => BoxStats::of(&self.exact),
            Some(b) => {
                if b.n == 0 {
                    return None;
                }
                Some(BoxStats {
                    min: b.min,
                    p25: b.quantile(0.25)?,
                    median: b.quantile(0.50)?,
                    p75: b.quantile(0.75)?,
                    max: b.max,
                    mean: b.sum / b.n as f64,
                    n: b.n as usize,
                })
            }
        }
    }

    /// Tables 4–5 summary; bit-identical to [`MinMedAvgMax::of`] while
    /// exact.
    pub fn min_med_avg_max(&self) -> Option<MinMedAvgMax> {
        let b = self.box_stats()?;
        Some(MinMedAvgMax { min: b.min, median: b.median, avg: b.mean, max: b.max, n: b.n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(4.0));
        assert_eq!(percentile(&data, 0.5), Some(2.5));
        assert_eq!(percentile(&data, 0.25), Some(1.75));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.9), Some(7.0));
    }

    #[test]
    fn box_stats_basic() {
        let b = BoxStats::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.mean, 3.0);
        assert_eq!(b.p25, 2.0);
        assert_eq!(b.p75, 4.0);
        assert_eq!(b.n, 5);
        assert!(BoxStats::of(&[]).is_none());
    }

    #[test]
    fn min_med_avg_max_matches_box() {
        let v = [10.0, 20.0, 90.0];
        let m = MinMedAvgMax::of(&v).unwrap();
        assert_eq!(m.min, 10.0);
        assert_eq!(m.median, 20.0);
        assert_eq!(m.max, 90.0);
        assert!((m.avg - 40.0).abs() < 1e-12);
    }

    #[test]
    fn box_stats_ordering_invariant() {
        // p25 <= median <= p75 always.
        let samples: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let b = BoxStats::of(&samples).unwrap();
        assert!(b.min <= b.p25 && b.p25 <= b.median);
        assert!(b.median <= b.p75 && b.p75 <= b.max);
    }

    #[test]
    fn sketch_exact_mode_is_bit_identical_to_boxstats() {
        let samples: Vec<f64> = (0..500).map(|i| ((i * 193) % 777) as f64 / 7.0).collect();
        let s = QuantileSketch::from_values(&samples);
        assert!(s.is_exact());
        let via_sketch = s.box_stats().unwrap();
        let direct = BoxStats::of(&samples).unwrap();
        // Bit-for-bit, not approximately: the exact regime delegates.
        assert_eq!(via_sketch, direct);
        assert_eq!(s.min_med_avg_max().unwrap(), MinMedAvgMax::of(&samples).unwrap());
    }

    #[test]
    fn sketch_collapse_is_insensitive_to_when_it_happened() {
        // Same samples pushed with budget 10 and budget 1000 (both
        // forced past collapse) must summarize identically.
        let samples: Vec<f64> = (0..5000).map(|i| ((i * 37) % 991) as f64 * 0.5).collect();
        let mut a = QuantileSketch::with_budget(10);
        let mut b = QuantileSketch::with_budget(1000);
        for &v in &samples {
            a.push(v);
            b.push(v);
        }
        assert!(!a.is_exact() && !b.is_exact());
        assert_eq!(a.box_stats().unwrap(), b.box_stats().unwrap());
    }

    #[test]
    fn collapsed_sketch_respects_error_bound() {
        let mut samples: Vec<f64> = Vec::new();
        // Adversarial mixture: zeros, a dense cluster, a heavy tail.
        for i in 0..2000u32 {
            samples.push(match i % 4 {
                0 => 0.0,
                1 => 1.0 + f64::from(i % 7) * 1e-4,
                2 => f64::from(i),
                _ => f64::from(i).powi(2),
            });
        }
        let mut s = QuantileSketch::with_budget(64);
        for &v in &samples {
            s.push(v);
        }
        assert!(!s.is_exact());
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = sorted[(q * (sorted.len() - 1) as f64).floor() as usize];
            let est = s.quantile(q).unwrap();
            assert!(
                (est - exact).abs() <= SKETCH_RELATIVE_ERROR * exact + 1e-9,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        // Mean/min/max/n are tracked exactly even when collapsed.
        let b = s.box_stats().unwrap();
        assert_eq!(b.min, 0.0);
        assert_eq!(b.max, *sorted.last().unwrap());
        assert_eq!(b.n, samples.len());
        let exact_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert_eq!(b.mean, exact_mean);
    }
}

#[cfg(test)]
mod sketch_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// On arbitrary non-negative samples — including adversarial
        /// mixes of zeros, sub-1 values and huge outliers — a collapsed
        /// sketch's quantiles stay within the stated relative error of
        /// the exact nearest-rank quantile.
        #[test]
        fn collapsed_quantiles_within_stated_error(
            small in proptest::collection::vec(0u32..100, 0..200),
            mid in proptest::collection::vec(0u64..1_000_000, 1..200),
            huge in proptest::collection::vec(0u64..u64::MAX / 2, 0..50),
            qs in proptest::collection::vec(0u32..=1000, 5),
        ) {
            let mut samples: Vec<f64> = Vec::new();
            samples.extend(small.iter().map(|&v| f64::from(v) / 97.0));
            samples.extend(mid.iter().map(|&v| v as f64));
            samples.extend(huge.iter().map(|&v| v as f64));
            let mut sketch = QuantileSketch::with_budget(16);
            for &v in &samples {
                sketch.push(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            for &qi in &qs {
                let q = f64::from(qi) / 1000.0;
                let exact = sorted[(q * (sorted.len() - 1) as f64).floor() as usize];
                let est = sketch.quantile(q).unwrap();
                prop_assert!(
                    (est - exact).abs() <= SKETCH_RELATIVE_ERROR * exact + 1e-9,
                    "q={} est={} exact={}", q, est, exact
                );
            }
        }

        /// The exact regime must delegate: any sample set below the
        /// budget summarizes bit-identically to BoxStats::of.
        #[test]
        fn exact_regime_matches_boxstats_bitwise(
            vals in proptest::collection::vec(0u64..1_000_000_000, 1..64),
        ) {
            let samples: Vec<f64> = vals.iter().map(|&v| v as f64 / 3.0).collect();
            let sketch = QuantileSketch::from_values(&samples);
            prop_assert!(sketch.is_exact());
            prop_assert_eq!(sketch.box_stats(), BoxStats::of(&samples));
        }
    }
}
