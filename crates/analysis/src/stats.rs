//! Descriptive statistics used by the figures and tables.

use serde::Serialize;

/// Linear-interpolation percentile of a sample, `q` in `[0, 1]`.
///
/// Returns `None` on an empty sample. NaNs are rejected by debug assert —
/// the pipeline never produces them.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    debug_assert!((0.0..=1.0).contains(&q));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Five-number summary plus mean — one box of the paper's box plots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BoxStats {
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Computes the summary; `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(BoxStats {
            min: sorted[0],
            p25: percentile(&sorted, 0.25)?,
            median: percentile(&sorted, 0.50)?,
            p75: percentile(&sorted, 0.75)?,
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            n: sorted.len(),
        })
    }
}

/// `min / median / average / max`, the format of Tables 4–5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MinMedAvgMax {
    /// Smallest sample.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Mean.
    pub avg: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl MinMedAvgMax {
    /// Computes the summary; `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<MinMedAvgMax> {
        let b = BoxStats::of(values)?;
        Some(MinMedAvgMax {
            min: b.min,
            median: b.median,
            avg: b.mean,
            max: b.max,
            n: b.n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(4.0));
        assert_eq!(percentile(&data, 0.5), Some(2.5));
        assert_eq!(percentile(&data, 0.25), Some(1.75));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.9), Some(7.0));
    }

    #[test]
    fn box_stats_basic() {
        let b = BoxStats::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.mean, 3.0);
        assert_eq!(b.p25, 2.0);
        assert_eq!(b.p75, 4.0);
        assert_eq!(b.n, 5);
        assert!(BoxStats::of(&[]).is_none());
    }

    #[test]
    fn min_med_avg_max_matches_box() {
        let v = [10.0, 20.0, 90.0];
        let m = MinMedAvgMax::of(&v).unwrap();
        assert_eq!(m.min, 10.0);
        assert_eq!(m.median, 20.0);
        assert_eq!(m.max, 90.0);
        assert!((m.avg - 40.0).abs() < 1e-12);
    }

    #[test]
    fn box_stats_ordering_invariant() {
        // p25 <= median <= p75 always.
        let samples: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let b = BoxStats::of(&samples).unwrap();
        assert!(b.min <= b.p25 && b.p25 <= b.median);
        assert!(b.median <= b.p75 && b.p75 <= b.max);
    }
}
