//! Per-publisher aggregation of a dataset.
//!
//! The paper identifies a publisher by *username* where the portal exposes
//! one (pb09/pb10) and falls back to the initial-seeder *IP address* for
//! mn08 (§3). This module provides that keying plus the per-publisher
//! aggregates every later stage consumes.

use std::net::Ipv4Addr;

use btpub_crawler::{Dataset, TorrentRecord};
use btpub_fxhash::{FxHashMap, FxHashSet, Interner, Sym};

/// How a publisher is identified in a dataset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PublisherKey {
    /// Portal username (pb09 / pb10).
    Username(String),
    /// Initial-seeder address (mn08, which lacks usernames).
    Ip(u32),
}

impl std::fmt::Display for PublisherKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublisherKey::Username(u) => f.write_str(u),
            PublisherKey::Ip(ip) => write!(f, "{}", Ipv4Addr::from(*ip)),
        }
    }
}

/// Aggregates for one identified publisher.
#[derive(Debug, Clone, PartialEq)]
pub struct PublisherStats {
    /// Identification key.
    pub key: PublisherKey,
    /// Indices into `dataset.torrents`, in announcement order.
    pub torrents: Vec<usize>,
    /// Total observed downloaders across those torrents.
    pub downloads: u64,
    /// Initial-seeder IPs identified across the publisher's torrents.
    pub ips: FxHashSet<u32>,
}

impl PublisherStats {
    /// Number of published torrents attributed to this publisher.
    pub fn content_count(&self) -> usize {
        self.torrents.len()
    }
}

/// Interns every username appearing in the dataset, in record order.
///
/// Build once per dataset, then share `&Interner` across analysis
/// stages — symbol assignment is deterministic (first appearance wins),
/// so any two passes over the same dataset agree on every `Sym`.
pub fn intern_usernames(dataset: &Dataset) -> Interner {
    let mut users = Interner::with_capacity(1024);
    for rec in &dataset.torrents {
        if let Some(u) = &rec.username {
            users.intern(u);
        }
    }
    users
}

/// Internal aggregation key: a `u32` either way, so the per-record hash
/// in the fold below never touches string bytes. Deliberately crate-
/// private — symbols must be resolved back to [`PublisherKey`] strings
/// before anything ordered or report-facing sees them. The streaming
/// aggregator keys its per-publisher accumulators on the same symbols.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum IKey {
    User(Sym),
    Ip(u32),
}

/// Per-key partial aggregate (the key lives in the map).
#[derive(Default)]
pub(crate) struct Partial {
    pub(crate) torrents: Vec<usize>,
    pub(crate) downloads: u64,
    pub(crate) ips: FxHashSet<u32>,
}

impl Partial {
    /// Folds one attributed record into the aggregate. Shared by the
    /// chunked materialized fold and the streaming ingest so both build
    /// byte-identical per-publisher state.
    pub(crate) fn observe(&mut self, idx: usize, rec: &TorrentRecord) {
        self.torrents.push(idx);
        self.downloads += rec.observed_downloaders() as u64;
        if let Some(ip) = rec.publisher_ip {
            self.ips.insert(u32::from(ip));
        }
    }
}

/// The aggregation key a record is attributed to, if any: username when
/// the dataset carries usernames, identified initial-seeder IP otherwise.
pub(crate) fn attribution(users: Option<&Interner>, rec: &TorrentRecord) -> Option<IKey> {
    if let Some(users) = users {
        rec.username
            .as_ref()
            .map(|u| IKey::User(users.get(u).expect("username interned")))
    } else {
        rec.publisher_ip.map(|ip| IKey::Ip(u32::from(ip)))
    }
}

/// Report boundary shared by both aggregation paths: resolve symbols back
/// to strings (one clone per publisher, not per record) and impose the
/// total order. The final comparator ends in a unique-key comparison, so
/// the result is independent of the hash map's iteration order.
pub(crate) fn resolve_and_sort(
    agg: FxHashMap<IKey, Partial>,
    users: Option<&Interner>,
) -> Vec<PublisherStats> {
    let mut out: Vec<PublisherStats> = agg
        .into_iter()
        .map(|(key, p)| PublisherStats {
            key: match key {
                IKey::User(s) => {
                    PublisherKey::Username(users.expect("username mode").resolve(s).to_string())
                }
                IKey::Ip(ip) => PublisherKey::Ip(ip),
            },
            torrents: p.torrents,
            downloads: p.downloads,
            ips: p.ips,
        })
        .collect();
    out.sort_by(|a, b| {
        b.content_count()
            .cmp(&a.content_count())
            .then_with(|| b.downloads.cmp(&a.downloads))
            .then_with(|| a.key.cmp(&b.key))
    });
    out
}

/// Groups a dataset by publisher.
///
/// With usernames available every torrent is attributed; in IP mode only
/// torrents whose initial seeder was identified can be attributed (the
/// mn08 limitation the paper notes). The result is sorted by content
/// count, descending — "top-x" publishers are prefixes of it.
pub fn aggregate_publishers(dataset: &Dataset) -> Vec<PublisherStats> {
    let _span = btpub_obs::span!("analysis.aggregate_publishers");
    // One serial pass interns the usernames; the parallel fold below
    // then keys on `u32` symbols instead of heap strings. Contiguous
    // torrent-index chunks aggregate independently and merge left to
    // right, so per-publisher torrent lists stay in ascending index
    // order, exactly as a serial pass builds them.
    let users = dataset.has_usernames.then(|| intern_usernames(dataset));
    let n = dataset.torrents.len();
    let chunks = (btpub_par::global().get() * 4).clamp(1, n.max(1));
    let partials: Vec<FxHashMap<IKey, Partial>> =
        btpub_par::par_map_indexed("analysis.aggregate", chunks, |c| {
            let mut agg: FxHashMap<IKey, Partial> = FxHashMap::default();
            for idx in n * c / chunks..n * (c + 1) / chunks {
                let rec = &dataset.torrents[idx];
                let Some(key) = attribution(users.as_ref(), rec) else {
                    continue;
                };
                agg.entry(key).or_default().observe(idx, rec);
            }
            agg
        });
    let mut agg: FxHashMap<IKey, Partial> = FxHashMap::default();
    for part in partials {
        for (key, mut stats) in part {
            match agg.entry(key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(stats);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let merged = o.get_mut();
                    merged.torrents.append(&mut stats.torrents);
                    merged.downloads += stats.downloads;
                    merged.ips.extend(stats.ips);
                }
            }
        }
    }
    resolve_and_sort(agg, users.as_ref())
}

/// The IP→usernames view of §3.3: for every identified initial-seeder IP,
/// the set of usernames (as interned symbols) it published under. Only
/// meaningful on datasets with usernames; `users` must come from
/// [`intern_usernames`] on the same dataset.
pub fn ip_to_usernames(dataset: &Dataset, users: &Interner) -> FxHashMap<u32, FxHashSet<Sym>> {
    let mut map: FxHashMap<u32, FxHashSet<Sym>> = FxHashMap::default();
    for rec in &dataset.torrents {
        if let (Some(ip), Some(user)) = (rec.publisher_ip, &rec.username) {
            let sym = users.get(user).expect("username interned");
            map.entry(u32::from(ip)).or_default().insert(sym);
        }
    }
    map
}

/// Content counts per identified IP, sorted descending — the "top-100 IP
/// addresses" ranking of §3.3.
pub fn top_ips_by_content(dataset: &Dataset) -> Vec<(u32, usize)> {
    let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
    for rec in &dataset.torrents {
        if let Some(ip) = rec.publisher_ip {
            *counts.entry(u32::from(ip)).or_default() += 1;
        }
    }
    let mut out: Vec<(u32, usize)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpub_crawler::{Dataset, TorrentRecord};
    use btpub_sim::content::Category;
    use btpub_sim::{SimTime, TorrentId};

    fn rec(id: u32, user: Option<&str>, ip: Option<[u8; 4]>, ips_observed: u32) -> TorrentRecord {
        TorrentRecord {
            torrent: TorrentId(id),
            announced_at: SimTime(u64::from(id)),
            first_contact_at: None,
            category: Category::Movies,
            title: format!("t{id}"),
            filename: format!("t{id}"),
            textbox: None,
            size_bytes: 1,
            username: user.map(str::to_string),
            language: None,
            publisher_ip: ip.map(Ipv4Addr::from),
            ip_failure: None,
            first_complete: 0,
            first_incomplete: 0,
            sightings: vec![],
            observed_ips: (0..ips_observed).collect(),
            observed_removed: false,
        }
    }

    fn dataset(has_usernames: bool, torrents: Vec<TorrentRecord>) -> Dataset {
        Dataset {
            name: "t".into(),
            start: SimTime(0),
            end: SimTime(100),
            has_usernames,
            torrents,
        }
    }

    #[test]
    fn username_mode_groups_by_username() {
        let ds = dataset(
            true,
            vec![
                rec(0, Some("alice"), Some([1, 1, 1, 1]), 10),
                rec(1, Some("alice"), Some([1, 1, 1, 2]), 5),
                rec(2, Some("bob"), None, 3),
            ],
        );
        let agg = aggregate_publishers(&ds);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].key, PublisherKey::Username("alice".into()));
        assert_eq!(agg[0].content_count(), 2);
        assert_eq!(agg[0].downloads, 15);
        assert_eq!(agg[0].ips.len(), 2);
        assert_eq!(agg[1].content_count(), 1);
    }

    #[test]
    fn ip_mode_drops_unidentified() {
        let ds = dataset(
            false,
            vec![
                rec(0, None, Some([1, 1, 1, 1]), 10),
                rec(1, None, Some([1, 1, 1, 1]), 4),
                rec(2, None, None, 3),
            ],
        );
        let agg = aggregate_publishers(&ds);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].content_count(), 2);
        assert!(matches!(agg[0].key, PublisherKey::Ip(_)));
    }

    #[test]
    fn sorting_is_by_content_then_downloads() {
        let ds = dataset(
            true,
            vec![
                rec(0, Some("small"), None, 100),
                rec(1, Some("big"), None, 1),
                rec(2, Some("big"), None, 1),
            ],
        );
        let agg = aggregate_publishers(&ds);
        assert_eq!(agg[0].key, PublisherKey::Username("big".into()));
    }

    #[test]
    fn ip_to_usernames_detects_multiuser_ips() {
        let ds = dataset(
            true,
            vec![
                rec(0, Some("u1"), Some([9, 9, 9, 9]), 0),
                rec(1, Some("u2"), Some([9, 9, 9, 9]), 0),
                rec(2, Some("u1"), Some([8, 8, 8, 8]), 0),
            ],
        );
        let users = intern_usernames(&ds);
        let map = ip_to_usernames(&ds, &users);
        assert_eq!(map[&u32::from(Ipv4Addr::new(9, 9, 9, 9))].len(), 2);
        assert_eq!(map[&u32::from(Ipv4Addr::new(8, 8, 8, 8))].len(), 1);
    }

    #[test]
    fn top_ips_ranking() {
        let ds = dataset(
            true,
            vec![
                rec(0, Some("a"), Some([1, 0, 0, 1]), 0),
                rec(1, Some("a"), Some([1, 0, 0, 1]), 0),
                rec(2, Some("b"), Some([1, 0, 0, 2]), 0),
            ],
        );
        let top = top_ips_by_content(&ds);
        assert_eq!(top[0], (u32::from(Ipv4Addr::new(1, 0, 0, 1)), 2));
        assert_eq!(top[1].1, 1);
    }
}
