//! §3.1 / Figure 1: skewness of publisher contribution.

use crate::publishers::PublisherStats;

/// One point of the Figure 1 curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct CdfPoint {
    /// Top x % of publishers (by content count).
    pub pct_publishers: f64,
    /// Percentage of all published content they account for.
    pub pct_content: f64,
}

/// Computes Figure 1's curve: percentage of content published by the top
/// x % of publishers, evaluated at each publisher boundary.
///
/// Input must already be sorted by content count descending, which
/// [`crate::publishers::aggregate_publishers`] guarantees.
pub fn contribution_cdf(publishers: &[PublisherStats]) -> Vec<CdfPoint> {
    let total: usize = publishers.iter().map(PublisherStats::content_count).sum();
    if total == 0 || publishers.is_empty() {
        return Vec::new();
    }
    let mut acc = 0usize;
    publishers
        .iter()
        .enumerate()
        .map(|(i, p)| {
            acc += p.content_count();
            CdfPoint {
                pct_publishers: 100.0 * (i + 1) as f64 / publishers.len() as f64,
                pct_content: 100.0 * acc as f64 / total as f64,
            }
        })
        .collect()
}

/// Evaluates the curve at `pct` (e.g. 3.0 → content share of the top 3 %).
pub fn content_share_of_top(publishers: &[PublisherStats], pct: f64) -> f64 {
    let cdf = contribution_cdf(publishers);
    cdf.iter()
        .take_while(|p| p.pct_publishers <= pct + 1e-9)
        .last()
        .map_or(0.0, |p| p.pct_content)
}

/// Content and download shares of the top `k` publishers — the paper's
/// headline "~100 publishers ⇒ 2/3 of content, 3/4 of downloads".
pub fn shares_of_top_k(publishers: &[PublisherStats], k: usize) -> (f64, f64) {
    let total_content: usize = publishers.iter().map(PublisherStats::content_count).sum();
    let total_downloads: u64 = publishers.iter().map(|p| p.downloads).sum();
    if total_content == 0 {
        return (0.0, 0.0);
    }
    let top_content: usize = publishers
        .iter()
        .take(k)
        .map(PublisherStats::content_count)
        .sum();
    let top_downloads: u64 = publishers.iter().take(k).map(|p| p.downloads).sum();
    (
        top_content as f64 / total_content as f64,
        if total_downloads == 0 {
            0.0
        } else {
            top_downloads as f64 / total_downloads as f64
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publishers::PublisherKey;

    fn stats(counts: &[usize]) -> Vec<PublisherStats> {
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| PublisherStats {
                key: PublisherKey::Username(format!("u{i}")),
                torrents: (0..c).collect(),
                downloads: (c * 10) as u64,
                ips: Default::default(),
            })
            .collect()
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_100() {
        let s = stats(&[50, 30, 10, 5, 3, 1, 1]);
        let cdf = contribution_cdf(&s);
        assert_eq!(cdf.len(), 7);
        for w in cdf.windows(2) {
            assert!(w[1].pct_publishers > w[0].pct_publishers);
            assert!(w[1].pct_content >= w[0].pct_content);
        }
        assert!((cdf.last().unwrap().pct_content - 100.0).abs() < 1e-9);
        assert!((cdf.last().unwrap().pct_publishers - 100.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_input_shows_skewed_curve() {
        let s = stats(&[90, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1]);
        // Top ~9% (1 of 11) holds 90% of content.
        let share = content_share_of_top(&s, 10.0);
        assert!(share > 89.0, "share {share}");
    }

    #[test]
    fn shares_of_top_k_headline() {
        let s = stats(&[60, 40, 1, 1, 1, 1]);
        let (content, downloads) = shares_of_top_k(&s, 2);
        assert!((content - 100.0 / 104.0).abs() < 1e-9);
        assert!((downloads - 1000.0 / 1040.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        assert!(contribution_cdf(&[]).is_empty());
        assert_eq!(shares_of_top_k(&[], 5), (0.0, 0.0));
        assert_eq!(content_share_of_top(&[], 3.0), 0.0);
    }
}
