//! §5.3 / Table 5 and §6: the money.
//!
//! The paper estimated each promoting web site's value, daily income and
//! daily visits by querying six independent web-statistics monitors
//! (sitelogr, cwire, websiteoutlook, …) and averaging. Those services are
//! long gone, so this module implements the *monitor oracle*: the site's
//! true traffic is derived from the ecosystem (every downloader of a
//! promoted torrent is a potential visitor), each synthetic monitor
//! observes it with independent log-normal reporting error, and the
//! analysis — exactly like the paper — averages the six noisy reports.
//! The substitution preserves what Table 5 is about: the *relationship*
//! between publishing scale and site economics, and the robustness of the
//! median across noisy monitors.

use btpub_fxhash::FxHashMap;
use btpub_sim::profile::BusinessClass;
use btpub_sim::rngs;
use btpub_sim::Ecosystem;

use crate::classify::Classified;
use crate::publishers::PublisherKey;
use crate::stats::MinMedAvgMax;

/// Number of independent monitoring services averaged (the paper's six).
pub const MONITOR_COUNT: usize = 6;

/// Reporting noise of one monitor (log-normal sigma).
pub const MONITOR_SIGMA: f64 = 0.35;

/// Dollars of site value per dollar of daily income (empirically ~600 in
/// the paper's medians: $33 K value vs $55/day income).
pub const VALUE_PER_DAILY_INCOME: f64 = 600.0;

/// One publisher's averaged monitor report.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteReport {
    /// Publisher key.
    pub key: PublisherKey,
    /// Promoted URL.
    pub url: String,
    /// Average reported site value, dollars.
    pub value_dollars: f64,
    /// Average reported daily income, dollars.
    pub daily_income_dollars: f64,
    /// Average reported daily visits.
    pub daily_visits: f64,
}

/// One row of Table 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EconomicsRow {
    /// Class (BT Portals or Other Web sites).
    pub class: BusinessClass,
    /// Site value summary.
    pub value_dollars: MinMedAvgMax,
    /// Daily income summary.
    pub daily_income_dollars: MinMedAvgMax,
    /// Daily visits summary.
    pub daily_visits: MinMedAvgMax,
}

/// Queries the six synthetic monitors for every profit-driven classified
/// publisher. `scale_correction` compensates a scaled-down simulation
/// (pass `1 / downloads_scale` to report paper-scale traffic).
pub fn site_reports(
    eco: &Ecosystem,
    classified: &[Classified],
    scale_correction: f64,
) -> Vec<SiteReport> {
    // True traffic per username: downloads of their torrents × conversion.
    let mut downloads_by_username: FxHashMap<&str, u64> = FxHashMap::default();
    for (p, s) in eco.publications.iter().zip(&eco.swarms) {
        *downloads_by_username
            .entry(p.username.as_str())
            .or_default() += s.downloads() as u64;
    }
    let publishers_by_username: FxHashMap<&str, &btpub_sim::Publisher> = eco
        .publishers
        .iter()
        .map(|p| (p.primary_username(), p))
        .collect();
    let window_days = eco.config.duration.as_days();
    classified
        .iter()
        .filter_map(|c| {
            let url = c.url.clone()?;
            let PublisherKey::Username(username) = &c.key else {
                return None;
            };
            let publisher = publishers_by_username.get(username.as_str())?;
            let website = publisher.website.as_ref()?;
            let downloads = *downloads_by_username.get(username.as_str()).unwrap_or(&0);
            let true_daily_visits =
                downloads as f64 / window_days * website.conversion * scale_correction;
            let true_daily_income = true_daily_visits / 1000.0 * website.rpm_dollars;
            let true_value = true_daily_income * VALUE_PER_DAILY_INCOME;
            // Six noisy monitors, averaged — deterministic per publisher.
            let mut sums = [0.0f64; 3];
            for monitor in 0..MONITOR_COUNT {
                let mut rng = rngs::derive(
                    eco.config.seed,
                    "monitor",
                    u64::from(publisher.id.0) * 16 + monitor as u64,
                );
                sums[0] += true_value * rngs::lognormal(&mut rng, 0.0, MONITOR_SIGMA);
                sums[1] += true_daily_income * rngs::lognormal(&mut rng, 0.0, MONITOR_SIGMA);
                sums[2] += true_daily_visits * rngs::lognormal(&mut rng, 0.0, MONITOR_SIGMA);
            }
            Some(SiteReport {
                key: c.key.clone(),
                url,
                value_dollars: sums[0] / MONITOR_COUNT as f64,
                daily_income_dollars: sums[1] / MONITOR_COUNT as f64,
                daily_visits: sums[2] / MONITOR_COUNT as f64,
            })
        })
        .collect()
}

/// Builds Table 5 from the per-site reports.
pub fn economics_rows(classified: &[Classified], reports: &[SiteReport]) -> Vec<EconomicsRow> {
    let class_of: FxHashMap<&PublisherKey, BusinessClass> =
        classified.iter().map(|c| (&c.key, c.class)).collect();
    [BusinessClass::BtPortal, BusinessClass::OtherWeb]
        .into_iter()
        .filter_map(|class| {
            let members: Vec<&SiteReport> = reports
                .iter()
                .filter(|r| class_of.get(&r.key) == Some(&class))
                .collect();
            let col = |f: &dyn Fn(&SiteReport) -> f64| {
                MinMedAvgMax::of(&members.iter().map(|r| f(r)).collect::<Vec<_>>())
            };
            Some(EconomicsRow {
                class,
                value_dollars: col(&|r| r.value_dollars)?,
                daily_income_dollars: col(&|r| r.daily_income_dollars)?,
                daily_visits: col(&|r| r.daily_visits)?,
            })
        })
        .collect()
}

/// §6's hosting-provider income estimate: distinct publisher IPs seen at
/// the provider × the monthly server price (the paper: OVH, 78–164
/// servers, ≈300 €/month ⇒ 23.4–42.9 K €/month).
pub fn hosting_income_estimate(
    dataset: &btpub_crawler::Dataset,
    db: &btpub_geodb::GeoDb,
    provider: &str,
    monthly_price_eur: f64,
) -> (usize, f64) {
    hosting_income_from(
        &crate::isp::isp_footprint(dataset, db, provider),
        monthly_price_eur,
    )
}

/// Core of [`hosting_income_estimate`] over an already-computed footprint
/// (shared with the streaming path).
pub fn hosting_income_from(
    fp: &crate::isp::IspFootprint,
    monthly_price_eur: f64,
) -> (usize, f64) {
    (fp.ip_addresses, fp.ip_addresses as f64 * monthly_price_eur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fake::assign_groups;
    use crate::publishers::aggregate_publishers;
    use btpub_crawler::{run_crawl, CrawlerConfig};
    use btpub_sim::{Ecosystem, EcosystemConfig};

    fn setup() -> (Ecosystem, Vec<Classified>) {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(123));
        let ds = run_crawl(&eco, &CrawlerConfig::default());
        let pubs = aggregate_publishers(&ds);
        let groups = assign_groups(&ds, &pubs, &eco.world.db, 30);
        let classified = crate::classify::classify_top(&ds, &pubs, &groups);
        (eco, classified)
    }

    #[test]
    fn reports_cover_profit_driven_publishers() {
        let (eco, classified) = setup();
        let reports = site_reports(&eco, &classified, 1.0);
        let profit_driven = classified
            .iter()
            .filter(|c| c.class.is_profit_driven() && c.url.is_some())
            .count();
        assert!(!reports.is_empty());
        // Some classified publishers may have heuristic URLs that do not
        // match a ground-truth website; most must.
        assert!(reports.len() * 10 >= profit_driven * 7);
        for r in &reports {
            assert!(r.value_dollars >= 0.0);
            assert!(r.daily_income_dollars >= 0.0);
            assert!(r.daily_visits >= 0.0);
            // Value ≈ income × multiplier, up to monitor noise.
            if r.daily_income_dollars > 0.0 {
                let ratio = r.value_dollars / (r.daily_income_dollars * VALUE_PER_DAILY_INCOME);
                assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
            }
        }
    }

    #[test]
    fn scale_correction_scales_linearly() {
        let (eco, classified) = setup();
        let r1 = site_reports(&eco, &classified, 1.0);
        let r10 = site_reports(&eco, &classified, 10.0);
        for (a, b) in r1.iter().zip(&r10) {
            assert!((b.daily_visits / a.daily_visits.max(1e-12) - 10.0).abs() < 1e-6);
        }
    }

    #[test]
    fn economics_rows_have_ordered_summaries() {
        let (eco, classified) = setup();
        let reports = site_reports(&eco, &classified, 1.0);
        let rows = economics_rows(&classified, &reports);
        assert!(!rows.is_empty());
        for row in &rows {
            assert!(row.value_dollars.min <= row.value_dollars.median);
            assert!(row.value_dollars.median <= row.value_dollars.max);
            assert!(row.daily_visits.min <= row.daily_visits.max);
        }
    }

    #[test]
    fn monitor_reports_are_deterministic() {
        let (eco, classified) = setup();
        let a = site_reports(&eco, &classified, 1.0);
        let b = site_reports(&eco, &classified, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn hosting_income_counts_fake_providers_servers() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(123));
        let ds = run_crawl(&eco, &CrawlerConfig::default());
        let (servers, income) = hosting_income_estimate(&ds, &eco.world.db, "tzulo", 300.0);
        assert_eq!(income, servers as f64 * 300.0);
    }
}
