//! §4.3 / Figure 4: seeding-behaviour signature of publishers.
//!
//! All three metrics derive from the publisher's *estimated* seeding
//! sessions, reconstructed per torrent from tracker sightings with the
//! Appendix A threshold:
//!
//! * **average seeding time per torrent** (Fig. 4a),
//! * **average number of torrents seeded in parallel** (Fig. 4b) —
//!   computed as total per-torrent seeding time divided by the measure of
//!   the union (the time-average of concurrency while seeding at all),
//! * **aggregated session time** (Fig. 4c) — the measure of the union of
//!   sessions across all the publisher's torrents.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use btpub_crawler::{Dataset, TorrentRecord};
use btpub_sim::intervals::IntervalSet;
use btpub_sim::{SimDuration, SimTime};

use crate::fake::{Group, Groups};
use crate::popularity::ALL_SAMPLE;
use crate::publishers::PublisherStats;
use crate::session::{default_offline_threshold, estimate_sessions};
use crate::stats::{BoxStats, QuantileSketch};

/// One publisher's Figure 4 metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedingMetrics {
    /// Average estimated seeding time per torrent, in hours (Fig. 4a).
    pub avg_seed_time_h: f64,
    /// Average number of torrents seeded in parallel (Fig. 4b).
    pub avg_parallel: f64,
    /// Aggregated session time across all torrents, in hours (Fig. 4c).
    pub aggregated_session_h: f64,
    /// Torrents that contributed (publisher IP identified + sightings).
    pub torrents_measured: usize,
}

/// Estimates the publisher's sessions in one torrent from its sightings.
///
/// Padding is half the typical observed query spacing, so an isolated
/// sighting still counts as a short presence rather than zero.
pub fn torrent_sessions(rec: &TorrentRecord, threshold: SimDuration) -> IntervalSet {
    let seen: Vec<SimTime> = rec
        .sightings
        .iter()
        .filter(|s| s.publisher_seen)
        .map(|s| s.at)
        .collect();
    if seen.is_empty() {
        return IntervalSet::new();
    }
    let pad = SimDuration(typical_gap(rec).secs() / 2);
    estimate_sessions(&seen, threshold, pad)
}

/// Median gap between consecutive sightings, clamped to [1, 15] minutes.
fn typical_gap(rec: &TorrentRecord) -> SimDuration {
    let mut gaps: Vec<u64> = rec
        .sightings
        .windows(2)
        .map(|w| w[1].at.since(w[0].at).secs())
        .collect();
    if gaps.is_empty() {
        return SimDuration(600);
    }
    gaps.sort_unstable();
    SimDuration(gaps[gaps.len() / 2].clamp(60, 900))
}

/// Incremental Figure 4 accumulator for one publisher (or one fake-IP
/// entity). Records fold in one at a time, in torrent-index order; the
/// memory footprint is one [`IntervalSet`] plus three scalars, regardless
/// of how many records contributed.
///
/// [`publisher_seeding_metrics`] folds a materialized dataset through
/// this same accumulator, so both drivers run identical float arithmetic
/// in identical order.
#[derive(Debug, Clone, Default)]
pub struct SeedAcc {
    union: IntervalSet,
    per_torrent_total: SimDuration,
    measured: usize,
    sum_hours: f64,
}

impl SeedAcc {
    /// Folds one record in. Torrents without an identified publisher IP
    /// or without publisher sightings contribute nothing, as in the
    /// materialized pass.
    pub fn observe(&mut self, rec: &TorrentRecord, threshold: SimDuration) {
        if rec.publisher_ip.is_none() {
            return;
        }
        let sessions = torrent_sessions(rec, threshold);
        self.observe_sessions(&sessions);
    }

    /// Folds pre-estimated sessions in (lets an ingest loop estimate the
    /// sessions once and feed several accumulators).
    pub fn observe_sessions(&mut self, sessions: &IntervalSet) {
        if sessions.is_empty() {
            return;
        }
        self.measured += 1;
        self.sum_hours += sessions.total().as_hours();
        self.per_torrent_total += sessions.total();
        self.union.union_with(sessions);
    }

    /// Whether any record contributed.
    pub fn is_empty(&self) -> bool {
        self.measured == 0
    }

    /// Finishes into the Figure 4 metrics, or `None` when no torrent
    /// contributed.
    pub fn metrics(&self) -> Option<SeedingMetrics> {
        if self.measured == 0 {
            return None;
        }
        let union_h = self.union.total().as_hours();
        Some(SeedingMetrics {
            avg_seed_time_h: self.sum_hours / self.measured as f64,
            avg_parallel: if union_h > 0.0 {
                self.per_torrent_total.as_hours() / union_h
            } else {
                0.0
            },
            aggregated_session_h: union_h,
            torrents_measured: self.measured,
        })
    }

    /// Serializes the accumulator for a checkpoint: the union's disjoint
    /// intervals plus the three scalars (`sum_hours` as raw bits — the
    /// restored float must be the identical bit pattern, not a re-parse).
    pub fn encode_state(&self, enc: &mut btpub_stream::checkpoint::Enc) {
        enc.usize(self.union.session_count());
        for (a, b) in self.union.iter() {
            enc.u64(a.0);
            enc.u64(b.0);
        }
        enc.u64(self.per_torrent_total.0);
        enc.usize(self.measured);
        enc.f64(self.sum_hours);
    }

    /// Restores from [`Self::encode_state`] bytes.
    pub fn decode_state(
        dec: &mut btpub_stream::checkpoint::Dec,
    ) -> Result<Self, btpub_stream::checkpoint::CheckpointError> {
        let n = dec.usize()?;
        let mut raw = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let a = SimTime(dec.u64()?);
            let b = SimTime(dec.u64()?);
            raw.push((a, b));
        }
        Ok(Self {
            union: IntervalSet::from_raw(raw),
            per_torrent_total: SimDuration(dec.u64()?),
            measured: dec.usize()?,
            sum_hours: dec.f64()?,
        })
    }
}

/// Computes the Figure 4 metrics for one publisher, or `None` when no
/// torrent of theirs has an identified IP with sightings.
pub fn publisher_seeding_metrics(
    dataset: &Dataset,
    p: &PublisherStats,
    threshold: SimDuration,
) -> Option<SeedingMetrics> {
    let mut acc = SeedAcc::default();
    for &idx in &p.torrents {
        acc.observe(&dataset.torrents[idx], threshold);
    }
    acc.metrics()
}

/// Figure 4's three boxes for one group. The `All` group is a random
/// 400-publisher sample, as in the paper.
pub fn group_seeding_boxes(
    dataset: &Dataset,
    publishers: &[PublisherStats],
    groups: &Groups,
    group: Group,
    sample_seed: u64,
) -> Option<(BoxStats, BoxStats, BoxStats)> {
    // Per-publisher session estimation is independent work over read-only
    // records; fan it out (results come back in member order).
    group_seeding_boxes_with(publishers, groups, group, sample_seed, |members| {
        btpub_par::par_chunk_map("analysis.seeding", members, |p| {
            publisher_seeding_metrics(dataset, p, default_offline_threshold())
        })
        .into_iter()
        .flatten()
        .collect()
    })
}

/// Core of [`group_seeding_boxes`], parameterized over where the
/// per-publisher metrics come from: the materialized path estimates them
/// from the full dataset, the streaming path looks up accumulators built
/// at ingest. Both feed the same [`QuantileSketch`]-backed boxes, exact
/// below the sketch budget.
pub fn group_seeding_boxes_with(
    publishers: &[PublisherStats],
    groups: &Groups,
    group: Group,
    sample_seed: u64,
    metrics_of: impl FnOnce(&[&PublisherStats]) -> Vec<SeedingMetrics>,
) -> Option<(BoxStats, BoxStats, BoxStats)> {
    let mut members: Vec<&PublisherStats> = publishers
        .iter()
        .filter(|p| groups.contains(&p.key, group))
        .collect();
    if group == Group::All && members.len() > ALL_SAMPLE {
        let mut rng = StdRng::seed_from_u64(sample_seed);
        members.shuffle(&mut rng);
        members.truncate(ALL_SAMPLE);
    }
    let metrics = metrics_of(&members);
    if metrics.is_empty() {
        return None;
    }
    let mut seed_times = QuantileSketch::new();
    let mut parallel = QuantileSketch::new();
    let mut aggregated = QuantileSketch::new();
    for m in &metrics {
        seed_times.push(m.avg_seed_time_h);
        parallel.push(m.avg_parallel);
        aggregated.push(m.aggregated_session_h);
    }
    Some((
        seed_times.box_stats()?,
        parallel.box_stats()?,
        aggregated.box_stats()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publishers::PublisherKey;
    use btpub_crawler::Sighting;
    use btpub_sim::content::Category;
    use btpub_sim::TorrentId;

    use std::net::Ipv4Addr;

    fn rec_with_sightings(id: u32, seen_hours: &[f64], gap_all_hours: f64) -> TorrentRecord {
        // Sightings every `gap_all_hours`; publisher seen at `seen_hours`.
        let mut sightings = Vec::new();
        let mut t = 0.0f64;
        while t <= 48.0 {
            sightings.push(Sighting {
                at: SimTime::from_hours(t),
                complete: 1,
                incomplete: 1,
                sampled: 2,
                publisher_seen: seen_hours.iter().any(|&s| (s - t).abs() < 1e-9),
            });
            t += gap_all_hours;
        }
        TorrentRecord {
            torrent: TorrentId(id),
            announced_at: SimTime(0),
            first_contact_at: Some(SimTime(0)),
            category: Category::Movies,
            title: "t".into(),
            filename: "t".into(),
            textbox: None,
            size_bytes: 1,
            language: None,
            username: Some("u".into()),
            publisher_ip: Some(Ipv4Addr::new(1, 2, 3, 4)),
            ip_failure: None,
            first_complete: 1,
            first_incomplete: 0,
            sightings,
            observed_ips: vec![],
            observed_removed: false,
        }
    }

    fn ds(torrents: Vec<TorrentRecord>) -> Dataset {
        Dataset {
            name: "t".into(),
            start: SimTime(0),
            end: SimTime::from_hours(48.0),
            has_usernames: true,
            torrents,
        }
    }

    #[test]
    fn torrent_sessions_from_sightings() {
        // Away from t=0 so the left pad is not clipped by the epoch.
        let rec = rec_with_sightings(0, &[10.0, 10.25, 10.5, 10.75, 11.0], 0.25);
        let s = torrent_sessions(&rec, default_offline_threshold());
        assert_eq!(s.session_count(), 1);
        // 1 hour span + 2×pad (pad = 7.5 min).
        let total = s.total().as_hours();
        assert!((total - 1.25).abs() < 0.01, "total {total}");
    }

    #[test]
    fn no_sightings_no_sessions() {
        let rec = rec_with_sightings(0, &[], 0.25);
        assert!(torrent_sessions(&rec, default_offline_threshold()).is_empty());
    }

    #[test]
    fn parallel_metric_reflects_overlap() {
        // Two torrents seeded over the same 10 h window → parallel ≈ 2.
        let seen: Vec<f64> = (0..=40).map(|i| i as f64 * 0.25).collect();
        let d = ds(vec![
            rec_with_sightings(0, &seen, 0.25),
            rec_with_sightings(1, &seen, 0.25),
        ]);
        let p = PublisherStats {
            key: PublisherKey::Username("u".into()),
            torrents: vec![0, 1],
            downloads: 0,
            ips: Default::default(),
        };
        let m = publisher_seeding_metrics(&d, &p, default_offline_threshold()).unwrap();
        assert_eq!(m.torrents_measured, 2);
        assert!((m.avg_parallel - 2.0).abs() < 0.05, "parallel {}", m.avg_parallel);
        // Aggregated = union ≈ 10 h (not 20).
        assert!((m.aggregated_session_h - 10.25).abs() < 0.2);
        assert!((m.avg_seed_time_h - 10.25).abs() < 0.2);
    }

    #[test]
    fn disjoint_seeding_is_sequential() {
        let early: Vec<f64> = (0..=8).map(|i| i as f64 * 0.25).collect(); // 0..2h
        let late: Vec<f64> = (0..=8).map(|i| 24.0 + i as f64 * 0.25).collect(); // 24..26h
        let d = ds(vec![
            rec_with_sightings(0, &early, 0.25),
            rec_with_sightings(1, &late, 0.25),
        ]);
        let p = PublisherStats {
            key: PublisherKey::Username("u".into()),
            torrents: vec![0, 1],
            downloads: 0,
            ips: Default::default(),
        };
        let m = publisher_seeding_metrics(&d, &p, default_offline_threshold()).unwrap();
        assert!((m.avg_parallel - 1.0).abs() < 0.05);
        assert!((m.aggregated_session_h - 4.5).abs() < 0.3);
    }

    #[test]
    fn unidentified_torrents_are_skipped() {
        let mut r = rec_with_sightings(0, &[0.0, 0.25], 0.25);
        r.publisher_ip = None;
        let d = ds(vec![r]);
        let p = PublisherStats {
            key: PublisherKey::Username("u".into()),
            torrents: vec![0],
            downloads: 0,
            ips: Default::default(),
        };
        assert!(publisher_seeding_metrics(&d, &p, default_offline_threshold()).is_none());
    }
}
