//! §3.3: fake-publisher detection and group assignment.
//!
//! Two signals expose fake publishers, both available to the crawler
//! without ground truth:
//!
//! 1. **account takedowns** — portals remove fake listings and ban the
//!    accounts; a username any of whose torrents was observed removed is
//!    fake-tainted (the paper: "we exploit this fact to identify if a
//!    username has been used by a fake publisher");
//! 2. **IP ↔ username fan-out** — fake entities publish under many hacked
//!    or throwaway accounts from the same rented servers, so an initial-
//!    seeder IP mapping to several usernames is a fake-publisher IP.
//!
//! The *Top* group is then the top-`k` username ranking minus the tainted
//! accounts, split into Top-HP / Top-CI by each publisher's dominant ISP
//! kind.

use btpub_crawler::{Dataset, TorrentRecord};
use btpub_fxhash::{FxHashMap, FxHashSet, Interner, Sym};
use btpub_geodb::{GeoDb, IspKind};

use crate::isp::dominant_kind;
use crate::publishers::{
    intern_usernames, ip_to_usernames, top_ips_by_content, PublisherKey, PublisherStats,
};

/// The analysis groups of §4's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// A random sample of all publishers (the paper uses 400).
    All,
    /// Fake publishers.
    Fake,
    /// Top-k non-fake publishers.
    Top,
    /// Top publishers at hosting providers.
    TopHp,
    /// Top publishers at commercial ISPs.
    TopCi,
}

impl Group {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Group::All => "All",
            Group::Fake => "Fake",
            Group::Top => "Top",
            Group::TopHp => "Top-HP",
            Group::TopCi => "Top-CI",
        }
    }

    /// All groups in figure order.
    pub const ALL: [Group; 5] = [Group::All, Group::Fake, Group::Top, Group::TopHp, Group::TopCi];
}

/// Result of group assignment.
#[derive(Debug, Clone, Default)]
pub struct Groups {
    /// Usernames flagged as fake (tainted by takedowns or fake IPs).
    pub fake_usernames: FxHashSet<String>,
    /// Initial-seeder IPs attributed to fake entities.
    pub fake_ips: FxHashSet<u32>,
    /// The Top set: top-k ranking minus fake-tainted usernames.
    pub top: Vec<PublisherKey>,
    /// Top publishers whose dominant ISP is a hosting provider.
    pub top_hp: FxHashSet<PublisherKey>,
    /// Top publishers whose dominant ISP is a commercial ISP.
    pub top_ci: FxHashSet<PublisherKey>,
    /// How many of the original top-k were dropped as compromised.
    pub compromised_in_top_k: usize,
}

impl Groups {
    /// Whether a publisher key belongs to a group.
    pub fn contains(&self, key: &PublisherKey, group: Group) -> bool {
        match group {
            Group::All => true,
            Group::Fake => match key {
                PublisherKey::Username(u) => self.fake_usernames.contains(u),
                PublisherKey::Ip(ip) => self.fake_ips.contains(ip),
            },
            Group::Top => self.top.contains(key),
            Group::TopHp => self.top_hp.contains(key),
            Group::TopCi => self.top_ci.contains(key),
        }
    }
}

/// Minimum distinct usernames on one IP to call it a fake-publisher IP.
pub const FAKE_IP_USERNAME_THRESHOLD: usize = 3;

/// The per-record evidence §3.3's detection consumes, accumulated one
/// record at a time. The materialized [`assign_groups`] and
/// [`mapping_stats`] scans and the streaming ingest loop both fold
/// records through [`GroupSignals::observe`], so detection sees exactly
/// the same evidence either way.
#[derive(Debug, Clone, Default)]
pub struct GroupSignals {
    /// Usernames tainted by takedowns (signal 1).
    pub fake_syms: FxHashSet<Sym>,
    /// IP → usernames it published under (signal 2 fan-out).
    pub by_ip: FxHashMap<u32, FxHashSet<Sym>>,
    /// IP → (identified torrents, removed torrents) — the corroboration.
    pub ip_removed: FxHashMap<u32, (usize, usize)>,
    /// (username, IP) → torrents identified from that pair (§3.3 mapping).
    pub ip_torrents: FxHashMap<(Sym, u32), usize>,
    /// IP → identified content count (the top-IP ranking's raw counts).
    pub ip_content: FxHashMap<u32, usize>,
}

impl GroupSignals {
    /// Folds one record's evidence in. `users` must already contain the
    /// record's username (interning happens in record order upstream).
    pub fn observe(&mut self, rec: &TorrentRecord, users: &Interner) {
        let sym = rec
            .username
            .as_ref()
            .map(|u| users.get(u).expect("username interned"));
        if rec.observed_removed {
            if let Some(sym) = sym {
                self.fake_syms.insert(sym);
            }
        }
        if let Some(ip) = rec.publisher_ip {
            let ip = u32::from(ip);
            let e = self.ip_removed.entry(ip).or_default();
            e.0 += 1;
            e.1 += usize::from(rec.observed_removed);
            *self.ip_content.entry(ip).or_default() += 1;
            if let Some(sym) = sym {
                self.by_ip.entry(ip).or_default().insert(sym);
                *self.ip_torrents.entry((sym, ip)).or_default() += 1;
            }
        }
    }

    /// Serializes the evidence for a checkpoint. Symbols are written by
    /// dense index (re-interning the same usernames in the same order
    /// reconstructs them); every map and set is key-sorted so the same
    /// state always yields the same bytes.
    pub fn encode_state(&self, enc: &mut btpub_stream::checkpoint::Enc) {
        let mut syms: Vec<u32> = self.fake_syms.iter().map(|s| s.index() as u32).collect();
        syms.sort_unstable();
        enc.usize(syms.len());
        for s in syms {
            enc.u32(s);
        }
        let mut by_ip: Vec<(u32, Vec<u32>)> = self
            .by_ip
            .iter()
            .map(|(&ip, set)| {
                let mut inner: Vec<u32> = set.iter().map(|s| s.index() as u32).collect();
                inner.sort_unstable();
                (ip, inner)
            })
            .collect();
        by_ip.sort_unstable();
        enc.usize(by_ip.len());
        for (ip, inner) in by_ip {
            enc.u32(ip);
            enc.usize(inner.len());
            for s in inner {
                enc.u32(s);
            }
        }
        let mut removed: Vec<(u32, (usize, usize))> =
            self.ip_removed.iter().map(|(&ip, &v)| (ip, v)).collect();
        removed.sort_unstable();
        enc.usize(removed.len());
        for (ip, (total, rm)) in removed {
            enc.u32(ip);
            enc.usize(total);
            enc.usize(rm);
        }
        let mut pairs: Vec<((u32, u32), usize)> = self
            .ip_torrents
            .iter()
            .map(|(&(sym, ip), &n)| ((sym.index() as u32, ip), n))
            .collect();
        pairs.sort_unstable();
        enc.usize(pairs.len());
        for ((sym, ip), n) in pairs {
            enc.u32(sym);
            enc.u32(ip);
            enc.usize(n);
        }
        let mut content: Vec<(u32, usize)> =
            self.ip_content.iter().map(|(&ip, &n)| (ip, n)).collect();
        content.sort_unstable();
        enc.usize(content.len());
        for (ip, n) in content {
            enc.u32(ip);
            enc.usize(n);
        }
    }

    /// Restores from [`Self::encode_state`] bytes. `users` must already
    /// hold the re-interned usernames of the resumed fold.
    pub fn decode_state(
        dec: &mut btpub_stream::checkpoint::Dec,
        users: &Interner,
    ) -> Result<Self, btpub_stream::checkpoint::CheckpointError> {
        use btpub_stream::checkpoint::CheckpointError;
        let sym = |idx: u32| {
            users
                .sym_at(idx as usize)
                .ok_or(CheckpointError::Decode { what: "GroupSignals symbol index" })
        };
        let mut out = GroupSignals::default();
        for _ in 0..dec.usize()? {
            out.fake_syms.insert(sym(dec.u32()?)?);
        }
        for _ in 0..dec.usize()? {
            let ip = dec.u32()?;
            let n = dec.usize()?;
            let mut set = FxHashSet::default();
            for _ in 0..n {
                set.insert(sym(dec.u32()?)?);
            }
            out.by_ip.insert(ip, set);
        }
        for _ in 0..dec.usize()? {
            let ip = dec.u32()?;
            let total = dec.usize()?;
            let rm = dec.usize()?;
            out.ip_removed.insert(ip, (total, rm));
        }
        for _ in 0..dec.usize()? {
            let s = sym(dec.u32()?)?;
            let ip = dec.u32()?;
            let n = dec.usize()?;
            out.ip_torrents.insert((s, ip), n);
        }
        for _ in 0..dec.usize()? {
            let ip = dec.u32()?;
            let n = dec.usize()?;
            out.ip_content.insert(ip, n);
        }
        Ok(out)
    }

    /// Content counts per identified IP, sorted descending with the same
    /// tie-break as [`top_ips_by_content`].
    pub fn top_ips(&self) -> Vec<(u32, usize)> {
        let mut out: Vec<(u32, usize)> = self.ip_content.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Scans a materialized dataset into [`GroupSignals`].
pub fn collect_signals(dataset: &Dataset, users: &Interner) -> GroupSignals {
    let mut signals = GroupSignals::default();
    for rec in &dataset.torrents {
        signals.observe(rec, users);
    }
    signals
}

/// Runs §3.3's detection and grouping over a username-bearing dataset.
pub fn assign_groups(
    dataset: &Dataset,
    publishers: &[PublisherStats],
    db: &GeoDb,
    top_k: usize,
) -> Groups {
    let _span = btpub_obs::span!("analysis.assign_groups");
    if !dataset.has_usernames {
        return assign_groups_from(&GroupSignals::default(), publishers, db, top_k, None);
    }
    // Both signals work on interned symbols; strings are resolved once at
    // the end, so the per-record and per-IP set operations hash a `u32`
    // instead of username bytes.
    let users = intern_usernames(dataset);
    let signals = collect_signals(dataset, &users);
    assign_groups_from(&signals, publishers, db, top_k, Some(&users))
}

/// Core of [`assign_groups`], shared with the streaming path: turns the
/// accumulated per-record evidence into group assignments. `users` is
/// `None` for mn08-style datasets without usernames.
pub fn assign_groups_from(
    signals: &GroupSignals,
    publishers: &[PublisherStats],
    db: &GeoDb,
    top_k: usize,
    users: Option<&Interner>,
) -> Groups {
    let mut groups = Groups::default();
    let Some(users) = users else {
        // mn08 mode: no username signal; groups reduce to top-by-IP.
        for p in publishers.iter().take(top_k) {
            groups.top.push(p.key.clone());
            match dominant_kind(p, db) {
                Some(IspKind::HostingProvider) => {
                    groups.top_hp.insert(p.key.clone());
                }
                Some(IspKind::CommercialIsp) => {
                    groups.top_ci.insert(p.key.clone());
                }
                None => {}
            }
        }
        return groups;
    };
    // Signal 1 (takedowns) arrives pre-accumulated in `fake_syms`.
    let mut fake_syms = signals.fake_syms.clone();
    // Signal 2: IP → many usernames, corroborated by takedowns. The
    // corroboration matters: a compromised *genuine* publisher's servers
    // must not be labelled fake because one hacked username also appears
    // on them (the hacked publications are seeded from the fake entity's
    // servers, not the victim's), and a one-off misidentified downloader
    // on a removed listing must not be labelled either.
    for (ip, usernames) in &signals.by_ip {
        let (identified, removed) = signals.ip_removed.get(ip).copied().unwrap_or((0, 0));
        let mostly_removed = identified >= 2 && removed * 2 >= identified;
        let username_mill = usernames.len() >= FAKE_IP_USERNAME_THRESHOLD && removed > 0;
        if username_mill || mostly_removed {
            groups.fake_ips.insert(*ip);
        }
    }
    // Usernames published from fake IPs are fake too (throwaway accounts
    // whose torrents happened not to be removed yet).
    for (ip, usernames) in &signals.by_ip {
        if groups.fake_ips.contains(ip) {
            fake_syms.extend(usernames);
        }
    }
    // Report boundary: one string clone per tainted username.
    groups.fake_usernames = fake_syms.iter().map(|&s| users.resolve(s).to_string()).collect();
    // Exception: a username that is ALSO heavily published from clean IPs
    // is a compromised genuine account, not a fake entity. Keep it tainted
    // (excluded from Top) but do not propagate its clean IPs.
    // Top = top-k minus tainted.
    for p in publishers.iter().take(top_k) {
        let tainted = match &p.key {
            PublisherKey::Username(u) => {
                users.get(u).is_some_and(|s| fake_syms.contains(&s))
            }
            PublisherKey::Ip(ip) => groups.fake_ips.contains(ip),
        };
        if tainted {
            groups.compromised_in_top_k += 1;
            continue;
        }
        groups.top.push(p.key.clone());
        match dominant_kind(p, db) {
            Some(IspKind::HostingProvider) => {
                groups.top_hp.insert(p.key.clone());
            }
            Some(IspKind::CommercialIsp) => {
                groups.top_ci.insert(p.key.clone());
            }
            None => {}
        }
    }
    groups
}

/// Content and download shares of a group, over the whole dataset
/// (§3.3's "fake publishers are responsible for 30 % of content and 25 %
/// of downloads"; Top: 37 % / 50 %).
pub fn group_shares(dataset: &Dataset, publishers: &[PublisherStats], groups: &Groups, group: Group) -> (f64, f64) {
    let total_downloads: u64 = dataset
        .torrents
        .iter()
        .map(|t| t.observed_downloaders() as u64)
        .sum();
    group_shares_from(publishers, groups, group, dataset.torrent_count(), total_downloads)
}

/// Core of [`group_shares`] over campaign-wide totals instead of a
/// materialized dataset. A member's torrent count and download total are
/// already held in its [`PublisherStats`], so summing those per publisher
/// is integer-identical to walking the member torrents one by one.
pub fn group_shares_from(
    publishers: &[PublisherStats],
    groups: &Groups,
    group: Group,
    total_content: usize,
    total_downloads: u64,
) -> (f64, f64) {
    let (content, downloads) = publishers
        .iter()
        .filter(|p| groups.contains(&p.key, group))
        .fold((0usize, 0u64), |(c, d), p| {
            (c + p.content_count(), d + p.downloads)
        });
    (
        content as f64 / (total_content as f64).max(1.0),
        downloads as f64 / (total_downloads.max(1)) as f64,
    )
}

/// Builds per-*entity* stats for the fake group, keyed by initial-seeder
/// IP rather than username.
///
/// Fake entities publish under hundreds of throwaway accounts, so
/// username-keyed aggregation would dilute their signature to one or two
/// torrents per "publisher". The paper studies fake publishers as the
/// server IPs at their three hosting providers; this mirrors that.
pub fn fake_ip_stats(dataset: &Dataset, groups: &Groups) -> Vec<PublisherStats> {
    let mut agg: std::collections::BTreeMap<u32, (Vec<usize>, u64)> = Default::default();
    for (idx, rec) in dataset.torrents.iter().enumerate() {
        let Some(ip) = rec.publisher_ip else { continue };
        let ip = u32::from(ip);
        if !groups.fake_ips.contains(&ip) {
            continue;
        }
        let entry = agg.entry(ip).or_default();
        entry.0.push(idx);
        entry.1 += rec.observed_downloaders() as u64;
    }
    fake_entities_from(agg)
}

/// Core of [`fake_ip_stats`]: turns per-IP (torrent indices, downloads)
/// accumulators — keyed ascending by IP, fake IPs only — into the sorted
/// entity list. The sort is stable, so ties keep the ascending-IP order
/// of the `BTreeMap`.
pub fn fake_entities_from(
    per_ip: std::collections::BTreeMap<u32, (Vec<usize>, u64)>,
) -> Vec<PublisherStats> {
    let mut out: Vec<PublisherStats> = per_ip
        .into_iter()
        .map(|(ip, (torrents, downloads))| PublisherStats {
            key: PublisherKey::Ip(ip),
            torrents,
            downloads,
            ips: [ip].into_iter().collect(),
        })
        .collect();
    out.sort_by_key(|s| std::cmp::Reverse(s.content_count()));
    out
}

/// §3.3's username↔IP mapping statistics for the top-k publishers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MappingStats {
    /// Of the top-k *IPs*: fraction used by exactly one username
    /// (paper: 55 %).
    pub top_ips_unique_username: f64,
    /// Of the top-k *usernames*: fraction operating from a single IP
    /// (paper: 25 %).
    pub single_ip: f64,
    /// Fraction with multiple IPs at hosting providers (paper: 34 %,
    /// 5.7 IPs on average).
    pub multi_ip_hosting: f64,
    /// Average IP count in that class.
    pub avg_ips_hosting: f64,
    /// Fraction with multiple IPs inside one commercial ISP — DHCP churn
    /// (paper: 24 %, 13.8 IPs on average).
    pub multi_ip_single_ci: f64,
    /// Average IP count in that class.
    pub avg_ips_single_ci: f64,
    /// Fraction with IPs at several commercial ISPs — home + work
    /// (paper: 16 %).
    pub multi_ip_multi_ci: f64,
    /// Average IP count in that class.
    pub avg_ips_multi_ci: f64,
}

/// Computes [`MappingStats`] over the top-k of each ranking.
pub fn mapping_stats(
    dataset: &Dataset,
    publishers: &[PublisherStats],
    db: &GeoDb,
    top_k: usize,
) -> MappingStats {
    let users = intern_usernames(dataset);
    let top_ips = top_ips_by_content(dataset);
    let by_ip = ip_to_usernames(dataset, &users);
    let mut ip_torrents: FxHashMap<(Sym, u32), usize> = FxHashMap::default();
    for rec in &dataset.torrents {
        if let (Some(ip), Some(user)) = (rec.publisher_ip, &rec.username) {
            let sym = users.get(user).expect("username interned");
            *ip_torrents.entry((sym, u32::from(ip))).or_default() += 1;
        }
    }
    mapping_stats_from(publishers, db, top_k, &users, &top_ips, &by_ip, &ip_torrents)
}

/// Core of [`mapping_stats`], over pre-accumulated views (the streaming
/// path hands in the same maps built record by record).
#[allow(clippy::too_many_arguments)]
pub fn mapping_stats_from(
    publishers: &[PublisherStats],
    db: &GeoDb,
    top_k: usize,
    users: &Interner,
    top_ips: &[(u32, usize)],
    by_ip: &FxHashMap<u32, FxHashSet<Sym>>,
    ip_torrents: &FxHashMap<(Sym, u32), usize>,
) -> MappingStats {
    let mut stats = MappingStats::default();
    // Top IPs side.
    let considered: Vec<&(u32, usize)> = top_ips.iter().take(top_k).collect();
    if !considered.is_empty() {
        let unique = considered
            .iter()
            .filter(|(ip, _)| by_ip.get(ip).is_some_and(|u| u.len() == 1))
            .count();
        stats.top_ips_unique_username = unique as f64 / considered.len() as f64;
    }
    // Top usernames side: classify multi-IP patterns. A publisher's IP
    // set can contain rare misidentifications (a completed downloader
    // mistaken for the initial seeder), so only *significant* IPs — those
    // behind at least 10 % of the publisher's identified torrents — drive
    // the classification, mirroring the paper's manual inspection.
    let mut counts: FxHashMap<&'static str, (usize, f64)> = FxHashMap::default();
    let mut total = 0usize;
    for p in publishers.iter().take(top_k) {
        if p.ips.is_empty() {
            continue; // never identified; the paper cannot classify these
        }
        let username = match &p.key {
            crate::publishers::PublisherKey::Username(u) => users.get(u),
            crate::publishers::PublisherKey::Ip(_) => None,
        };
        let identified: usize = p
            .ips
            .iter()
            .map(|&ip| {
                username
                    .and_then(|u| ip_torrents.get(&(u, ip)))
                    .copied()
                    .unwrap_or(1)
            })
            .sum();
        let cutoff = (identified as f64 * 0.10).ceil() as usize;
        let significant: Vec<u32> = p
            .ips
            .iter()
            .copied()
            .filter(|&ip| {
                username
                    .and_then(|u| ip_torrents.get(&(u, ip)))
                    .copied()
                    .unwrap_or(1)
                    >= cutoff.max(1)
            })
            .collect();
        if significant.is_empty() {
            continue;
        }
        total += 1;
        let n_ips = significant.len() as f64;
        if significant.len() == 1 {
            counts.entry("single").or_default().0 += 1;
            continue;
        }
        let mut kinds = FxHashSet::default();
        let mut isps = FxHashSet::default();
        for &ip in &significant {
            if let Some(info) = db.lookup(std::net::Ipv4Addr::from(ip)) {
                kinds.insert(db.isp(info.isp).kind);
                isps.insert(info.isp);
            }
        }
        let class = if kinds.contains(&IspKind::HostingProvider) {
            "hosting"
        } else if isps.len() == 1 {
            "single_ci"
        } else {
            "multi_ci"
        };
        let e = counts.entry(class).or_default();
        e.0 += 1;
        e.1 += n_ips;
    }
    if total > 0 {
        let t = total as f64;
        let get = |k: &str| counts.get(k).copied().unwrap_or_default();
        stats.single_ip = get("single").0 as f64 / t;
        let (hc, hs) = get("hosting");
        stats.multi_ip_hosting = hc as f64 / t;
        stats.avg_ips_hosting = if hc > 0 { hs / hc as f64 } else { 0.0 };
        let (sc, ss) = get("single_ci");
        stats.multi_ip_single_ci = sc as f64 / t;
        stats.avg_ips_single_ci = if sc > 0 { ss / sc as f64 } else { 0.0 };
        let (mc, ms) = get("multi_ci");
        stats.multi_ip_multi_ci = mc as f64 / t;
        stats.avg_ips_multi_ci = if mc > 0 { ms / mc as f64 } else { 0.0 };
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publishers::aggregate_publishers;
    use btpub_crawler::TorrentRecord;
    use btpub_geodb::GeoDbBuilder;
    use btpub_sim::content::Category;
    use btpub_sim::{SimTime, TorrentId};
    use std::net::Ipv4Addr;

    fn db() -> GeoDb {
        let mut b = GeoDbBuilder::new();
        let hp = b.add_isp("HostCo", IspKind::HostingProvider, "US");
        let ci1 = b.add_isp("CableCo", IspKind::CommercialIsp, "US");
        let ci2 = b.add_isp("DslCo", IspKind::CommercialIsp, "US");
        let loc = b.add_location("X", "US");
        b.add_slash16(0x0A00, hp, loc);
        b.add_slash16(0x1800, ci1, loc);
        b.add_slash16(0x2000, ci2, loc);
        b.build().unwrap()
    }

    fn rec(id: u32, user: &str, ip: Option<[u8; 4]>, removed: bool) -> TorrentRecord {
        TorrentRecord {
            torrent: TorrentId(id),
            announced_at: SimTime(0),
            first_contact_at: None,
            category: Category::Movies,
            title: "t".into(),
            filename: "t".into(),
            textbox: None,
            size_bytes: 1,
            language: None,
            username: Some(user.into()),
            publisher_ip: ip.map(Ipv4Addr::from),
            ip_failure: None,
            first_complete: 0,
            first_incomplete: 0,
            sightings: vec![],
            observed_ips: vec![1, 2, 3],
            observed_removed: removed,
        }
    }

    fn ds(torrents: Vec<TorrentRecord>) -> Dataset {
        Dataset {
            name: "t".into(),
            start: SimTime(0),
            end: SimTime(1),
            has_usernames: true,
            torrents,
        }
    }

    #[test]
    fn takedowns_taint_usernames() {
        let d = ds(vec![
            rec(0, "fakeacct", Some([10, 0, 0, 1]), true),
            rec(1, "fakeacct", Some([10, 0, 0, 1]), true),
            rec(2, "clean", Some([24, 0, 0, 1]), false),
        ]);
        let pubs = aggregate_publishers(&d);
        let g = assign_groups(&d, &pubs, &db(), 10);
        assert!(g.fake_usernames.contains("fakeacct"));
        assert!(!g.fake_usernames.contains("clean"));
        assert!(g.fake_ips.contains(&u32::from(Ipv4Addr::new(10, 0, 0, 1))));
        assert_eq!(g.compromised_in_top_k, 1);
        assert!(g.top.iter().any(|k| matches!(k, PublisherKey::Username(u) if u == "clean")));
    }

    #[test]
    fn multi_username_ips_flagged() {
        // A username mill needs takedown corroboration: three usernames on
        // one IP plus at least one removed listing.
        let shared_ip = [10, 0, 0, 9];
        let d = ds(vec![
            rec(0, "a1", Some(shared_ip), true),
            rec(1, "a2", Some(shared_ip), false),
            rec(2, "a3", Some(shared_ip), false),
            rec(3, "clean", Some([24, 0, 0, 1]), false),
        ]);
        let pubs = aggregate_publishers(&d);
        let g = assign_groups(&d, &pubs, &db(), 10);
        assert!(g.fake_ips.contains(&u32::from(Ipv4Addr::from(shared_ip))));
        for u in ["a1", "a2", "a3"] {
            assert!(g.fake_usernames.contains(u), "{u} should be tainted");
        }
        assert!(!g.fake_usernames.contains("clean"));
    }

    #[test]
    fn top_split_by_isp_kind() {
        let d = ds(vec![
            rec(0, "hosted", Some([10, 0, 0, 1]), false),
            rec(1, "cable", Some([24, 0, 0, 1]), false),
        ]);
        let pubs = aggregate_publishers(&d);
        let g = assign_groups(&d, &pubs, &db(), 10);
        let hosted = PublisherKey::Username("hosted".into());
        let cable = PublisherKey::Username("cable".into());
        assert!(g.top_hp.contains(&hosted));
        assert!(g.top_ci.contains(&cable));
        assert!(g.contains(&hosted, Group::Top));
        assert!(g.contains(&hosted, Group::All));
        assert!(!g.contains(&hosted, Group::Fake));
    }

    #[test]
    fn group_shares_sum_sensibly() {
        let d = ds(vec![
            rec(0, "fake1", Some([10, 0, 0, 1]), true),
            rec(1, "fake1", Some([10, 0, 0, 1]), true),
            rec(2, "top1", Some([24, 0, 0, 1]), false),
            rec(3, "top1", Some([24, 0, 0, 2]), false),
        ]);
        let pubs = aggregate_publishers(&d);
        let g = assign_groups(&d, &pubs, &db(), 1);
        let (fc, fdl) = group_shares(&d, &pubs, &g, Group::Fake);
        assert!((fc - 0.5).abs() < 1e-9);
        assert!((fdl - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mapping_stats_classification() {
        let d = ds(vec![
            // "solo": one IP.
            rec(0, "solo", Some([24, 0, 0, 1]), false),
            // "hosted": 2 hosting IPs.
            rec(1, "hosted", Some([10, 0, 0, 1]), false),
            rec(2, "hosted", Some([10, 0, 0, 2]), false),
            // "dhcp": 2 IPs inside CableCo.
            rec(3, "dhcp", Some([24, 0, 1, 1]), false),
            rec(4, "dhcp", Some([24, 0, 1, 2]), false),
            // "homework": CableCo + DslCo.
            rec(5, "homework", Some([24, 0, 2, 1]), false),
            rec(6, "homework", Some([32, 0, 0, 1]), false),
        ]);
        let pubs = aggregate_publishers(&d);
        let s = mapping_stats(&d, &pubs, &db(), 10);
        assert!((s.single_ip - 0.25).abs() < 1e-9);
        assert!((s.multi_ip_hosting - 0.25).abs() < 1e-9);
        assert!((s.multi_ip_single_ci - 0.25).abs() < 1e-9);
        assert!((s.multi_ip_multi_ci - 0.25).abs() < 1e-9);
        assert!((s.avg_ips_hosting - 2.0).abs() < 1e-9);
        // Every IP here is used by exactly one username.
        assert!((s.top_ips_unique_username - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ip_mode_dataset_still_produces_top() {
        let mut d = ds(vec![
            rec(0, "x", Some([10, 0, 0, 1]), false),
            rec(1, "y", Some([24, 0, 0, 1]), false),
        ]);
        d.has_usernames = false;
        for t in &mut d.torrents {
            t.username = None;
        }
        let pubs = aggregate_publishers(&d);
        let g = assign_groups(&d, &pubs, &db(), 10);
        assert_eq!(g.top.len(), 2);
        assert_eq!(g.top_hp.len(), 1);
        assert_eq!(g.top_ci.len(), 1);
        assert!(g.fake_usernames.is_empty());
    }
}
