//! §5.1: promoting-URL discovery and business classification.
//!
//! The paper "emulates the experience of a user downloading a few
//! randomly-selected files published by each top publisher" and looks for
//! a promoting URL in (i) the filename, (ii) the content-page textbox and
//! (iii) a `.txt` file shipped with the payload; it then classifies each
//! publisher's business by inspecting the promoted site. The crawler
//! captures (i) and (ii); classification uses the same observable rules
//! the authors applied by hand: image-hosting/forum-style URLs with a
//! porn-dominated catalogue are "Other Web sites", the rest of the
//! promoters run BitTorrent portals, and publishers with no URL anywhere
//! are altruistic.

use btpub_crawler::{Dataset, TorrentRecord};
use btpub_fxhash::FxHashMap;
use btpub_sim::content::Category;
use btpub_sim::profile::BusinessClass;

use crate::fake::Groups;
use crate::publishers::{PublisherKey, PublisherStats};

/// Where a promoting URL was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UrlPlacement {
    /// Appended to released filenames.
    Filename,
    /// In the content-page textbox.
    Textbox,
}

/// One classified top publisher.
#[derive(Debug, Clone, PartialEq)]
pub struct Classified {
    /// Publisher key.
    pub key: PublisherKey,
    /// Assigned class.
    pub class: BusinessClass,
    /// Promoting URL, when discovered.
    pub url: Option<String>,
    /// Placements the URL was seen in.
    pub placements: Vec<UrlPlacement>,
    /// Language the publisher is dedicated to, if ≥ 60 % of its releases
    /// carry one language tag.
    pub language: Option<String>,
}

/// Extracts a `www.…` or `http://…` URL from free text.
pub fn extract_url(text: &str) -> Option<String> {
    for token in text.split(|c: char| c.is_whitespace() || c == '|') {
        let token = token.trim_matches(|c: char| c == ',' || c == ';' || c == ')' || c == '(');
        if let Some(rest) = token.strip_prefix("http://") {
            return Some(rest.trim_end_matches('/').to_string());
        }
        if token.starts_with("www.") && token.contains('.') {
            return Some(token.to_string());
        }
    }
    None
}

/// Extracts a URL embedded as a filename suffix (`title-example.com`).
pub fn extract_filename_url(filename: &str) -> Option<String> {
    let tail = filename.rsplit('-').next()?;
    let dots = tail.matches('.').count();
    // Domain-looking tail: at least one dot, a known TLD, no release
    // suffixes like ".XviD" (which are not TLDs).
    let tld_ok = [".com", ".net", ".org", ".info"]
        .iter()
        .any(|t| tail.ends_with(t));
    (dots >= 1 && tld_ok).then(|| format!("www.{}", tail.trim_start_matches("www.")))
}

/// Incremental §5.1 evidence for one publisher: records fold in one at a
/// time (in torrent-index order), [`ClassAcc::finish`] applies the
/// classification rules. [`classify_top`] runs the materialized records
/// through this same accumulator, so streaming and materialized
/// classification are one code path.
#[derive(Debug, Clone, Default)]
pub struct ClassAcc {
    url: Option<String>,
    placements: Vec<UrlPlacement>,
    porn: usize,
    n: usize,
    lang_counts: FxHashMap<String, usize>,
}

impl ClassAcc {
    /// Folds one of the publisher's records in.
    pub fn observe(&mut self, rec: &TorrentRecord) {
        self.n += 1;
        if rec.category == Category::Porn {
            self.porn += 1;
        }
        if let Some(l) = &rec.language {
            *self.lang_counts.entry(l.clone()).or_default() += 1;
        }
        if self.url.is_none() {
            if let Some(found) = rec.textbox.as_deref().and_then(extract_url) {
                self.url = Some(found);
                self.placements.push(UrlPlacement::Textbox);
            }
        }
        // Once a URL is known and the Filename placement recorded, another
        // filename hit can change nothing — skip the allocating extraction.
        if self.url.is_none() || !self.placements.contains(&UrlPlacement::Filename) {
            if let Some(found) = extract_filename_url(&rec.filename) {
                if !self.placements.contains(&UrlPlacement::Filename) {
                    self.placements.push(UrlPlacement::Filename);
                }
                if self.url.is_none() {
                    self.url = Some(found);
                }
            }
        }
    }

    /// Serializes the accumulator for a checkpoint. `lang_counts` is
    /// written key-sorted so the same state always yields the same bytes.
    pub fn encode_state(&self, enc: &mut btpub_stream::checkpoint::Enc) {
        match &self.url {
            Some(u) => {
                enc.bool(true);
                enc.str(u);
            }
            None => enc.bool(false),
        }
        enc.usize(self.placements.len());
        for p in &self.placements {
            enc.u8(match p {
                UrlPlacement::Filename => 0,
                UrlPlacement::Textbox => 1,
            });
        }
        enc.usize(self.porn);
        enc.usize(self.n);
        let mut langs: Vec<(&String, &usize)> = self.lang_counts.iter().collect();
        langs.sort();
        enc.usize(langs.len());
        for (l, c) in langs {
            enc.str(l);
            enc.usize(*c);
        }
    }

    /// Restores from [`Self::encode_state`] bytes.
    pub fn decode_state(
        dec: &mut btpub_stream::checkpoint::Dec,
    ) -> Result<Self, btpub_stream::checkpoint::CheckpointError> {
        use btpub_stream::checkpoint::CheckpointError;
        let url = dec.bool()?.then(|| dec.str()).transpose()?;
        let n_placements = dec.usize()?;
        let mut placements = Vec::with_capacity(n_placements.min(4));
        for _ in 0..n_placements {
            placements.push(match dec.u8()? {
                0 => UrlPlacement::Filename,
                1 => UrlPlacement::Textbox,
                _ => return Err(CheckpointError::Decode { what: "UrlPlacement tag" }),
            });
        }
        let porn = dec.usize()?;
        let n = dec.usize()?;
        let n_langs = dec.usize()?;
        let mut lang_counts = FxHashMap::default();
        for _ in 0..n_langs {
            let l = dec.str()?;
            let c = dec.usize()?;
            lang_counts.insert(l, c);
        }
        Ok(Self { url, placements, porn, n, lang_counts })
    }

    /// Applies the classification rules and produces the publisher's
    /// [`Classified`] entry.
    pub fn finish(self, key: PublisherKey) -> Classified {
        let n = self.n.max(1);
        let porn_share = self.porn as f64 / n as f64;
        let class = match &self.url {
            None => BusinessClass::Altruistic,
            Some(u) => {
                // The paper's manual business profiling, mechanised: porn-
                // dominated catalogues promoting image hosts / forums are
                // "Other Web sites"; the remaining promoters run portals.
                let image_host = u.contains("pics") || u.contains("image") || u.contains("forum");
                if porn_share >= 0.5 || image_host {
                    BusinessClass::OtherWeb
                } else {
                    BusinessClass::BtPortal
                }
            }
        };
        // At most one language can clear the 60 % bar, so the pick is
        // independent of map iteration order.
        let language = self
            .lang_counts
            .into_iter()
            .find(|(_, c)| *c * 10 >= n * 6)
            .map(|(l, _)| l);
        Classified {
            key,
            class,
            url: self.url,
            placements: self.placements,
            language,
        }
    }
}

/// Classifies the Top publishers of a dataset.
pub fn classify_top(
    dataset: &Dataset,
    publishers: &[PublisherStats],
    groups: &Groups,
) -> Vec<Classified> {
    let _span = btpub_obs::span!("analysis.classify_top");
    let by_key: FxHashMap<&PublisherKey, &PublisherStats> =
        publishers.iter().map(|p| (&p.key, p)).collect();
    groups
        .top
        .iter()
        .filter_map(|key| {
            let stats = by_key.get(key)?;
            let mut acc = ClassAcc::default();
            for &idx in &stats.torrents {
                acc.observe(&dataset.torrents[idx]);
            }
            Some(acc.finish(stats.key.clone()))
        })
        .collect()
}

/// Per-class share of the top set, of all content, and of all downloads
/// (§5.1's 26 %/18 %/29 % etc.).
pub fn class_shares(
    dataset: &Dataset,
    publishers: &[PublisherStats],
    classified: &[Classified],
    class: BusinessClass,
) -> (f64, f64, f64) {
    let total_downloads: u64 = dataset
        .torrents
        .iter()
        .map(|t| t.observed_downloaders() as u64)
        .sum();
    class_shares_from(
        publishers,
        classified,
        class,
        dataset.torrent_count(),
        total_downloads,
    )
}

/// Core of [`class_shares`] over campaign-wide totals instead of a
/// materialized dataset (shared with the streaming path).
pub fn class_shares_from(
    publishers: &[PublisherStats],
    classified: &[Classified],
    class: BusinessClass,
    total_content: usize,
    total_downloads: u64,
) -> (f64, f64, f64) {
    let by_key: FxHashMap<&PublisherKey, &PublisherStats> =
        publishers.iter().map(|p| (&p.key, p)).collect();
    let members: Vec<&Classified> = classified.iter().filter(|c| c.class == class).collect();
    let of_top = members.len() as f64 / classified.len().max(1) as f64;
    let (content, downloads) = members
        .iter()
        .filter_map(|c| by_key.get(&c.key))
        .fold((0usize, 0u64), |(c, d), p| {
            (c + p.content_count(), d + p.downloads)
        });
    (
        of_top,
        content as f64 / (total_content as f64).max(1.0),
        downloads as f64 / total_downloads.max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_extraction_from_textbox() {
        assert_eq!(
            extract_url("Great.Movie | uploaded by x | more releases at http://www.ultra.com"),
            Some("www.ultra.com".to_string())
        );
        assert_eq!(
            extract_url("visit www.site.net for more"),
            Some("www.site.net".to_string())
        );
        assert_eq!(extract_url("no urls here"), None);
        assert_eq!(extract_url(""), None);
    }

    #[test]
    fn url_extraction_from_filename() {
        assert_eq!(
            extract_filename_url("Some.Movie.2010.DVDRip-divxatope.com"),
            Some("www.divxatope.com".to_string())
        );
        assert_eq!(extract_filename_url("Some.Movie.2010.DVDRip.XviD-aXXo"), None);
        assert_eq!(extract_filename_url("noseparator"), None);
    }

    #[test]
    fn porn_dominated_promoter_is_other_web() {
        use btpub_sim::{SimTime, TorrentId};
        let mk = |id: u32, cat: Category, textbox: &str| btpub_crawler::TorrentRecord {
            torrent: TorrentId(id),
            announced_at: SimTime(0),
            first_contact_at: None,
            category: cat,
            title: "t".into(),
            filename: "t".into(),
            textbox: Some(textbox.into()),
            size_bytes: 1,
            language: Some("es".into()),
            username: Some("pornking".into()),
            publisher_ip: None,
            ip_failure: None,
            first_complete: 0,
            first_incomplete: 0,
            sightings: vec![],
            observed_ips: vec![1, 2],
            observed_removed: false,
        };
        let ds = Dataset {
            name: "t".into(),
            start: SimTime(0),
            end: SimTime(1),
            has_usernames: true,
            torrents: vec![
                mk(0, Category::Porn, "see http://www.hot-pics.net"),
                mk(1, Category::Porn, "see http://www.hot-pics.net"),
                mk(2, Category::Movies, "see http://www.hot-pics.net"),
            ],
        };
        let pubs = crate::publishers::aggregate_publishers(&ds);
        let mut groups = Groups::default();
        groups.top.push(pubs[0].key.clone());
        let classified = classify_top(&ds, &pubs, &groups);
        assert_eq!(classified.len(), 1);
        assert_eq!(classified[0].class, BusinessClass::OtherWeb);
        assert_eq!(classified[0].url.as_deref(), Some("www.hot-pics.net"));
        assert!(classified[0].placements.contains(&UrlPlacement::Textbox));
        assert_eq!(classified[0].language.as_deref(), Some("es"));
        let (of_top, content, downloads) =
            class_shares(&ds, &pubs, &classified, BusinessClass::OtherWeb);
        assert_eq!(of_top, 1.0);
        assert_eq!(content, 1.0);
        assert_eq!(downloads, 1.0);
    }

    #[test]
    fn no_url_means_altruistic() {
        use btpub_sim::{SimTime, TorrentId};
        let ds = Dataset {
            name: "t".into(),
            start: SimTime(0),
            end: SimTime(1),
            has_usernames: true,
            torrents: vec![btpub_crawler::TorrentRecord {
                torrent: TorrentId(0),
                announced_at: SimTime(0),
                first_contact_at: None,
                category: Category::Audio,
                title: "album".into(),
                filename: "album".into(),
                textbox: Some("please help seed! extensive description...".into()),
                size_bytes: 1,
                language: None,
                username: Some("goodsoul".into()),
                publisher_ip: None,
                ip_failure: None,
                first_complete: 0,
                first_incomplete: 0,
                sightings: vec![],
                observed_ips: vec![],
                observed_removed: false,
            }],
        };
        let pubs = crate::publishers::aggregate_publishers(&ds);
        let mut groups = Groups::default();
        groups.top.push(pubs[0].key.clone());
        let classified = classify_top(&ds, &pubs, &groups);
        assert_eq!(classified[0].class, BusinessClass::Altruistic);
        assert!(classified[0].url.is_none());
    }
}
