//! # btpub-analysis
//!
//! The paper's full analysis pipeline (§3–§6 and Appendix A), operating on
//! a crawled [`btpub_crawler::Dataset`] plus the GeoIP database — i.e. on
//! exactly the information the authors had, never on simulator ground
//! truth (ground truth is only consulted by validation tests and the
//! economics *oracle*, which stands in for the external web-statistics
//! monitors).
//!
//! Pipeline stages, in the paper's order:
//!
//! | module | paper | produces |
//! |---|---|---|
//! | [`publishers`] | §3 | per-publisher aggregation (by username or IP) |
//! | [`skewness`] | §3.1, Fig. 1 | contribution CDF |
//! | [`isp`] | §3.2, Tables 2–3 | ISP rankings and OVH/Comcast contrast |
//! | [`fake`] | §3.3 | fake-publisher detection, group assignment |
//! | [`content_type`] | §4.1, Fig. 2 | category mix per group |
//! | [`popularity`] | §4.2, Fig. 3 | downloaders/torrent/publisher box stats |
//! | [`session`] | App. A | sighting → session-interval estimation |
//! | [`seeding`] | §4.3, Fig. 4 | seeding time, parallelism, availability |
//! | [`classify`] | §5.1 | business classes from promoting URLs |
//! | [`longitudinal`] | §5.2, Table 4 | lifetime & publishing rate |
//! | [`economics`] | §5.3 + §6, Table 5 | website value/income/visits |
//! | [`stats`] | — | percentiles, box plots, min/med/avg/max |
//! | [`streaming`] | — | record-at-a-time aggregation of all of the above |

pub mod classify;
pub mod content_type;
pub mod economics;
pub mod fake;
pub mod isp;
pub mod longitudinal;
pub mod popularity;
pub mod publishers;
pub mod seeding;
pub mod session;
pub mod skewness;
pub mod stats;
pub mod streaming;

pub use fake::{Group, Groups};
pub use publishers::{aggregate_publishers, PublisherKey, PublisherStats};
pub use stats::{BoxStats, MinMedAvgMax};
