//! §4.2 / Figure 3: content popularity per publisher group.
//!
//! Popularity of a torrent = number of distinct downloaders observed,
//! regardless of download progress. The figure plots, per group, the box
//! of *average downloaders per torrent per publisher*.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::fake::{Group, Groups};
use crate::publishers::PublisherStats;
use crate::stats::{BoxStats, QuantileSketch};

/// The "All" group is a random sample of this many publishers in the
/// paper (computing the seeding metrics for every publisher was too
/// expensive for the authors; we keep the sample for comparability).
pub const ALL_SAMPLE: usize = 400;

/// Per-publisher average downloaders per torrent, for group members.
pub fn per_publisher_popularity(
    publishers: &[PublisherStats],
    groups: &Groups,
    group: Group,
    sample_seed: u64,
) -> Vec<f64> {
    let mut values: Vec<f64> = publishers
        .iter()
        .filter(|p| groups.contains(&p.key, group) && p.content_count() > 0)
        .map(|p| p.downloads as f64 / p.content_count() as f64)
        .collect();
    if group == Group::All && values.len() > ALL_SAMPLE {
        let mut rng = StdRng::seed_from_u64(sample_seed);
        values.shuffle(&mut rng);
        values.truncate(ALL_SAMPLE);
    }
    values
}

/// Figure 3's box for one group.
///
/// Routed through the streaming [`QuantileSketch`]: below the sketch
/// budget (always true for the publisher-bounded groups here) the result
/// is bit-identical to the historical full-vector computation; past it,
/// memory stays fixed and quantiles carry the sketch's stated error.
pub fn popularity_box(
    publishers: &[PublisherStats],
    groups: &Groups,
    group: Group,
    sample_seed: u64,
) -> Option<BoxStats> {
    QuantileSketch::from_values(&per_publisher_popularity(publishers, groups, group, sample_seed))
        .box_stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publishers::PublisherKey;

    fn publisher(name: &str, torrents: usize, downloads: u64) -> PublisherStats {
        PublisherStats {
            key: PublisherKey::Username(name.into()),
            torrents: (0..torrents).collect(),
            downloads,
            ips: Default::default(),
        }
    }

    #[test]
    fn averages_per_publisher() {
        let pubs = vec![publisher("a", 2, 200), publisher("b", 1, 10)];
        let groups = Groups::default();
        let vals = per_publisher_popularity(&pubs, &groups, Group::All, 0);
        assert_eq!(vals, vec![100.0, 10.0]);
        let b = popularity_box(&pubs, &groups, Group::All, 0).unwrap();
        assert_eq!(b.median, 55.0);
    }

    #[test]
    fn all_group_is_sampled() {
        let pubs: Vec<PublisherStats> = (0..1000)
            .map(|i| publisher(&format!("u{i}"), 1, i as u64))
            .collect();
        let vals = per_publisher_popularity(&pubs, &Groups::default(), Group::All, 7);
        assert_eq!(vals.len(), ALL_SAMPLE);
        // Deterministic under the same seed.
        let vals2 = per_publisher_popularity(&pubs, &Groups::default(), Group::All, 7);
        assert_eq!(vals, vals2);
    }

    #[test]
    fn group_filtering_applies() {
        let pubs = vec![publisher("top", 1, 700), publisher("other", 1, 10)];
        let mut groups = Groups::default();
        groups.top.push(PublisherKey::Username("top".into()));
        let vals = per_publisher_popularity(&pubs, &groups, Group::Top, 0);
        assert_eq!(vals, vec![700.0]);
        assert!(popularity_box(&pubs, &groups, Group::TopHp, 0).is_none());
    }
}
