//! §3.2 / Tables 2–3: mapping publishers to ISPs.

use std::net::Ipv4Addr;

use btpub_crawler::Dataset;
use btpub_fxhash::{FxHashMap, FxHashSet};
use btpub_geodb::{prefix16, GeoDb, IspId, IspKind, LocationId};

use crate::publishers::PublisherStats;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct IspRow {
    /// ISP display name.
    pub name: String,
    /// Hosting provider or commercial ISP.
    pub kind: IspKind,
    /// Percentage of IP-attributed content published from this ISP.
    pub pct_content: f64,
}

/// Incremental per-ISP aggregate behind Tables 2–3 and §6: one entry per
/// ISP that fed content, each holding the counts and distinct-value sets
/// those tables report. Bounded by the identified-publisher population,
/// never by campaign length, so the streaming path keeps one of these
/// while records flow through.
#[derive(Debug, Clone, Default)]
pub struct IspAgg {
    per_isp: FxHashMap<IspId, IspAcc>,
    attributed: usize,
}

#[derive(Debug, Clone, Default)]
struct IspAcc {
    fed: usize,
    ips: FxHashSet<u32>,
    prefixes: FxHashSet<u16>,
    locations: FxHashSet<LocationId>,
}

impl IspAgg {
    /// Folds one record's identified publisher IP in (no-op when the IP
    /// was not identified or is outside the database).
    pub fn observe(&mut self, publisher_ip: Option<Ipv4Addr>, db: &GeoDb) {
        let Some(ip) = publisher_ip else { return };
        let Some(info) = db.lookup(ip) else { return };
        self.attributed += 1;
        let acc = self.per_isp.entry(info.isp).or_default();
        acc.fed += 1;
        acc.ips.insert(u32::from(ip));
        acc.prefixes.insert(prefix16(ip));
        acc.locations.insert(info.location);
    }

    /// Table 2 from the aggregate: top-`k` ISPs by share of IP-attributed
    /// content.
    pub fn top_isps(&self, db: &GeoDb, k: usize) -> Vec<IspRow> {
        let mut rows: Vec<(IspId, usize)> =
            self.per_isp.iter().map(|(&isp, acc)| (isp, acc.fed)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows.into_iter()
            .map(|(isp, count)| {
                let rec = db.isp(isp);
                IspRow {
                    name: rec.name.clone(),
                    kind: rec.kind,
                    pct_content: 100.0 * count as f64 / self.attributed.max(1) as f64,
                }
            })
            .collect()
    }

    /// Serializes the aggregate for a checkpoint, ISPs and inner sets
    /// key-sorted for byte-stable output.
    pub fn encode_state(&self, enc: &mut btpub_stream::checkpoint::Enc) {
        let mut isps: Vec<(&IspId, &IspAcc)> = self.per_isp.iter().collect();
        isps.sort_by_key(|(id, _)| id.0);
        enc.usize(isps.len());
        for (id, acc) in isps {
            enc.u32(u32::from(id.0));
            enc.usize(acc.fed);
            let mut ips: Vec<u32> = acc.ips.iter().copied().collect();
            ips.sort_unstable();
            enc.usize(ips.len());
            for ip in ips {
                enc.u32(ip);
            }
            let mut prefixes: Vec<u16> = acc.prefixes.iter().copied().collect();
            prefixes.sort_unstable();
            enc.usize(prefixes.len());
            for p in prefixes {
                enc.u32(u32::from(p));
            }
            let mut locations: Vec<u16> = acc.locations.iter().map(|l| l.0).collect();
            locations.sort_unstable();
            enc.usize(locations.len());
            for l in locations {
                enc.u32(u32::from(l));
            }
        }
        enc.usize(self.attributed);
    }

    /// Restores from [`Self::encode_state`] bytes.
    pub fn decode_state(
        dec: &mut btpub_stream::checkpoint::Dec,
    ) -> Result<Self, btpub_stream::checkpoint::CheckpointError> {
        use btpub_stream::checkpoint::CheckpointError;
        let narrow = |v: u32| {
            u16::try_from(v).map_err(|_| CheckpointError::Decode { what: "IspAgg u16 id" })
        };
        let mut per_isp = FxHashMap::default();
        for _ in 0..dec.usize()? {
            let id = IspId(narrow(dec.u32()?)?);
            let mut acc = IspAcc { fed: dec.usize()?, ..IspAcc::default() };
            for _ in 0..dec.usize()? {
                acc.ips.insert(dec.u32()?);
            }
            for _ in 0..dec.usize()? {
                acc.prefixes.insert(narrow(dec.u32()?)?);
            }
            for _ in 0..dec.usize()? {
                acc.locations.insert(LocationId(narrow(dec.u32()?)?));
            }
            per_isp.insert(id, acc);
        }
        Ok(Self { per_isp, attributed: dec.usize()? })
    }

    /// Table 3's row for one ISP, by display name.
    pub fn footprint(&self, db: &GeoDb, isp_name: &str) -> IspFootprint {
        let acc = db
            .isp_by_name(isp_name)
            .and_then(|id| self.per_isp.get(&id));
        match acc {
            Some(acc) => IspFootprint {
                fed_torrents: acc.fed,
                ip_addresses: acc.ips.len(),
                prefixes16: acc.prefixes.len(),
                geo_locations: acc.locations.len(),
            },
            None => IspFootprint {
                fed_torrents: 0,
                ip_addresses: 0,
                prefixes16: 0,
                geo_locations: 0,
            },
        }
    }
}

/// Scans a materialized dataset into an [`IspAgg`].
pub fn isp_agg(dataset: &Dataset, db: &GeoDb) -> IspAgg {
    let mut agg = IspAgg::default();
    for rec in &dataset.torrents {
        agg.observe(rec.publisher_ip, db);
    }
    agg
}

/// Computes Table 2 for a dataset: the top-`k` ISPs by the share of
/// (IP-attributed) content their publishers fed.
pub fn top_isps(dataset: &Dataset, db: &GeoDb, k: usize) -> Vec<IspRow> {
    isp_agg(dataset, db).top_isps(db, k)
}

/// Table 3's characterisation of one ISP's publisher footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IspFootprint {
    /// Torrents fed by publishers at this ISP.
    pub fed_torrents: usize,
    /// Distinct publisher IP addresses.
    pub ip_addresses: usize,
    /// Distinct /16 prefixes those addresses fall in.
    pub prefixes16: usize,
    /// Distinct geographic locations.
    pub geo_locations: usize,
}

/// Computes Table 3's row for one ISP (by name), e.g. OVH vs Comcast.
pub fn isp_footprint(dataset: &Dataset, db: &GeoDb, isp_name: &str) -> IspFootprint {
    isp_agg(dataset, db).footprint(db, isp_name)
}

/// Fraction of the given top publishers that sit at hosting providers,
/// plus the share specifically at one named provider (the paper: 42 % at
/// hosting services, 22 % at OVH alone, for pb10's top-100).
pub fn hosting_shares(
    publishers: &[PublisherStats],
    db: &GeoDb,
    provider: &str,
) -> (f64, f64) {
    if publishers.is_empty() {
        return (0.0, 0.0);
    }
    let mut at_hosting = 0usize;
    let mut at_named = 0usize;
    let mut with_ip = 0usize;
    for p in publishers {
        let Some(kind) = dominant_kind(p, db) else {
            continue;
        };
        with_ip += 1;
        if kind == IspKind::HostingProvider {
            at_hosting += 1;
        }
        if dominant_isp(p, db).is_some_and(|i| db.isp(i).name == provider) {
            at_named += 1;
        }
    }
    if with_ip == 0 {
        return (0.0, 0.0);
    }
    (
        at_hosting as f64 / with_ip as f64,
        at_named as f64 / with_ip as f64,
    )
}

/// The ISP a publisher's identified IPs most often map to.
pub fn dominant_isp(p: &PublisherStats, db: &GeoDb) -> Option<IspId> {
    let mut counts: FxHashMap<IspId, usize> = FxHashMap::default();
    for &ip in &p.ips {
        if let Some(info) = db.lookup(Ipv4Addr::from(ip)) {
            *counts.entry(info.isp).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0 .0.cmp(&a.0 .0)))
        .map(|(isp, _)| isp)
}

/// The ISP kind (hosting vs commercial) of a publisher's dominant ISP.
pub fn dominant_kind(p: &PublisherStats, db: &GeoDb) -> Option<IspKind> {
    dominant_isp(p, db).map(|isp| db.isp(isp).kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publishers::PublisherKey;
    use btpub_crawler::TorrentRecord;
    use btpub_geodb::GeoDbBuilder;
    use btpub_sim::content::Category;
    use btpub_sim::{SimTime, TorrentId};

    fn db() -> GeoDb {
        let mut b = GeoDbBuilder::new();
        let ovh = b.add_isp("OVH", IspKind::HostingProvider, "FR");
        let comcast = b.add_isp("Comcast", IspKind::CommercialIsp, "US");
        let rbx = b.add_location("Roubaix", "FR");
        let den = b.add_location("Denver", "US");
        let chi = b.add_location("Chicago", "US");
        b.add_slash16(0x0A00, ovh, rbx); // 10.0/16
        b.add_slash16(0x1800, comcast, den); // 24.0/16
        b.add_slash16(0x1801, comcast, chi); // 24.1/16
        b.build().unwrap()
    }

    fn rec(id: u32, ip: [u8; 4]) -> TorrentRecord {
        TorrentRecord {
            torrent: TorrentId(id),
            announced_at: SimTime(0),
            first_contact_at: None,
            category: Category::Movies,
            title: "t".into(),
            filename: "t".into(),
            textbox: None,
            size_bytes: 1,
            language: None,
            username: Some(format!("u{id}")),
            publisher_ip: Some(Ipv4Addr::from(ip)),
            ip_failure: None,
            first_complete: 0,
            first_incomplete: 0,
            sightings: vec![],
            observed_ips: vec![],
            observed_removed: false,
        }
    }

    fn ds(torrents: Vec<TorrentRecord>) -> Dataset {
        Dataset {
            name: "t".into(),
            start: SimTime(0),
            end: SimTime(1),
            has_usernames: true,
            torrents,
        }
    }

    #[test]
    fn table2_ranks_by_content() {
        let d = ds(vec![
            rec(0, [10, 0, 0, 1]),
            rec(1, [10, 0, 0, 1]),
            rec(2, [10, 0, 0, 2]),
            rec(3, [24, 0, 5, 5]),
        ]);
        let rows = top_isps(&d, &db(), 10);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "OVH");
        assert_eq!(rows[0].kind, IspKind::HostingProvider);
        assert!((rows[0].pct_content - 75.0).abs() < 1e-9);
        assert!((rows[1].pct_content - 25.0).abs() < 1e-9);
    }

    #[test]
    fn table3_footprint_contrast() {
        let d = ds(vec![
            rec(0, [10, 0, 0, 1]),
            rec(1, [10, 0, 0, 1]),
            rec(2, [10, 0, 0, 2]),
            rec(3, [24, 0, 5, 5]),
            rec(4, [24, 1, 9, 9]),
        ]);
        let database = db();
        let ovh = isp_footprint(&d, &database, "OVH");
        assert_eq!(ovh.fed_torrents, 3);
        assert_eq!(ovh.ip_addresses, 2);
        assert_eq!(ovh.prefixes16, 1);
        assert_eq!(ovh.geo_locations, 1);
        let comcast = isp_footprint(&d, &database, "Comcast");
        assert_eq!(comcast.fed_torrents, 2);
        assert_eq!(comcast.prefixes16, 2);
        assert_eq!(comcast.geo_locations, 2);
        let nosuch = isp_footprint(&d, &database, "NoSuch");
        assert_eq!(nosuch.fed_torrents, 0);
    }

    #[test]
    fn hosting_share_computation() {
        let database = db();
        let pubs = vec![
            PublisherStats {
                key: PublisherKey::Username("a".into()),
                torrents: vec![0],
                downloads: 0,
                ips: [u32::from(Ipv4Addr::new(10, 0, 0, 1))].into_iter().collect(),
            },
            PublisherStats {
                key: PublisherKey::Username("b".into()),
                torrents: vec![1],
                downloads: 0,
                ips: [u32::from(Ipv4Addr::new(24, 0, 0, 1))].into_iter().collect(),
            },
        ];
        let (hosting, ovh) = hosting_shares(&pubs, &database, "OVH");
        assert!((hosting - 0.5).abs() < 1e-9);
        assert!((ovh - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dominant_isp_majority_vote() {
        let database = db();
        let p = PublisherStats {
            key: PublisherKey::Username("a".into()),
            torrents: vec![],
            downloads: 0,
            ips: [
                u32::from(Ipv4Addr::new(24, 0, 0, 1)),
                u32::from(Ipv4Addr::new(24, 1, 0, 1)),
                u32::from(Ipv4Addr::new(10, 0, 0, 1)),
            ]
            .into_iter()
            .collect(),
        };
        assert_eq!(
            dominant_kind(&p, &database),
            Some(IspKind::CommercialIsp),
            "2 Comcast IPs beat 1 OVH"
        );
        let empty = PublisherStats {
            key: PublisherKey::Username("none".into()),
            torrents: vec![],
            downloads: 0,
            ips: Default::default(),
        };
        assert_eq!(dominant_kind(&empty, &database), None);
    }
}
