//! §3.2 / Tables 2–3: mapping publishers to ISPs.

use std::net::Ipv4Addr;

use btpub_crawler::Dataset;
use btpub_fxhash::{FxHashMap, FxHashSet};
use btpub_geodb::{prefix16, GeoDb, IspId, IspKind};

use crate::publishers::PublisherStats;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct IspRow {
    /// ISP display name.
    pub name: String,
    /// Hosting provider or commercial ISP.
    pub kind: IspKind,
    /// Percentage of IP-attributed content published from this ISP.
    pub pct_content: f64,
}

/// Computes Table 2 for a dataset: the top-`k` ISPs by the share of
/// (IP-attributed) content their publishers fed.
pub fn top_isps(dataset: &Dataset, db: &GeoDb, k: usize) -> Vec<IspRow> {
    let mut per_isp: FxHashMap<IspId, usize> = FxHashMap::default();
    let mut attributed = 0usize;
    for rec in &dataset.torrents {
        if let Some(ip) = rec.publisher_ip {
            if let Some(info) = db.lookup(ip) {
                *per_isp.entry(info.isp).or_default() += 1;
                attributed += 1;
            }
        }
    }
    let mut rows: Vec<(IspId, usize)> = per_isp.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(k);
    rows.into_iter()
        .map(|(isp, count)| {
            let rec = db.isp(isp);
            IspRow {
                name: rec.name.clone(),
                kind: rec.kind,
                pct_content: 100.0 * count as f64 / attributed.max(1) as f64,
            }
        })
        .collect()
}

/// Table 3's characterisation of one ISP's publisher footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IspFootprint {
    /// Torrents fed by publishers at this ISP.
    pub fed_torrents: usize,
    /// Distinct publisher IP addresses.
    pub ip_addresses: usize,
    /// Distinct /16 prefixes those addresses fall in.
    pub prefixes16: usize,
    /// Distinct geographic locations.
    pub geo_locations: usize,
}

/// Computes Table 3's row for one ISP (by name), e.g. OVH vs Comcast.
pub fn isp_footprint(dataset: &Dataset, db: &GeoDb, isp_name: &str) -> IspFootprint {
    let Some(target) = db.isp_by_name(isp_name) else {
        return IspFootprint {
            fed_torrents: 0,
            ip_addresses: 0,
            prefixes16: 0,
            geo_locations: 0,
        };
    };
    let mut fed = 0usize;
    let mut ips: FxHashSet<u32> = FxHashSet::default();
    let mut prefixes: FxHashSet<u16> = FxHashSet::default();
    let mut locations: FxHashSet<_> = FxHashSet::default();
    for rec in &dataset.torrents {
        if let Some(ip) = rec.publisher_ip {
            if let Some(info) = db.lookup(ip) {
                if info.isp == target {
                    fed += 1;
                    ips.insert(u32::from(ip));
                    prefixes.insert(prefix16(ip));
                    locations.insert(info.location);
                }
            }
        }
    }
    IspFootprint {
        fed_torrents: fed,
        ip_addresses: ips.len(),
        prefixes16: prefixes.len(),
        geo_locations: locations.len(),
    }
}

/// Fraction of the given top publishers that sit at hosting providers,
/// plus the share specifically at one named provider (the paper: 42 % at
/// hosting services, 22 % at OVH alone, for pb10's top-100).
pub fn hosting_shares(
    publishers: &[PublisherStats],
    db: &GeoDb,
    provider: &str,
) -> (f64, f64) {
    if publishers.is_empty() {
        return (0.0, 0.0);
    }
    let mut at_hosting = 0usize;
    let mut at_named = 0usize;
    let mut with_ip = 0usize;
    for p in publishers {
        let Some(kind) = dominant_kind(p, db) else {
            continue;
        };
        with_ip += 1;
        if kind == IspKind::HostingProvider {
            at_hosting += 1;
        }
        if dominant_isp(p, db).is_some_and(|i| db.isp(i).name == provider) {
            at_named += 1;
        }
    }
    if with_ip == 0 {
        return (0.0, 0.0);
    }
    (
        at_hosting as f64 / with_ip as f64,
        at_named as f64 / with_ip as f64,
    )
}

/// The ISP a publisher's identified IPs most often map to.
pub fn dominant_isp(p: &PublisherStats, db: &GeoDb) -> Option<IspId> {
    let mut counts: FxHashMap<IspId, usize> = FxHashMap::default();
    for &ip in &p.ips {
        if let Some(info) = db.lookup(Ipv4Addr::from(ip)) {
            *counts.entry(info.isp).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0 .0.cmp(&a.0 .0)))
        .map(|(isp, _)| isp)
}

/// The ISP kind (hosting vs commercial) of a publisher's dominant ISP.
pub fn dominant_kind(p: &PublisherStats, db: &GeoDb) -> Option<IspKind> {
    dominant_isp(p, db).map(|isp| db.isp(isp).kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publishers::PublisherKey;
    use btpub_crawler::TorrentRecord;
    use btpub_geodb::GeoDbBuilder;
    use btpub_sim::content::Category;
    use btpub_sim::{SimTime, TorrentId};

    fn db() -> GeoDb {
        let mut b = GeoDbBuilder::new();
        let ovh = b.add_isp("OVH", IspKind::HostingProvider, "FR");
        let comcast = b.add_isp("Comcast", IspKind::CommercialIsp, "US");
        let rbx = b.add_location("Roubaix", "FR");
        let den = b.add_location("Denver", "US");
        let chi = b.add_location("Chicago", "US");
        b.add_slash16(0x0A00, ovh, rbx); // 10.0/16
        b.add_slash16(0x1800, comcast, den); // 24.0/16
        b.add_slash16(0x1801, comcast, chi); // 24.1/16
        b.build().unwrap()
    }

    fn rec(id: u32, ip: [u8; 4]) -> TorrentRecord {
        TorrentRecord {
            torrent: TorrentId(id),
            announced_at: SimTime(0),
            first_contact_at: None,
            category: Category::Movies,
            title: "t".into(),
            filename: "t".into(),
            textbox: None,
            size_bytes: 1,
            language: None,
            username: Some(format!("u{id}")),
            publisher_ip: Some(Ipv4Addr::from(ip)),
            ip_failure: None,
            first_complete: 0,
            first_incomplete: 0,
            sightings: vec![],
            observed_ips: vec![],
            observed_removed: false,
        }
    }

    fn ds(torrents: Vec<TorrentRecord>) -> Dataset {
        Dataset {
            name: "t".into(),
            start: SimTime(0),
            end: SimTime(1),
            has_usernames: true,
            torrents,
        }
    }

    #[test]
    fn table2_ranks_by_content() {
        let d = ds(vec![
            rec(0, [10, 0, 0, 1]),
            rec(1, [10, 0, 0, 1]),
            rec(2, [10, 0, 0, 2]),
            rec(3, [24, 0, 5, 5]),
        ]);
        let rows = top_isps(&d, &db(), 10);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "OVH");
        assert_eq!(rows[0].kind, IspKind::HostingProvider);
        assert!((rows[0].pct_content - 75.0).abs() < 1e-9);
        assert!((rows[1].pct_content - 25.0).abs() < 1e-9);
    }

    #[test]
    fn table3_footprint_contrast() {
        let d = ds(vec![
            rec(0, [10, 0, 0, 1]),
            rec(1, [10, 0, 0, 1]),
            rec(2, [10, 0, 0, 2]),
            rec(3, [24, 0, 5, 5]),
            rec(4, [24, 1, 9, 9]),
        ]);
        let database = db();
        let ovh = isp_footprint(&d, &database, "OVH");
        assert_eq!(ovh.fed_torrents, 3);
        assert_eq!(ovh.ip_addresses, 2);
        assert_eq!(ovh.prefixes16, 1);
        assert_eq!(ovh.geo_locations, 1);
        let comcast = isp_footprint(&d, &database, "Comcast");
        assert_eq!(comcast.fed_torrents, 2);
        assert_eq!(comcast.prefixes16, 2);
        assert_eq!(comcast.geo_locations, 2);
        let nosuch = isp_footprint(&d, &database, "NoSuch");
        assert_eq!(nosuch.fed_torrents, 0);
    }

    #[test]
    fn hosting_share_computation() {
        let database = db();
        let pubs = vec![
            PublisherStats {
                key: PublisherKey::Username("a".into()),
                torrents: vec![0],
                downloads: 0,
                ips: [u32::from(Ipv4Addr::new(10, 0, 0, 1))].into_iter().collect(),
            },
            PublisherStats {
                key: PublisherKey::Username("b".into()),
                torrents: vec![1],
                downloads: 0,
                ips: [u32::from(Ipv4Addr::new(24, 0, 0, 1))].into_iter().collect(),
            },
        ];
        let (hosting, ovh) = hosting_shares(&pubs, &database, "OVH");
        assert!((hosting - 0.5).abs() < 1e-9);
        assert!((ovh - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dominant_isp_majority_vote() {
        let database = db();
        let p = PublisherStats {
            key: PublisherKey::Username("a".into()),
            torrents: vec![],
            downloads: 0,
            ips: [
                u32::from(Ipv4Addr::new(24, 0, 0, 1)),
                u32::from(Ipv4Addr::new(24, 1, 0, 1)),
                u32::from(Ipv4Addr::new(10, 0, 0, 1)),
            ]
            .into_iter()
            .collect(),
        };
        assert_eq!(
            dominant_kind(&p, &database),
            Some(IspKind::CommercialIsp),
            "2 Comcast IPs beat 1 OVH"
        );
        let empty = PublisherStats {
            key: PublisherKey::Username("none".into()),
            torrents: vec![],
            downloads: 0,
            ips: Default::default(),
        };
        assert_eq!(dominant_kind(&empty, &database), None);
    }
}
