//! Text campaign timelines: a sim-time histogram of a campaign's life.
//!
//! Rendered only under `--trace` (never into the analysis report — the
//! report's bytes are part of the determinism contract), the timeline
//! answers at a glance the questions a trace viewer answers with a
//! mouse: when did discoveries cluster, how quickly did identification
//! follow, when did swarms go quiet, and which windows the tracker spent
//! dark.
//!
//! Everything here is a pure function of the dataset and the fault plan,
//! so the timeline is as deterministic as the campaign itself.

use btpub_faults::FaultPlan;

use crate::dataset::Dataset;

/// Number of histogram rows a timeline renders.
pub const TIMELINE_BUCKETS: usize = 30;

/// Samples per bucket when estimating the tracker-downtime fraction.
const DOWNTIME_SAMPLES: u64 = 16;

/// Width of the discovery bar, in characters.
const BAR_WIDTH: usize = 24;

/// Renders a fixed-width sim-time histogram of the campaign: per bucket,
/// torrents discovered (by announcement), identified (by first contact —
/// the §2 procedure resolves or fails within the first few queries), and
/// lost (last observation falls in the bucket, with the campaign going on
/// long enough afterwards that silence is meaningful), plus the fraction
/// of the bucket the tracker spent inside an injected downtime window.
pub fn campaign_timeline(ds: &Dataset, plan: Option<&FaultPlan>) -> String {
    let span = ds.end.0.saturating_sub(ds.start.0).max(1);
    let bucket_len = span.div_ceil(TIMELINE_BUCKETS as u64).max(1);
    let bucket_of = |secs: u64| -> usize {
        let b = secs.saturating_sub(ds.start.0) / bucket_len;
        (b as usize).min(TIMELINE_BUCKETS - 1)
    };

    let mut discovered = [0u32; TIMELINE_BUCKETS];
    let mut identified = [0u32; TIMELINE_BUCKETS];
    let mut lost = [0u32; TIMELINE_BUCKETS];
    // A swarm that was last seen at least two buckets before the end went
    // quiet mid-campaign; later than that, the campaign simply ended.
    let lost_horizon = ds.end.0.saturating_sub(2 * bucket_len);
    for rec in &ds.torrents {
        discovered[bucket_of(rec.announced_at.0)] += 1;
        if rec.publisher_ip.is_some() {
            let at = rec.first_contact_at.unwrap_or(rec.announced_at);
            identified[bucket_of(at.0)] += 1;
        }
        let last_at = rec
            .sightings
            .last()
            .map(|s| s.at)
            .or(rec.first_contact_at)
            .unwrap_or(rec.announced_at);
        if last_at.0 < lost_horizon {
            lost[bucket_of(last_at.0)] += 1;
        }
    }

    let down_pct = |bucket: usize| -> Option<u64> {
        let plan = plan?;
        let start = ds.start.0 + bucket as u64 * bucket_len;
        let step = (bucket_len / DOWNTIME_SAMPLES).max(1);
        let down = (0..DOWNTIME_SAMPLES)
            .filter(|i| plan.tracker_down(start + i * step).is_some())
            .count() as u64;
        Some(down * 100 / DOWNTIME_SAMPLES)
    };

    let max_disc = discovered.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "campaign timeline: {} ({} buckets x {:.1}h, {} torrents)\n",
        ds.name,
        TIMELINE_BUCKETS,
        bucket_len as f64 / 3600.0,
        ds.torrent_count(),
    ));
    out.push_str("      t0  disc ident  lost tracker  discovery\n");
    for b in 0..TIMELINE_BUCKETS {
        let t0_h = (b as u64 * bucket_len) as f64 / 3600.0;
        let tracker = match down_pct(b) {
            None | Some(0) => "ok".to_string(),
            Some(pct) => format!("dn {pct:>2}%"),
        };
        let bar_len = (discovered[b] as usize * BAR_WIDTH).div_ceil(max_disc as usize);
        let bar: String = "#".repeat(if discovered[b] > 0 { bar_len.max(1) } else { 0 });
        out.push_str(&format!(
            "  {t0_h:>6.1}h {:>5} {:>5} {:>5} {tracker:<7}  {bar}\n",
            discovered[b], identified[b], lost[b],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use btpub_faults::{FaultPlan, FaultProfile};
    use btpub_sim::content::Category;
    use btpub_sim::{SimTime, TorrentId};

    use super::*;
    use crate::dataset::{Sighting, TorrentRecord};

    fn record(id: u32, announced: u64, identified: bool, last_seen: u64) -> TorrentRecord {
        TorrentRecord {
            torrent: TorrentId(id),
            announced_at: SimTime(announced),
            first_contact_at: Some(SimTime(announced + 30)),
            category: Category::Movies,
            title: "t".into(),
            filename: "t".into(),
            textbox: None,
            size_bytes: 1,
            username: None,
            language: None,
            publisher_ip: identified.then_some(Ipv4Addr::new(10, 0, 0, 1)),
            ip_failure: None,
            first_complete: 1,
            first_incomplete: 0,
            sightings: vec![Sighting {
                at: SimTime(last_seen),
                complete: 1,
                incomplete: 0,
                sampled: 1,
                publisher_seen: false,
            }],
            observed_ips: vec![],
            observed_removed: false,
        }
    }

    fn dataset(end: u64, torrents: Vec<TorrentRecord>) -> Dataset {
        Dataset {
            name: "test".into(),
            start: SimTime(0),
            end: SimTime(end),
            has_usernames: false,
            torrents,
        }
    }

    #[test]
    fn timeline_has_fixed_shape_and_counts_every_torrent() {
        let day = 86_400;
        let ds = dataset(
            30 * day,
            vec![
                record(0, 0, true, day),
                record(1, day, false, 2 * day),
                record(2, 15 * day, true, 29 * day),
            ],
        );
        let tl = campaign_timeline(&ds, None);
        assert_eq!(tl.lines().count(), 2 + TIMELINE_BUCKETS);
        assert!(tl.starts_with("campaign timeline: test"));
        assert!(tl.contains("3 torrents"));
        // Column sums: every torrent discovered once, identified twice,
        // the two early swarms went quiet (the third ran to the end).
        let mut disc = 0u32;
        let mut ident = 0u32;
        let mut lost = 0u32;
        for line in tl.lines().skip(2) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            disc += cols[1].parse::<u32>().unwrap();
            ident += cols[2].parse::<u32>().unwrap();
            lost += cols[3].parse::<u32>().unwrap();
        }
        assert_eq!(disc, 3);
        assert_eq!(ident, 2);
        assert_eq!(lost, 2, "swarm alive near the end is not lost");
        // No plan → the tracker column is always healthy.
        assert!(!tl.contains("dn "));
    }

    #[test]
    fn timeline_is_deterministic_and_marks_downtime_windows() {
        let ds = dataset(
            30 * 86_400,
            (0..20).map(|i| record(i, u64::from(i) * 86_400, false, 86_400)).collect(),
        );
        let plan = FaultPlan::new(7, FaultProfile::hostile());
        let a = campaign_timeline(&ds, Some(&plan));
        let b = campaign_timeline(&ds, Some(&plan));
        assert_eq!(a, b, "pure function of dataset + plan");
        // The hostile profile keeps the tracker dark ~10 % of the time in
        // multi-hour windows; over 30 days some bucket must show it.
        assert!(a.contains("dn "), "hostile downtime never surfaced:\n{a}");
    }

    #[test]
    fn degenerate_datasets_do_not_panic() {
        let empty = dataset(1, vec![]);
        let tl = campaign_timeline(&empty, None);
        assert_eq!(tl.lines().count(), 2 + TIMELINE_BUCKETS);
        // A record announced exactly at the end lands in the last bucket.
        let edge = dataset(100, vec![record(0, 100, false, 100)]);
        let _ = campaign_timeline(&edge, None);
    }
}
