//! # btpub-crawler
//!
//! The paper's measurement apparatus (§2), reimplemented faithfully:
//!
//! 1. **RSS monitoring** — poll the portal feed, learn of each newborn
//!    torrent and its publishing username;
//! 2. **first contact** — immediately download the `.torrent`, capture the
//!    content page (textbox/filename, where promoting URLs hide), and
//!    query the tracker;
//! 3. **initial-seeder identification** — if the tracker reports exactly
//!    one seeder and fewer than 20 peers, probe each returned address over
//!    the peer wire: the peer with a complete bitfield is the publisher.
//!    NATted publishers, swarms born on other portals (large population at
//!    announce), and seederless swarms defeat identification — the same
//!    three failure cases the paper reports, and the reason only ~40 % of
//!    files get a publisher IP;
//! 4. **swarm tracking** — periodic tracker queries for the maximum 200
//!    peers, spread over several vantage points to multiply the
//!    rate-limited query budget, until 10 consecutive empty replies;
//! 5. **dataset assembly** — per-torrent records with observed downloader
//!    IPs and per-query sightings of the publisher ([`dataset`]).
//!
//! [`live`] contains the same logic pointed at real TCP endpoints (the
//! `TrackerServer` + `LivePeer` testbed) instead of the simulation.

pub mod crawler;
pub mod dataset;
pub mod live;
pub mod sink;
pub mod timeline;

pub use crawler::{run_crawl, run_crawl_with, CrawlerConfig};
pub use sink::{ChannelSink, CollectSink, RecordSink};
pub use dataset::{Dataset, IpFailure, Sighting, TorrentRecord};
pub use timeline::campaign_timeline;
