//! Live-network crawling: the same §2 procedure against real TCP
//! endpoints (a [`btpub_tracker::server::TrackerServer`] plus
//! [`btpub_tracker::livepeer::LivePeer`]s), exercised by the
//! `live_tracker` example and the workspace integration tests.

use std::io;
use std::net::{SocketAddr, SocketAddrV4};

use btpub_faults::{NetConfig, RetryPolicy};
use btpub_proto::metainfo::Metainfo;
use btpub_proto::tracker::{AnnounceEvent, AnnounceRequest, AnnounceResponse};
use btpub_proto::types::PeerId;
use btpub_tracker::client;
use btpub_tracker::livepeer::probe_bitfield_with;

/// What one live first-contact learned about a swarm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveObservation {
    /// Tracker-reported seeder count.
    pub complete: u32,
    /// Tracker-reported leecher count.
    pub incomplete: u32,
    /// Peer addresses returned.
    pub peers: Vec<SocketAddrV4>,
    /// Identified initial seeder, when the procedure succeeded.
    pub seeder: Option<SocketAddrV4>,
}

/// The crawler's peer id on the live network. Using a recognisable client
/// string keeps the testbed honest about what a polite crawler looks like.
pub fn crawler_peer_id(vantage: u8) -> PeerId {
    let mut random = [0u8; 12];
    random[0] = vantage;
    random[1..8].copy_from_slice(b"crawler");
    PeerId::azureus_style("BP", "0100", random)
}

/// Performs a live first contact: announce to the tracker as an observer
/// (a leecher that never transfers), then — if the swarm has exactly one
/// seeder and is small — probe every returned peer's bitfield to find it.
pub fn first_contact(
    metainfo: &Metainfo,
    vantage: u8,
    probe_peer_limit: usize,
) -> io::Result<LiveObservation> {
    // Single attempt, default timeouts — the historical behaviour; callers
    // wanting resilience against a flaky tracker use `first_contact_with`.
    let single = RetryPolicy {
        max_attempts: 1,
        ..RetryPolicy::announce()
    };
    first_contact_with(metainfo, vantage, probe_peer_limit, &NetConfig::default(), &single)
}

/// [`first_contact`] with explicit socket timeouts and an announce retry
/// policy (exponential backoff on the wall clock; metrics under
/// `retry.live.announce.*`).
pub fn first_contact_with(
    metainfo: &Metainfo,
    vantage: u8,
    probe_peer_limit: usize,
    net: &NetConfig,
    retry: &RetryPolicy,
) -> io::Result<LiveObservation> {
    let req = AnnounceRequest {
        info_hash: metainfo.info_hash(),
        peer_id: crawler_peer_id(vantage),
        port: 6881,
        uploaded: 0,
        downloaded: 0,
        left: metainfo.info.total_length(),
        event: AnnounceEvent::Started,
        numwant: 200,
        compact: true,
    };
    let response = retry.run("live.announce", |_attempt| {
        client::announce_with(&metainfo.announce, &req, net)
    })?;
    let (complete, incomplete, peers) = match response {
        AnnounceResponse::Failure(reason) => {
            return Err(io::Error::other(reason))
        }
        AnnounceResponse::Ok {
            complete,
            incomplete,
            peers,
            ..
        } => (
            complete,
            incomplete,
            peers.into_iter().map(|p| p.addr).collect::<Vec<_>>(),
        ),
    };
    let mut seeder = None;
    let population = (complete + incomplete) as usize;
    if complete == 1 && population < probe_peer_limit {
        let pieces = metainfo.info.piece_count();
        for addr in &peers {
            if let Ok(bf) = probe_bitfield_with(
                SocketAddr::V4(*addr),
                metainfo.info_hash(),
                crawler_peer_id(vantage),
                pieces,
                net,
            ) {
                if bf.is_seed() {
                    seeder = Some(*addr);
                    break;
                }
            }
        }
    }
    Ok(LiveObservation {
        complete,
        incomplete,
        peers,
        seeder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpub_proto::metainfo::MetainfoBuilder;
    use btpub_proto::tracker::AnnounceEvent;
    use btpub_tracker::livepeer::LivePeer;
    use btpub_tracker::server::TrackerServer;

    /// End-to-end over real sockets: tracker + seeder + leecher, then the
    /// crawler identifies the seeder via bitfield probing.
    #[test]
    fn live_first_contact_identifies_seeder() {
        let tracker = TrackerServer::start(42).unwrap();
        let metainfo = MetainfoBuilder::new(&tracker.announce_url(), "live.test.file", 1 << 20)
            .piece_length(64 * 1024)
            .build();
        let ih = metainfo.info_hash();
        tracker.register(ih);
        let pieces = metainfo.info.piece_count();

        // The publisher: a seeder peer that announces its real port.
        let seeder_id = PeerId::azureus_style("SD", "0001", [7; 12]);
        let seeder = LivePeer::start(ih, seeder_id, pieces, pieces).unwrap();
        let announce = AnnounceRequest {
            info_hash: ih,
            peer_id: seeder_id,
            port: seeder.addr().port(),
            uploaded: 0,
            downloaded: 0,
            left: 0,
            event: AnnounceEvent::Started,
            numwant: 0,
            compact: true,
        };
        client::announce(&tracker.announce_url(), &announce).unwrap();

        // A leecher with a partial bitfield is also in the swarm.
        let leecher_id = PeerId::azureus_style("LC", "0001", [8; 12]);
        let leecher = LivePeer::start(ih, leecher_id, pieces, pieces / 2).unwrap();
        let announce = AnnounceRequest {
            peer_id: leecher_id,
            port: leecher.addr().port(),
            left: 1,
            ..announce
        };
        client::announce(&tracker.announce_url(), &announce).unwrap();

        let obs = first_contact(&metainfo, 0, 20).unwrap();
        assert_eq!(obs.complete, 1);
        // The observer itself counts as a leecher on its own announce.
        assert!(obs.incomplete >= 1);
        assert_eq!(
            obs.seeder.map(|a| a.port()),
            Some(seeder.addr().port()),
            "crawler must pin the seeder"
        );
    }

    #[test]
    fn live_first_contact_retries_then_gives_up_on_dead_tracker() {
        use std::time::{Duration, Instant};
        // A port with no listener: every announce attempt fails fast.
        let dead = {
            let l = std::net::TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
            l.local_addr().unwrap()
        };
        let metainfo = MetainfoBuilder::new(
            &format!("http://{dead}/announce"),
            "dead.tracker",
            1 << 16,
        )
        .build();
        let retry = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(10),
            jitter_ppm: 0,
            deadline: Some(Duration::from_secs(10)),
        };
        let started = Instant::now();
        let err = first_contact_with(&metainfo, 0, 20, &NetConfig::loopback_test(), &retry);
        assert!(err.is_err(), "dead tracker must surface an error");
        // All three attempts ran (two backoff sleeps ≥ 5 + 10 ms)...
        assert!(started.elapsed() >= Duration::from_millis(15));
        // ...but the deadline kept the whole thing prompt.
        assert!(started.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn live_first_contact_skips_probing_with_multiple_seeders() {
        let tracker = TrackerServer::start(43).unwrap();
        let metainfo = MetainfoBuilder::new(&tracker.announce_url(), "multi.seed", 1 << 18)
            .piece_length(64 * 1024)
            .build();
        let ih = metainfo.info_hash();
        tracker.register(ih);
        for i in 0..2u8 {
            let id = PeerId::azureus_style("SD", "0002", [i; 12]);
            let announce = AnnounceRequest {
                info_hash: ih,
                peer_id: id,
                port: 40_000 + u16::from(i),
                uploaded: 0,
                downloaded: 0,
                left: 0,
                event: AnnounceEvent::Started,
                numwant: 0,
                compact: true,
            };
            client::announce(&tracker.announce_url(), &announce).unwrap();
        }
        let obs = first_contact(&metainfo, 1, 20).unwrap();
        assert_eq!(obs.complete, 2);
        assert_eq!(obs.seeder, None, "no identification with 2 seeders");
    }
}
