//! The measurement dataset: what the crawler saw.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use btpub_sim::content::Category;
use btpub_sim::{SimTime, TorrentId};

/// Why the initial publisher's IP could not be identified (§2 footnote 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IpFailure {
    /// The swarm already had many peers at announcement — it was born on
    /// another portal.
    LargeSwarmAtBirth,
    /// The tracker never reported a single-seeder state in time.
    NoSeeder,
    /// More than one seeder at first contact.
    MultipleSeeders,
    /// The single seeder was unreachable — behind a NAT.
    SeederUnreachable,
    /// The listing was removed before the crawler could fetch it.
    RemovedBeforeContact,
    /// The measurement campaign ended before the crawler's first contact
    /// (the torrent was announced in the final moments of the window).
    CampaignEnded,
    /// The tracker was unreachable (injected or real downtime) through the
    /// identification window; monitoring resumed but the pounce was lost.
    TrackerDown,
    /// The tracker's replies would not parse during the identification
    /// window (truncated or garbled bencode).
    MalformedReply,
    /// Announces kept vanishing without reply; the crawler exhausted its
    /// retry budget during the identification window.
    GaveUpRetrying,
}

/// One periodic tracker observation of a swarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sighting {
    /// Observation time.
    pub at: SimTime,
    /// Tracker-reported seeder count.
    pub complete: u32,
    /// Tracker-reported leecher count.
    pub incomplete: u32,
    /// Number of peers in the reply.
    pub sampled: u32,
    /// Whether the identified publisher IP appeared in the sample — the
    /// raw material of Appendix A's session estimation.
    pub publisher_seen: bool,
}

/// Everything the crawler learned about one torrent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TorrentRecord {
    /// Torrent identity (portal index).
    pub torrent: TorrentId,
    /// When the RSS item appeared.
    pub announced_at: SimTime,
    /// When the crawler first contacted the tracker.
    pub first_contact_at: Option<SimTime>,
    /// Portal category from the feed.
    pub category: Category,
    /// Release title from the feed.
    pub title: String,
    /// Filename offered on the content page (may embed a promoting URL).
    pub filename: String,
    /// Content-page textbox captured at first contact.
    pub textbox: Option<String>,
    /// Payload size.
    pub size_bytes: u64,
    /// Publishing username (absent in mn08-style runs).
    pub username: Option<String>,
    /// Language tag inferred from the release, if any.
    pub language: Option<String>,
    /// Identified initial-publisher IP, when the §2 procedure succeeded.
    pub publisher_ip: Option<Ipv4Addr>,
    /// Failure cause when it did not.
    pub ip_failure: Option<IpFailure>,
    /// Seeder/leecher counts at first contact.
    pub first_complete: u32,
    /// Leecher count at first contact.
    pub first_incomplete: u32,
    /// All periodic observations, in time order.
    pub sightings: Vec<Sighting>,
    /// Distinct downloader IPs observed across all queries, sorted.
    pub observed_ips: Vec<u32>,
    /// Whether the crawler later found the listing removed (fake signal).
    pub observed_removed: bool,
}

impl TorrentRecord {
    /// Number of distinct downloaders observed — the paper's per-torrent
    /// popularity measure.
    pub fn observed_downloaders(&self) -> usize {
        self.observed_ips.len()
    }
}

/// A full measurement campaign's output (one of mn08 / pb09 / pb10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Campaign label.
    pub name: String,
    /// Campaign start.
    pub start: SimTime,
    /// Campaign end.
    pub end: SimTime,
    /// Whether usernames were collected (false for mn08).
    pub has_usernames: bool,
    /// Per-torrent records, in announcement order.
    pub torrents: Vec<TorrentRecord>,
}

impl Dataset {
    /// Total torrents crawled.
    pub fn torrent_count(&self) -> usize {
        self.torrents.len()
    }

    /// Torrents whose publisher IP was identified.
    pub fn ip_identified_count(&self) -> usize {
        self.torrents
            .iter()
            .filter(|t| t.publisher_ip.is_some())
            .count()
    }

    /// Torrents with a username (all, unless `has_usernames` is false).
    pub fn username_identified_count(&self) -> usize {
        self.torrents.iter().filter(|t| t.username.is_some()).count()
    }

    /// Number of distinct IP addresses observed across every swarm —
    /// Table 1's "#IP addresses" column.
    pub fn distinct_ip_count(&self) -> usize {
        let mut all: Vec<u32> = self
            .torrents
            .iter()
            .flat_map(|t| t.observed_ips.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }

    /// Serialises the dataset to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dataset serialises")
    }

    /// Parses a dataset back from [`Dataset::to_json`] output, so
    /// campaigns can be archived and re-analysed without re-crawling.
    pub fn from_json(json: &str) -> Result<Dataset, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the dataset to a JSON file.
    pub fn write_json_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a dataset from a JSON file.
    pub fn read_json_file(path: &std::path::Path) -> std::io::Result<Dataset> {
        let json = std::fs::read_to_string(path)?;
        Dataset::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u32, ips: Vec<u32>) -> TorrentRecord {
        TorrentRecord {
            torrent: TorrentId(id),
            announced_at: SimTime(0),
            first_contact_at: Some(SimTime(1)),
            category: Category::Movies,
            title: "t".into(),
            filename: "t".into(),
            textbox: None,
            size_bytes: 1,
            username: Some("u".into()),
            language: None,
            publisher_ip: id.is_multiple_of(2).then_some(Ipv4Addr::new(1, 2, 3, 4)),
            ip_failure: None,
            first_complete: 1,
            first_incomplete: 0,
            sightings: vec![],
            observed_ips: ips,
            observed_removed: false,
        }
    }

    #[test]
    fn dataset_counters() {
        let ds = Dataset {
            name: "test".into(),
            start: SimTime(0),
            end: SimTime(100),
            has_usernames: true,
            torrents: vec![record(0, vec![1, 2, 3]), record(1, vec![3, 4])],
        };
        assert_eq!(ds.torrent_count(), 2);
        assert_eq!(ds.ip_identified_count(), 1);
        assert_eq!(ds.username_identified_count(), 2);
        assert_eq!(ds.distinct_ip_count(), 4, "IP 3 shared across swarms");
        assert_eq!(ds.torrents[0].observed_downloaders(), 3);
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let ds = Dataset {
            name: "rt".into(),
            start: SimTime(0),
            end: SimTime(100),
            has_usernames: true,
            torrents: vec![record(0, vec![1, 2, 3]), record(1, vec![9])],
        };
        let back = Dataset::from_json(&ds.to_json()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn json_file_roundtrip() {
        let ds = Dataset {
            name: "file-rt".into(),
            start: SimTime(0),
            end: SimTime(1),
            has_usernames: false,
            torrents: vec![record(2, vec![])],
        };
        let path = std::env::temp_dir().join("btpub-dataset-test.json");
        ds.write_json_file(&path).unwrap();
        let back = Dataset::read_json_file(&path).unwrap();
        assert_eq!(back, ds);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_serialisation_works() {
        let ds = Dataset {
            name: "test".into(),
            start: SimTime(0),
            end: SimTime(1),
            has_usernames: false,
            torrents: vec![record(0, vec![])],
        };
        let json = ds.to_json();
        assert!(json.contains("\"name\":\"test\""));
        assert!(json.contains("\"publisher_ip\":\"1.2.3.4\""));
    }
}
