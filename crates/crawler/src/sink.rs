//! Record sinks: where finished [`TorrentRecord`]s go.
//!
//! [`run_crawl_with`](crate::crawler::run_crawl_with) finalizes each
//! torrent's record the moment monitoring for it ends and hands it to a
//! sink tagged with its announcement index. An *ordered* sink (the
//! default) receives records in strict announcement order — the crawler
//! buffers out-of-order finishers until their turn. An *unordered* sink
//! receives each record immediately: one early-announced torrent that
//! stays alive for the whole campaign would otherwise force every
//! later record to wait in the reorder buffer (head-of-line blocking),
//! re-materializing most of the campaign in memory. The streaming
//! consumer reorders on its side *after* shrinking each record to a
//! small digest, so its reorder buffer is bounded by digests, not
//! full records.

use crate::dataset::TorrentRecord;

/// Consumer of finalized per-torrent records.
pub trait RecordSink {
    /// Whether records must arrive in announcement order. Ordered sinks
    /// make the crawler hold finished records until every
    /// earlier-announced torrent has finished too; an unordered sink
    /// takes each record the moment it finalizes and is responsible for
    /// any reordering it needs (`idx` is the announcement index).
    fn ordered(&self) -> bool {
        true
    }

    /// Accepts the record announced at position `idx`.
    fn emit(&mut self, idx: usize, record: TorrentRecord);
}

/// Materializing sink: collects every record (the historical behaviour).
#[derive(Default)]
pub struct CollectSink {
    pub records: Vec<TorrentRecord>,
}

impl RecordSink for CollectSink {
    fn emit(&mut self, idx: usize, record: TorrentRecord) {
        debug_assert_eq!(idx, self.records.len(), "ordered sink fed out of order");
        self.records.push(record);
    }
}

/// Streaming sink: forwards `(announcement index, record)` pairs over a
/// bounded, backpressured channel the moment each record finalizes. If
/// the consumer is gone (receiver dropped — the run is already
/// aborting), remaining records are counted and dropped rather than
/// panicking the crawl thread.
pub struct ChannelSink {
    sender: btpub_stream::channel::Sender<(usize, TorrentRecord)>,
    disconnected: bool,
}

impl ChannelSink {
    pub fn new(sender: btpub_stream::channel::Sender<(usize, TorrentRecord)>) -> Self {
        Self { sender, disconnected: false }
    }
}

impl RecordSink for ChannelSink {
    fn ordered(&self) -> bool {
        false
    }

    fn emit(&mut self, idx: usize, record: TorrentRecord) {
        if self.disconnected {
            btpub_obs::counter("stream.records.dropped").add(1);
            return;
        }
        if self.sender.send((idx, record)).is_err() {
            self.disconnected = true;
            btpub_obs::error!("record consumer disconnected mid-crawl; dropping records");
            btpub_obs::counter("stream.records.dropped").add(1);
        }
    }
}
