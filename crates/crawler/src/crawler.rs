//! The crawl engine over the simulated ecosystem.

use std::net::Ipv4Addr;

use btpub_faults::{CircuitBreaker, FaultPlan, FaultProfile, RetryPolicy};
use btpub_fxhash::FxHashMap;
use btpub_portal::Portal;
use btpub_sim::engine::EventQueue;
use btpub_sim::{Ecosystem, SimDuration, SimTime, TorrentId, MINUTE};
use btpub_tracker::sim::{probe_with, ClientId, ProbeOutcome, QueryError, TrackerSim};

use crate::dataset::{Dataset, IpFailure, Sighting, TorrentRecord};
use crate::sink::{CollectSink, RecordSink};

/// Crawl parameters (§2 defaults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlerConfig {
    /// Campaign label (mn08 / pb09 / pb10 / …).
    pub name: String,
    /// Number of geographically distributed crawler machines. Each obeys
    /// the tracker's per-client rate limit; together they observe the
    /// swarm `vantage_points`× more often.
    pub vantage_points: u32,
    /// Peers requested per query (the tracker's maximum, 200).
    pub numwant: usize,
    /// RSS polling period.
    pub rss_poll: SimDuration,
    /// Stop monitoring after this many consecutive empty replies.
    pub empty_replies_to_stop: u32,
    /// Collect usernames from the feed (false replicates mn08).
    pub collect_usernames: bool,
    /// Query the tracker only once per torrent (replicates pb09).
    pub single_query: bool,
    /// Maximum swarm population for attempting seeder identification.
    pub probe_peer_limit: usize,
    /// Identification attempts allowed (first N queries).
    pub ident_attempts: u32,
    /// Fault profile injected into the tracker, feed and probe paths
    /// (`clean` = no injection, the historical behaviour).
    pub fault_profile: FaultProfile,
    /// Consecutive failed announces tolerated per torrent before the
    /// crawler records a failure cause and resumes its normal cadence.
    pub max_fault_retries: u32,
    /// Optional cap on the crawl horizon, in simulated seconds. The
    /// crawl stops at `min(cap, ecosystem horizon)` — the generated
    /// world is untouched (shrinking the ecosystem's own duration would
    /// change every seeded draw), so a capped crawl observes a strict
    /// prefix of the uncapped campaign. `None` runs to the ecosystem
    /// horizon.
    pub horizon_secs: Option<u64>,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            name: "crawl".into(),
            vantage_points: 4,
            numwant: 200,
            rss_poll: SimDuration::from_mins(10.0),
            empty_replies_to_stop: 10,
            collect_usernames: true,
            single_query: false,
            probe_peer_limit: 20,
            ident_attempts: 6,
            fault_profile: FaultProfile::clean(),
            max_fault_retries: 6,
            horizon_secs: None,
        }
    }
}

impl CrawlerConfig {
    /// The horizon this configuration actually crawls to: the ecosystem
    /// horizon, optionally capped by [`Self::horizon_secs`].
    pub fn effective_horizon(&self, eco: &Ecosystem) -> SimTime {
        let full = eco.config.horizon();
        match self.horizon_secs {
            Some(secs) => SimTime(secs).min(full),
            None => full,
        }
    }
}

#[derive(Debug)]
enum Event {
    RssPoll,
    Query { torrent: TorrentId, round: u32 },
}

struct TorrentState {
    /// Announcement index: position in discovery order, which is the
    /// order records must reach the sink in.
    idx: usize,
    record: TorrentRecord,
    empty_streak: u32,
    /// When the current run of empty replies began.
    empty_since: Option<SimTime>,
    done: bool,
    ident_attempts_left: u32,
    /// Consecutive announces lost to injected faults.
    fault_retries: u32,
}

/// Finalized-record bookkeeping. Torrents finish monitoring in event
/// order; an *ordered* sink must see records in announcement order, so
/// records that finish early wait in a reorder buffer keyed on their
/// announcement index. That buffer is **not** bounded by the active
/// window: one early-announced torrent alive until the horizon blocks
/// every later record behind it (head-of-line), which at high
/// announcement density re-materializes most of the campaign. An
/// unordered sink therefore receives each record the moment it
/// finalizes, tagged with its index, and reorders on its own side —
/// the streaming consumer does so *after* reducing records to small
/// digests, which is what keeps its memory bounded.
#[derive(Default)]
struct OrderedEmitter {
    next_emit: usize,
    pending: std::collections::BTreeMap<usize, TorrentRecord>,
    /// High-water mark of the reorder buffer (ordered sinks only).
    pending_peak: usize,
    emitted: u64,
    identified: u64,
}

impl OrderedEmitter {
    fn finish<S: RecordSink>(
        &mut self,
        st: TorrentState,
        portal: &Portal,
        horizon: SimTime,
        sink: &mut S,
    ) {
        let idx = st.idx;
        let record = finalize_record(st, portal, horizon);
        if !sink.ordered() {
            self.tally(&record);
            sink.emit(idx, record);
            return;
        }
        if idx == self.next_emit {
            self.emit(record, sink);
            while let Some(rec) = self.pending.remove(&self.next_emit) {
                self.emit(rec, sink);
            }
        } else {
            self.pending.insert(idx, record);
            self.pending_peak = self.pending_peak.max(self.pending.len());
        }
    }

    fn tally(&mut self, record: &TorrentRecord) {
        self.emitted += 1;
        if record.publisher_ip.is_some() {
            self.identified += 1;
        }
    }

    fn emit<S: RecordSink>(&mut self, record: TorrentRecord, sink: &mut S) {
        self.tally(&record);
        let idx = self.next_emit;
        self.next_emit += 1;
        sink.emit(idx, record);
    }
}

/// Normalise a finished torrent's record. Safe to run the moment the
/// torrent's monitoring ends: `Portal::is_removed(.., horizon)` is
/// time-invariant ground truth, so finalizing early sees exactly what
/// end-of-campaign postprocessing used to see.
fn finalize_record(mut st: TorrentState, portal: &Portal, horizon: SimTime) -> TorrentRecord {
    st.record.observed_ips.sort_unstable();
    st.record.observed_ips.dedup();
    st.record.observed_removed |= portal.is_removed(st.record.torrent, horizon);
    // Torrents discovered on the campaign's last RSS polls may have
    // their first query scheduled past the horizon and never be
    // contacted; every unidentified record must still carry a cause
    // (§2: the paper enumerates reasons for unresolved IPs).
    if st.record.publisher_ip.is_none() && st.record.ip_failure.is_none() {
        st.record.ip_failure = Some(IpFailure::CampaignEnded);
    }
    // Count *final* identification outcomes here rather than in the
    // event loop: ip_failure is overwritten as attempts progress.
    match (st.record.publisher_ip, st.record.ip_failure) {
        (Some(_), _) => btpub_obs::static_counter!("crawler.identify.success").inc(),
        (None, Some(f)) => {
            btpub_obs::counter(&format!("crawler.identify.failure.{f:?}")).inc();
            btpub_obs::trace_instant!(
                "crawler.torrent.unresolved",
                u64::from(st.record.torrent.0)
            );
        }
        (None, None) => unreachable!("backfilled above"),
    }
    st.record
}

/// Runs a full measurement campaign against an ecosystem, materializing
/// the full [`Dataset`] (a [`CollectSink`] over [`run_crawl_with`]).
///
/// Deterministic: the tracker's sampling RNG is seeded from the ecosystem,
/// and events at equal instants pop in insertion order.
pub fn run_crawl(eco: &Ecosystem, cfg: &CrawlerConfig) -> Dataset {
    let mut sink = CollectSink::default();
    run_crawl_with(eco, cfg, &mut sink);
    Dataset {
        name: cfg.name.clone(),
        start: SimTime::ZERO,
        end: cfg.effective_horizon(eco),
        has_usernames: cfg.collect_usernames,
        torrents: sink.records,
    }
}

/// Streaming core of the crawl: each torrent's record is finalized the
/// moment its monitoring ends and handed to `sink` in announcement
/// order, so the engine itself never materializes the campaign.
pub fn run_crawl_with<S: RecordSink>(eco: &Ecosystem, cfg: &CrawlerConfig, sink: &mut S) {
    let _span = btpub_obs::span!("crawler.run");
    let wall_start = std::time::Instant::now();
    // The fault plan draws purely from (ecosystem seed, stream, index), so
    // a crawl under a given profile is as deterministic as a clean one —
    // serial or parallel, and across repeated runs.
    let plan = (!cfg.fault_profile.is_clean())
        .then(|| FaultPlan::new(eco.config.seed, cfg.fault_profile.clone()));
    let portal = match &plan {
        Some(p) => Portal::with_faults(eco, p.clone()),
        None => Portal::new(eco),
    };
    let mut tracker = match &plan {
        Some(p) => TrackerSim::with_faults(eco, p.clone()),
        None => TrackerSim::new(eco),
    };
    // One breaker for the (single) tracker: it opens well before the
    // tracker's blacklist threshold, so a long outage cannot goad the
    // crawler into earning strikes.
    let mut breaker = CircuitBreaker::tracker();
    let retry_policy = RetryPolicy::announce();
    let horizon = cfg.effective_horizon(eco);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut states: FxHashMap<TorrentId, TorrentState> = FxHashMap::default();
    let mut order: Vec<TorrentId> = Vec::new();
    // Announce replies land in one buffer reused across the whole
    // campaign — the steady-state query loop is allocation-free.
    let mut peers: Vec<Ipv4Addr> = Vec::new();
    let mut emitter = OrderedEmitter::default();
    let mut states_peak = 0usize;
    let mut last_poll = SimTime::ZERO;
    queue.schedule(SimTime::ZERO + cfg.rss_poll, Event::RssPoll);

    let mut stopped_early = false;
    while let Some((now, event)) = queue.pop() {
        if now > horizon {
            break;
        }
        if sink.cancelled() {
            // The consumer has flushed its final checkpoint (graceful
            // shutdown): stop simulating. Nothing is finalized after this
            // point — a cancelled crawl emits no partial records.
            stopped_early = true;
            break;
        }
        // One engine tick = one event dispatch; the guard records even on
        // the `continue` exits below.
        let _tick = btpub_obs::span!("sim.engine.tick");
        match event {
            Event::RssPoll => {
                let Ok(items) = portal.try_rss(last_poll, now) else {
                    // Feed outage: `last_poll` stays put, so the next poll
                    // re-covers this window and no announcement is lost —
                    // only discovered late (a genuinely delayed pounce, as
                    // the paper's crawler suffered during portal outages).
                    btpub_obs::static_counter!("crawler.rss.outages").inc();
                    let next = now + cfg.rss_poll;
                    if next <= horizon {
                        queue.schedule(next, Event::RssPoll);
                    }
                    continue;
                };
                let mut batch = 0u64;
                for item in items {
                    batch += 1;
                    btpub_obs::trace_instant!(
                        "crawler.torrent.discovered",
                        u64::from(item.torrent.0)
                    );
                    let state = TorrentState {
                        idx: order.len(),
                        record: TorrentRecord {
                            torrent: item.torrent,
                            announced_at: item.at,
                            first_contact_at: None,
                            category: item.category,
                            title: item.title.to_string(),
                            filename: String::new(),
                            textbox: None,
                            size_bytes: item.size_bytes,
                            username: cfg
                                .collect_usernames
                                .then(|| item.username.to_string()),
                            language: item.language.map(str::to_string),
                            publisher_ip: None,
                            ip_failure: None,
                            first_complete: 0,
                            first_incomplete: 0,
                            sightings: Vec::new(),
                            observed_ips: Vec::new(),
                            observed_removed: false,
                        },
                        empty_streak: 0,
                        empty_since: None,
                        done: false,
                        ident_attempts_left: cfg.ident_attempts,
                        fault_retries: 0,
                    };
                    states.insert(item.torrent, state);
                    states_peak = states_peak.max(states.len());
                    order.push(item.torrent);
                    // Pounce: first contact within a minute of discovery.
                    queue.schedule(
                        now + SimDuration(30),
                        Event::Query {
                            torrent: item.torrent,
                            round: 0,
                        },
                    );
                }
                btpub_obs::static_histogram!("crawler.rss.batch").record(batch);
                btpub_obs::static_counter!("crawler.torrents.discovered").add(batch);
                // Counter track: cumulative discoveries, one sample per
                // poll — renders as a staircase in the trace viewer.
                btpub_obs::trace_count!("crawler.torrents.discovered", order.len() as u64);
                btpub_obs::trace!("rss poll"; at = now.0, batch = batch);
                last_poll = now;
                let next = now + cfg.rss_poll;
                if next <= horizon {
                    queue.schedule(next, Event::RssPoll);
                }
            }
            Event::Query { torrent, round } => {
                // The arm body `break`s out of this labeled block where it
                // used to `continue` the event loop, so the emit check
                // below runs on every exit path.
                'query: {
                let Some(state) = states.get_mut(&torrent) else {
                    break 'query;
                };
                if state.done {
                    break 'query;
                }
                let first_contact = state.record.first_contact_at.is_none();
                if first_contact {
                    // Fetch the .torrent listing and page; a removed
                    // listing ends the campaign for this torrent before it
                    // begins.
                    match portal.torrent_listing(torrent, now) {
                        None => {
                            state.record.ip_failure = Some(IpFailure::RemovedBeforeContact);
                            state.record.observed_removed = true;
                            state.done = true;
                            break 'query;
                        }
                        Some(listing) => {
                            state.record.filename = listing.filename;
                            state.record.textbox = Some(listing.textbox);
                        }
                    }
                    state.record.first_contact_at = Some(now);
                }
                // Next query under the normal cadence: the vantage fleet
                // divides the query budget (see the scheduling comment at
                // the bottom of this arm).
                let spacing =
                    SimDuration((900 / u64::from(cfg.vantage_points)).max(MINUTE.0));
                // An open circuit breaker means the tracker has failed
                // enough consecutive announces that further traffic risks
                // blacklisting; hold every query until the cooldown ends,
                // spread per-torrent so the half-open trials don't stampede.
                // Identification is a race against swarm growth; once the
                // tracker has been unreachable for over an hour of a
                // torrent's infancy the pounce is lost, and whatever the
                // tracker reports hours later would misattribute the
                // failure. Record the outage as the cause and stop trying
                // to identify (monitoring itself continues).
                let pounce_lost = |state: &TorrentState, now: SimTime| {
                    state.record.sightings.is_empty()
                        && state.record.publisher_ip.is_none()
                        && state.record.ip_failure.is_none()
                        && now.since(state.record.announced_at) >= SimDuration(3600)
                };
                if let Some(at) = breaker.retry_at(now.secs()) {
                    btpub_obs::static_counter!("crawler.query.breaker_deferred").inc();
                    btpub_obs::trace_instant!(
                        "crawler.query.breaker_deferred",
                        u64::from(torrent.0)
                    );
                    if pounce_lost(state, now) {
                        state.record.ip_failure = Some(IpFailure::TrackerDown);
                        state.ident_attempts_left = 0;
                    }
                    let spread = plan
                        .as_ref()
                        .map(|p| p.jitter("breaker.spread", u64::from(torrent.0), 120))
                        .unwrap_or(0);
                    let retry = SimTime(at + 1 + spread);
                    if retry <= horizon {
                        queue.schedule(retry, Event::Query { torrent, round });
                    } else {
                        if state.record.publisher_ip.is_none()
                            && state.record.ip_failure.is_none()
                        {
                            state.record.ip_failure = Some(IpFailure::TrackerDown);
                        }
                        state.done = true;
                    }
                    break 'query;
                }
                // Round-robin over vantage points; each is a tracker client.
                btpub_obs::static_counter!("crawler.query.total").inc();
                let client: ClientId = round % cfg.vantage_points;
                let reply = match tracker.query_into(client, torrent, now, cfg.numwant, &mut peers)
                {
                    Ok(r) => r,
                    Err(QueryError::RateLimited { retry_at }) => {
                        queue.schedule(retry_at + SimDuration(1), Event::Query { torrent, round });
                        break 'query;
                    }
                    Err(
                        err @ (QueryError::TrackerDown { .. }
                        | QueryError::Dropped
                        | QueryError::Malformed { .. }),
                    ) => {
                        // An injected fault ate this announce. Back off and
                        // retry within a per-torrent budget; past it, record
                        // the cause and fall back to the normal cadence —
                        // degraded monitoring beats a dead campaign.
                        btpub_obs::static_counter!("crawler.query.faulted").inc();
                        btpub_obs::trace_instant!(
                            "crawler.query.retry",
                            u64::from(state.fault_retries + 1)
                        );
                        breaker.on_failure(now.secs());
                        state.fault_retries += 1;
                        if pounce_lost(state, now) {
                            state.record.ip_failure = Some(match err {
                                QueryError::TrackerDown { .. } => IpFailure::TrackerDown,
                                QueryError::Malformed { .. } => IpFailure::MalformedReply,
                                _ => IpFailure::GaveUpRetrying,
                            });
                            state.ident_attempts_left = 0;
                        }
                        if state.fault_retries > cfg.max_fault_retries {
                            btpub_obs::static_counter!("crawler.query.gaveup").inc();
                            if state.record.publisher_ip.is_none()
                                && state.record.ip_failure.is_none()
                            {
                                state.record.ip_failure = Some(match err {
                                    QueryError::TrackerDown { .. } => IpFailure::TrackerDown,
                                    QueryError::Malformed { .. } => IpFailure::MalformedReply,
                                    _ => IpFailure::GaveUpRetrying,
                                });
                            }
                            state.fault_retries = 0;
                            let next = now + spacing;
                            if next <= horizon {
                                queue.schedule(
                                    next,
                                    Event::Query {
                                        torrent,
                                        round: round + 1,
                                    },
                                );
                            } else {
                                state.done = true;
                            }
                            break 'query;
                        }
                        // Exponential backoff with deterministic jitter;
                        // at least 1 s so the retry lands on a fresh draw.
                        let draw = btpub_faults::mix(
                            eco.config.seed,
                            "retry.announce",
                            btpub_faults::key(&[
                                u64::from(torrent.0),
                                u64::from(round),
                                u64::from(state.fault_retries),
                            ]),
                        );
                        let delay =
                            retry_policy.delay_secs(state.fault_retries + 1, draw).max(1);
                        // A malformed reply means the tracker *served* the
                        // announce — its rate-limit clock reset even though
                        // the payload was garbage. Re-announcing from the
                        // same client inside the interval earns blacklist
                        // strikes (§2), so the retry moves to the next
                        // vantage client; a lone client must instead sit
                        // out the tracker's maximum interval.
                        let (retry_round, delay) = match err {
                            QueryError::Malformed { .. } if cfg.vantage_points > 1 => {
                                (round + 1, delay)
                            }
                            QueryError::Malformed { .. } => (round, delay.max(900)),
                            _ => (round, delay),
                        };
                        // Note: `QueryError::TrackerDown` carries the
                        // outage end as ground truth for tests, but a real
                        // client only sees a dead endpoint — the crawler
                        // must walk the backoff ladder blind.
                        let mut retry = now + SimDuration(delay);
                        if let Some(at) = breaker.retry_at(now.secs()) {
                            retry = retry.max(SimTime(at + 1));
                        }
                        if retry <= horizon {
                            queue.schedule(
                                retry,
                                Event::Query {
                                    torrent,
                                    round: retry_round,
                                },
                            );
                        } else {
                            if state.record.publisher_ip.is_none()
                                && state.record.ip_failure.is_none()
                            {
                                state.record.ip_failure = Some(match err {
                                    QueryError::TrackerDown { .. } => IpFailure::TrackerDown,
                                    QueryError::Malformed { .. } => IpFailure::MalformedReply,
                                    _ => IpFailure::GaveUpRetrying,
                                });
                            }
                            state.done = true;
                        }
                        break 'query;
                    }
                    Err(QueryError::Blacklisted | QueryError::UnknownTorrent) => {
                        // Monitoring is over for this torrent.
                        state.done = true;
                        break 'query;
                    }
                };
                breaker.on_success();
                state.fault_retries = 0;
                let population = (reply.complete + reply.incomplete) as usize;
                // Record the sighting. `observed_ips` is kept sorted and
                // deduplicated *as replies stream in*: `finalize_record`
                // sorts and dedups anyway, so the emitted record is
                // unchanged, but the in-flight vector no longer
                // accumulates every duplicate of every 15-minute reply
                // for the torrent's whole monitored life — per-torrent
                // resident memory is O(distinct peers), not O(polls).
                for ip in &peers {
                    let ip = u32::from(*ip);
                    if let Err(pos) = state.record.observed_ips.binary_search(&ip) {
                        state.record.observed_ips.insert(pos, ip);
                    }
                }
                let publisher_seen = state
                    .record
                    .publisher_ip
                    .is_some_and(|pip| peers.contains(&pip));
                state.record.sightings.push(Sighting {
                    at: now,
                    complete: reply.complete,
                    incomplete: reply.incomplete,
                    sampled: peers.len() as u32,
                    publisher_seen,
                });
                if first_contact {
                    state.record.first_complete = reply.complete;
                    state.record.first_incomplete = reply.incomplete;
                }
                // Initial-seeder identification (§2): single seeder, small
                // swarm, bitfield probes.
                if state.record.publisher_ip.is_none() && state.ident_attempts_left > 0 {
                    state.ident_attempts_left -= 1;
                    if population >= cfg.probe_peer_limit {
                        state.record.ip_failure = Some(IpFailure::LargeSwarmAtBirth);
                        state.ident_attempts_left = 0; // hopeless from now on
                    } else if reply.complete == 1 {
                        let mut unreachable_hit = false;
                        let mut found = None;
                        for ip in &peers {
                            match probe_with(eco, plan.as_ref(), torrent, *ip, now) {
                                ProbeOutcome::Completion(c) if c >= 1.0 => {
                                    found = Some(*ip);
                                    break;
                                }
                                ProbeOutcome::Unreachable => unreachable_hit = true,
                                _ => {}
                            }
                        }
                        match found {
                            Some(ip) => {
                                btpub_obs::trace_instant!(
                                    "crawler.torrent.identified",
                                    u64::from(torrent.0)
                                );
                                state.record.publisher_ip = Some(ip);
                                state.record.ip_failure = None;
                                // Back-fill: the publisher was in this reply.
                                if let Some(s) = state.record.sightings.last_mut() {
                                    s.publisher_seen = true;
                                }
                            }
                            None if unreachable_hit => {
                                state.record.ip_failure = Some(IpFailure::SeederUnreachable);
                            }
                            None => {
                                state.record.ip_failure = Some(IpFailure::NoSeeder);
                            }
                        }
                    } else if reply.complete == 0 {
                        state.record.ip_failure = Some(IpFailure::NoSeeder);
                    } else {
                        state.record.ip_failure = Some(IpFailure::MultipleSeeders);
                        state.ident_attempts_left = 0;
                    }
                }
                // Empty-reply stop rule. The paper's crawler queried each
                // swarm every 10–15 minutes per machine, so 10 consecutive
                // empty replies meant ~2 hours of silence; because the
                // vantage fleet compresses our spacing, the rule here is
                // both count-based and time-based.
                if peers.is_empty() && reply.complete == 0 {
                    state.empty_streak += 1;
                    state.empty_since.get_or_insert(now);
                } else {
                    state.empty_streak = 0;
                    state.empty_since = None;
                }
                let silence_long_enough = state.empty_since.is_some_and(|since| {
                    now.since(since)
                        >= SimDuration(
                            reply.min_interval.secs() * u64::from(cfg.empty_replies_to_stop),
                        )
                });
                if cfg.single_query
                    || (state.empty_streak >= cfg.empty_replies_to_stop && silence_long_enough)
                {
                    state.done = true;
                    break 'query;
                }
                // Each client is scheduled against the tracker's *maximum*
                // interval (15 min), never its current one — a polite
                // crawler must not earn strikes when the load-dependent
                // interval drifts upward between queries (§2: being
                // blacklisted would end the campaign).
                let next = now + spacing;
                if next <= horizon {
                    queue.schedule(
                        next,
                        Event::Query {
                            torrent,
                            round: round + 1,
                        },
                    );
                } else {
                    state.done = true;
                }
                } // end 'query
                // Every exit path lands here: a torrent whose monitoring
                // just ended is finalized and emitted (or buffered until
                // its predecessors emit) immediately, freeing its state.
                if states.get(&torrent).is_some_and(|s| s.done) {
                    let st = states.remove(&torrent).expect("checked above");
                    emitter.finish(st, &portal, horizon, sink);
                }
            }
        }
    }

    // Torrents still alive at the horizon finalize now, in announcement
    // order; the emitter's reorder buffer interleaves the stragglers. A
    // cancelled crawl skips this: its consumer is gone, and emitting
    // partial-monitoring records would hand a resumed run different
    // bytes than the uninterrupted one.
    if !stopped_early {
        for id in order {
            if let Some(st) = states.remove(&id) {
                emitter.finish(st, &portal, horizon, sink);
            }
        }
        debug_assert!(emitter.pending.is_empty(), "reorder buffer fully drained");
    }
    let wall = wall_start.elapsed().as_secs_f64();
    btpub_obs::info!(
        "crawl {} finished", cfg.name;
        torrents = emitter.emitted,
        identified = emitter.identified,
        torrents_per_sec = (emitter.emitted as f64 / wall.max(1e-9)) as u64,
        states_peak = states_peak as u64,
        reorder_peak = emitter.pending_peak as u64,
    );
}

/// Convenience: `Ipv4Addr` of a raw stored address.
pub fn ip(addr: u32) -> Ipv4Addr {
    Ipv4Addr::from(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpub_sim::{Ecosystem, EcosystemConfig};

    /// The default ecosystem + crawl are expensive in debug builds; most
    /// tests only read them, so build once.
    fn shared() -> &'static (Ecosystem, Dataset) {
        static SHARED: std::sync::OnceLock<(Ecosystem, Dataset)> = std::sync::OnceLock::new();
        SHARED.get_or_init(|| {
            let e = Ecosystem::generate(EcosystemConfig::tiny(90));
            let ds = run_crawl(&e, &CrawlerConfig::default());
            (e, ds)
        })
    }

    fn crawl(eco: &Ecosystem) -> Dataset {
        run_crawl(eco, &CrawlerConfig::default())
    }

    #[test]
    fn crawl_covers_all_announced_torrents() {
        let (e, ds) = shared();
        // Every publication announced before the last RSS poll is seen.
        assert!(ds.torrent_count() >= e.publications.len() * 95 / 100);
        assert!(ds.has_usernames);
        assert!(ds.torrents.iter().all(|t| t.username.is_some()));
    }

    #[test]
    fn usernames_match_ground_truth() {
        let (e, ds) = shared();
        for rec in &ds.torrents {
            let truth = &e.publications[rec.torrent.0 as usize];
            assert_eq!(rec.username.as_deref(), Some(truth.username.as_str()));
            assert_eq!(rec.category, truth.category);
        }
    }

    #[test]
    fn identified_ips_are_mostly_correct() {
        // A completed downloader can masquerade as the sole seeder when
        // the publisher seeds late, so identification is a measurement
        // with error, exactly as in the paper. Precision must be high,
        // not perfect.
        let (e, ds) = shared();
        let mut identified = 0;
        let mut correct = 0;
        for rec in &ds.torrents {
            if let Some(ip) = rec.publisher_ip {
                identified += 1;
                let truth_ips = e
                    .publisher(e.publications[rec.torrent.0 as usize].publisher)
                    .addresses
                    .all_ips();
                if truth_ips.contains(&ip) {
                    correct += 1;
                }
            }
        }
        assert!(identified > 0);
        let precision = f64::from(correct) / f64::from(identified);
        assert!(precision >= 0.9, "identification precision {precision}");
        // A healthy fraction is identified (paper: ~40 %).
        let frac = f64::from(identified) / ds.torrent_count() as f64;
        assert!(
            (0.2..=0.8).contains(&frac),
            "identified fraction {frac} out of plausible band"
        );
    }

    #[test]
    fn identification_failures_have_reasons() {
        let (_e, ds) = shared();
        let mut failure_kinds = std::collections::HashSet::new();
        for rec in &ds.torrents {
            if rec.publisher_ip.is_none() {
                if let Some(f) = rec.ip_failure {
                    failure_kinds.insert(format!("{f:?}"));
                }
            }
        }
        assert!(
            failure_kinds.len() >= 2,
            "expected multiple failure modes, saw {failure_kinds:?}"
        );
    }

    #[test]
    fn sightings_are_time_ordered_and_spaced() {
        let (_, ds) = shared();
        let rec = ds
            .torrents
            .iter()
            .max_by_key(|t| t.sightings.len())
            .unwrap();
        assert!(rec.sightings.len() > 3, "popular torrent is tracked");
        for w in rec.sightings.windows(2) {
            assert!(w[0].at < w[1].at);
            // Aggregate spacing: interval / vantage_points, floor 60 s.
            assert!(w[1].at.since(w[0].at) >= SimDuration(60));
        }
    }

    #[test]
    fn single_query_mode_records_one_sighting() {
        let (e, _) = shared();
        let cfg = CrawlerConfig {
            single_query: true,
            name: "pb09-style".into(),
            ..CrawlerConfig::default()
        };
        let ds = run_crawl(e, &cfg);
        assert!(ds.torrents.iter().all(|t| t.sightings.len() <= 1));
        // Far fewer IPs observed than in tracking mode.
        let tracked = crawl(e);
        assert!(ds.distinct_ip_count() < tracked.distinct_ip_count() / 2);
    }

    #[test]
    fn no_username_mode_strips_usernames() {
        let (e, _) = shared();
        let cfg = CrawlerConfig {
            collect_usernames: false,
            name: "mn08-style".into(),
            ..CrawlerConfig::default()
        };
        let ds = run_crawl(e, &cfg);
        assert!(!ds.has_usernames);
        assert!(ds.torrents.iter().all(|t| t.username.is_none()));
    }

    #[test]
    fn fake_torrents_observed_removed() {
        let (e, ds) = shared();
        let horizon = e.config.horizon();
        for rec in &ds.torrents {
            let truth = &e.publications[rec.torrent.0 as usize];
            if truth.fake && truth.removal_at.is_some_and(|r| r <= horizon) {
                assert!(rec.observed_removed, "fake listing not seen as removed");
            }
        }
    }

    #[test]
    fn observed_ips_subset_of_ground_truth() {
        let (e, ds) = shared();
        for rec in ds.torrents.iter().take(100) {
            let swarm = &e.swarms[rec.torrent.0 as usize];
            let truth: std::collections::HashSet<u32> =
                swarm.peers().iter().map(|p| p.ip).collect();
            let publisher_ips: std::collections::HashSet<u32> = e
                .publisher(e.publications[rec.torrent.0 as usize].publisher)
                .addresses
                .all_ips()
                .into_iter()
                .map(u32::from)
                .collect();
            for ip in &rec.observed_ips {
                assert!(
                    truth.contains(ip) || publisher_ips.contains(ip),
                    "observed IP {ip} not in ground truth"
                );
            }
        }
    }

    #[test]
    fn crawl_is_deterministic() {
        let (e, _) = shared();
        let a = crawl(e);
        let b = crawl(e);
        assert_eq!(a.torrent_count(), b.torrent_count());
        assert_eq!(a.distinct_ip_count(), b.distinct_ip_count());
        assert_eq!(a.ip_identified_count(), b.ip_identified_count());
        for (x, y) in a.torrents.iter().zip(&b.torrents) {
            assert_eq!(x.publisher_ip, y.publisher_ip);
            assert_eq!(x.sightings, y.sightings);
        }
    }

    #[test]
    fn faulty_crawl_is_deterministic_and_still_covers_the_feed() {
        let (e, _) = shared();
        let cfg = CrawlerConfig {
            name: "flaky".into(),
            fault_profile: btpub_faults::FaultProfile::flaky(),
            ..CrawlerConfig::default()
        };
        let a = run_crawl(e, &cfg);
        let b = run_crawl(e, &cfg);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "same seed + profile must be byte-identical"
        );
        // Faults are really being injected: the dataset differs from clean.
        let clean = crawl(e);
        assert_ne!(a.to_json(), clean.to_json());
        // Outage-delayed polls re-cover their window, so discovery holds up.
        assert!(a.torrent_count() >= clean.torrent_count() * 95 / 100);
    }

    #[test]
    fn tracker_downtime_is_survived_and_recorded() {
        let (e, _) = shared();
        // A profile that is nothing but heavy tracker downtime: ~30 % of
        // sim time dark, in multi-hour windows.
        let cfg = CrawlerConfig {
            name: "downtime".into(),
            fault_profile: btpub_faults::FaultProfile {
                name: "downtime-heavy".into(),
                tracker_downtime_ppm: 300_000,
                ..btpub_faults::FaultProfile::clean()
            },
            ..CrawlerConfig::default()
        };
        let ds = run_crawl(e, &cfg);
        assert!(ds.torrent_count() > 0, "campaign still completes");
        let down = ds
            .torrents
            .iter()
            .filter(|t| t.ip_failure == Some(IpFailure::TrackerDown))
            .count();
        assert!(
            down > 0,
            "torrents born into an outage must record TrackerDown"
        );
        // Monitoring resumes after outages: some torrents announced during
        // downtime still accumulate sightings afterwards.
        assert!(
            ds.torrents
                .iter()
                .any(|t| t.ip_failure == Some(IpFailure::TrackerDown) && !t.sightings.is_empty()),
            "degraded torrents are still monitored after the outage"
        );
    }

    #[test]
    fn coverage_of_popular_swarms_is_high() {
        // Needs realistic swarm density: at tiny scale, populations hit
        // zero for hours and the (paper-faithful) empty-reply stop rule
        // truncates monitoring. Use fewer torrents but denser swarms.
        let e = Ecosystem::generate(EcosystemConfig {
            torrents: 60,
            downloads_scale: 0.6,
            ..EcosystemConfig::tiny(91)
        });
        let ds = crawl(&e);
        // For torrents with many downloads, repeated 200-peer samples
        // should observe the majority of all peers.
        let mut checked = 0;
        for rec in &ds.torrents {
            let swarm = &e.swarms[rec.torrent.0 as usize];
            if swarm.downloads() >= 200 && rec.sightings.len() >= 50 {
                let coverage = rec.observed_downloaders() as f64 / swarm.downloads() as f64;
                assert!(coverage > 0.4, "coverage {coverage} too low");
                checked += 1;
            }
        }
        assert!(checked > 0, "no popular torrents in test ecosystem");
    }
}
