//! Measurement scenarios: the paper's three campaigns, parameterised by
//! scale.
//!
//! | dataset | portal | duration | mode |
//! |---|---|---|---|
//! | mn08 | Mininova | 38 days | no usernames, full tracking |
//! | pb09 | The Pirate Bay | 20 days | usernames, **single tracker query** |
//! | pb10 | The Pirate Bay | 30 days | usernames, full tracking |

use btpub_crawler::CrawlerConfig;
use btpub_sim::{EcosystemConfig, SimDuration};

/// How large a run is, as a fraction of the paper's campaign.
///
/// `torrents` scales the number of publications (and the regular-publisher
/// tail with it), `downloads` scales per-swarm popularity, and `majors`
/// scales the major-publisher population, so that per-major-publisher
/// intensity — the quantity behind Figures 4 and Table 5 — stays
/// paper-faithful at any scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Fraction of the paper's torrent count.
    pub torrents: f64,
    /// Fraction of the paper's per-torrent downloader counts.
    pub downloads: f64,
    /// Fraction of the paper's major-publisher population (84 top
    /// publishers, 35 fake entities). Scaling majors together with
    /// torrents keeps *per-publisher intensity* (publishing rate, parallel
    /// seeding, per-site traffic) paper-faithful at any scale.
    pub majors: f64,
}

impl Scale {
    /// Unit-test scale: hundreds of torrents, tiny swarms.
    pub fn tiny() -> Scale {
        Scale {
            torrents: 0.01,
            downloads: 0.03,
            majors: 0.25,
        }
    }

    /// Integration-test scale: realistic swarm density (same per-swarm
    /// downloads as `default_repro`) over fewer torrents, so the figures'
    /// orderings hold while a debug-mode run stays around a minute.
    pub fn small() -> Scale {
        Scale {
            torrents: 0.08,
            downloads: 0.10,
            majors: 0.08,
        }
    }

    /// Default reproduction scale: minutes of wall-clock, preserves every
    /// qualitative result.
    pub fn default_repro() -> Scale {
        Scale {
            torrents: 0.25,
            downloads: 0.10,
            majors: 0.25,
        }
    }

    /// Paper scale (tens of millions of downloader IPs) — hours of
    /// wall-clock and ~10 GB of memory; offered for completeness.
    pub fn paper() -> Scale {
        Scale {
            torrents: 1.0,
            downloads: 1.0,
            majors: 1.0,
        }
    }

}

/// A named campaign: ecosystem parameters + crawler behaviour + the paper
/// values to compare against.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Campaign label (mn08 / pb09 / pb10).
    pub name: &'static str,
    /// Ecosystem generation parameters.
    pub eco: EcosystemConfig,
    /// Crawler configuration.
    pub crawler: CrawlerConfig,
    /// The scale it was built at.
    pub scale: Scale,
}

/// Average downloads per torrent in the paper's pb10 dataset
/// (27.3 M IPs / 38.4 K torrents ≈ 710); the profile popularity
/// distributions are calibrated to average ≈ 420 at `downloads_scale=1`,
/// so paper scale uses this correction.
const PAPER_DOWNLOAD_CALIBRATION: f64 = 1.7;

fn base_eco(seed: u64, days: f64, paper_torrents: usize, scale: Scale) -> EcosystemConfig {
    let torrents = ((paper_torrents as f64) * scale.torrents).round() as usize;
    let top_publishers = ((84.0 * scale.majors).round() as usize).max(8);
    let fake_entities = ((35.0 * scale.majors).round() as usize).max(4);
    // The paper saw 16 compromised accounts among 84 genuine top
    // publishers; keep the ratio.
    let compromised = (top_publishers * 16 / 84).max(1);
    EcosystemConfig {
        seed,
        duration: SimDuration::from_days(days),
        torrents,
        top_publishers,
        fake_entities,
        compromised_usernames: compromised,
        // The regular tail scales with `majors`, not `torrents`: the
        // *composition* of the username population (≈2700 regular vs
        // ≈1030 fake throwaway accounts in pb10) is what the per-group
        // box plots sample over, so it must stay proportional to the
        // major-publisher population.
        regular_publishers: ((2700.0 * scale.majors).round() as usize).max(20),
        downloads_scale: scale.downloads * PAPER_DOWNLOAD_CALIBRATION,
        ..EcosystemConfig::default()
    }
}

impl Scenario {
    /// The Mininova 2008 campaign: 38 days, IP-only identification.
    pub fn mn08(scale: Scale) -> Scenario {
        Scenario {
            name: "mn08",
            eco: base_eco(0x2008_1209, 38.0, 52_000, scale),
            crawler: CrawlerConfig {
                name: "mn08".into(),
                collect_usernames: false,
                ..CrawlerConfig::default()
            },
            scale,
        }
    }

    /// The Pirate Bay 2009 campaign: 20 days, one tracker query per
    /// torrent.
    pub fn pb09(scale: Scale) -> Scenario {
        Scenario {
            name: "pb09",
            eco: base_eco(0x2009_1128, 20.0, 23_200, scale),
            crawler: CrawlerConfig {
                name: "pb09".into(),
                single_query: true,
                ..CrawlerConfig::default()
            },
            scale,
        }
    }

    /// The Pirate Bay 2010 campaign — the paper's primary dataset:
    /// 30 days, full swarm tracking.
    pub fn pb10(scale: Scale) -> Scenario {
        Scenario {
            name: "pb10",
            eco: base_eco(0x2010_0406, 30.0, 38_400, scale),
            crawler: CrawlerConfig {
                name: "pb10".into(),
                ..CrawlerConfig::default()
            },
            scale,
        }
    }

    /// The campaign-length multiplier behind `repro --scale <base>xN`:
    /// `n`× the torrent count over `n`× the duration. Announcement
    /// density, per-swarm popularity (whose arrival decay runs on the
    /// profile's fixed `tau_days`, not the campaign length) and the
    /// major-publisher population all stay put — a *longer* campaign,
    /// not a denser one. This is the axis the streaming pipeline must
    /// absorb in bounded memory: the crawler's resident state is the
    /// concurrently-monitored window, which depends on density and
    /// swarm lifetime but not on how many days the campaign runs.
    pub fn times(mut self, n: u64) -> Scenario {
        self.eco.torrents *= n.max(1) as usize;
        self.eco.duration = SimDuration(self.eco.duration.secs() * n.max(1));
        self
    }

    /// The "top-k" the paper uses for major-publisher analyses.
    ///
    /// At paper scale this is 84 genuine top publishers + 16 compromised
    /// accounts = the paper's "top-100"; it scales with `Scale::majors`.
    pub fn top_k(&self) -> usize {
        self.eco.top_publishers + self.eco.compromised_usernames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_match_paper_modes() {
        let s = Scale::tiny();
        let mn08 = Scenario::mn08(s);
        assert!(!mn08.crawler.collect_usernames);
        assert!(!mn08.crawler.single_query);
        assert_eq!(mn08.eco.duration, SimDuration::from_days(38.0));
        let pb09 = Scenario::pb09(s);
        assert!(pb09.crawler.collect_usernames);
        assert!(pb09.crawler.single_query);
        let pb10 = Scenario::pb10(s);
        assert!(pb10.crawler.collect_usernames);
        assert!(!pb10.crawler.single_query);
        assert_eq!(pb10.eco.duration, SimDuration::from_days(30.0));
    }

    #[test]
    fn scale_controls_torrent_count() {
        let tiny = Scenario::pb10(Scale::tiny());
        let repro = Scenario::pb10(Scale::default_repro());
        assert_eq!(tiny.eco.torrents, 384);
        assert_eq!(repro.eco.torrents, 9600);
        // The regular tail tracks `majors` (tiny and repro share it).
        assert_eq!(repro.eco.regular_publishers, tiny.eco.regular_publishers);
        assert_eq!(
            Scenario::pb10(Scale::paper()).eco.regular_publishers,
            2700
        );
        // Majors scale with `majors`, independent of torrent scale.
        assert_eq!(tiny.eco.top_publishers, repro.eco.top_publishers);
        assert_eq!(tiny.eco.fake_entities, repro.eco.fake_entities);
        let paper = Scenario::pb10(Scale::paper());
        assert_eq!(paper.eco.top_publishers, 84);
        assert_eq!(paper.eco.fake_entities, 35);
        assert_eq!(paper.eco.compromised_usernames, 16);
    }

    #[test]
    fn times_extends_campaign_at_constant_density() {
        let base = Scenario::pb10(Scale::tiny());
        let x100 = Scenario::pb10(Scale::tiny()).times(100);
        assert_eq!(x100.eco.torrents, 100 * base.eco.torrents);
        assert_eq!(x100.eco.duration.secs(), 100 * base.eco.duration.secs());
        // Per-swarm popularity and the major-publisher population stay
        // put: a longer campaign, not a denser one.
        assert_eq!(x100.eco.downloads_scale, base.eco.downloads_scale);
        assert_eq!(x100.eco.top_publishers, base.eco.top_publishers);
        assert_eq!(x100.eco.regular_publishers, base.eco.regular_publishers);
        // x1 is the identity.
        let x1 = Scenario::pb10(Scale::tiny()).times(1);
        assert_eq!(x1.eco.torrents, base.eco.torrents);
        assert_eq!(x1.eco.duration, base.eco.duration);
    }

    #[test]
    fn seeds_differ_across_campaigns() {
        let s = Scale::tiny();
        let seeds = [
            Scenario::mn08(s).eco.seed,
            Scenario::pb09(s).eco.seed,
            Scenario::pb10(s).eco.seed,
        ];
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
    }

    #[test]
    fn top_k_matches_paper_structure() {
        assert_eq!(Scenario::pb10(Scale::paper()).top_k(), 100);
        let tiny = Scenario::pb10(Scale::tiny());
        assert_eq!(
            tiny.top_k(),
            tiny.eco.top_publishers + tiny.eco.compromised_usernames
        );
    }
}
