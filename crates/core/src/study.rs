//! The end-to-end study runner.

use btpub_analysis::classify::{classify_top, Classified};
use btpub_analysis::fake::{assign_groups, Groups};
use btpub_analysis::publishers::{aggregate_publishers, PublisherStats};
use btpub_crawler::{run_crawl, Dataset};
use btpub_portal::Portal;
use btpub_sim::Ecosystem;

use crate::experiments::Experiments;
use crate::scenario::Scenario;

/// A completed measurement campaign: the generated world plus what the
/// crawler saw of it.
pub struct Study {
    /// The scenario it ran.
    pub scenario: Scenario,
    /// The simulated world (ground truth, used only for validation and as
    /// the economics oracle).
    pub eco: Ecosystem,
    /// The crawler's dataset — what the paper's authors had.
    pub dataset: Dataset,
}

impl Study {
    /// Generates the ecosystem and runs the crawl. Deterministic in the
    /// scenario.
    pub fn run(scenario: &Scenario) -> Study {
        let eco = Ecosystem::generate(scenario.eco.clone());
        Self::run_on(scenario, eco)
    }

    /// [`Self::run`] over an already-generated world (the memory
    /// benchmark generates once, outside its measurement window).
    pub fn run_on(scenario: &Scenario, eco: Ecosystem) -> Study {
        let _span = btpub_obs::span!("study.run");
        let dataset = run_crawl(&eco, &scenario.crawler);
        Study {
            scenario: scenario.clone(),
            eco,
            dataset,
        }
    }

    /// Runs the analysis pipeline over the dataset.
    pub fn analyze(&self) -> Analyses<'_> {
        let _span = btpub_obs::span!("study.analyze");
        let publishers = aggregate_publishers(&self.dataset);
        let top_k = self.scenario.top_k();
        let groups = assign_groups(&self.dataset, &publishers, &self.eco.world.db, top_k);
        let classified = classify_top(&self.dataset, &publishers, &groups);
        Analyses {
            study: self,
            publishers,
            groups,
            classified,
            top_k,
        }
    }
}

/// The analysis pipeline's shared intermediate state.
pub struct Analyses<'a> {
    /// The study analysed.
    pub study: &'a Study,
    /// Per-publisher aggregation, sorted by content count descending.
    pub publishers: Vec<PublisherStats>,
    /// §3.3 group assignment.
    pub groups: Groups,
    /// §5.1 business classification of the Top set.
    pub classified: Vec<Classified>,
    /// The top-k used.
    pub top_k: usize,
}

impl<'a> Analyses<'a> {
    /// A portal view over the study's ecosystem (user pages, RSS).
    pub fn portal(&self) -> Portal<'a> {
        Portal::new(&self.study.eco)
    }

    /// The experiment report builder.
    pub fn experiments(&self) -> Experiments<'_, 'a> {
        Experiments::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    fn study() -> &'static Study {
        static STUDY: std::sync::OnceLock<Study> = std::sync::OnceLock::new();
        STUDY.get_or_init(|| Study::run(&Scenario::pb10(Scale::tiny())))
    }

    #[test]
    fn study_produces_dataset() {
        let s = study();
        assert!(s.dataset.torrent_count() > 300);
        assert!(s.dataset.has_usernames);
        assert!(s.dataset.distinct_ip_count() > 100);
    }

    #[test]
    fn analyses_build_groups_and_classes() {
        let a = study().analyze();
        assert!(!a.publishers.is_empty());
        assert!(!a.groups.top.is_empty());
        assert!(!a.groups.fake_usernames.is_empty());
        assert!(!a.classified.is_empty());
        // Classified set == Top set.
        assert_eq!(a.classified.len(), a.groups.top.len());
    }

    #[test]
    fn fake_detection_catches_fake_entities() {
        let a = study().analyze();
        let eco = &a.study.eco;
        // Ground truth fake usernames.
        let truth: std::collections::HashSet<&str> = eco
            .publishers
            .iter()
            .filter(|p| p.profile == btpub_sim::Profile::Fake)
            .flat_map(|p| p.usernames.iter().map(String::as_str))
            .collect();
        let detected = &a.groups.fake_usernames;
        // Recall over *active* fake usernames (those that published).
        let active: std::collections::HashSet<&str> = a
            .study
            .dataset
            .torrents
            .iter()
            .filter_map(|t| t.username.as_deref())
            .filter(|u| truth.contains(u))
            .collect();
        let caught = active.iter().filter(|u| detected.contains(**u)).count();
        let recall = caught as f64 / active.len().max(1) as f64;
        assert!(recall > 0.8, "fake username recall {recall}");
        // Precision: detected-but-not-truth are the compromised genuine
        // accounts, which the paper also excludes — allow those.
        let compromised: std::collections::HashSet<&str> =
            eco.compromised.iter().map(String::as_str).collect();
        for u in detected {
            assert!(
                truth.contains(u.as_str()) || compromised.contains(u.as_str()),
                "false positive fake label: {u}"
            );
        }
    }
}
