//! The streaming study driver: crawl → bounded channel → record-at-a-time
//! aggregation, producing the exact report bytes of [`crate::Study`]
//! without ever materializing the campaign dataset.
//!
//! The crawl runs on a producer thread emitting finalized
//! [`btpub_crawler::TorrentRecord`]s in announcement order through a
//! [`btpub_stream::channel`]; the consumer (this thread) drains chunks
//! and folds each record into a
//! [`btpub_analysis::streaming::StreamAggregator`] plus the V1
//! ground-truth tallies. Aggregation is strictly single-threaded and
//! strictly in announcement order, so `--jobs` parallelism inside the
//! crawl cannot reorder a single float operation — which is why the
//! rendered report is byte-identical to the materialized path at any job
//! count (asserted by `streaming_report_matches_materialized` below and
//! gated in `scripts/check.sh`).

use std::path::{Path, PathBuf};

use btpub_analysis::content_type::category_distribution_with;
use btpub_analysis::economics::{economics_rows, hosting_income_from, site_reports};
use btpub_analysis::fake::Group;
use btpub_analysis::longitudinal::longitudinal_rows;
use btpub_analysis::popularity::popularity_box;
use btpub_analysis::seeding::group_seeding_boxes_with;
use btpub_analysis::skewness::{content_share_of_top, contribution_cdf, shares_of_top_k};
use btpub_analysis::streaming::{
    RecordDigest, StreamAggregator, StreamAnalyses, StreamConfig, DEFAULT_THRESHOLD_IDX,
};
use btpub_crawler::{run_crawl_with, ChannelSink};
use btpub_portal::Portal;
use btpub_sim::Ecosystem;
use btpub_stream::spill::{DistinctU32, DEFAULT_CHUNK_VALUES};

use crate::experiments::{
    appendix_a_report, class_report, hosting_income_rows, mapping_report, render_full_report,
    validation_report, DatasetSummary, ReportData, SeedingBoxes, SkewnessReport, TruthCounters,
};
use crate::scenario::Scenario;

/// Knobs for the streaming driver.
#[derive(Debug, Clone, Default)]
pub struct StreamOptions {
    /// Directory for spill segments (the global distinct-IP set). `None`
    /// keeps everything in memory; an unwritable directory warns once and
    /// falls back to in-memory.
    pub spill_dir: Option<PathBuf>,
}

/// A completed streaming campaign: ground truth plus the aggregates —
/// but, unlike [`crate::Study`], never the materialized dataset.
pub struct StreamStudy {
    /// The scenario it ran.
    pub scenario: Scenario,
    /// The simulated world (validation + economics oracle, as in `Study`).
    pub eco: Ecosystem,
    /// Everything the analysis pipeline produced.
    pub analyses: StreamAnalyses,
    /// Per-record ground-truth tallies for V1, folded at ingest.
    pub truth: TruthCounters,
}

impl StreamStudy {
    /// Generates the ecosystem and runs the crawl + aggregation as a
    /// producer/consumer pair over a bounded channel. Deterministic in
    /// the scenario, and byte-equivalent to `Study::run` + `analyze` +
    /// `full_report` at any job count.
    pub fn run(scenario: &Scenario, opts: &StreamOptions) -> StreamStudy {
        let eco = Ecosystem::generate(scenario.eco.clone());
        Self::run_on(scenario, eco, opts)
    }

    /// [`Self::run`] over an already-generated world — the entry point
    /// `bench_stream` uses so world generation (whose memory scales with
    /// the campaign by construction) stays out of the crawl+analysis
    /// peak-bytes measurement.
    pub fn run_on(scenario: &Scenario, eco: Ecosystem, opts: &StreamOptions) -> StreamStudy {
        let _span = btpub_obs::span!("study.run_streamed");
        let distinct = match &opts.spill_dir {
            Some(dir) => DistinctU32::with_spill_dir(Path::new(dir), DEFAULT_CHUNK_VALUES),
            None => DistinctU32::in_memory(),
        };
        let mut agg = StreamAggregator::new(
            StreamConfig {
                has_usernames: scenario.crawler.collect_usernames,
                top_k: scenario.top_k(),
            },
            &eco.world.db,
            distinct,
        );
        let mut truth = TruthCounters::default();
        let (tx, rx) = btpub_stream::channel::bounded(btpub_stream::channel::DEFAULT_CAPACITY);
        std::thread::scope(|scope| {
            let eco_ref = &eco;
            let crawler_cfg = &scenario.crawler;
            scope.spawn(move || {
                let mut sink = ChannelSink::new(tx);
                run_crawl_with(eco_ref, crawler_cfg, &mut sink);
            });
            // Records arrive the moment each torrent's monitoring ends —
            // *out of announcement order* (an unordered `ChannelSink`),
            // so a long-lived early torrent cannot force the crawler to
            // re-materialize the campaign behind it (head-of-line
            // blocking). Each record is reduced to a digest on arrival
            // (order-free: truth tallies are commutative integer sums,
            // and `RecordDigest::reduce` is a pure per-record function);
            // only digests — sightings already consumed — wait in the
            // reorder buffer for their announcement turn, and the
            // order-sensitive fold runs exactly as the materialized
            // pipeline would.
            let mut pending: std::collections::BTreeMap<usize, RecordDigest> =
                std::collections::BTreeMap::new();
            let mut next_fold = 0usize;
            let mut chunk = Vec::with_capacity(btpub_stream::channel::DEFAULT_CHUNK);
            while rx.recv_chunk(&mut chunk, btpub_stream::channel::DEFAULT_CHUNK) > 0 {
                for (idx, rec) in chunk.drain(..) {
                    truth.observe(&rec, eco_ref);
                    let digest = RecordDigest::reduce(rec);
                    if idx == next_fold {
                        agg.fold(&digest);
                        next_fold += 1;
                        while let Some(d) = pending.remove(&next_fold) {
                            agg.fold(&d);
                            next_fold += 1;
                        }
                    } else {
                        pending.insert(idx, digest);
                    }
                }
            }
            debug_assert!(pending.is_empty(), "digest reorder buffer fully drained");
        });
        let analyses = agg.finish();
        StreamStudy {
            scenario: scenario.clone(),
            eco,
            analyses,
            truth,
        }
    }

    /// Computes every experiment from the streamed aggregates. Field for
    /// field equal to [`crate::experiments::Experiments::report_data`]
    /// over the materialized run of the same scenario.
    pub fn report_data(&self) -> ReportData {
        let _span = btpub_obs::span!("study.stream_report");
        let s = &self.analyses;
        let eco = &self.eco;
        let db = &eco.world.db;
        let top_k = self.scenario.top_k();
        let totals = &s.totals;
        let t1 = DatasetSummary {
            name: self.scenario.crawler.name.clone(),
            days: eco.config.duration.as_days(),
            torrents_username: totals.torrents_username,
            torrents_ip: totals.torrents_ip,
            torrents_total: totals.torrents_total,
            ip_addresses: totals.distinct_ips,
        };
        let f1 = SkewnessReport {
            cdf: contribution_cdf(&s.publishers),
            share_top3pct: content_share_of_top(&s.publishers, 3.0),
            top_k_shares: shares_of_top_k(&s.publishers, top_k),
            top_k,
        };
        let group_shares_of = |group| {
            btpub_analysis::fake::group_shares_from(
                &s.publishers,
                &s.groups,
                group,
                totals.torrents_total,
                totals.total_downloads,
            )
        };
        let s33 = mapping_report(
            &s.publishers,
            &s.groups,
            db,
            s.mapping,
            group_shares_of(Group::Fake),
            group_shares_of(Group::Top),
        );
        let f2 = Group::ALL
            .into_iter()
            .map(|g| {
                (
                    g,
                    category_distribution_with(
                        |idx| s.categories[idx],
                        &s.publishers,
                        &s.groups,
                        g,
                    ),
                )
            })
            .collect();
        let f3 = Group::ALL
            .into_iter()
            .map(|g| {
                (
                    g,
                    popularity_box(&s.publishers, &s.groups, g, eco.config.seed),
                )
            })
            .collect();
        let f4 = Group::ALL
            .into_iter()
            .map(|g| {
                let stats: &[_] = if g == Group::Fake {
                    &s.fake_entities
                } else {
                    &s.publishers
                };
                let boxes = group_seeding_boxes_with(
                    stats,
                    &s.groups,
                    g,
                    eco.config.seed,
                    |members| {
                        members
                            .iter()
                            .filter_map(|p| {
                                if g == Group::Fake {
                                    s.fake_seeding_of(&p.key)
                                } else {
                                    s.seeding_of(&p.key, DEFAULT_THRESHOLD_IDX)
                                }
                            })
                            .collect()
                    },
                )
                .map(|(seed_time, parallel, aggregated)| SeedingBoxes {
                    seed_time,
                    parallel,
                    aggregated,
                });
                (g, boxes)
            })
            .collect();
        let s51 = class_report(&s.classified, |c| {
            btpub_analysis::classify::class_shares_from(
                &s.publishers,
                &s.classified,
                c,
                totals.torrents_total,
                totals.total_downloads,
            )
        });
        let portal = Portal::new(eco);
        let t4 = longitudinal_rows(&portal, &s.classified, eco.config.horizon());
        let scale = self.scenario.scale;
        let correction = 1.0 / eco.config.downloads_scale * (scale.majors / scale.torrents);
        let reports = site_reports(eco, &s.classified, correction);
        let t5 = economics_rows(&s.classified, &reports);
        let s6 =
            hosting_income_rows(|p| hosting_income_from(&s.isp.footprint(db, p), 300.0));
        let aa = appendix_a_report(&s.publishers, &s.groups, |p, i| {
            s.seeding_of(&p.key, i).map(|m| m.aggregated_session_h)
        });
        let v1 = validation_report(
            eco,
            totals.torrents_total,
            &self.truth,
            &s.publishers,
            &s.groups,
            |p| s.seeding_of(&p.key, DEFAULT_THRESHOLD_IDX),
        );
        ReportData {
            t1,
            f1,
            t2: s.isp.top_isps(db, 10),
            t3: (s.isp.footprint(db, "OVH"), s.isp.footprint(db, "Comcast")),
            s33,
            f2,
            f3,
            f4,
            s51,
            t4,
            t5,
            s6,
            aa,
            v1,
        }
    }

    /// Renders the full side-by-side report (byte-identical to the
    /// materialized `Experiments::full_report`).
    pub fn full_report(&self) -> String {
        render_full_report(&self.report_data())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scale, Scenario, Study};

    fn assert_stream_matches(scenario: &Scenario) {
        let materialized = Study::run(scenario);
        let expected = materialized.analyze().experiments().full_report();
        let streamed = StreamStudy::run(scenario, &StreamOptions::default());
        let got = streamed.full_report();
        assert_eq!(
            got, expected,
            "streaming report diverged from materialized for {}",
            scenario.name
        );
    }

    #[test]
    fn streaming_report_matches_materialized() {
        assert_stream_matches(&Scenario::pb10(Scale::tiny()));
    }

    #[test]
    fn streaming_report_matches_materialized_no_usernames() {
        assert_stream_matches(&Scenario::mn08(Scale::tiny()));
    }

    #[test]
    fn streaming_report_matches_under_faults() {
        let mut scenario = Scenario::pb10(Scale::tiny());
        scenario.crawler.fault_profile = btpub_faults::FaultProfile::by_name("hostile").unwrap();
        assert_stream_matches(&scenario);
    }

    #[test]
    fn streaming_with_spill_dir_matches_in_memory() {
        let scenario = Scenario::pb10(Scale::tiny());
        let dir = std::env::temp_dir().join(format!("btpub-core-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spilled = StreamStudy::run(
            &scenario,
            &StreamOptions {
                spill_dir: Some(dir.clone()),
            },
        );
        let in_mem = StreamStudy::run(&scenario, &StreamOptions::default());
        assert_eq!(spilled.full_report(), in_mem.full_report());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
