//! # btpub
//!
//! A full reproduction of **"Is Content Publishing in BitTorrent
//! Altruistic or Profit-Driven?"** (Cuevas, Kryczka, Cuevas, Kaune,
//! Guerrero, Rejaie — ACM CoNEXT 2010), built on a simulated 2008–2010
//! BitTorrent ecosystem because the real one no longer exists.
//!
//! This crate is the public umbrella: it wires the substrates together
//! and exposes the paper's experiments as a typed API.
//!
//! ```
//! use btpub::{Scenario, Scale, Study};
//!
//! // A miniature pb10-style measurement campaign, end to end.
//! let scenario = Scenario::pb10(Scale::tiny());
//! let study = Study::run(&scenario);
//! let analyses = study.analyze();
//! let f1 = analyses.experiments().fig1_skewness();
//! let (content_share, download_share) = f1.top_k_shares;
//! assert!(content_share > 0.3, "the major publishers dominate content");
//! assert!(download_share > 0.3, "and the downloads");
//! ```
//!
//! Layering (each its own crate):
//!
//! * [`btpub_bencode`] / [`btpub_proto`] — wire formats;
//! * [`btpub_geodb`] — the MaxMind-substitute ISP/geo database;
//! * [`btpub_sim`] — the ecosystem simulator (publishers, swarms);
//! * [`btpub_portal`] / [`btpub_tracker`] — the services the crawler talks
//!   to (RSS + pages, announce + bitfield probes);
//! * [`btpub_crawler`] — the §2 measurement apparatus;
//! * [`btpub_analysis`] — the §3–§6 + Appendix A analysis pipeline;
//! * this crate — scenarios ([`Scenario`], [`Scale`]), the end-to-end
//!   runner ([`Study`]), and per-experiment reports ([`experiments`]).

pub mod experiments;
pub mod scenario;
pub mod stream_study;
pub mod study;

pub use scenario::{Scale, Scenario};
pub use stream_study::{CheckpointPolicy, StreamOptions, StreamOutcome, StreamStudy};
pub use study::{Analyses, Study};

pub use btpub_analysis as analysis;
pub use btpub_bencode;
pub use btpub_crawler as crawler;
pub use btpub_geodb as geodb;
pub use btpub_portal as portal;
pub use btpub_proto as proto;
pub use btpub_sim as sim;
pub use btpub_tracker as tracker;
