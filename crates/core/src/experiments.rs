//! Per-experiment reports: every table and figure of the paper,
//! regenerated from a [`crate::Study`] and rendered beside the paper's
//! published values.
//!
//! Absolute numbers are not expected to match — the substrate is a scaled
//! simulation, not the 2010 Pirate Bay — but the *shape* (orderings,
//! ratios, crossovers) is asserted by the integration tests and recorded
//! in `EXPERIMENTS.md`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use btpub_analysis::classify::{Classified, UrlPlacement};
use btpub_analysis::content_type::{category_distribution, CategoryDistribution};
use btpub_analysis::economics::{
    economics_rows, hosting_income_estimate, site_reports, EconomicsRow,
};
use btpub_analysis::fake::{group_shares, mapping_stats, Group, Groups, MappingStats};
use btpub_analysis::isp::{hosting_shares, isp_footprint, top_isps, IspFootprint, IspRow};
use btpub_analysis::longitudinal::{longitudinal_rows, LongitudinalRow};
use btpub_analysis::popularity::popularity_box;
use btpub_analysis::publishers::PublisherStats;
use btpub_analysis::seeding::{group_seeding_boxes, SeedingMetrics};
use btpub_analysis::session::{capture_probability, queries_needed};
use btpub_analysis::skewness::{content_share_of_top, contribution_cdf, shares_of_top_k, CdfPoint};
use btpub_analysis::stats::BoxStats;
use btpub_analysis::streaming::SEEDING_THRESHOLDS_H;
use btpub_geodb::GeoDb;
use btpub_sim::profile::BusinessClass;
use btpub_sim::{Ecosystem, Profile, SimDuration};

use crate::study::Analyses;

/// Paper-published reference values, for side-by-side reporting.
pub mod paper {
    /// Fig 1: top 3 % of publishers contribute ≈ 40 % of content.
    pub const TOP3PCT_CONTENT: f64 = 40.0;
    /// §3.3: fake publishers: ~30 % of content, ~25 % of downloads.
    pub const FAKE_SHARES: (f64, f64) = (0.30, 0.25);
    /// §3.3: Top publishers: ~37 % of content, ~50 % of downloads.
    pub const TOP_SHARES: (f64, f64) = (0.375, 0.50);
    /// §3.2: 42 % of pb10's top-100 at hosting providers, 22 % at OVH.
    pub const HOSTING_SHARE: f64 = 0.42;
    /// §3.3: 55 % of top-100 IPs map to a unique username.
    pub const UNIQUE_USERNAME_IPS: f64 = 0.55;
    /// §3.3 username multi-IP breakdown: single / hosting / one-CI / multi-CI.
    pub const USERNAME_IP_BREAKDOWN: [f64; 4] = [0.25, 0.34, 0.24, 0.16];
    /// §5.1 class shares of top: portal 26 %, other-web 24 %, altruistic 52 %.
    pub const CLASS_OF_TOP: [f64; 3] = [0.26, 0.24, 0.52];
    /// §5.1: profit-driven publishers ⇒ ~26 % content / ~40 % downloads.
    pub const PROFIT_SHARES: (f64, f64) = (0.26, 0.40);
    /// Fig 3: Top median popularity ≈ 7× All; Top-HP ≈ 1.5× Top-CI.
    pub const POPULARITY_RATIOS: (f64, f64) = (7.0, 1.5);
    /// App A: N=165, W=50 ⇒ m=13 for P>0.99.
    pub const APPENDIX_A: (u32, u32, u32) = (165, 50, 13);
    /// §6: OVH: 78–164 servers, ≈ 23.4–42.9 K €/month.
    pub const OVH_SERVERS: (usize, usize) = (78, 164);
}

/// Builder for all experiment outputs.
pub struct Experiments<'b, 'a> {
    analyses: &'b Analyses<'a>,
}

/// Table 1-style dataset summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Campaign name.
    pub name: String,
    /// Window length in days.
    pub days: f64,
    /// Torrents with an identified username.
    pub torrents_username: usize,
    /// Torrents with an identified publisher IP.
    pub torrents_ip: usize,
    /// Total torrents crawled.
    pub torrents_total: usize,
    /// Distinct IP addresses observed in swarms.
    pub ip_addresses: usize,
}

/// Figure 1 output.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewnessReport {
    /// The full CDF curve.
    pub cdf: Vec<CdfPoint>,
    /// Content share of the top 3 % (paper: ≈ 40 %).
    pub share_top3pct: f64,
    /// `(content, downloads)` shares of the top-k (paper: 2/3, 3/4).
    pub top_k_shares: (f64, f64),
    /// The k used.
    pub top_k: usize,
}

/// §3.3 statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingReport {
    /// Username↔IP mapping stats.
    pub mapping: MappingStats,
    /// Detected fake usernames.
    pub fake_usernames: usize,
    /// Detected fake IPs.
    pub fake_ips: usize,
    /// `(content, downloads)` shares of the fake group.
    pub fake_shares: (f64, f64),
    /// `(content, downloads)` shares of the Top group.
    pub top_shares: (f64, f64),
    /// Compromised usernames dropped from the top-k.
    pub compromised: usize,
    /// `(hosting share, OVH share)` of the Top publishers.
    pub hosting: (f64, f64),
}

/// One group's Figure 4 boxes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedingBoxes {
    /// Avg seeding time per torrent (hours).
    pub seed_time: BoxStats,
    /// Avg parallel torrents.
    pub parallel: BoxStats,
    /// Aggregated session time (hours).
    pub aggregated: BoxStats,
}

/// §5.1 classification summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Per class: `(share of top, share of content, share of downloads)`.
    pub shares: Vec<(BusinessClass, f64, f64, f64)>,
    /// Profit-driven `(content, downloads)` shares.
    pub profit_shares: (f64, f64),
    /// Placement frequencies among profit-driven publishers.
    pub placements: BTreeMap<&'static str, usize>,
    /// Of the portal class: fraction dedicated to one language, and the
    /// fraction of those that are Spanish.
    pub language_dedicated: (f64, f64),
}

/// Appendix A report.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendixAReport {
    /// `P(m)` for m = 1..=20 at the paper's N, W.
    pub capture_curve: Vec<f64>,
    /// Queries needed for P ≥ 0.99 (paper: 13).
    pub m_for_99: u32,
    /// Estimated median aggregated session hours (Top group) under
    /// 2 h / 4 h / 6 h offline thresholds — the robustness check.
    pub threshold_sensitivity: [f64; 3],
}

/// V1: crawler-validation report (possible only in simulation).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Fraction of torrents with an identified publisher IP (paper: ~40 %).
    pub ip_identified_frac: f64,
    /// Of identified IPs, fraction matching ground truth.
    pub ip_precision: f64,
    /// Median relative error of estimated vs true aggregated session time
    /// over top publishers.
    pub session_error_median: f64,
    /// Fraction of ground-truth downloads observed by the crawler.
    pub download_coverage: f64,
}

impl<'b, 'a> Experiments<'b, 'a> {
    pub(crate) fn new(analyses: &'b Analyses<'a>) -> Self {
        Experiments { analyses }
    }

    /// Table 1 row for this campaign.
    pub fn t1_dataset(&self) -> DatasetSummary {
        let _span = btpub_obs::span!("exp.t1");
        let ds = &self.analyses.study.dataset;
        DatasetSummary {
            name: ds.name.clone(),
            days: self.analyses.study.eco.config.duration.as_days(),
            torrents_username: ds.username_identified_count(),
            torrents_ip: ds.ip_identified_count(),
            torrents_total: ds.torrent_count(),
            ip_addresses: ds.distinct_ip_count(),
        }
    }

    /// Figure 1.
    pub fn fig1_skewness(&self) -> SkewnessReport {
        let _span = btpub_obs::span!("exp.f1");
        let a = self.analyses;
        SkewnessReport {
            cdf: contribution_cdf(&a.publishers),
            share_top3pct: content_share_of_top(&a.publishers, 3.0),
            top_k_shares: shares_of_top_k(&a.publishers, a.top_k),
            top_k: a.top_k,
        }
    }

    /// Table 2: top-10 ISPs.
    pub fn t2_isps(&self) -> Vec<IspRow> {
        let _span = btpub_obs::span!("exp.t2");
        top_isps(
            &self.analyses.study.dataset,
            &self.analyses.study.eco.world.db,
            10,
        )
    }

    /// Table 3: OVH vs Comcast footprints.
    pub fn t3_footprints(&self) -> (IspFootprint, IspFootprint) {
        let _span = btpub_obs::span!("exp.t3");
        let ds = &self.analyses.study.dataset;
        let db = &self.analyses.study.eco.world.db;
        (isp_footprint(ds, db, "OVH"), isp_footprint(ds, db, "Comcast"))
    }

    /// §3.3 mapping statistics.
    pub fn s33_mapping(&self) -> MappingReport {
        let _span = btpub_obs::span!("exp.s33");
        let a = self.analyses;
        let ds = &a.study.dataset;
        let db = &a.study.eco.world.db;
        mapping_report(
            &a.publishers,
            &a.groups,
            db,
            mapping_stats(ds, &a.publishers, db, a.top_k),
            group_shares(ds, &a.publishers, &a.groups, Group::Fake),
            group_shares(ds, &a.publishers, &a.groups, Group::Top),
        )
    }

    /// Figure 2: per-group category distributions.
    pub fn fig2_content_types(&self) -> Vec<(Group, CategoryDistribution)> {
        let _span = btpub_obs::span!("exp.f2");
        let a = self.analyses;
        Group::ALL
            .into_iter()
            .map(|g| {
                (
                    g,
                    category_distribution(&a.study.dataset, &a.publishers, &a.groups, g),
                )
            })
            .collect()
    }

    /// Per-entity stats for the fake group (IP-keyed; see
    /// [`btpub_analysis::fake::fake_ip_stats`]).
    fn fake_stats(&self) -> Vec<btpub_analysis::publishers::PublisherStats> {
        btpub_analysis::fake::fake_ip_stats(&self.analyses.study.dataset, &self.analyses.groups)
    }

    /// Figure 3: per-group popularity boxes. Popularity is keyed per
    /// username for every group (the paper's Fake unit here is the 1030
    /// throwaway accounts, which is what keeps the Fake box lowest).
    pub fn fig3_popularity(&self) -> Vec<(Group, Option<BoxStats>)> {
        let _span = btpub_obs::span!("exp.f3");
        let a = self.analyses;
        Group::ALL
            .into_iter()
            .map(|g| {
                (
                    g,
                    popularity_box(&a.publishers, &a.groups, g, a.study.eco.config.seed),
                )
            })
            .collect()
    }

    /// Figure 4: per-group seeding boxes. The Fake group is aggregated per
    /// IP entity, as in the paper.
    pub fn fig4_seeding(&self) -> Vec<(Group, Option<SeedingBoxes>)> {
        let _span = btpub_obs::span!("exp.f4");
        let a = self.analyses;
        let fake_stats = self.fake_stats();
        Group::ALL
            .into_iter()
            .map(|g| {
                let stats: &[_] = if g == Group::Fake {
                    &fake_stats
                } else {
                    &a.publishers
                };
                let boxes = group_seeding_boxes(
                    &a.study.dataset,
                    stats,
                    &a.groups,
                    g,
                    a.study.eco.config.seed,
                )
                .map(|(seed_time, parallel, aggregated)| SeedingBoxes {
                    seed_time,
                    parallel,
                    aggregated,
                });
                (g, boxes)
            })
            .collect()
    }

    /// §5.1 classification shares.
    pub fn s51_classes(&self) -> ClassReport {
        let _span = btpub_obs::span!("exp.s51");
        let a = self.analyses;
        class_report(&a.classified, |c| {
            btpub_analysis::classify::class_shares(&a.study.dataset, &a.publishers, &a.classified, c)
        })
    }

    /// Table 4.
    pub fn t4_longitudinal(&self) -> Vec<LongitudinalRow> {
        let _span = btpub_obs::span!("exp.t4");
        let a = self.analyses;
        let portal = a.portal();
        longitudinal_rows(&portal, &a.classified, a.study.eco.config.horizon())
    }

    /// Table 5, reported at paper scale.
    ///
    /// Per-site traffic scales with both the per-swarm downloader counts
    /// (`downloads_scale`) and the torrents-per-major-publisher ratio
    /// (`torrents / majors`), so the correction undoes both.
    pub fn t5_economics(&self) -> Vec<EconomicsRow> {
        let _span = btpub_obs::span!("exp.t5");
        let a = self.analyses;
        let scale = a.study.scenario.scale;
        let correction =
            1.0 / a.study.eco.config.downloads_scale * (scale.majors / scale.torrents);
        let reports = site_reports(&a.study.eco, &a.classified, correction);
        economics_rows(&a.classified, &reports)
    }

    /// §6: hosting-provider income. Returns `(provider, servers, €/month)`
    /// for OVH and the three fake-publisher providers.
    pub fn s6_hosting_income(&self) -> Vec<(&'static str, usize, f64)> {
        let _span = btpub_obs::span!("exp.s6");
        let ds = &self.analyses.study.dataset;
        let db = &self.analyses.study.eco.world.db;
        hosting_income_rows(|p| hosting_income_estimate(ds, db, p, 300.0))
    }

    /// Appendix A: the model plus the 2 h / 4 h / 6 h robustness check.
    pub fn aa_session_model(&self) -> AppendixAReport {
        let _span = btpub_obs::span!("exp.aa");
        let a = self.analyses;
        appendix_a_report(&a.publishers, &a.groups, |p, i| {
            btpub_analysis::seeding::publisher_seeding_metrics(
                &a.study.dataset,
                p,
                SimDuration::from_hours(SEEDING_THRESHOLDS_H[i]),
            )
            .map(|m| m.aggregated_session_h)
        })
    }

    /// V1: validation against ground truth (simulation-only superpower).
    pub fn v1_validation(&self) -> ValidationReport {
        let _span = btpub_obs::span!("exp.v1");
        let a = self.analyses;
        let ds = &a.study.dataset;
        let eco = &a.study.eco;
        let mut truth = TruthCounters::default();
        for t in &ds.torrents {
            truth.observe(t, eco);
        }
        validation_report(eco, ds.torrent_count(), &truth, &a.publishers, &a.groups, |p| {
            btpub_analysis::seeding::publisher_seeding_metrics(
                ds,
                p,
                btpub_analysis::session::default_offline_threshold(),
            )
        })
    }

    /// Computes every experiment once, as data.
    pub fn report_data(&self) -> ReportData {
        ReportData {
            t1: self.t1_dataset(),
            f1: self.fig1_skewness(),
            t2: self.t2_isps(),
            t3: self.t3_footprints(),
            s33: self.s33_mapping(),
            f2: self.fig2_content_types(),
            f3: self.fig3_popularity(),
            f4: self.fig4_seeding(),
            s51: self.s51_classes(),
            t4: self.t4_longitudinal(),
            t5: self.t5_economics(),
            s6: self.s6_hosting_income(),
            aa: self.aa_session_model(),
            v1: self.v1_validation(),
        }
    }

    /// Renders every experiment as a human-readable report with the
    /// paper's values alongside.
    pub fn full_report(&self) -> String {
        render_full_report(&self.report_data())
    }
}

/// Every experiment's output, as one value. Both drivers produce this —
/// [`Experiments::report_data`] from a materialized dataset,
/// [`crate::stream_study::StreamStudy::report_data`] from the streaming
/// aggregation — and [`render_full_report`] turns either into the exact
/// same text.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportData {
    /// Table 1.
    pub t1: DatasetSummary,
    /// Figure 1.
    pub f1: SkewnessReport,
    /// Table 2.
    pub t2: Vec<IspRow>,
    /// Table 3 (OVH, Comcast).
    pub t3: (IspFootprint, IspFootprint),
    /// §3.3.
    pub s33: MappingReport,
    /// Figure 2.
    pub f2: Vec<(Group, CategoryDistribution)>,
    /// Figure 3.
    pub f3: Vec<(Group, Option<BoxStats>)>,
    /// Figure 4.
    pub f4: Vec<(Group, Option<SeedingBoxes>)>,
    /// §5.1.
    pub s51: ClassReport,
    /// Table 4.
    pub t4: Vec<LongitudinalRow>,
    /// Table 5.
    pub t5: Vec<EconomicsRow>,
    /// §6 hosting income.
    pub s6: Vec<(&'static str, usize, f64)>,
    /// Appendix A.
    pub aa: AppendixAReport,
    /// V1 validation.
    pub v1: ValidationReport,
}

/// Renders the full side-by-side report from precomputed data.
pub fn render_full_report(data: &ReportData) -> String {
    let mut out = String::new();
    {
        let t1 = &data.t1;
        let _ = writeln!(
            out,
            "== T1 dataset {} ==\n  days={:.0} torrents={} (username {}, ip {}), distinct IPs={}",
            t1.name, t1.days, t1.torrents_total, t1.torrents_username, t1.torrents_ip, t1.ip_addresses
        );
    }
    {
        let f1 = &data.f1;
        let _ = writeln!(
            out,
            "== F1 skewness ==\n  top3%→{:.1}% of content (paper ≈{:.0}%); top-{}: {:.1}% content / {:.1}% downloads (paper 66/75)",
            f1.share_top3pct,
            paper::TOP3PCT_CONTENT,
            f1.top_k,
            f1.top_k_shares.0 * 100.0,
            f1.top_k_shares.1 * 100.0
        );
    }
    let _ = writeln!(out, "== T2 top ISPs ==");
    for row in &data.t2 {
        let _ = writeln!(out, "  {:<28} {:<16} {:>5.2}%", row.name, row.kind.to_string(), row.pct_content);
    }
    {
        let (ovh, comcast) = &data.t3;
        let _ = writeln!(
            out,
            "== T3 OVH vs Comcast ==\n  OVH: fed={} ips={} /16={} geo={}\n  Comcast: fed={} ips={} /16={} geo={}",
            ovh.fed_torrents, ovh.ip_addresses, ovh.prefixes16, ovh.geo_locations,
            comcast.fed_torrents, comcast.ip_addresses, comcast.prefixes16, comcast.geo_locations
        );
    }
    {
        let s33 = &data.s33;
        let _ = writeln!(
            out,
            "== S33 mapping ==\n  fake: {} usernames, {} IPs; shares {:.0}%/{:.0}% (paper 30/25)\n  top shares {:.0}%/{:.0}% (paper 37/50); compromised dropped: {}\n  unique-username IPs {:.0}% (paper 55); username IP classes [{:.0} {:.0} {:.0} {:.0}]% (paper [25 34 24 16])\n  hosting {:.0}% (paper 42), OVH {:.0}% (paper 22)",
            s33.fake_usernames, s33.fake_ips,
            s33.fake_shares.0 * 100.0, s33.fake_shares.1 * 100.0,
            s33.top_shares.0 * 100.0, s33.top_shares.1 * 100.0,
            s33.compromised,
            s33.mapping.top_ips_unique_username * 100.0,
            s33.mapping.single_ip * 100.0, s33.mapping.multi_ip_hosting * 100.0,
            s33.mapping.multi_ip_single_ci * 100.0, s33.mapping.multi_ip_multi_ci * 100.0,
            s33.hosting.0 * 100.0, s33.hosting.1 * 100.0
        );
    }
    let _ = writeln!(out, "== F2 content types (video share) ==");
    for (g, dist) in &data.f2 {
        let _ = writeln!(out, "  {:<7} video={:.0}% n={}", g.label(), dist.video_share() * 100.0, dist.n);
    }
    let _ = writeln!(out, "== F3 popularity (avg downloaders/torrent/publisher) ==");
    for (g, b) in &data.f3 {
        if let Some(b) = b {
            let _ = writeln!(out, "  {:<7} p25={:>7.1} med={:>7.1} p75={:>7.1}", g.label(), b.p25, b.median, b.p75);
        }
    }
    let _ = writeln!(out, "== F4 seeding ==");
    for (g, boxes) in &data.f4 {
        if let Some(b) = boxes {
            let _ = writeln!(
                out,
                "  {:<7} seed_time med={:>6.1}h parallel med={:>5.2} aggregated med={:>7.1}h",
                g.label(), b.seed_time.median, b.parallel.median, b.aggregated.median
            );
        }
    }
    {
        let s51 = &data.s51;
        let _ = writeln!(out, "== S51 classes ==");
        for (c, of_top, content, downloads) in &s51.shares {
            let _ = writeln!(
                out,
                "  {:<22} of_top={:.0}% content={:.1}% downloads={:.1}%",
                c.label(), of_top * 100.0, content * 100.0, downloads * 100.0
            );
        }
        let _ = writeln!(
            out,
            "  profit-driven: {:.0}% content / {:.0}% downloads (paper 26/40); placements {:?}; portal language-dedicated {:.0}% (es {:.0}%)",
            s51.profit_shares.0 * 100.0, s51.profit_shares.1 * 100.0,
            s51.placements, s51.language_dedicated.0 * 100.0, s51.language_dedicated.1 * 100.0
        );
    }
    let _ = writeln!(out, "== T4 longitudinal ==");
    for row in &data.t4 {
        let _ = writeln!(
            out,
            "  {:<22} lifetime {:>4.0}/{:>4.0}/{:>4.0}d rate {:>5.2}/{:>5.2}/{:>5.2}/day",
            row.class.label(),
            row.lifetime_days.min, row.lifetime_days.avg, row.lifetime_days.max,
            row.rate_per_day.min, row.rate_per_day.avg, row.rate_per_day.max
        );
    }
    let _ = writeln!(out, "== T5 economics (paper-scale corrected; min/med/avg/max) ==");
    for row in &data.t5 {
        let m = |v: &btpub_analysis::stats::MinMedAvgMax| {
            format!(
                "{}/{}/{}/{}",
                human(v.min),
                human(v.median),
                human(v.avg),
                human(v.max)
            )
        };
        let _ = writeln!(
            out,
            "  {:<16} value ${} income ${}/day visits {}/day",
            row.class.label(),
            m(&row.value_dollars),
            m(&row.daily_income_dollars),
            m(&row.daily_visits)
        );
    }
    let _ = writeln!(out, "== S6 hosting income ==");
    for (p, servers, income) in &data.s6 {
        let _ = writeln!(out, "  {:<12} servers={} income≈{:.0}€/mo", p, servers, income);
    }
    {
        let aa = &data.aa;
        let _ = writeln!(
            out,
            "== AA session model ==\n  m for P≥0.99: {} (paper 13); P(13)={:.4}\n  top median aggregated session @2h/4h/6h thresholds: {:.1}/{:.1}/{:.1} h",
            aa.m_for_99, aa.capture_curve[12],
            aa.threshold_sensitivity[0], aa.threshold_sensitivity[1], aa.threshold_sensitivity[2]
        );
    }
    {
        let v1 = &data.v1;
        let _ = writeln!(
            out,
            "== V1 validation ==\n  IP identified {:.0}% (paper ≈40%), precision {:.2}; session err med {:.2}; download coverage {:.2}",
            v1.ip_identified_frac * 100.0, v1.ip_precision, v1.session_error_median, v1.download_coverage
        );
    }
    out
}

/// §3.3 report assembly shared by both drivers: the mapping stats and
/// group shares are computed per-driver (identically), the hosting shares
/// here from the sorted publisher list.
pub fn mapping_report(
    publishers: &[PublisherStats],
    groups: &Groups,
    db: &GeoDb,
    mapping: MappingStats,
    fake_shares: (f64, f64),
    top_shares: (f64, f64),
) -> MappingReport {
    let top_pub_stats: Vec<_> = publishers
        .iter()
        .filter(|p| groups.top.contains(&p.key))
        .cloned()
        .collect();
    MappingReport {
        mapping,
        fake_usernames: groups.fake_usernames.len(),
        fake_ips: groups.fake_ips.len(),
        fake_shares,
        top_shares,
        compromised: groups.compromised_in_top_k,
        hosting: hosting_shares(&top_pub_stats, db, "OVH"),
    }
}

/// §5.1 report assembly shared by both drivers, parameterized over how a
/// class's `(of_top, content, downloads)` shares are computed.
pub fn class_report(
    classified: &[Classified],
    shares_of: impl Fn(BusinessClass) -> (f64, f64, f64),
) -> ClassReport {
    let classes = [
        BusinessClass::BtPortal,
        BusinessClass::OtherWeb,
        BusinessClass::Altruistic,
    ];
    let shares = classes
        .into_iter()
        .map(|c| {
            let (of_top, content, downloads) = shares_of(c);
            (c, of_top, content, downloads)
        })
        .collect::<Vec<_>>();
    let profit_shares = shares
        .iter()
        .filter(|(c, ..)| c.is_profit_driven())
        .fold((0.0, 0.0), |(pc, pd), (_, _, c, d)| (pc + c, pd + d));
    let mut placements: BTreeMap<&'static str, usize> = BTreeMap::new();
    for c in classified.iter().filter(|c| c.url.is_some()) {
        for p in &c.placements {
            let label = match p {
                UrlPlacement::Textbox => "textbox",
                UrlPlacement::Filename => "filename",
            };
            *placements.entry(label).or_default() += 1;
        }
    }
    let portal_members: Vec<_> = classified
        .iter()
        .filter(|c| c.class == BusinessClass::BtPortal)
        .collect();
    let dedicated: Vec<_> = portal_members
        .iter()
        .filter(|c| c.language.is_some())
        .collect();
    let spanish = dedicated
        .iter()
        .filter(|c| c.language.as_deref() == Some("es"))
        .count();
    let language_dedicated = (
        dedicated.len() as f64 / portal_members.len().max(1) as f64,
        spanish as f64 / dedicated.len().max(1) as f64,
    );
    ClassReport {
        shares,
        profit_shares,
        placements,
        language_dedicated,
    }
}

/// §6 assembly shared by both drivers: the provider list and price are
/// fixed, only the footprint lookup differs.
pub fn hosting_income_rows(
    income_of: impl Fn(&'static str) -> (usize, f64),
) -> Vec<(&'static str, usize, f64)> {
    ["OVH", "tzulo", "FDCservers", "4RWEB"]
        .into_iter()
        .map(|p| {
            let (servers, income) = income_of(p);
            (p, servers, income)
        })
        .collect()
}

/// Appendix A assembly shared by both drivers, parameterized over where a
/// top publisher's aggregated session hours at threshold index `i` (into
/// [`SEEDING_THRESHOLDS_H`]) come from.
pub fn appendix_a_report(
    publishers: &[PublisherStats],
    groups: &Groups,
    aggregated_h_of: impl Fn(&PublisherStats, usize) -> Option<f64>,
) -> AppendixAReport {
    let (n, w, _) = paper::APPENDIX_A;
    let capture_curve: Vec<f64> = (1..=20).map(|m| capture_probability(w, n, m)).collect();
    let mut medians = [0.0f64; 3];
    for (i, median) in medians.iter_mut().enumerate() {
        let mut totals: Vec<f64> = publishers
            .iter()
            .filter(|p| groups.top.contains(&p.key))
            .filter_map(|p| aggregated_h_of(p, i))
            .collect();
        totals.sort_by(f64::total_cmp);
        *median = totals.get(totals.len() / 2).copied().unwrap_or(0.0);
    }
    AppendixAReport {
        capture_curve,
        m_for_99: queries_needed(w, n, 0.99),
        threshold_sensitivity: medians,
    }
}

/// Per-record ground-truth tallies for V1: the materialized driver scans
/// the dataset, the streaming consumer folds each record in as it leaves
/// the channel. Identical per-record code either way.
#[derive(Debug, Clone, Copy, Default)]
pub struct TruthCounters {
    /// Torrents with an identified publisher IP.
    pub identified: usize,
    /// Of those, torrents whose identified IP matches ground truth.
    pub correct: usize,
    /// Sum of observed downloaders across all torrents.
    pub observed_downloads: u64,
}

impl TruthCounters {
    /// Folds one record's truth check in.
    pub fn observe(&mut self, rec: &btpub_crawler::TorrentRecord, eco: &Ecosystem) {
        self.observed_downloads += rec.observed_downloaders() as u64;
        if let Some(ip) = rec.publisher_ip {
            self.identified += 1;
            let truth = eco
                .publisher(eco.publications[rec.torrent.0 as usize].publisher)
                .addresses
                .all_ips();
            if truth.contains(&ip) {
                self.correct += 1;
            }
        }
    }
}

/// V1 assembly shared by both drivers, parameterized over where a top
/// publisher's estimated seeding metrics come from.
pub fn validation_report(
    eco: &Ecosystem,
    torrents_total: usize,
    truth: &TruthCounters,
    publishers: &[PublisherStats],
    groups: &Groups,
    metrics_of: impl Fn(&PublisherStats) -> Option<SeedingMetrics>,
) -> ValidationReport {
    // Session estimation error for top publishers (by ground truth).
    let mut errors: Vec<f64> = Vec::new();
    let username_of: btpub_fxhash::FxHashMap<&str, usize> = eco
        .publishers
        .iter()
        .enumerate()
        .map(|(i, p)| (p.primary_username(), i))
        .collect();
    for p in publishers.iter().filter(|p| groups.top.contains(&p.key)) {
        let btpub_analysis::publishers::PublisherKey::Username(u) = &p.key else {
            continue;
        };
        let Some(&pi) = username_of.get(u.as_str()) else {
            continue;
        };
        if !eco.publishers[pi].profile.is_top() {
            continue;
        }
        let truth_h = eco.session_unions[pi].total().as_hours();
        if truth_h < 1.0 {
            continue;
        }
        let Some(m) = metrics_of(p) else {
            continue;
        };
        errors.push((m.aggregated_session_h - truth_h).abs() / truth_h);
    }
    errors.sort_by(f64::total_cmp);
    let session_error_median = errors.get(errors.len() / 2).copied().unwrap_or(1.0);
    ValidationReport {
        ip_identified_frac: truth.identified as f64 / torrents_total.max(1) as f64,
        ip_precision: truth.correct as f64 / truth.identified.max(1) as f64,
        session_error_median,
        download_coverage: truth.observed_downloads as f64
            / eco.total_downloads().max(1) as f64,
    }
}

/// Compact human rendering: `7.3K`, `2.8M`, `412`.
fn human(v: f64) -> String {
    let a = v.abs();
    if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

// Silence an unused-import lint when Profile is only used in tests.
const _: fn() = || {
    let _ = Profile::Fake;
};

#[cfg(test)]
mod tests {
    use crate::{Scale, Scenario, Study};

    fn analyses() -> &'static Study {
        static STUDY: std::sync::OnceLock<Study> = std::sync::OnceLock::new();
        STUDY.get_or_init(|| Study::run(&Scenario::pb10(Scale::tiny())))
    }

    #[test]
    fn full_report_renders_every_section() {
        let study = analyses();
        let a = study.analyze();
        let report = a.experiments().full_report();
        for section in [
            "T1", "F1", "T2", "T3", "S33", "F2", "F3", "F4", "S51", "T4", "T5", "S6", "AA", "V1",
        ] {
            assert!(report.contains(&format!("== {section}")), "missing {section}\n{report}");
        }
    }

    #[test]
    fn appendix_a_matches_paper() {
        let study = analyses();
        let a = study.analyze();
        let aa = a.experiments().aa_session_model();
        assert_eq!(aa.m_for_99, 13);
        assert!(aa.capture_curve[12] > 0.99);
        // Monotone capture curve.
        assert!(aa.capture_curve.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn validation_report_sane() {
        let study = analyses();
        let a = study.analyze();
        let v1 = a.experiments().v1_validation();
        assert!(v1.ip_identified_frac > 0.15 && v1.ip_identified_frac < 0.85);
        assert!(v1.ip_precision > 0.85);
        assert!(v1.download_coverage > 0.2);
    }
}
