//! Per-ISP IP address pools.
//!
//! The simulator draws publisher and downloader addresses from these pools.
//! Two draw modes mirror the paper's Table 3 contrast:
//!
//! * [`IpPool::allocate_server`] — a *stable, unique* address, the way a
//!   rented dedicated server at a hosting provider keeps one IP for months;
//! * [`IpPool::sample_customer`] — a uniform draw from the whole pool, the
//!   way a residential subscriber receives an arbitrary address from the
//!   ISP's DHCP space (and a different one after every re-assignment).

use std::net::Ipv4Addr;

use rand::Rng;

use crate::{IspId, LocationId};

/// One contiguous block owned by the ISP.
#[derive(Debug, Clone, Copy)]
struct Block {
    start: u32,
    len: u32,
    location: LocationId,
}

/// The address space of a single ISP.
#[derive(Debug, Clone)]
pub struct IpPool {
    isp: IspId,
    blocks: Vec<Block>,
    total: u64,
    /// Per-block next-offset cursors for unique server allocation, plus a
    /// rotating block cursor. Servers are spread across blocks round-robin
    /// so even a 2-server ISP shows multiple /16 prefixes, matching how
    /// providers assign from multiple racks.
    server_cursors: Vec<u32>,
    next_block: usize,
    allocated: u64,
}

impl IpPool {
    /// Creates an empty pool for `isp`.
    pub fn new(isp: IspId) -> Self {
        IpPool {
            isp,
            blocks: Vec::new(),
            total: 0,
            server_cursors: Vec::new(),
            next_block: 0,
            allocated: 0,
        }
    }

    /// Owning ISP.
    pub fn isp(&self) -> IspId {
        self.isp
    }

    /// Adds an inclusive address block located at `location`.
    pub fn add_block(&mut self, start: Ipv4Addr, end: Ipv4Addr, location: LocationId) {
        let (s, e) = (u32::from(start), u32::from(end));
        assert!(s <= e, "inverted block");
        let len = e - s + 1;
        self.blocks.push(Block {
            start: s,
            len,
            location,
        });
        self.server_cursors.push(0);
        self.total += u64::from(len);
    }

    /// Adds a whole /16 block.
    pub fn add_slash16(&mut self, prefix: u16, location: LocationId) {
        let [a, b] = prefix.to_be_bytes();
        self.add_block(
            Ipv4Addr::new(a, b, 0, 0),
            Ipv4Addr::new(a, b, 255, 255),
            location,
        );
    }

    /// Total number of addresses in the pool.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the pool holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Allocates the next unique server address, striping across blocks.
    ///
    /// Successive calls never return the same address until the pool is
    /// exhausted, in which case `None` is returned.
    pub fn allocate_server(&mut self) -> Option<(Ipv4Addr, LocationId)> {
        if self.allocated >= self.total || self.blocks.is_empty() {
            return None;
        }
        // Rotate through blocks, skipping any that are exhausted.
        for _ in 0..self.blocks.len() {
            let idx = self.next_block;
            self.next_block = (self.next_block + 1) % self.blocks.len();
            let block = &self.blocks[idx];
            let cursor = self.server_cursors[idx];
            if cursor < block.len {
                self.server_cursors[idx] += 1;
                self.allocated += 1;
                return Some((Ipv4Addr::from(block.start + cursor), block.location));
            }
        }
        None
    }

    /// Samples a uniform address from the pool (customer DHCP draw).
    pub fn sample_customer<R: Rng + ?Sized>(&self, rng: &mut R) -> (Ipv4Addr, LocationId) {
        assert!(!self.is_empty(), "cannot sample from an empty pool");
        let mut n = rng.gen_range(0..self.total);
        for block in &self.blocks {
            if n < u64::from(block.len) {
                return (Ipv4Addr::from(block.start + n as u32), block.location);
            }
            n -= u64::from(block.len);
        }
        unreachable!("sample index within total")
    }

    /// Whether the pool contains `ip`.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        let key = u32::from(ip);
        self.blocks
            .iter()
            .any(|b| b.start <= key && key - b.start < b.len)
    }

    /// The location an in-pool address belongs to.
    pub fn location_of(&self, ip: Ipv4Addr) -> Option<LocationId> {
        let key = u32::from(ip);
        self.blocks
            .iter()
            .find(|b| b.start <= key && key - b.start < b.len)
            .map(|b| b.location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool() -> IpPool {
        let mut p = IpPool::new(IspId(0));
        p.add_slash16(0x5E17, LocationId(0)); // 94.23/16
        p.add_slash16(0x5E18, LocationId(1)); // 94.24/16
        p
    }

    #[test]
    fn server_allocation_is_unique_and_striped() {
        let mut p = pool();
        let (a, la) = p.allocate_server().unwrap();
        let (b, lb) = p.allocate_server().unwrap();
        let (c, _) = p.allocate_server().unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // striping alternates blocks, hence locations
        assert_ne!(la, lb);
        assert_eq!(crate::prefix16(a), 0x5E17);
        assert_eq!(crate::prefix16(b), 0x5E18);
        assert_eq!(crate::prefix16(c), 0x5E17);
    }

    #[test]
    fn server_allocation_exhausts_small_pool() {
        let mut p = IpPool::new(IspId(0));
        p.add_block(
            Ipv4Addr::new(1, 1, 1, 0),
            Ipv4Addr::new(1, 1, 1, 3),
            LocationId(0),
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let (ip, _) = p.allocate_server().unwrap();
            assert!(seen.insert(ip), "duplicate {ip}");
        }
        assert!(p.allocate_server().is_none());
    }

    #[test]
    fn uneven_blocks_fully_allocated() {
        let mut p = IpPool::new(IspId(0));
        p.add_block(
            Ipv4Addr::new(1, 1, 1, 0),
            Ipv4Addr::new(1, 1, 1, 0),
            LocationId(0),
        );
        p.add_block(
            Ipv4Addr::new(2, 2, 2, 0),
            Ipv4Addr::new(2, 2, 2, 2),
            LocationId(1),
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let (ip, _) = p.allocate_server().unwrap();
            assert!(seen.insert(ip));
        }
        assert!(p.allocate_server().is_none());
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn customer_samples_stay_in_pool() {
        let p = pool();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let (ip, loc) = p.sample_customer(&mut rng);
            assert!(p.contains(ip));
            assert_eq!(p.location_of(ip), Some(loc));
        }
    }

    #[test]
    fn customer_samples_cover_blocks() {
        let p = pool();
        let mut rng = StdRng::seed_from_u64(7);
        let mut prefixes = std::collections::HashSet::new();
        for _ in 0..200 {
            let (ip, _) = p.sample_customer(&mut rng);
            prefixes.insert(crate::prefix16(ip));
        }
        assert_eq!(prefixes.len(), 2, "both /16s should be drawn from");
    }

    #[test]
    fn contains_and_location_of() {
        let p = pool();
        assert!(p.contains(Ipv4Addr::new(94, 23, 0, 0)));
        assert!(p.contains(Ipv4Addr::new(94, 24, 255, 255)));
        assert!(!p.contains(Ipv4Addr::new(94, 25, 0, 0)));
        assert_eq!(
            p.location_of(Ipv4Addr::new(94, 24, 1, 1)),
            Some(LocationId(1))
        );
        assert_eq!(p.location_of(Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn sampling_empty_pool_panics() {
        let p = IpPool::new(IspId(0));
        let mut rng = StdRng::seed_from_u64(0);
        p.sample_customer(&mut rng);
    }
}
