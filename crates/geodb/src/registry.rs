//! The standard synthetic world: the ISPs from the paper's tables plus a
//! long tail of generic access providers.

use crate::db::{GeoDb, GeoDbBuilder};
use crate::pool::IpPool;
use crate::{IspId, IspKind, LocationId};

/// A fully-instantiated world: lookup database plus per-ISP address pools.
#[derive(Debug, Clone)]
pub struct World {
    /// The lookup database (MaxMind substitute).
    pub db: GeoDb,
    /// Address pools, indexed by `IspId.0`.
    pub pools: Vec<IpPool>,
    /// Ids of all hosting providers.
    pub hosting: Vec<IspId>,
    /// Ids of all commercial ISPs.
    pub commercial: Vec<IspId>,
}

impl World {
    /// The pool for an ISP.
    pub fn pool(&self, isp: IspId) -> &IpPool {
        &self.pools[isp.0 as usize]
    }

    /// Mutable pool access (server allocation consumes pool state).
    pub fn pool_mut(&mut self, isp: IspId) -> &mut IpPool {
        &mut self.pools[isp.0 as usize]
    }

    /// Looks an ISP up by name.
    pub fn isp_by_name(&self, name: &str) -> Option<IspId> {
        self.db.isp_by_name(name)
    }
}

/// Specification of one ISP in the synthetic world.
struct IspSpec {
    name: &'static str,
    kind: IspKind,
    country: &'static str,
    /// Number of /16 blocks.
    blocks: u16,
    /// Number of distinct cities its blocks spread over.
    cities: u16,
}

/// ISPs named in Tables 2 and 3 of the paper, with address-space structure
/// that reproduces the hosting-vs-commercial contrast: hosting providers
/// get a handful of /16s in 1–4 datacenter cities; residential providers
/// get many /16s over many cities.
const NAMED_ISPS: &[IspSpec] = &[
    // -- hosting providers --
    IspSpec { name: "OVH", kind: IspKind::HostingProvider, country: "FR", blocks: 7, cities: 4 },
    IspSpec { name: "SoftLayer Tech.", kind: IspKind::HostingProvider, country: "US", blocks: 5, cities: 3 },
    IspSpec { name: "FDCservers", kind: IspKind::HostingProvider, country: "US", blocks: 4, cities: 2 },
    IspSpec { name: "tzulo", kind: IspKind::HostingProvider, country: "US", blocks: 3, cities: 2 },
    IspSpec { name: "4RWEB", kind: IspKind::HostingProvider, country: "RU", blocks: 3, cities: 1 },
    IspSpec { name: "Keyweb", kind: IspKind::HostingProvider, country: "DE", blocks: 3, cities: 1 },
    IspSpec { name: "NetDirect", kind: IspKind::HostingProvider, country: "US", blocks: 3, cities: 2 },
    IspSpec { name: "NetWork Operations Center", kind: IspKind::HostingProvider, country: "US", blocks: 3, cities: 2 },
    IspSpec { name: "Serverflo", kind: IspKind::HostingProvider, country: "NL", blocks: 2, cities: 1 },
    IspSpec { name: "LeaseWeb", kind: IspKind::HostingProvider, country: "NL", blocks: 4, cities: 2 },
    // -- commercial ISPs --
    IspSpec { name: "Comcast", kind: IspKind::CommercialIsp, country: "US", blocks: 300, cities: 400 },
    IspSpec { name: "Road Runner", kind: IspKind::CommercialIsp, country: "US", blocks: 180, cities: 220 },
    IspSpec { name: "Virgin Media", kind: IspKind::CommercialIsp, country: "GB", blocks: 120, cities: 150 },
    IspSpec { name: "SBC", kind: IspKind::CommercialIsp, country: "US", blocks: 160, cities: 200 },
    IspSpec { name: "Verizon", kind: IspKind::CommercialIsp, country: "US", blocks: 200, cities: 250 },
    IspSpec { name: "Comcor-TV", kind: IspKind::CommercialIsp, country: "RU", blocks: 60, cities: 40 },
    IspSpec { name: "Telecom Italia", kind: IspKind::CommercialIsp, country: "IT", blocks: 110, cities: 140 },
    IspSpec { name: "Romania DS", kind: IspKind::CommercialIsp, country: "RO", blocks: 50, cities: 60 },
    IspSpec { name: "MTT Network", kind: IspKind::CommercialIsp, country: "RU", blocks: 50, cities: 45 },
    IspSpec { name: "NIB", kind: IspKind::CommercialIsp, country: "SE", blocks: 40, cities: 30 },
    IspSpec { name: "Open Computer Network", kind: IspKind::CommercialIsp, country: "JP", blocks: 90, cities: 80 },
    IspSpec { name: "Cosema", kind: IspKind::CommercialIsp, country: "SE", blocks: 35, cities: 25 },
    IspSpec { name: "Telefonica", kind: IspKind::CommercialIsp, country: "ES", blocks: 100, cities: 120 },
    IspSpec { name: "Jazz Telecom.", kind: IspKind::CommercialIsp, country: "ES", blocks: 60, cities: 70 },
];

/// Countries used for the generic long-tail access providers.
const TAIL_COUNTRIES: &[&str] = &[
    "US", "GB", "DE", "FR", "ES", "IT", "NL", "SE", "PL", "RO", "RU", "BR", "AR", "MX", "CA",
    "AU", "IN", "JP", "KR", "PT", "GR", "TR", "UA", "CZ",
];

/// Number of generic tail ISPs.
pub const TAIL_ISP_COUNT: usize = 48;

/// Builds the standard world.
///
/// The layout is fully deterministic (no RNG): /16 prefixes are assigned
/// sequentially starting at `1.0.0.0`, so tests can rely on stable
/// addresses. Datacenter cities are named after the provider; consumer
/// cities get synthetic `City-<CC>-<n>` names.
pub fn standard_world() -> World {
    let mut b = GeoDbBuilder::new();
    let mut pools: Vec<IpPool> = Vec::new();
    let mut hosting = Vec::new();
    let mut commercial = Vec::new();
    // /16 prefixes from 1.0.0.0 upward; prefix 0 (0.x) is left unused so no
    // simulated peer ever has a 0.0.0.0-ish address.
    let mut next_prefix: u16 = 0x0100;

    let add = |b: &mut GeoDbBuilder,
                   pools: &mut Vec<IpPool>,
                   spec: &IspSpec,
                   next_prefix: &mut u16| {
        let isp = b.add_isp(spec.name, spec.kind, spec.country);
        let mut pool = IpPool::new(isp);
        // Register the cities first.
        let cities: Vec<LocationId> = (0..spec.cities)
            .map(|i| {
                let city = match spec.kind {
                    IspKind::HostingProvider => format!("{} DC-{}", spec.name, i + 1),
                    IspKind::CommercialIsp => format!("City-{}-{:03}", spec.country, i + 1),
                };
                b.add_location(&city, spec.country)
            })
            .collect();
        for i in 0..spec.blocks {
            let prefix = *next_prefix;
            *next_prefix = next_prefix.checked_add(1).expect("prefix space exhausted");
            let city = cities[usize::from(i) % cities.len()];
            b.add_slash16(prefix, isp, city);
            pool.add_slash16(prefix, city);
        }
        pools.push(pool);
        isp
    };

    for spec in NAMED_ISPS {
        let isp = add(&mut b, &mut pools, spec, &mut next_prefix);
        match spec.kind {
            IspKind::HostingProvider => hosting.push(isp),
            IspKind::CommercialIsp => commercial.push(isp),
        }
    }
    for i in 0..TAIL_ISP_COUNT {
        let country = TAIL_COUNTRIES[i % TAIL_COUNTRIES.len()];
        // Leak: tail ISP names are static for the lifetime of the process;
        // there are at most TAIL_ISP_COUNT of them.
        let name: &'static str = Box::leak(format!("Tail ISP {country} #{i:02}").into_boxed_str());
        let spec = IspSpec {
            name,
            kind: IspKind::CommercialIsp,
            country,
            blocks: 24,
            cities: 30,
        };
        let isp = add(&mut b, &mut pools, &spec, &mut next_prefix);
        commercial.push(isp);
    }

    World {
        db: b.build().expect("standard world layout is valid"),
        pools,
        hosting,
        commercial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn world_has_named_isps() {
        let w = standard_world();
        for name in ["OVH", "Comcast", "tzulo", "FDCservers", "4RWEB", "Telefonica"] {
            assert!(w.isp_by_name(name).is_some(), "missing {name}");
        }
        assert_eq!(w.hosting.len(), 10);
        assert_eq!(w.commercial.len(), 14 + TAIL_ISP_COUNT);
    }

    #[test]
    fn pools_agree_with_db() {
        let mut w = standard_world();
        let mut rng = StdRng::seed_from_u64(1);
        let ovh = w.isp_by_name("OVH").unwrap();
        let comcast = w.isp_by_name("Comcast").unwrap();
        for isp in [ovh, comcast] {
            // server path
            let (ip, loc) = w.pool_mut(isp).allocate_server().unwrap();
            let info = w.db.lookup(ip).expect("allocated ip must be mapped");
            assert_eq!(info.isp, isp);
            assert_eq!(info.location, loc);
            // customer path
            let (ip, loc) = w.pool(isp).sample_customer(&mut rng);
            let info = w.db.lookup(ip).unwrap();
            assert_eq!(info.isp, isp);
            assert_eq!(info.location, loc);
        }
    }

    #[test]
    fn hosting_structure_contrasts_with_commercial() {
        let w = standard_world();
        let ovh = w.pool(w.isp_by_name("OVH").unwrap());
        let comcast = w.pool(w.isp_by_name("Comcast").unwrap());
        assert!(ovh.block_count() <= 8);
        assert!(comcast.block_count() >= 200);
    }

    #[test]
    fn ovh_servers_concentrate_in_few_prefixes_and_cities() {
        let mut w = standard_world();
        let ovh = w.isp_by_name("OVH").unwrap();
        let mut prefixes = std::collections::HashSet::new();
        let mut cities = std::collections::HashSet::new();
        for _ in 0..100 {
            let (ip, loc) = w.pool_mut(ovh).allocate_server().unwrap();
            prefixes.insert(crate::prefix16(ip));
            cities.insert(loc);
        }
        assert!(prefixes.len() <= 7, "OVH prefixes: {}", prefixes.len());
        assert!(cities.len() <= 4, "OVH cities: {}", cities.len());
    }

    #[test]
    fn comcast_customers_scatter_widely() {
        let w = standard_world();
        let comcast = w.isp_by_name("Comcast").unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut prefixes = std::collections::HashSet::new();
        let mut cities = std::collections::HashSet::new();
        for _ in 0..500 {
            let (ip, loc) = w.pool(comcast).sample_customer(&mut rng);
            prefixes.insert(crate::prefix16(ip));
            cities.insert(loc);
        }
        assert!(prefixes.len() > 100, "Comcast prefixes: {}", prefixes.len());
        assert!(cities.len() > 100, "Comcast cities: {}", cities.len());
    }

    #[test]
    fn world_is_deterministic() {
        let a = standard_world();
        let b = standard_world();
        assert_eq!(a.db.range_count(), b.db.range_count());
        let ovh_a = a.isp_by_name("OVH").unwrap();
        let ovh_b = b.isp_by_name("OVH").unwrap();
        assert_eq!(ovh_a, ovh_b);
    }

    #[test]
    fn every_pool_address_maps_back_to_its_isp() {
        let w = standard_world();
        let mut rng = StdRng::seed_from_u64(5);
        for pool in &w.pools {
            let (ip, _) = pool.sample_customer(&mut rng);
            assert_eq!(w.db.lookup(ip).unwrap().isp, pool.isp());
        }
    }
}
