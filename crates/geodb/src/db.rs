//! The interval lookup database.

use std::fmt;
use std::net::Ipv4Addr;

use crate::{IspId, IspRecord, IspKind, Location, LocationId};

/// Result of looking up an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpInfo {
    /// Owning ISP.
    pub isp: IspId,
    /// City-level location.
    pub location: LocationId,
}

#[derive(Debug, Clone, Copy)]
struct Range {
    start: u32,
    /// Inclusive end.
    end: u32,
    info: IpInfo,
}

/// An immutable IP-interval database, queried by binary search — the
/// same access pattern as a MaxMind GeoIP CSV snapshot.
#[derive(Debug, Clone)]
pub struct GeoDb {
    ranges: Vec<Range>,
    isps: Vec<IspRecord>,
    locations: Vec<Location>,
}

impl GeoDb {
    /// Maps an address to its ISP and location.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<IpInfo> {
        let key = u32::from(ip);
        let idx = self.ranges.partition_point(|r| r.end < key);
        let r = self.ranges.get(idx)?;
        (r.start <= key).then_some(r.info)
    }

    /// Returns the ISP record for an id.
    ///
    /// # Panics
    /// Panics if the id did not come from this database.
    pub fn isp(&self, id: IspId) -> &IspRecord {
        &self.isps[id.0 as usize]
    }

    /// Returns the location record for an id.
    ///
    /// # Panics
    /// Panics if the id did not come from this database.
    pub fn location(&self, id: LocationId) -> &Location {
        &self.locations[id.0 as usize]
    }

    /// All registered ISPs.
    pub fn isps(&self) -> &[IspRecord] {
        &self.isps
    }

    /// All registered locations.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Finds an ISP id by display name.
    pub fn isp_by_name(&self, name: &str) -> Option<IspId> {
        self.isps.iter().find(|r| r.name == name).map(|r| r.id)
    }

    /// Number of address ranges in the database.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }
}

/// Builder enforcing the interval invariants.
#[derive(Debug, Default)]
pub struct GeoDbBuilder {
    ranges: Vec<Range>,
    isps: Vec<IspRecord>,
    locations: Vec<Location>,
}

impl GeoDbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an ISP and returns its id.
    pub fn add_isp(&mut self, name: &str, kind: IspKind, country: &'static str) -> IspId {
        let id = IspId(self.isps.len() as u16);
        self.isps.push(IspRecord {
            id,
            name: name.to_string(),
            kind,
            country,
        });
        id
    }

    /// Registers a location and returns its id.
    pub fn add_location(&mut self, city: &str, country: &'static str) -> LocationId {
        let id = LocationId(self.locations.len() as u16);
        self.locations.push(Location {
            id,
            city: city.to_string(),
            country,
        });
        id
    }

    /// Assigns the inclusive range `[start, end]` to `(isp, location)`.
    pub fn add_range(
        &mut self,
        start: Ipv4Addr,
        end: Ipv4Addr,
        isp: IspId,
        location: LocationId,
    ) -> &mut Self {
        self.ranges.push(Range {
            start: start.into(),
            end: end.into(),
            info: IpInfo { isp, location },
        });
        self
    }

    /// Assigns a whole `/16` block to `(isp, location)` — the allocation
    /// granularity used for the synthetic world.
    pub fn add_slash16(&mut self, prefix: u16, isp: IspId, location: LocationId) -> &mut Self {
        let [a, b] = prefix.to_be_bytes();
        self.add_range(
            Ipv4Addr::new(a, b, 0, 0),
            Ipv4Addr::new(a, b, 255, 255),
            isp,
            location,
        )
    }

    /// Validates and freezes the database.
    pub fn build(mut self) -> Result<GeoDb, GeoDbError> {
        self.ranges.sort_by_key(|r| r.start);
        for r in &self.ranges {
            if r.start > r.end {
                return Err(GeoDbError::EmptyRange { start: r.start });
            }
            if usize::from(r.info.isp.0) >= self.isps.len() {
                return Err(GeoDbError::UnknownIsp(r.info.isp));
            }
            if usize::from(r.info.location.0) >= self.locations.len() {
                return Err(GeoDbError::UnknownLocation(r.info.location));
            }
        }
        for pair in self.ranges.windows(2) {
            if pair[1].start <= pair[0].end {
                return Err(GeoDbError::Overlap {
                    first_start: pair[0].start,
                    second_start: pair[1].start,
                });
            }
        }
        Ok(GeoDb {
            ranges: self.ranges,
            isps: self.isps,
            locations: self.locations,
        })
    }
}

/// Errors detected when building the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoDbError {
    /// `start > end`.
    EmptyRange {
        /// Offending range start (as u32).
        start: u32,
    },
    /// Two ranges overlap.
    Overlap {
        /// Start of the earlier range.
        first_start: u32,
        /// Start of the overlapping range.
        second_start: u32,
    },
    /// A range referenced an unregistered ISP.
    UnknownIsp(IspId),
    /// A range referenced an unregistered location.
    UnknownLocation(LocationId),
}

impl fmt::Display for GeoDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoDbError::EmptyRange { start } => {
                write!(f, "range starting at {} is empty", Ipv4Addr::from(*start))
            }
            GeoDbError::Overlap {
                first_start,
                second_start,
            } => write!(
                f,
                "ranges starting at {} and {} overlap",
                Ipv4Addr::from(*first_start),
                Ipv4Addr::from(*second_start)
            ),
            GeoDbError::UnknownIsp(id) => write!(f, "unknown ISP id {}", id.0),
            GeoDbError::UnknownLocation(id) => write!(f, "unknown location id {}", id.0),
        }
    }
}

impl std::error::Error for GeoDbError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GeoDb {
        let mut b = GeoDbBuilder::new();
        let ovh = b.add_isp("OVH", IspKind::HostingProvider, "FR");
        let comcast = b.add_isp("Comcast", IspKind::CommercialIsp, "US");
        let roubaix = b.add_location("Roubaix", "FR");
        let denver = b.add_location("Denver", "US");
        b.add_slash16(0x5E17, ovh, roubaix); // 94.23/16
        b.add_range(
            Ipv4Addr::new(24, 0, 0, 0),
            Ipv4Addr::new(24, 0, 127, 255),
            comcast,
            denver,
        );
        b.build().unwrap()
    }

    #[test]
    fn lookup_inside_and_outside_ranges() {
        let db = sample();
        let hit = db.lookup(Ipv4Addr::new(94, 23, 55, 1)).unwrap();
        assert_eq!(db.isp(hit.isp).name, "OVH");
        assert_eq!(db.location(hit.location).city, "Roubaix");
        assert!(db.lookup(Ipv4Addr::new(94, 24, 0, 0)).is_none());
        assert!(db.lookup(Ipv4Addr::new(8, 8, 8, 8)).is_none());
    }

    #[test]
    fn lookup_is_inclusive_at_both_ends() {
        let db = sample();
        assert!(db.lookup(Ipv4Addr::new(24, 0, 0, 0)).is_some());
        assert!(db.lookup(Ipv4Addr::new(24, 0, 127, 255)).is_some());
        assert!(db.lookup(Ipv4Addr::new(24, 0, 128, 0)).is_none());
        assert!(db.lookup(Ipv4Addr::new(23, 255, 255, 255)).is_none());
    }

    #[test]
    fn overlap_rejected() {
        let mut b = GeoDbBuilder::new();
        let isp = b.add_isp("X", IspKind::CommercialIsp, "US");
        let loc = b.add_location("Y", "US");
        b.add_range(
            Ipv4Addr::new(10, 0, 0, 0),
            Ipv4Addr::new(10, 0, 255, 255),
            isp,
            loc,
        );
        b.add_range(
            Ipv4Addr::new(10, 0, 255, 255),
            Ipv4Addr::new(10, 1, 0, 0),
            isp,
            loc,
        );
        assert!(matches!(b.build(), Err(GeoDbError::Overlap { .. })));
    }

    #[test]
    fn inverted_range_rejected() {
        let mut b = GeoDbBuilder::new();
        let isp = b.add_isp("X", IspKind::CommercialIsp, "US");
        let loc = b.add_location("Y", "US");
        b.add_range(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            isp,
            loc,
        );
        assert!(matches!(b.build(), Err(GeoDbError::EmptyRange { .. })));
    }

    #[test]
    fn dangling_ids_rejected() {
        let mut b = GeoDbBuilder::new();
        let loc = b.add_location("Y", "US");
        b.add_range(
            Ipv4Addr::new(10, 0, 0, 0),
            Ipv4Addr::new(10, 0, 0, 1),
            IspId(5),
            loc,
        );
        assert_eq!(b.build().unwrap_err(), GeoDbError::UnknownIsp(IspId(5)));
    }

    #[test]
    fn isp_by_name() {
        let db = sample();
        assert!(db.isp_by_name("OVH").is_some());
        assert!(db.isp_by_name("NoSuch").is_none());
    }

    #[test]
    fn adjacent_ranges_allowed() {
        let mut b = GeoDbBuilder::new();
        let isp = b.add_isp("X", IspKind::CommercialIsp, "US");
        let loc = b.add_location("Y", "US");
        b.add_range(
            Ipv4Addr::new(10, 0, 0, 0),
            Ipv4Addr::new(10, 0, 0, 9),
            isp,
            loc,
        );
        b.add_range(
            Ipv4Addr::new(10, 0, 0, 10),
            Ipv4Addr::new(10, 0, 0, 19),
            isp,
            loc,
        );
        let db = b.build().unwrap();
        assert_eq!(db.range_count(), 2);
        assert!(db.lookup(Ipv4Addr::new(10, 0, 0, 9)).is_some());
        assert!(db.lookup(Ipv4Addr::new(10, 0, 0, 10)).is_some());
    }

    #[test]
    fn single_address_range() {
        let mut b = GeoDbBuilder::new();
        let isp = b.add_isp("X", IspKind::CommercialIsp, "US");
        let loc = b.add_location("Y", "US");
        let one = Ipv4Addr::new(1, 1, 1, 1);
        b.add_range(one, one, isp, loc);
        let db = b.build().unwrap();
        assert!(db.lookup(one).is_some());
        assert!(db.lookup(Ipv4Addr::new(1, 1, 1, 2)).is_none());
    }
}
