//! # btpub-geodb
//!
//! A synthetic GeoIP/ISP database standing in for the MaxMind GeoIP
//! snapshots the paper used (§2: "We use MaxMind Database to map all the
//! IP addresses … to their corresponding ISPs and geographical location").
//!
//! The paper's ISP analysis (Tables 2 and 3) needs three things from the
//! mapping:
//!
//! 1. a consistent `IPv4 → (ISP, city, country)` lookup,
//! 2. the hosting-provider / commercial-ISP distinction the authors made by
//!    hand from each ISP's web page, and
//! 3. realistic *address-space structure*: hosting providers concentrate
//!    their servers in a handful of /16 prefixes at a couple of datacenter
//!    locations, while residential ISPs scatter customers across many /16s
//!    and hundreds of cities, re-assigning addresses over time (DHCP churn).
//!
//! [`registry::standard_world`] instantiates a world with the actual ISPs
//! from the paper's tables (OVH, Comcast, tzulo, FDCservers, 4RWEB, …) plus
//! a tail of generic consumer ISPs, and [`IpPool`] hands out addresses with
//! the structure above so that downstream analysis reproduces the paper's
//! prefix/location contrasts.

pub mod db;
pub mod pool;
pub mod registry;

pub use db::{GeoDb, GeoDbBuilder, GeoDbError, IpInfo};
pub use pool::IpPool;
pub use registry::{standard_world, World};

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Whether an ISP rents servers or serves households.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IspKind {
    /// Datacenter / server-rental company (OVH, tzulo, …).
    HostingProvider,
    /// Residential or business access provider (Comcast, Virgin Media, …).
    CommercialIsp,
}

impl fmt::Display for IspKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IspKind::HostingProvider => "Hosting Provider",
            IspKind::CommercialIsp => "Commercial ISP",
        })
    }
}

/// Index of an ISP in the [`World`] registry.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct IspId(pub u16);

/// Index of a geographic location in the [`World`] registry.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct LocationId(pub u16);

/// An ISP known to the database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IspRecord {
    /// Registry id.
    pub id: IspId,
    /// Display name as it would appear in the paper's tables.
    pub name: String,
    /// Hosting provider or commercial ISP.
    pub kind: IspKind,
    /// ISO-ish country code of the ISP's home market.
    pub country: &'static str,
}

/// A city-level geographic location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Location {
    /// Registry id.
    pub id: LocationId,
    /// City name.
    pub city: String,
    /// Country code.
    pub country: &'static str,
}

/// Returns the /16 prefix of an address (its first two octets), the prefix
/// granularity used in Table 3 of the paper.
pub fn prefix16(ip: Ipv4Addr) -> u16 {
    let o = ip.octets();
    u16::from_be_bytes([o[0], o[1]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix16_extracts_first_two_octets() {
        assert_eq!(prefix16(Ipv4Addr::new(94, 23, 7, 9)), 0x5E17);
        assert_eq!(prefix16(Ipv4Addr::new(0, 0, 0, 0)), 0);
        assert_eq!(prefix16(Ipv4Addr::new(255, 255, 1, 1)), 0xFFFF);
    }

    #[test]
    fn isp_kind_display_matches_paper_labels() {
        assert_eq!(IspKind::HostingProvider.to_string(), "Hosting Provider");
        assert_eq!(IspKind::CommercialIsp.to_string(), "Commercial ISP");
    }
}
