//! Property tests: interval DB invariants and pool allocation.

use btpub_geodb::{GeoDbBuilder, IpPool, IspId, IspKind, LocationId};
use proptest::prelude::*;
use std::collections::HashSet;
use std::net::Ipv4Addr;

proptest! {
    /// Non-overlapping ranges: every address inside a range resolves to that
    /// range's info; addresses outside all ranges resolve to None.
    #[test]
    fn lookup_matches_linear_scan(
        // Generate ranges as (start, len) pairs over a small space so
        // overlap is likely to be *attempted* and must be rejected.
        raw in proptest::collection::vec((0u32..10_000, 1u32..200), 1..20),
        probes in proptest::collection::vec(0u32..11_000, 50),
    ) {
        let mut b = GeoDbBuilder::new();
        let isp = b.add_isp("X", IspKind::CommercialIsp, "US");
        let loc = b.add_location("Y", "US");
        let mut intervals: Vec<(u32, u32)> = Vec::new();
        for (start, len) in raw {
            let end = start.saturating_add(len - 1);
            b.add_range(Ipv4Addr::from(start), Ipv4Addr::from(end), isp, loc);
            intervals.push((start, end));
        }
        let overlaps = {
            let mut sorted = intervals.clone();
            sorted.sort();
            sorted.windows(2).any(|w| w[1].0 <= w[0].1)
        };
        match b.build() {
            Err(_) => prop_assert!(overlaps, "build failed without overlap"),
            Ok(db) => {
                prop_assert!(!overlaps, "build succeeded despite overlap");
                for p in probes {
                    let inside = intervals.iter().any(|&(s, e)| s <= p && p <= e);
                    prop_assert_eq!(db.lookup(Ipv4Addr::from(p)).is_some(), inside);
                }
            }
        }
    }

    /// Server allocation yields every address exactly once.
    #[test]
    fn allocation_is_a_permutation(blocks in proptest::collection::vec(1u32..40, 1..6)) {
        let mut pool = IpPool::new(IspId(0));
        let mut base = 0u32;
        let mut expect = 0u64;
        for (i, len) in blocks.iter().enumerate() {
            pool.add_block(
                Ipv4Addr::from(base),
                Ipv4Addr::from(base + len - 1),
                LocationId(i as u16),
            );
            base += len + 1000; // gap between blocks
            expect += u64::from(*len);
        }
        let mut seen = HashSet::new();
        while let Some((ip, loc)) = pool.allocate_server() {
            prop_assert!(seen.insert(ip), "duplicate {ip}");
            prop_assert_eq!(pool.location_of(ip), Some(loc));
        }
        prop_assert_eq!(seen.len() as u64, expect);
    }
}
