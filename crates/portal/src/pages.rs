//! Content pages and user pages.

use btpub_sim::content::Category;
use btpub_sim::{Ecosystem, Publication, SimTime, TorrentId};

/// The web page of one published content.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentPage<'a> {
    /// The torrent it describes.
    pub torrent: TorrentId,
    /// Release title.
    pub title: &'a str,
    /// Category shown on the page.
    pub category: Category,
    /// Publisher username, linked to their user page.
    pub username: &'a str,
    /// Payload size.
    pub size_bytes: u64,
    /// The description textbox — where most profit-driven publishers put
    /// their URL (§5: "the second approach (using the textbox) is the most
    /// common technique").
    pub textbox: String,
    /// The filename offered for download.
    pub filename: String,
}

impl<'a> ContentPage<'a> {
    /// Projects a publication into its page.
    pub fn from_publication(p: &'a Publication) -> Self {
        ContentPage {
            torrent: p.id,
            title: &p.title,
            category: p.category,
            username: &p.username,
            size_bytes: p.size_bytes,
            textbox: p.textbox(),
            filename: p.filename(),
        }
    }
}

/// A username's profile page: its full publication history.
///
/// §5.2 scrapes these for every top publisher to compute Table 4's
/// *Lifetime* and *Average Publishing Rate* — including history from
/// before the measurement window, which the portal displays but the
/// tracker-side dataset cannot see.
#[derive(Debug, Clone, PartialEq)]
pub struct UserPage<'a> {
    /// The account name.
    pub username: &'a str,
    /// Days between the account's first publication ever and `as_of`.
    pub lifetime_days: f64,
    /// Total contents the account has ever published (history + window).
    pub total_published: u64,
    /// Torrents published within the measurement window, visible at
    /// `as_of`, oldest first.
    pub in_window: Vec<TorrentId>,
    /// Lifetime average publishing rate, contents/day.
    pub avg_rate_per_day: f64,
}

impl<'a> UserPage<'a> {
    /// Builds the page for `username` as of time `as_of`.
    pub(crate) fn build(
        eco: &'a Ecosystem,
        username: &'a str,
        in_window: Vec<TorrentId>,
        as_of: SimTime,
    ) -> UserPage<'a> {
        // The account's pre-window history comes from the entity that owns
        // the username (for compromised accounts: the *legitimate* owner,
        // since the portal page shows the whole account history).
        let owner = in_window
            .iter()
            .map(|&id| &eco.publications[id.0 as usize])
            .find(|p| eco.publisher(p.publisher).usernames.first().map(String::as_str) == Some(username))
            .map(|p| eco.publisher(p.publisher));
        let (history_days, historical_rate) = owner
            .map(|o| (o.history_days_before_window, o.historical_rate_per_day))
            .unwrap_or((0.0, 0.0));
        let lifetime_days = history_days + as_of.as_days();
        let historical_count = (history_days * historical_rate).round() as u64;
        let total_published = historical_count + in_window.len() as u64;
        UserPage {
            username,
            lifetime_days,
            total_published,
            in_window,
            avg_rate_per_day: total_published as f64 / lifetime_days.max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Portal;
    use btpub_sim::EcosystemConfig;

    #[test]
    fn content_page_embeds_promotion_in_textbox() {
        let e = Ecosystem::generate(EcosystemConfig::tiny(60));
        let portal = Portal::new(&e);
        let promoted = e
            .publications
            .iter()
            .find(|p| {
                p.promo_url.is_some()
                    && p.promo_techniques
                        .contains(&btpub_sim::content::PromoTechnique::Textbox)
            })
            .expect("textbox promotion exists");
        let page = portal.content_page(promoted.id, promoted.at).unwrap();
        assert!(page
            .textbox
            .contains(promoted.promo_url.as_ref().unwrap()));
        assert_eq!(page.username, promoted.username);
    }

    #[test]
    fn user_page_rate_is_consistent() {
        let e = Ecosystem::generate(EcosystemConfig::tiny(60));
        let portal = Portal::new(&e);
        let horizon = e.config.horizon();
        for p in e.publications.iter().take(200) {
            if let Some(page) = portal.user_page(&p.username, horizon) {
                let recomputed = page.total_published as f64 / page.lifetime_days.max(1.0);
                assert!(
                    (page.avg_rate_per_day - recomputed).abs() < 1e-9,
                    "rate mismatch for {}",
                    page.username
                );
                assert!(page.total_published >= page.in_window.len() as u64);
            }
        }
    }
}
